"""EXP-A2 — privacy/utility trade-off: the ε sweep behind "meaningful
values of the privacy parameter ε" (paper §4.2), plus the triangle-floor
policy ablation of DESIGN.md §5.

For each ε the bench runs Algorithm 1 with several noise seeds and
reports the median max-abs parameter distance to the non-private KronMom
fit.  Utility must improve monotonically-ish with ε and be good at the
paper's ε = 0.2.
"""

from __future__ import annotations

import numpy as np

from repro.core.estimator import PrivateKroneckerEstimator
from repro.core.nonprivate import fit_kronmom
from repro.graphs.datasets import load_dataset
from repro.utils.tables import TextTable

EPSILONS = (0.05, 0.1, 0.2, 0.5, 1.0, 10.0)
SEEDS = range(5)
DELTA = 0.01


def _sweep(graph, reference):
    medians = {}
    for epsilon in EPSILONS:
        distances = [
            PrivateKroneckerEstimator(epsilon, DELTA, seed=seed)
            .fit(graph)
            .initiator.distance(reference)
            for seed in SEEDS
        ]
        medians[epsilon] = float(np.median(distances))
    return medians


def test_epsilon_sweep(benchmark, emit):
    graph = load_dataset("ca-grqc")
    reference = fit_kronmom(graph).initiator
    medians = benchmark.pedantic(
        lambda: _sweep(graph, reference), rounds=1, iterations=1
    )
    table = TextTable(
        ["epsilon", "median d(Private, KronMom)"],
        title=f"Privacy/utility trade-off on CA-GrQC (delta={DELTA}, "
        f"{len(list(SEEDS))} seeds)",
    )
    for epsilon in EPSILONS:
        table.add_row([epsilon, medians[epsilon]])

    # Triangle-floor policy ablation at the paper's operating point.
    policy_table = TextTable(
        ["policy", "median d(Private, KronMom)"],
        title="Triangle-floor policy ablation at epsilon=0.2 (synthetic graph)",
    )
    synthetic = load_dataset("synthetic-kronecker")
    synthetic_reference = fit_kronmom(synthetic).initiator
    policy_medians = {}
    for policy in ("noise_scale", "one", "none"):
        distances = [
            PrivateKroneckerEstimator(0.2, DELTA, triangle_floor=policy, seed=seed)
            .fit(synthetic)
            .initiator.distance(synthetic_reference)
            for seed in SEEDS
        ]
        policy_medians[policy] = float(np.median(distances))
        policy_table.add_row([policy, policy_medians[policy]])
    emit("ablation_epsilon", table.render() + "\n\n" + policy_table.render())

    # Utility claims: accurate at the paper's epsilon, and the sweep's
    # high-privacy end is no better than the low-privacy end.
    assert medians[0.2] < 0.15
    assert medians[10.0] <= medians[0.05] + 1e-9
    assert policy_medians["noise_scale"] <= policy_medians["one"] + 1e-9
