"""EXP-A2 — privacy/utility trade-off: the ε sweep behind "meaningful
values of the privacy parameter ε" (paper §4.2), plus the triangle-floor
policy ablation of DESIGN.md §5.

For each ε the bench runs Algorithm 1 with several noise seeds and
reports the median max-abs parameter distance to the non-private KronMom
fit.  Utility must improve monotonically-ish with ε and be good at the
paper's ε = 0.2.

The (ε, seed) and (policy, seed) grids are declared as scenarios
(:func:`repro.scenarios.epsilon_ablation_scenarios`: one scenario per
(ε, floor-policy) point, one trial per historical integer noise seed)
and executed by the scenario engine, honouring ``REPRO_N_JOBS`` /
``REPRO_CACHE_DIR``.  Each trial keeps the historical integer noise
seed, so the reported medians are bit-identical to the serial original.
"""

from __future__ import annotations

import numpy as np

from repro.core.nonprivate import fit_kronmom
from repro.evaluation.experiments import default_config
from repro.graphs.datasets import load_dataset
from repro.scenarios import epsilon_ablation_scenarios, run_scenarios
from repro.utils.tables import TextTable

EPSILONS = (0.05, 0.1, 0.2, 0.5, 1.0, 10.0)
SEEDS = range(5)
DELTA = 0.01


def _median_distances(grid, dataset, reference, *, config):
    """Median trial distance per grid point; one scenario per point."""
    scenarios = epsilon_ablation_scenarios(
        dataset,
        grid,
        tuple(SEEDS),
        delta=DELTA,
        reference=(reference.a, reference.b, reference.c),
    )
    reports = run_scenarios(
        scenarios,
        n_jobs=config.n_jobs,
        cache=config.trial_cache,
        label=f"ablation_epsilon:{dataset}",
    )
    return {
        point: float(np.median(report.results))
        for point, report in zip(grid, reports)
    }


def _sweep(reference, config):
    grid = [(epsilon, "noise_scale") for epsilon in EPSILONS]
    by_point = _median_distances(grid, "ca-grqc", reference, config=config)
    return {epsilon: by_point[(epsilon, "noise_scale")] for epsilon in EPSILONS}


def test_epsilon_sweep(benchmark, emit):
    config = default_config()
    graph = load_dataset("ca-grqc")
    reference = fit_kronmom(graph).initiator
    medians = benchmark.pedantic(
        lambda: _sweep(reference, config), rounds=1, iterations=1
    )
    table = TextTable(
        ["epsilon", "median d(Private, KronMom)"],
        title=f"Privacy/utility trade-off on CA-GrQC (delta={DELTA}, "
        f"{len(list(SEEDS))} seeds)",
    )
    for epsilon in EPSILONS:
        table.add_row([epsilon, medians[epsilon]])

    # Triangle-floor policy ablation at the paper's operating point.
    policy_table = TextTable(
        ["policy", "median d(Private, KronMom)"],
        title="Triangle-floor policy ablation at epsilon=0.2 (synthetic graph)",
    )
    synthetic = load_dataset("synthetic-kronecker")
    synthetic_reference = fit_kronmom(synthetic).initiator
    policies = ("noise_scale", "one", "none")
    grid = [(0.2, policy) for policy in policies]
    by_point = _median_distances(
        grid, "synthetic-kronecker", synthetic_reference, config=config
    )
    policy_medians = {policy: by_point[(0.2, policy)] for policy in policies}
    for policy in policies:
        policy_table.add_row([policy, policy_medians[policy]])
    emit("ablation_epsilon", table.render() + "\n\n" + policy_table.render())

    # Utility claims: accurate at the paper's epsilon, and the sweep's
    # high-privacy end is no better than the low-privacy end.
    assert medians[0.2] < 0.15
    assert medians[10.0] <= medians[0.05] + 1e-9
    assert policy_medians["noise_scale"] <= policy_medians["one"] + 1e-9
