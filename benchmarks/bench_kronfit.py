"""EXP-K2 — Metropolis chain backends vs the numpy reference for KronFit.

The KronFit baseline of the paper's Table 1 runs ~10⁵ Metropolis
proposals per fit; PR 4 moved the chain onto the fused native kernels
(:mod:`repro.native.chain`) behind ``REPRO_KERNEL_BACKEND``.  This bench
records two trajectories per workload:

* **chain throughput** — raw proposals/second of
  :meth:`PermutationSampler.run` per engine (numpy reference, numba,
  compiled-C ``cext``), with every engine first checked **bit-identical**
  to the reference on a common pre-drawn stream (σ, histogram, and
  acceptance count must agree exactly — the same contract the chain
  equivalence matrix pins in ``tests/kronecker/test_chain_equivalence.py``);
* **end-to-end fit** — wall-clock of a full ``KronFitEstimator.fit`` at
  Table-1-scale chain parameters, per engine, with bit-identical fitted
  initiators enforced across engines;
* **multi-start fit** — wall-clock of ``KronFitEstimator(n_starts=8)``
  (PR 5) at n_jobs ∈ {1, 4} on the floor workload, with the winning
  start and fitted initiator enforced bit-identical across worker
  counts.  The parallel floor (n_jobs=4 ≥ 2× serial) is asserted only
  on hosts with ≥ 2 usable cores — on a single-core container the
  measurement is still recorded, with the core count and the reason the
  assertion was skipped;
* **batched multichain fit** — wall-clock of the PR 10 batched
  multi-start path (all S chains advanced in *one* native call,
  ``kernel_threads`` ∈ {1, 2}) against the PR 5 pool fan-out at
  ``n_jobs=4``, at S ∈ {8, 64} on the floor workload.  The winning
  start, fitted initiator, and every chain's final log-likelihood are
  enforced bit-identical between the two strategies (the batched
  kernel's per-chain bit-identity contract).  The ≥ 2× batched-vs-
  fan-out floor is asserted exactly on single-core hosts — the
  complement of the pool floor above, closing its "skipped on 1-core
  hosts" gap: every host now asserts one multi-start floor.

Workloads: SKG draws at k ∈ {10, 12} and the ca-grqc dataset (the
padded fit runs at k=13).  The k=12 draw asserts the floor: the best
fused engine must complete the fit ≥ 2× faster than the numpy reference
(the PR target is ≥ 5×; the measured value is recorded in the artifact).
Unavailable engines are recorded with the reason, so the artifact states
exactly what was measured where.

Results go to ``benchmarks/out/BENCH_kronfit.json``.  The artifact
carries ``schema_version``; ``tests/test_bench_artifacts.py`` guards that
the committed JSON stays in sync with this script's schema.

Run directly (no pytest needed)::

    python benchmarks/bench_kronfit.py            # full matrix, asserts floor
    python benchmarks/bench_kronfit.py --quick    # CI smoke subset
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.graphs.datasets import load_dataset
from repro.graphs.graph import Graph
from repro.graphs.operations import pad_to_power_of_two
from repro.kronecker.initiator import Initiator
from repro.kronecker.kronfit import KronFitEstimator
from repro.kronecker.likelihood import PermutationSampler
from repro.kronecker.sampling import sample_skg
from repro.native.chain import (
    available_chain_backends,
    chain_backend_available,
    chain_backend_error,
)
from repro.native.registry import NATIVE_BACKENDS

# Bump when the JSON layout changes; tests/test_bench_artifacts.py keeps
# the committed artifact in sync.  3 = added the large-k scale rows
# (per-engine delta-scan fits at k ∈ {16, 18, 20}); 4 = added the
# batched multichain column (``multichain`` workload rows at
# S ∈ {8, 64} × kernel_threads ∈ {1, 2} plus ``multichain_floor``).
SCHEMA_VERSION = 4

OUT_PATH = Path(__file__).parent / "out" / "BENCH_kronfit.json"
THETA = Initiator(0.99, 0.45, 0.25)  # the paper's synthetic initiator
FIT_THETA = Initiator(0.9, 0.6, 0.2)  # KronFit's generic starting point
SEED = 20120330
FUSED_FIT_FLOOR = 2.0
FLOOR_WORKLOAD = "skg-k12"

# Multi-start column: S chains per fit, serial vs pool-fanned.
MULTISTART_STARTS = 8
MULTISTART_JOBS = (1, 4)
MULTISTART_FLOOR = 2.0

# Batched multichain column (PR 10): all S chains advanced in one
# native call vs the PR 5 pool fan-out of S solo fits.
MULTICHAIN_STARTS = (8, 64)
MULTICHAIN_QUICK_STARTS = (8,)
MULTICHAIN_THREADS = (1, 2)
MULTICHAIN_FANOUT_JOBS = 4
MULTICHAIN_FLOOR = 2.0

# Table-1-scale chain parameters: n_iterations × (warmup + samples ×
# spacing) = 28 000 proposals per fit.
FIT_PARAMS = dict(
    n_iterations=10,
    warmup_swaps=2000,
    n_permutation_samples=4,
    sample_spacing=200,
)
QUICK_FIT_PARAMS = dict(
    n_iterations=4,
    warmup_swaps=400,
    n_permutation_samples=2,
    sample_spacing=50,
)

# Throughput probe sizes: enough proposals to swamp per-run setup, kept
# small on the reference engine so the bench stays minutes-scale.
THROUGHPUT_PROPOSALS = {"numpy": 20_000, "numba": 400_000, "cext": 400_000}
EQUIVALENCE_PROPOSALS = 4_000

# The large-k scale rows (PR 8): full Table-1-budget fits on the skg-k16
# / k18 / k20 datasets.  The touched-cell delta scan keeps even the
# numpy reference minutes-free at 10^6 nodes (the old full-scan path
# paid 2 * (k+1)^2 score reads per proposal; the delta scan pays
# O(deg i + deg j)), and the fused engines must still beat it >= 2x at
# k=18.
LARGE_K_ORDERS = (16, 18, 20)
LARGE_K_QUICK_ORDERS = (16,)
LARGE_K_FLOOR_K = 18
LARGE_K_FIT_FLOOR = 2.0


def chain_engines() -> tuple[str, ...]:
    return ("numpy",) + NATIVE_BACKENDS


def bench_chain(graph: Graph, k: int, repeats: int, quick: bool) -> dict:
    """Per-engine chain throughput, pinned by a bit-identity prefix."""
    reference = _chain_state(graph, k, "numpy", EQUIVALENCE_PROPOSALS)
    records: dict[str, dict] = {}
    for engine in chain_engines():
        if engine != "numpy" and not chain_backend_available(engine):
            records[engine] = {
                "available": False,
                "reason": chain_backend_error(engine),
            }
            continue
        state = _chain_state(graph, k, engine, EQUIVALENCE_PROPOSALS)
        identical = (
            np.array_equal(state[0], reference[0])
            and np.array_equal(state[1], reference[1])
            and state[2] == reference[2]
        )
        if not identical:
            raise AssertionError(
                f"chain engine {engine} diverges from the numpy reference"
            )
        n_proposals = THROUGHPUT_PROPOSALS[engine]
        if quick:
            n_proposals //= 10
        best = float("inf")
        for _ in range(repeats):
            sampler = PermutationSampler(graph, k, THETA, backend=engine)
            rng = np.random.default_rng(SEED)
            start = time.perf_counter()
            sampler.run(n_proposals, rng)
            best = min(best, time.perf_counter() - start)
        records[engine] = {
            "available": True,
            "bit_identical": True,
            "n_proposals": n_proposals,
            "seconds": best,
            "proposals_per_second": n_proposals / best,
        }
    numpy_rate = records["numpy"]["proposals_per_second"]
    for record in records.values():
        if record.get("available"):
            record["speedup_vs_numpy"] = (
                record["proposals_per_second"] / numpy_rate
            )
    return records


def _chain_state(graph: Graph, k: int, engine: str, n_proposals: int):
    """(σ, histogram, accepted) after a fixed-seed run on ``engine``."""
    sampler = PermutationSampler(graph, k, THETA, backend=engine)
    sampler.run(n_proposals, np.random.default_rng(SEED))
    return sampler.sigma.copy(), sampler.histogram(), sampler.accepted


def bench_fit(graph: Graph, fit_params: dict) -> dict:
    """End-to-end ``KronFitEstimator.fit`` wall-clock per engine."""
    records: dict[str, dict] = {}
    reference_initiator = None
    for engine in chain_engines():
        if engine != "numpy" and not chain_backend_available(engine):
            records[engine] = {
                "available": False,
                "reason": chain_backend_error(engine),
            }
            continue
        estimator = KronFitEstimator(
            initial=FIT_THETA, seed=SEED, backend=engine, **fit_params
        )
        start = time.perf_counter()
        result = estimator.fit(graph)
        seconds = time.perf_counter() - start
        if reference_initiator is None:
            reference_initiator = result.initiator
        elif result.initiator != reference_initiator:
            raise AssertionError(
                f"fit with engine {engine} diverges from the numpy reference"
            )
        records[engine] = {
            "available": True,
            "seconds": seconds,
            "k": result.k,
            "acceptance_rate": result.acceptance_rate,
            "initiator": [
                result.initiator.a, result.initiator.b, result.initiator.c
            ],
        }
    numpy_seconds = records["numpy"]["seconds"]
    for record in records.values():
        if record.get("available"):
            record["speedup_vs_numpy"] = numpy_seconds / record["seconds"]
    return records


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without affinity masks
        return os.cpu_count() or 1


def best_engine() -> str:
    """The fastest available chain engine (fused if any, else numpy)."""
    for engine in reversed(chain_engines()):
        if engine == "numpy" or chain_backend_available(engine):
            return engine
    return "numpy"


def multistart_workload(quick: bool) -> str:
    """Which workload carries the multi-start record (shared by the
    per-workload bench and the floor lookup, so they cannot drift)."""
    return "skg-k10" if quick else FLOOR_WORKLOAD


def bench_multistart(graph: Graph, repeats: int, fit_params: dict) -> dict:
    """Multi-start fit wall-clock at S=8, n_jobs ∈ {1, 4}.

    The winning start and the fitted initiator must be bit-identical
    across worker counts (the trial engine's determinism guarantee);
    wall-clock is best-of-``repeats`` with the persistent pool warmed by
    the first (untimed) run, so the recorded parallel number measures
    steady-state fan-out, not worker forking.
    """
    engine = best_engine()
    records: dict = {
        "n_starts": MULTISTART_STARTS,
        "backend": engine,
        "params": fit_params,
        "by_n_jobs": {},
    }
    reference = None
    for n_jobs in MULTISTART_JOBS:
        estimator = KronFitEstimator(
            initial=FIT_THETA,
            seed=SEED,
            backend=engine,
            n_starts=MULTISTART_STARTS,
            n_jobs=n_jobs,
            **fit_params,
        )
        result = estimator.fit(graph)  # warm-up (forks the pool once)
        if reference is None:
            reference = result
        elif (
            result.initiator != reference.initiator
            or result.start != reference.start
        ):
            raise AssertionError(
                f"multi-start fit at n_jobs={n_jobs} diverges from serial"
            )
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            estimator.fit(graph)
            best = min(best, time.perf_counter() - start)
        records["by_n_jobs"][str(n_jobs)] = {
            "seconds": best,
            "winning_start": result.start,
            "winning_log_likelihood": result.log_likelihoods[-1],
        }
    serial = records["by_n_jobs"][str(MULTISTART_JOBS[0])]["seconds"]
    for entry in records["by_n_jobs"].values():
        entry["speedup_vs_serial"] = serial / entry["seconds"]
    return records


def bench_multichain(graph: Graph, repeats: int, fit_params: dict, quick: bool) -> dict:
    """Batched multichain fits vs the PR 5 pool fan-out.

    For each S the fan-out baseline (``multi_start="fanout"``, a warmed
    pool of ``MULTICHAIN_FANOUT_JOBS`` workers) and the batched path
    (one native call advancing all S chains, at each kernel-thread
    count) are timed best-of-``repeats``.  The winning start, fitted
    initiator, and every chain's final log-likelihood must be
    bit-identical between the two strategies — the batched kernel's
    per-chain bit-identity contract, pinned per proposal by
    ``tests/kronecker/test_multichain_equivalence.py``.
    """
    engine = best_engine()
    records: dict = {
        "backend": engine,
        "params": fit_params,
        "fanout_n_jobs": MULTICHAIN_FANOUT_JOBS,
        "by_starts": {},
    }
    for n_starts in MULTICHAIN_QUICK_STARTS if quick else MULTICHAIN_STARTS:
        fanout = KronFitEstimator(
            initial=FIT_THETA,
            seed=SEED,
            backend=engine,
            n_starts=n_starts,
            n_jobs=MULTICHAIN_FANOUT_JOBS,
            multi_start="fanout",
            **fit_params,
        )
        reference = fanout.fit(graph)  # warm-up (forks the pool once)
        fanout_best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fanout.fit(graph)
            fanout_best = min(fanout_best, time.perf_counter() - start)
        row = {
            "winning_start": reference.start,
            "fanout": {
                "n_jobs": MULTICHAIN_FANOUT_JOBS,
                "seconds": fanout_best,
            },
            "batched": {},
        }
        for threads in MULTICHAIN_THREADS:
            batched = KronFitEstimator(
                initial=FIT_THETA,
                seed=SEED,
                backend=engine,
                n_starts=n_starts,
                n_jobs=1,
                multi_start="batched",
                kernel_threads=threads,
                **fit_params,
            )
            result = batched.fit(graph)  # warm-up (loads the kernel)
            if (
                result.start != reference.start
                or result.initiator != reference.initiator
                or result.start_log_likelihoods
                != reference.start_log_likelihoods
            ):
                raise AssertionError(
                    f"batched multichain fit (S={n_starts}, kernel_threads="
                    f"{threads}) diverges from the pool fan-out"
                )
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                batched.fit(graph)
                best = min(best, time.perf_counter() - start)
            row["batched"][str(threads)] = {
                "seconds": best,
                "bit_identical": True,
                "speedup_vs_fanout": fanout_best / best,
            }
        records["by_starts"][str(n_starts)] = row
    return records


def bench_large_k(k: int, fit_params: dict) -> dict:
    """One large-k scale row: per-engine end-to-end fits on ``skg-k{k}``.

    The graphs come from the dataset registry (the same draws the
    ``large-k`` scenario preset fits), and every engine's fitted
    initiator is enforced bit-identical by :func:`bench_fit`.
    """
    graph = load_dataset(f"skg-k{k}")
    return {
        "k": k,
        "n_nodes": graph.n_nodes,
        "n_edges": graph.n_edges,
        "fit": {"params": fit_params, **bench_fit(graph, fit_params)},
    }


def _large_k_floor(large_k_rows: list[dict]) -> dict:
    """The fastest fused engine's fit speedup on the k=18 scale row."""
    entry = {
        "k": LARGE_K_FLOOR_K,
        "required": LARGE_K_FIT_FLOOR,
        "backend": None,
        "measured": None,
    }
    row = next((r for r in large_k_rows if r["k"] == LARGE_K_FLOOR_K), None)
    if row is None:
        return entry
    fused = {
        engine: fit["speedup_vs_numpy"]
        for engine, fit in row["fit"].items()
        if engine in NATIVE_BACKENDS and isinstance(fit, dict) and fit.get("available")
    }
    if fused:
        entry["backend"] = max(fused, key=fused.get)
        entry["measured"] = fused[entry["backend"]]
    return entry


def bench_workload(
    name: str, graph: Graph, repeats: int, quick: bool, fit_params: dict
) -> dict:
    padded, k = pad_to_power_of_two(graph)
    padded.adjacency  # warm the shared structures every engine starts from
    record = {
        "workload": name,
        "n_nodes": graph.n_nodes,
        "n_edges": graph.n_edges,
        "k": k,
        "chain": bench_chain(padded, k, repeats, quick),
        "fit": {"params": fit_params, **bench_fit(graph, fit_params)},
    }
    if name == multistart_workload(quick):
        record["multistart"] = bench_multistart(graph, repeats, fit_params)
        record["multichain"] = bench_multichain(graph, repeats, fit_params, quick)
    return record


def build_workloads(quick: bool):
    orders = (10,) if quick else (10, 12)
    for k in orders:
        yield f"skg-k{k}", sample_skg(THETA, k, seed=SEED)
    if not quick:
        yield "ca-grqc", load_dataset("ca-grqc")


def _multistart_floor(results: list[dict], quick: bool) -> dict:
    """The S=8 parallel-vs-serial speedup on the floor workload.

    ``asserted`` records whether the ≥2× floor is enforceable: parallel
    wall-clock can only beat serial when the host exposes at least two
    usable cores, so single-core containers record the measurement and
    the reason instead of failing a physically impossible assertion.
    """
    cores = usable_cores()
    entry = {
        "workload": multistart_workload(quick),
        "n_starts": MULTISTART_STARTS,
        "n_jobs": MULTISTART_JOBS[-1],
        "required": MULTISTART_FLOOR,
        "measured": None,
        "usable_cores": cores,
        "asserted": False,
        "skip_reason": None,
    }
    record = next(
        (r for r in results if r["workload"] == entry["workload"] and "multistart" in r),
        None,
    )
    if record is None:
        entry["skip_reason"] = "floor workload not benchmarked"
        return entry
    parallel = record["multistart"]["by_n_jobs"][str(MULTISTART_JOBS[-1])]
    entry["measured"] = parallel["speedup_vs_serial"]
    if quick:
        entry["skip_reason"] = "quick run"
    elif cores < 2:
        entry["skip_reason"] = (
            f"host exposes {cores} usable core(s); parallel fan-out cannot "
            f"beat serial wall-clock"
        )
    else:
        entry["asserted"] = True
    return entry


def _multichain_floor(results: list[dict], quick: bool) -> dict:
    """The batched-vs-fan-out speedup at S=8, kernel_threads=1.

    The complement of :func:`_multistart_floor`: batching S chains into
    one native call needs no second core to beat the pool fan-out, so
    the ≥2× floor is asserted exactly where the pool floor cannot be
    (hosts with one usable core).  Multi-core hosts record the
    measurement and lean on the pool floor instead — every host asserts
    exactly one of the two multi-start floors.
    """
    cores = usable_cores()
    entry = {
        "workload": multistart_workload(quick),
        "n_starts": MULTICHAIN_STARTS[0],
        "kernel_threads": 1,
        "fanout_n_jobs": MULTICHAIN_FANOUT_JOBS,
        "required": MULTICHAIN_FLOOR,
        "measured": None,
        "usable_cores": cores,
        "asserted": False,
        "skip_reason": None,
    }
    record = next(
        (r for r in results if r["workload"] == entry["workload"] and "multichain" in r),
        None,
    )
    if record is None:
        entry["skip_reason"] = "floor workload not benchmarked"
        return entry
    row = record["multichain"]["by_starts"][str(MULTICHAIN_STARTS[0])]
    entry["measured"] = row["batched"]["1"]["speedup_vs_fanout"]
    if quick:
        entry["skip_reason"] = "quick run"
    elif cores > 1:
        entry["skip_reason"] = (
            f"host exposes {cores} usable cores; the pool fan-out floor "
            f"(multistart_floor) is asserted there instead"
        )
    else:
        entry["asserted"] = True
    return entry


def _fused_floor(results: list[dict]) -> dict:
    """The fastest available fused engine's fit speedup on the floor
    workload."""
    entry = {
        "workload": FLOOR_WORKLOAD,
        "required": FUSED_FIT_FLOOR,
        "backend": None,
        "measured": None,
    }
    record = next((r for r in results if r["workload"] == FLOOR_WORKLOAD), None)
    if record is None:
        return entry
    fused = {
        engine: fit["speedup_vs_numpy"]
        for engine, fit in record["fit"].items()
        if engine in NATIVE_BACKENDS and isinstance(fit, dict) and fit.get("available")
    }
    if fused:
        entry["backend"] = max(fused, key=fused.get)
        entry["measured"] = fused[entry["backend"]]
    return entry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke subset (skg-k10, short chains); skips the floor assertion",
    )
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats")
    parser.add_argument(
        "--out",
        default=None,
        help=(
            "JSON output path (default: benchmarks/out/BENCH_kronfit.json; "
            "quick runs default to BENCH_kronfit_quick.json so they never "
            "overwrite the committed full-matrix artifact)"
        ),
    )
    arguments = parser.parse_args(argv)
    if arguments.out is None:
        arguments.out = str(
            OUT_PATH.with_name("BENCH_kronfit_quick.json")
            if arguments.quick
            else OUT_PATH
        )
    fit_params = QUICK_FIT_PARAMS if arguments.quick else FIT_PARAMS

    results = []
    for name, graph in build_workloads(arguments.quick):
        record = bench_workload(
            name, graph, arguments.repeats, arguments.quick, fit_params
        )
        results.append(record)
        print(f"{name:12s} n={record['n_nodes']:>6d} E={record['n_edges']:>7d} k={record['k']}")
        for engine, entry in record["chain"].items():
            if entry.get("available"):
                print(
                    f"{'':12s}   chain[{engine}] "
                    f"{entry['proposals_per_second']:>12,.0f} proposals/s "
                    f"({entry['speedup_vs_numpy']:.1f}x vs numpy)"
                )
            else:
                print(f"{'':12s}   chain[{engine}] unavailable: {entry['reason']}")
        for engine, entry in record["fit"].items():
            if engine == "params" or not isinstance(entry, dict):
                continue
            if entry.get("available"):
                print(
                    f"{'':12s}   fit[{engine}]   {entry['seconds'] * 1000:9.1f} ms "
                    f"({entry['speedup_vs_numpy']:.1f}x vs numpy)"
                )
            else:
                print(f"{'':12s}   fit[{engine}]   unavailable: {entry['reason']}")
        if "multistart" in record:
            multistart = record["multistart"]
            for n_jobs, entry in multistart["by_n_jobs"].items():
                print(
                    f"{'':12s}   multistart[S={multistart['n_starts']}, "
                    f"n_jobs={n_jobs}] {entry['seconds'] * 1000:9.1f} ms "
                    f"({entry['speedup_vs_serial']:.2f}x vs serial, "
                    f"start {entry['winning_start']} wins)"
                )
        if "multichain" in record:
            multichain = record["multichain"]
            for n_starts, row in multichain["by_starts"].items():
                print(
                    f"{'':12s}   fanout[S={n_starts}, n_jobs="
                    f"{row['fanout']['n_jobs']}] "
                    f"{row['fanout']['seconds'] * 1000:9.1f} ms "
                    f"(start {row['winning_start']} wins)"
                )
                for threads, entry in row["batched"].items():
                    print(
                        f"{'':12s}   batched[S={n_starts}, threads={threads}] "
                        f"{entry['seconds'] * 1000:9.1f} ms "
                        f"({entry['speedup_vs_fanout']:.2f}x vs fan-out)"
                    )

    large_k_rows = []
    for k in LARGE_K_QUICK_ORDERS if arguments.quick else LARGE_K_ORDERS:
        row = bench_large_k(k, fit_params)
        large_k_rows.append(row)
        print(f"skg-k{k:<7d} n={row['n_nodes']:>8d} E={row['n_edges']:>8d}")
        for engine, entry in row["fit"].items():
            if engine == "params" or not isinstance(entry, dict):
                continue
            if entry.get("available"):
                print(
                    f"{'':12s}   fit[{engine}]   {entry['seconds'] * 1000:9.1f} ms "
                    f"({entry['speedup_vs_numpy']:.1f}x vs numpy)"
                )
            else:
                print(f"{'':12s}   fit[{engine}]   unavailable: {entry['reason']}")

    fused_floor = _fused_floor(results)
    multistart_floor = _multistart_floor(results, arguments.quick)
    multichain_floor = _multichain_floor(results, arguments.quick)
    large_k_floor = _large_k_floor(large_k_rows)
    report = {
        "bench": "bench_kronfit",
        "schema_version": SCHEMA_VERSION,
        "quick": arguments.quick,
        "repeats": arguments.repeats,
        "seed": SEED,
        "usable_cores": usable_cores(),
        "chain_backends_available": list(available_chain_backends()),
        "fused_fit_floor": fused_floor,
        "multistart_floor": multistart_floor,
        "multichain_floor": multichain_floor,
        "large_k_fit_floor": large_k_floor,
        "workloads": results,
        "large_k": large_k_rows,
    }
    out_path = Path(arguments.out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"[written to {out_path}]")

    if not arguments.quick:
        if fused_floor["backend"] is not None:
            assert fused_floor["measured"] >= FUSED_FIT_FLOOR, (
                f"fused chain engine {fused_floor['backend']} is only "
                f"{fused_floor['measured']:.2f}x over the numpy reference "
                f"fit on {FLOOR_WORKLOAD} (floor: {FUSED_FIT_FLOOR}x)"
            )
            print(
                f"{FLOOR_WORKLOAD} fused fit ({fused_floor['backend']}) "
                f"{fused_floor['measured']:.2f}x >= {FUSED_FIT_FLOOR}x floor"
            )
        else:
            print("no fused chain engine available; fit floor not asserted")
        if large_k_floor["backend"] is not None:
            assert large_k_floor["measured"] >= LARGE_K_FIT_FLOOR, (
                f"fused chain engine {large_k_floor['backend']} is only "
                f"{large_k_floor['measured']:.2f}x over the numpy reference "
                f"fit at k={LARGE_K_FLOOR_K} (floor: {LARGE_K_FIT_FLOOR}x)"
            )
            print(
                f"k={LARGE_K_FLOOR_K} fused fit ({large_k_floor['backend']}) "
                f"{large_k_floor['measured']:.2f}x >= {LARGE_K_FIT_FLOOR}x floor"
            )
        else:
            print(
                "no fused chain engine available; large-k fit floor not asserted"
            )
    if multistart_floor["asserted"]:
        assert multistart_floor["measured"] >= MULTISTART_FLOOR, (
            f"multi-start S={MULTISTART_STARTS} at n_jobs={MULTISTART_JOBS[-1]} "
            f"is only {multistart_floor['measured']:.2f}x over serial on "
            f"{multistart_floor['workload']} (floor: {MULTISTART_FLOOR}x)"
        )
        print(
            f"{multistart_floor['workload']} multi-start "
            f"{multistart_floor['measured']:.2f}x >= {MULTISTART_FLOOR}x floor"
        )
    elif multistart_floor["measured"] is not None:
        print(
            f"multi-start floor recorded but not asserted "
            f"({multistart_floor['skip_reason']}): "
            f"{multistart_floor['measured']:.2f}x"
        )
    if multichain_floor["asserted"]:
        assert multichain_floor["measured"] >= MULTICHAIN_FLOOR, (
            f"batched multichain S={MULTICHAIN_STARTS[0]} (kernel_threads=1) "
            f"is only {multichain_floor['measured']:.2f}x over the "
            f"n_jobs={MULTICHAIN_FANOUT_JOBS} pool fan-out on "
            f"{multichain_floor['workload']} (floor: {MULTICHAIN_FLOOR}x)"
        )
        print(
            f"{multichain_floor['workload']} batched multichain "
            f"{multichain_floor['measured']:.2f}x >= {MULTICHAIN_FLOOR}x floor"
        )
    elif multichain_floor["measured"] is not None:
        print(
            f"multichain floor recorded but not asserted "
            f"({multichain_floor['skip_reason']}): "
            f"{multichain_floor['measured']:.2f}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
