"""CI-maintained perf trajectory: one row of bench numbers per commit.

The committed ``benchmarks/out/BENCH_trajectory.json`` is the repo's
performance history: each row condenses one commit's quick-bench reports
(``bench_stats.py`` and ``bench_kronfit.py`` ``--quick`` outputs) into
the headline numbers the ROADMAP tracks — the combined counting-path
speedup, the fused pass speedup over blocked scipy, the fused KronFit
fit speedup over the numpy chain, and the batched multichain speedup
over the pool fan-out.  The CI bench-smoke job
appends the current commit's row on every run; re-benching the same
commit replaces its row, so the trajectory has one row per commit and is
sorted by the time it was recorded.

Usage (CI appends; locally the same command works)::

    python benchmarks/bench_stats.py --quick --out /tmp/stats.json
    python benchmarks/bench_kronfit.py --quick --out /tmp/kronfit.json
    python benchmarks/bench_trajectory.py --stats /tmp/stats.json \
        --kronfit /tmp/kronfit.json

``tests/test_bench_artifacts.py`` guards the committed artifact: the
schema version must match this script's and rows must stay well-formed
(one per commit, recorded timestamps ascending).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path

# Bump when the JSON layout changes; tests/test_bench_artifacts.py keeps
# the committed artifact in sync.
SCHEMA_VERSION = 1

OUT_PATH = Path(__file__).parent / "out" / "BENCH_trajectory.json"
ROW_KEYS = ("commit", "label", "recorded", "quick", "stats", "kronfit")


def fresh_trajectory() -> dict:
    """An empty trajectory artifact (the committed file's skeleton)."""
    return {
        "bench": "bench_trajectory",
        "schema_version": SCHEMA_VERSION,
        "quick": False,
        "rows": [],
    }


def build_row(
    stats_report: dict,
    kronfit_report: dict,
    *,
    commit: str,
    label: str,
    recorded: str,
) -> dict:
    """Condense one commit's two bench reports into a trajectory row.

    Full-matrix reports contribute their floor records verbatim; quick
    reports skip the floor workloads, so the row falls back to the best
    *measured* workload in the report (recording which one), keeping CI
    rows populated with real numbers instead of nulls.
    """
    return {
        "commit": commit,
        "label": label,
        "recorded": recorded,
        "quick": bool(stats_report["quick"] or kronfit_report["quick"]),
        "stats": {
            **_stats_headline(stats_report),
            "kernel_backend": stats_report["kernel_backend"],
        },
        "kronfit": _kronfit_headline(kronfit_report),
    }


def _stats_headline(report: dict) -> dict:
    """Combined-path + fused-pass speedups: the floor record when it was
    measured, else the best measured workload."""
    floor = report["speedup_floor"]
    fused = report["fused_speedup_floor"]
    if floor["measured"] is not None:
        return {
            "workload": floor["workload"],
            "combined_speedup": floor["measured"],
            "fused_backend": fused["backend"],
            "fused_speedup": fused["measured"],
        }
    best = max(report["workloads"], key=lambda entry: entry["speedup"])
    fused_backends = {
        backend: entry["speedup_vs_scipy"]
        for backend, entry in best["backends"].items()
        if backend != "scipy" and entry.get("available")
    }
    backend = max(fused_backends, key=fused_backends.get) if fused_backends else None
    return {
        "workload": best["workload"],
        "combined_speedup": best["speedup"],
        "fused_backend": backend,
        "fused_speedup": fused_backends.get(backend),
    }


def _kronfit_headline(report: dict) -> dict:
    """Fused fit speedup over the numpy chain (floor record when it was
    measured, else the best measured workload/backend), plus the batched
    multichain-vs-fan-out speedup (schema ≥ 4 reports; older reports
    record ``None`` and the gate skips the headline)."""
    floor = report["fused_fit_floor"]
    if floor["measured"] is not None:
        headline = {
            "workload": floor["workload"],
            "backend": floor["backend"],
            "fit_speedup": floor["measured"],
        }
    else:
        headline = {"workload": None, "backend": None, "fit_speedup": None}
        for workload in report["workloads"]:
            for backend, entry in workload["fit"].items():
                if backend == "params" or not isinstance(entry, dict):
                    continue
                speedup = entry.get("speedup_vs_numpy")
                if backend == "numpy" or not entry.get("available") or speedup is None:
                    continue
                if headline["fit_speedup"] is None or speedup > headline["fit_speedup"]:
                    headline = {
                        "workload": workload["workload"],
                        "backend": backend,
                        "fit_speedup": speedup,
                    }
    multichain = report.get("multichain_floor") or {}
    headline["multichain_speedup"] = multichain.get("measured")
    return headline


# The headline numbers the regression gate watches, as (section, key)
# paths into a trajectory row.  Rows predating a headline simply lack
# its key — check_regression treats absence as "not measured" and skips.
GATE_KEYS = (
    ("stats", "combined_speedup"),
    ("kronfit", "fit_speedup"),
    ("kronfit", "multichain_speedup"),
)

# Quick-mode rows are measured on shared CI runners: noisy.  The gate is
# a tripwire for real regressions (a kernel accidentally knocked off its
# fast path), not a microbenchmark referee, so the default tolerance is
# deliberately loose.
DEFAULT_GATE_TOLERANCE = 0.5


def check_regression(previous: dict, row: dict, tolerance: float) -> list[str]:
    """Compare ``row``'s headline speedups against ``previous``'s.

    Returns one human-readable violation per headline that fell below
    ``previous * (1 - tolerance)``.  Headlines missing on either side
    (e.g. a backend unavailable on this runner) are skipped — absence is
    an environment property, not a regression.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"gate tolerance must be in [0, 1), got {tolerance}")
    problems = []
    for section, key in GATE_KEYS:
        before = (previous.get(section) or {}).get(key)
        after = (row.get(section) or {}).get(key)
        if before is None or after is None:
            continue
        floor = before * (1.0 - tolerance)
        if after < floor:
            problems.append(
                f"{section}.{key} regressed: {after:.2f}x now vs "
                f"{before:.2f}x in {previous['commit']} "
                f"(floor {floor:.2f}x at tolerance {tolerance:.0%})"
            )
    return problems


def previous_row(trajectory: dict, commit: str) -> dict | None:
    """The most recent row not belonging to ``commit`` (gate baseline)."""
    rows = [entry for entry in trajectory["rows"] if entry["commit"] != commit]
    return rows[-1] if rows else None


def append_row(trajectory: dict, row: dict) -> dict:
    """Append ``row``, replacing any prior row for the same commit.

    Keeps exactly one row per commit (re-benching a commit updates it)
    and the whole trajectory sorted by ``recorded``.
    """
    missing = [key for key in ROW_KEYS if key not in row]
    if missing:
        raise ValueError(f"trajectory row is missing keys: {missing}")
    rows = [entry for entry in trajectory["rows"] if entry["commit"] != row["commit"]]
    rows.append(row)
    rows.sort(key=lambda entry: entry["recorded"])
    return {**trajectory, "rows": rows}


def load_trajectory(path: Path) -> dict:
    if not path.exists():
        return fresh_trajectory()
    trajectory = json.loads(path.read_text(encoding="utf-8"))
    if trajectory.get("schema_version") != SCHEMA_VERSION:
        raise SystemExit(
            f"{path} has trajectory schema "
            f"{trajectory.get('schema_version')!r}; this script writes "
            f"{SCHEMA_VERSION} — migrate or remove the artifact first"
        )
    return trajectory


def current_commit() -> str:
    return subprocess.run(
        ["git", "rev-parse", "--short", "HEAD"],
        check=True,
        capture_output=True,
        text=True,
        cwd=Path(__file__).parent,
    ).stdout.strip()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--stats",
        required=True,
        help="bench_stats.py JSON report to condense (usually a --quick run)",
    )
    parser.add_argument(
        "--kronfit",
        required=True,
        help="bench_kronfit.py JSON report to condense (usually a --quick run)",
    )
    parser.add_argument(
        "--commit",
        default=None,
        help="commit hash for the row (default: git rev-parse --short HEAD)",
    )
    parser.add_argument(
        "--label", default="", help="free-form row label (e.g. the PR name)"
    )
    parser.add_argument(
        "--recorded",
        default=None,
        help="row timestamp, ISO UTC (default: now)",
    )
    parser.add_argument(
        "--out",
        default=str(OUT_PATH),
        help="trajectory artifact to append to (default: the committed one)",
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help=(
            "fail (exit 1) when a headline speedup falls below the previous "
            "row's by more than --gate-tolerance; the row is recorded either way"
        ),
    )
    parser.add_argument(
        "--gate-tolerance",
        type=float,
        default=DEFAULT_GATE_TOLERANCE,
        help=(
            "allowed fractional drop vs the previous row before the gate "
            f"fails (default {DEFAULT_GATE_TOLERANCE:g})"
        ),
    )
    arguments = parser.parse_args(argv)

    stats_report = json.loads(Path(arguments.stats).read_text(encoding="utf-8"))
    kronfit_report = json.loads(Path(arguments.kronfit).read_text(encoding="utf-8"))
    commit = arguments.commit or current_commit()
    recorded = arguments.recorded or datetime.now(timezone.utc).strftime(
        "%Y-%m-%dT%H:%M:%SZ"
    )
    row = build_row(
        stats_report, kronfit_report, commit=commit, label=arguments.label,
        recorded=recorded,
    )
    out = Path(arguments.out)
    before = load_trajectory(out)
    baseline = previous_row(before, commit)
    trajectory = append_row(before, row)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(trajectory, indent=2) + "\n", encoding="utf-8")
    print(
        f"trajectory row for {commit} recorded ({len(trajectory['rows'])} "
        f"row(s) in {out})"
    )
    if arguments.gate and baseline is not None:
        problems = check_regression(baseline, row, arguments.gate_tolerance)
        if problems:
            for problem in problems:
                print(f"GATE: {problem}", file=sys.stderr)
            return 1
        print(f"gate passed vs {baseline['commit']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
