"""EXP-F3 — Figure 3: CA-HepTh overlays (single realizations).

Also checks the paper's negative finding for co-authorship graphs: the
SKG fits *under-estimate* the clustering coefficient of the original
(modeling limitation inherited by the private estimator, §4.2).
"""

from __future__ import annotations

from benchmarks._figure_common import run_figure_bench
from repro.graphs.datasets import load_dataset
from repro.stats.clustering import average_clustering


def test_figure3_ca_hepth(benchmark, emit):
    result = run_figure_bench(3, benchmark, emit)
    original = load_dataset("ca-hepth")
    original_clustering = average_clustering(original)
    for method, estimate in result.estimates.items():
        synthetic_clustering = average_clustering(estimate.sample_graph(seed=0))
        assert synthetic_clustering < 0.5 * original_clustering, (
            f"{method}: SKG should under-fit co-authorship clustering "
            f"({synthetic_clustering:.4f} vs original {original_clustering:.4f})"
        )
