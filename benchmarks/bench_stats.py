"""EXP-K1 — counting-kernel backends vs the pre-PR full-product path.

Measures the combined per-trial statistics path (the triangle count Δ,
the local sensitivity LS_Δ, and the local clustering coefficients) on
stochastic Kronecker draws of increasing order and on the experiment
datasets, comparing

* **baseline** — the pre-blocking implementations (kept as reference
  oracles in :mod:`repro.stats.kernels`), which materialize the full
  sparse product ``A @ A`` once per consumer: three products per trial;
* **kernels** — the blocked single-pass engine behind the per-graph
  :class:`~repro.stats.kernels.StatsContext`: one pass per graph, shared
  by every consumer, run through the default (``auto``) backend.

On top of the combined path, each workload records the **backend
trajectory** of the pass itself — the blocked ``scipy`` SpGEMM versus the
fused ``numba`` and compiled-C ``cext`` kernels, each timed on the same
pass and checked bit-identical — and a **parallel trajectory**: the pass
forced into many row blocks and fanned across the :mod:`repro.runtime`
pool at n_jobs ∈ {1, 2, 4}.  Backends the host cannot run are recorded
as unavailable with the reason, so the artifact states exactly what was
measured where.

Counts must be bit-identical; the k=14 draw must show a >= 3x wall-clock
speedup on the combined path, and — when a fused backend is available —
a >= 2x pass speedup over the blocked scipy pass.  Results (wall-clock,
tracemalloc peaks, and the process peak-RSS trajectory) are written to
``benchmarks/out/BENCH_stats.json`` so the gains are recorded artifacts.

Run directly (no pytest needed)::

    python benchmarks/bench_stats.py            # full matrix, asserts floors
    python benchmarks/bench_stats.py --quick    # CI smoke subset

Knobs: ``REPRO_BLOCK_SIZE`` caps the pass's rows per block (the bench
also records a forced 256-row blocked run to show the memory head-room);
``REPRO_KERNEL_BACKEND`` selects the combined path's engine.
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time
import tracemalloc
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.evaluation.experiments import default_config
from repro.graphs.datasets import load_dataset
from repro.graphs.graph import Graph
from repro.kronecker.initiator import Initiator
from repro.kronecker.sampling import sample_skg
from repro.native import counting as native_counting
from repro.stats import kernels
from repro.stats.clustering import local_clustering
from repro.stats.counts import count_triangles, max_common_neighbors
from repro.stats.kernels import available_kernel_backends, stats_context, triangle_pass

# Bump when the JSON layout changes; tests/test_bench_artifacts.py keeps
# the committed artifact in sync.  2 = added schema_version itself (the
# PR 3 layout was the unversioned v1); 3 = added the large-k scale rows
# (native grass-hopping sampler trajectory + KronMom at k ∈ {16, 18, 20}).
SCHEMA_VERSION = 3

OUT_PATH = Path(__file__).parent / "out" / "BENCH_stats.json"
THETA = Initiator(0.99, 0.45, 0.25)  # the paper's synthetic initiator
SEED = 20120330
SPEEDUP_FLOOR = 3.0
SPEEDUP_WORKLOAD = "skg-k14"
FORCED_BLOCK_SIZE = 256
# Fused kernels must beat the blocked scipy pass by this factor on the
# floor workload (pass-vs-pass, not the combined consumer path).
FUSED_SPEEDUP_FLOOR = 2.0
PARALLEL_N_JOBS = (1, 2, 4)
PARALLEL_TARGET_BLOCKS = 32

# The large-k scale rows (PR 8): the native grass-hopping sampler and the
# KronMom moment fit at orders far beyond the paper's k=14.  The fused
# sampler must beat the numpy reference selection loop by >= 2x on the
# k=18 draw (~4.4 * 10^5 edges); measured values land near 25x.
LARGE_K_ORDERS = (16, 18, 20)
LARGE_K_QUICK_ORDERS = (16,)
SAMPLER_SPEEDUP_FLOOR = 2.0
SAMPLER_FLOOR_K = 18


def baseline_combined(graph: Graph):
    """The pre-PR per-trial path: three independent full A @ A products."""
    triangles = kernels.reference_count_triangles(graph)
    sensitivity = kernels.reference_max_common_neighbors(graph)
    per_node = kernels.reference_triangles_per_node(graph)
    degrees = graph.degrees.astype(np.float64)
    possible = degrees * (degrees - 1.0) / 2.0
    clustering = np.zeros(graph.n_nodes, dtype=np.float64)
    eligible = possible > 0
    clustering[eligible] = per_node.astype(np.float64)[eligible] / possible[eligible]
    return triangles, sensitivity, clustering


def kernel_combined(graph: Graph):
    """The same path through the memoized blocked kernels: one A² pass."""
    return (
        count_triangles(graph),
        max_common_neighbors(graph),
        local_clustering(graph),
    )


def fresh_copy(graph: Graph) -> Graph:
    """A new Graph instance over the same canonical arrays (cold caches)."""
    clone = Graph._from_canonical(graph.n_nodes, *graph.edge_arrays)
    clone.adjacency  # warm the shared structures both paths start from
    clone.degrees
    return clone


def time_best(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def traced_peak(fn) -> int:
    """Peak tracemalloc footprint (bytes) of one invocation of ``fn``."""
    tracemalloc.start()
    try:
        fn()
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return int(peak)


def max_rss_kb() -> int:
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def bench_backends(graph: Graph, repeats: int) -> dict:
    """Pass-vs-pass backend trajectory: blocked scipy vs the fused kernels.

    Every available backend is timed on the same warm graph and checked
    bit-identical against the scipy pass; unavailable backends are
    recorded with the reason so the artifact is explicit about coverage.
    """
    scipy_result = triangle_pass(graph, None, "scipy")
    records: dict[str, dict] = {}
    for backend in ("scipy",) + native_counting.FUSED_BACKENDS:
        if backend != "scipy" and not native_counting.backend_available(backend):
            records[backend] = {
                "available": False,
                "reason": native_counting.backend_error(backend),
            }
            continue
        result = triangle_pass(graph, None, backend)
        identical = (
            result.triangles == scipy_result.triangles
            and result.max_common_neighbors == scipy_result.max_common_neighbors
            and np.array_equal(result.per_node, scipy_result.per_node)
        )
        if not identical:
            raise AssertionError(f"backend {backend} diverges from the scipy pass")
        seconds = time_best(lambda: triangle_pass(graph, None, backend), repeats)
        records[backend] = {"available": True, "seconds": seconds}
    scipy_seconds = records["scipy"]["seconds"]
    for record in records.values():
        if record.get("available"):
            record["speedup_vs_scipy"] = scipy_seconds / record["seconds"]
    return records


def bench_parallel(graph: Graph, repeats: int) -> dict:
    """Block fan-out trajectory: the same pass at n_jobs in {1, 2, 4}.

    The block size is forced so the pass splits into many blocks (the
    auto budget would make graphs this small single-block); n_jobs=1 is
    the in-process reduction over those blocks, larger values fan the
    block groups across the repro.runtime pool.  Results are asserted
    bit-identical across worker counts.
    """
    block_size = max(1, -(-graph.n_nodes // PARALLEL_TARGET_BLOCKS))
    serial = triangle_pass(graph, block_size, n_jobs=1)
    jobs: dict[str, float] = {}
    for n_jobs in PARALLEL_N_JOBS:
        result = triangle_pass(graph, block_size, n_jobs=n_jobs)
        if not (
            result.triangles == serial.triangles
            and result.max_common_neighbors == serial.max_common_neighbors
            and np.array_equal(result.per_node, serial.per_node)
        ):
            raise AssertionError(f"parallel pass diverges at n_jobs={n_jobs}")
        jobs[str(n_jobs)] = time_best(
            lambda: triangle_pass(graph, block_size, n_jobs=n_jobs),
            max(2, repeats // 2),
        )
    return {
        "block_size": block_size,
        "n_blocks": serial.n_blocks,
        "bit_identical": True,
        "seconds_by_n_jobs": jobs,
    }


def bench_large_k(k: int, repeats: int) -> dict:
    """One large-k scale row: sampler engine trajectory + KronMom fit.

    Every available sampler engine draws the same seed and is checked
    bit-identical against the numpy reference (the contract the sampler
    equivalence matrix pins); the reference's selection loop is O(E)
    Python, so it is timed with fewer repeats at the largest orders.
    """
    from repro.kronecker.kronmom import KronMomEstimator
    from repro.native import sampling as native_sampling

    seed = SEED + k
    reference = sample_skg(THETA, k, seed=seed, backend="numpy")
    reference_repeats = 1 if k >= 20 else max(2, repeats // 2)
    engines: dict[str, dict] = {
        "numpy": {
            "available": True,
            "seconds": time_best(
                lambda: sample_skg(THETA, k, seed=seed, backend="numpy"),
                reference_repeats,
            ),
        }
    }
    for backend in native_counting.FUSED_BACKENDS:
        if not native_sampling.sampler_backend_available(backend):
            engines[backend] = {
                "available": False,
                "reason": native_sampling.sampler_backend_error(backend),
            }
            continue
        graph = sample_skg(THETA, k, seed=seed, backend=backend)
        identical = graph.n_edges == reference.n_edges and all(
            np.array_equal(got, want)
            for got, want in zip(graph.edge_arrays, reference.edge_arrays)
        )
        if not identical:
            raise AssertionError(
                f"sampler backend {backend} diverges from numpy at k={k}"
            )
        engines[backend] = {
            "available": True,
            "bit_identical": True,
            "seconds": time_best(
                lambda: sample_skg(THETA, k, seed=seed, backend=backend), repeats
            ),
        }
    numpy_seconds = engines["numpy"]["seconds"]
    for record in engines.values():
        if record.get("available"):
            record["speedup_vs_numpy"] = numpy_seconds / record["seconds"]

    estimator = KronMomEstimator()
    kronmom_seconds = time_best(
        lambda: estimator.fit(reference), max(2, repeats // 2)
    )
    fitted = estimator.fit(reference).initiator
    return {
        "k": k,
        "n_nodes": reference.n_nodes,
        "n_edges": reference.n_edges,
        "sampler": engines,
        "kronmom_seconds": kronmom_seconds,
        "kronmom_initiator": [fitted.a, fitted.b, fitted.c],
    }


def _sampler_floor(large_k_rows: list[dict]) -> dict:
    """The fastest fused sampler engine's speedup on the floor order."""
    entry = {
        "k": SAMPLER_FLOOR_K,
        "required": SAMPLER_SPEEDUP_FLOOR,
        "backend": None,
        "measured": None,
    }
    row = next((r for r in large_k_rows if r["k"] == SAMPLER_FLOOR_K), None)
    if row is None:
        return entry
    fused = {
        backend: record["speedup_vs_numpy"]
        for backend, record in row["sampler"].items()
        if backend != "numpy" and record.get("available")
    }
    if fused:
        entry["backend"] = max(fused, key=fused.get)
        entry["measured"] = fused[entry["backend"]]
    return entry


def bench_workload(name: str, graph: Graph, repeats: int) -> dict:
    graph.adjacency
    graph.degrees

    # Bit-identity first: the speedup is meaningless if the counts moved.
    base_tri, base_ls, base_clust = baseline_combined(graph)
    kernel_graph = fresh_copy(graph)
    kern_tri, kern_ls, kern_clust = kernel_combined(kernel_graph)
    identical = (
        base_tri == kern_tri
        and base_ls == kern_ls
        and np.array_equal(base_clust, kern_clust)
    )
    if not identical:
        raise AssertionError(f"{name}: blocked kernels diverge from the references")
    pass_info = stats_context(kernel_graph).triangle_pass_result()

    baseline_seconds = time_best(lambda: baseline_combined(graph), repeats)
    # One cold-cache copy per repeat, prepared outside the timer: both
    # paths start from a warm adjacency/degrees (the baseline reuses
    # ``graph``'s), so the timings isolate the statistics work itself.
    copies = iter([fresh_copy(graph) for _ in range(repeats)])
    kernel_seconds = time_best(lambda: kernel_combined(next(copies)), repeats)

    baseline_peak = traced_peak(lambda: baseline_combined(graph))
    kernel_peak = traced_peak(lambda: kernel_combined(fresh_copy(graph)))
    blocked_peak = traced_peak(
        lambda: kernels.triangle_pass(fresh_copy(graph), FORCED_BLOCK_SIZE)
    )

    degrees = graph.degrees
    record = {
        "workload": name,
        "n_nodes": graph.n_nodes,
        "n_edges": graph.n_edges,
        "wedges": int((degrees * (degrees - 1) // 2).sum()),
        "triangles": int(base_tri),
        "max_common_neighbors": int(base_ls),
        "auto_n_blocks": pass_info.n_blocks,
        "baseline_seconds": baseline_seconds,
        "kernel_seconds": kernel_seconds,
        "speedup": baseline_seconds / kernel_seconds,
        "baseline_peak_bytes": baseline_peak,
        "kernel_peak_bytes": kernel_peak,
        f"kernel_block{FORCED_BLOCK_SIZE}_peak_bytes": blocked_peak,
        "counts_identical": identical,
        "backends": bench_backends(graph, repeats),
        "parallel": bench_parallel(graph, repeats),
    }
    return record


def build_workloads(quick: bool):
    orders = (10,) if quick else (10, 12, 14)
    datasets = ("as20",) if quick else ("ca-grqc", "as20")
    for k in orders:
        yield f"skg-k{k}", sample_skg(THETA, k, seed=SEED)
    for dataset in datasets:
        yield dataset, load_dataset(dataset)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke subset (skg-k10 + as20); skips the 3x floor assertion",
    )
    parser.add_argument("--repeats", type=int, default=5, help="timing repeats")
    parser.add_argument(
        "--out",
        default=None,
        help=(
            "JSON output path (default: benchmarks/out/BENCH_stats.json; "
            "quick runs default to BENCH_stats_quick.json so they never "
            "overwrite the committed full-matrix artifact)"
        ),
    )
    arguments = parser.parse_args(argv)
    if arguments.out is None:
        arguments.out = str(
            OUT_PATH.with_name("BENCH_stats_quick.json") if arguments.quick else OUT_PATH
        )

    results = []
    rss_trajectory = [{"phase": "start", "max_rss_kb": max_rss_kb()}]
    for name, graph in build_workloads(arguments.quick):
        record = bench_workload(name, graph, arguments.repeats)
        rss_trajectory.append({"phase": name, "max_rss_kb": max_rss_kb()})
        results.append(record)
        print(
            f"{name:12s} E={record['n_edges']:>7d} wedges={record['wedges']:>9d} "
            f"baseline {record['baseline_seconds'] * 1000:7.1f} ms  "
            f"kernels {record['kernel_seconds'] * 1000:7.1f} ms  "
            f"speedup {record['speedup']:.2f}x  bit-identical={record['counts_identical']}"
        )
        for backend, entry in record["backends"].items():
            if entry.get("available"):
                print(
                    f"{'':12s}   pass[{backend}] {entry['seconds'] * 1000:7.2f} ms "
                    f"({entry['speedup_vs_scipy']:.2f}x vs scipy)"
                )
            else:
                print(f"{'':12s}   pass[{backend}] unavailable: {entry['reason']}")

    large_k_rows = []
    for k in LARGE_K_QUICK_ORDERS if arguments.quick else LARGE_K_ORDERS:
        row = bench_large_k(k, arguments.repeats)
        rss_trajectory.append({"phase": f"large-k{k}", "max_rss_kb": max_rss_kb()})
        large_k_rows.append(row)
        print(
            f"skg-k{k:<8d} E={row['n_edges']:>8d} "
            f"kronmom {row['kronmom_seconds'] * 1000:7.1f} ms"
        )
        for backend, entry in row["sampler"].items():
            if entry.get("available"):
                print(
                    f"{'':12s}   sample[{backend}] {entry['seconds'] * 1000:8.1f} ms "
                    f"({entry['speedup_vs_numpy']:.2f}x vs numpy)"
                )
            else:
                print(f"{'':12s}   sample[{backend}] unavailable: {entry['reason']}")

    floor_record = next(
        (r for r in results if r["workload"] == SPEEDUP_WORKLOAD), None
    )
    fused_floor = _fused_floor(floor_record)
    sampler_floor = _sampler_floor(large_k_rows)
    configuration = default_config()
    report = {
        "bench": "bench_stats",
        "schema_version": SCHEMA_VERSION,
        "quick": arguments.quick,
        "repeats": arguments.repeats,
        "combined_path": "triangles + local sensitivity + local clustering",
        # Provenance via the shared experiment configuration, which mirrors
        # the REPRO_BLOCK_SIZE / REPRO_KERNEL_BACKEND knobs the kernels
        # consult at pass time.
        "block_size": configuration.block_size,
        "kernel_backend": configuration.kernel_backend,
        "kernel_backends_available": list(available_kernel_backends()),
        "speedup_floor": {
            "workload": SPEEDUP_WORKLOAD,
            "required": SPEEDUP_FLOOR,
            "measured": floor_record["speedup"] if floor_record else None,
        },
        "fused_speedup_floor": fused_floor,
        "sampler_speedup_floor": sampler_floor,
        "workloads": results,
        "large_k": large_k_rows,
        "rss_trajectory_kb": rss_trajectory,
    }
    out_path = Path(arguments.out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"[written to {out_path}]")

    if floor_record is not None:
        measured = floor_record["speedup"]
        assert measured >= SPEEDUP_FLOOR, (
            f"{SPEEDUP_WORKLOAD} combined-path speedup {measured:.2f}x "
            f"is below the {SPEEDUP_FLOOR}x floor"
        )
        print(f"{SPEEDUP_WORKLOAD} speedup {measured:.2f}x >= {SPEEDUP_FLOOR}x floor")
        if fused_floor["backend"] is not None:
            assert fused_floor["measured"] >= FUSED_SPEEDUP_FLOOR, (
                f"fused backend {fused_floor['backend']} is only "
                f"{fused_floor['measured']:.2f}x over the blocked scipy pass "
                f"on {SPEEDUP_WORKLOAD} (floor: {FUSED_SPEEDUP_FLOOR}x)"
            )
            print(
                f"{SPEEDUP_WORKLOAD} fused pass ({fused_floor['backend']}) "
                f"{fused_floor['measured']:.2f}x >= {FUSED_SPEEDUP_FLOOR}x floor"
            )
        else:
            print(
                "no fused backend available on this host; "
                "fused floor not asserted"
            )
        if sampler_floor["backend"] is not None:
            assert sampler_floor["measured"] >= SAMPLER_SPEEDUP_FLOOR, (
                f"fused sampler {sampler_floor['backend']} is only "
                f"{sampler_floor['measured']:.2f}x over the numpy selection "
                f"loop at k={SAMPLER_FLOOR_K} (floor: {SAMPLER_SPEEDUP_FLOOR}x)"
            )
            print(
                f"k={SAMPLER_FLOOR_K} fused sampler ({sampler_floor['backend']}) "
                f"{sampler_floor['measured']:.2f}x >= {SAMPLER_SPEEDUP_FLOOR}x floor"
            )
        else:
            print(
                "no fused sampler backend available on this host; "
                "sampler floor not asserted"
            )
    return 0


def _fused_floor(floor_record: dict | None) -> dict:
    """The fastest available fused backend on the floor workload."""
    entry = {
        "workload": SPEEDUP_WORKLOAD,
        "required": FUSED_SPEEDUP_FLOOR,
        "backend": None,
        "measured": None,
    }
    if floor_record is None:
        return entry
    fused = {
        backend: record["speedup_vs_scipy"]
        for backend, record in floor_record["backends"].items()
        if backend != "scipy" and record.get("available")
    }
    if fused:
        entry["backend"] = max(fused, key=fused.get)
        entry["measured"] = fused[entry["backend"]]
    return entry


if __name__ == "__main__":
    sys.exit(main())
