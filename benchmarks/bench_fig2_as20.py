"""EXP-F2 — Figure 2: AS20 overlays (single realizations).

The AS20 experiment is where the paper observes that the SKG model also
captures the *clustering* profile, unlike on the co-authorship graphs, and
where the fitted initiator is core-periphery (c ≈ 0).  The bench asserts
the core-periphery shape of all three fits.
"""

from __future__ import annotations

from benchmarks._figure_common import run_figure_bench


def test_figure2_as20(benchmark, emit):
    result = run_figure_bench(2, benchmark, emit)
    for method, estimate in result.estimates.items():
        theta = estimate.initiator
        assert theta.a > 0.75, f"{method}: expected dense core, got a={theta.a:.3f}"
        assert theta.c < 0.35, f"{method}: expected sparse periphery, got c={theta.c:.3f}"
