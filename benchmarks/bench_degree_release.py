"""EXP-A5 — substrate ablation: Hay et al. constrained inference.

The paper's step 2 relies on Hay et al.'s claim that isotonic
post-processing of the noisy sorted degree sequence is "highly accurate".
This bench quantifies that on the experiment graphs: RMSE of the plain
Laplace release vs the constrained-inference release, and the resulting
error on the derived statistics {Ẽ, H̃, T̃}.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.datasets import load_dataset
from repro.privacy.degree_release import release_sorted_degrees
from repro.stats.counts import degree_moment_statistics
from repro.utils.tables import TextTable

DATASETS = ("ca-grqc", "as20")
EPSILON = 0.1  # the sub-budget Algorithm 1 gives this release
SEEDS = range(10)


def _measure(graph):
    truth = np.sort(graph.degrees).astype(float)
    true_stats = degree_moment_statistics(truth)
    rmse = {True: [], False: []}
    hairpin_error = {True: [], False: []}
    for constrained in (False, True):
        for seed in SEEDS:
            release = release_sorted_degrees(
                graph, EPSILON, constrained_inference=constrained, seed=seed
            )
            rmse[constrained].append(release.l2_error(truth))
            _, hairpins, _ = degree_moment_statistics(release.degrees)
            hairpin_error[constrained].append(
                abs(hairpins - true_stats[1]) / true_stats[1]
            )
    return rmse, hairpin_error


def test_constrained_inference_accuracy(benchmark, emit):
    results = {}
    for name in DATASETS:
        graph = load_dataset(name)
        if name == DATASETS[0]:
            results[name] = benchmark.pedantic(
                lambda: _measure(graph), rounds=1, iterations=1
            )
        else:
            results[name] = _measure(graph)

    table = TextTable(
        [
            "network",
            "RMSE (plain Laplace)",
            "RMSE (constrained)",
            "rel. hairpin err (plain)",
            "rel. hairpin err (constrained)",
        ],
        title=f"Hay et al. constrained inference at epsilon={EPSILON}",
    )
    for name in DATASETS:
        rmse, hairpin_error = results[name]
        table.add_row(
            [
                name,
                float(np.mean(rmse[False])),
                float(np.mean(rmse[True])),
                float(np.mean(hairpin_error[False])),
                float(np.mean(hairpin_error[True])),
            ]
        )
        # Post-processing must help substantially on both metrics.
        assert np.mean(rmse[True]) < 0.7 * np.mean(rmse[False])
        assert np.mean(hairpin_error[True]) < np.mean(hairpin_error[False])
    emit("degree_release_ablation", table.render())
