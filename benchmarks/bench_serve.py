"""EXP-S1 — serve-layer latency, throughput, and cache effectiveness.

Boots a real ``repro serve`` runtime (ephemeral port, in-process worker
pool) and measures the request path end to end over HTTP:

* **cold** — the first ``/fit`` for a model: admission, budget charge,
  estimator fit, cache store;
* **warm** — the same request again, answered from the content-addressed
  response cache (bit-identity enforced on every warm body);
* **sustained** — concurrent clients hammering cached endpoints, the
  throughput the registry sustains once models are fitted;
* **mixed** — a concurrent mix of fit/sample/release against distinct
  models, the realistic many-tenant shape.

Floors (asserted on full runs, recorded always): the warm path must beat
the cold fit by ``CACHE_SPEEDUP_FLOOR``x, and sustained cached
throughput must clear ``THROUGHPUT_FLOOR`` requests/second.  Results are
written to ``benchmarks/out/BENCH_serve.json`` so serve-layer latency is
a tracked artifact, not anecdote.

Run directly (no pytest needed)::

    python benchmarks/bench_serve.py            # full matrix, asserts floors
    python benchmarks/bench_serve.py --quick    # CI smoke subset
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.serve.config import ServeConfig
from repro.serve.server import ServeRuntime

# Bump when the JSON layout changes; tests/test_bench_artifacts.py keeps
# the committed artifact in sync.
SCHEMA_VERSION = 1

OUT_PATH = Path(__file__).parent / "out" / "BENCH_serve.json"
DATASET = "as20"
CACHE_SPEEDUP_FLOOR = 5.0  # warm hit must beat the cold fit by this factor
THROUGHPUT_FLOOR = 20.0  # sustained cached requests/second, concurrent
PERCENTILES = (50, 90, 95, 99)


def request(base: str, verb: str, path: str, payload=None, timeout=60.0):
    """One HTTP round trip; returns (status, headers, raw body bytes)."""
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(base + path, data=data, method=verb)
    try:
        with urllib.request.urlopen(req, timeout=timeout) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


def percentile(sorted_values: list[float], p: int) -> float:
    """Nearest-rank percentile of an ascending list."""
    rank = max(0, min(len(sorted_values) - 1, round(p / 100 * len(sorted_values)) - 1))
    return sorted_values[rank]


def summarize_ms(samples_seconds: list[float]) -> dict:
    ordered = sorted(samples_seconds)
    return {
        "count": len(ordered),
        "mean_ms": sum(ordered) / len(ordered) * 1000,
        **{f"p{p}_ms": percentile(ordered, p) * 1000 for p in PERCENTILES},
    }


def timed(base: str, verb: str, path: str, payload=None):
    start = time.perf_counter()
    status, headers, body = request(base, verb, path, payload)
    return time.perf_counter() - start, status, headers, body


def bench_cold_vs_warm(base: str, warm_rounds: int) -> dict:
    """One cold fit, then ``warm_rounds`` cache hits of the same request
    (bit-identity enforced across every warm body)."""
    payload = {"dataset": DATASET, "method": "kronmom"}
    cold_seconds, status, headers, cold_body = timed(base, "POST", "/fit", payload)
    assert status == 200, f"cold fit failed: {cold_body!r}"
    assert headers["X-Repro-Cache"] == "miss"

    warm_samples = []
    for _round in range(warm_rounds):
        seconds, status, headers, body = timed(base, "POST", "/fit", payload)
        assert status == 200
        assert headers["X-Repro-Cache"] == "hit"
        assert body == cold_body, "cached response is not bit-identical"
        warm_samples.append(seconds)
    warm = summarize_ms(warm_samples)
    return {
        "cold_ms": cold_seconds * 1000,
        "warm": warm,
        "cache_speedup": cold_seconds * 1000 / warm["p50_ms"],
        "bit_identical": True,
    }


def bench_sustained(base: str, clients: int, requests_per_client: int) -> dict:
    """Concurrent clients hammering one cached request: throughput and
    the full latency distribution under contention."""
    payload = {"dataset": DATASET, "method": "kronmom"}
    request(base, "POST", "/fit", payload)  # ensure the model is cached
    samples = [[] for _ in range(clients)]
    errors = []

    def client(index: int) -> None:
        for _round in range(requests_per_client):
            seconds, status, _headers, body = timed(base, "POST", "/fit", payload)
            if status == 200:
                samples[index].append(seconds)
            elif status == 429:
                time.sleep(0.01)  # backpressure: retry the round
            else:
                errors.append((status, body))

    threads = [threading.Thread(target=client, args=(i,)) for i in range(clients)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    assert not errors, f"sustained load saw failures: {errors[:3]}"
    flat = [s for bucket in samples for s in bucket]
    return {
        "clients": clients,
        "requests": len(flat),
        "seconds": elapsed,
        "throughput_rps": len(flat) / elapsed,
        "latency": summarize_ms(flat),
    }


def bench_mixed(base: str, clients: int) -> dict:
    """Each client drives its own model through fit -> sample -> release:
    distinct cache keys, real pool work, budget charges."""
    statuses = []
    lock = threading.Lock()

    def record(status: int) -> None:
        with lock:
            statuses.append(status)

    def client(index: int) -> None:
        fit = {"dataset": DATASET, "method": "kronmom", "seed": index}
        for verb, path, payload in [
            ("POST", "/fit", fit),
            ("POST", "/sample", {**fit, "count": 2}),
            ("POST", "/release", {"dataset": DATASET, "epsilon": 0.01,
                                  "delta": 0.001, "seed": index}),
        ]:
            for _attempt in range(40):
                status, _headers, _body = request(base, verb, path, payload)
                if status != 429:
                    break
                time.sleep(0.02)
            record(status)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(clients)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    counts = {str(status): statuses.count(status) for status in sorted(set(statuses))}
    assert set(counts) <= {"200"}, f"mixed load saw failures: {counts}"
    return {
        "clients": clients,
        "requests": len(statuses),
        "seconds": elapsed,
        "throughput_rps": len(statuses) / elapsed,
        "status_counts": counts,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke subset (fewer rounds/clients); skips the floor assertions",
    )
    parser.add_argument(
        "--out",
        default=None,
        help=(
            "JSON output path (default: benchmarks/out/BENCH_serve.json; "
            "quick runs default to BENCH_serve_quick.json so they never "
            "overwrite the committed full-matrix artifact)"
        ),
    )
    arguments = parser.parse_args(argv)
    if arguments.out is None:
        arguments.out = str(
            OUT_PATH.with_name("BENCH_serve_quick.json") if arguments.quick else OUT_PATH
        )
    warm_rounds = 30 if arguments.quick else 200
    clients = 4 if arguments.quick else 8
    requests_per_client = 10 if arguments.quick else 40

    config = ServeConfig.resolve(
        host="127.0.0.1",
        port=0,
        queue=max(16, clients * 2),
        timeout=60.0,
        budget_epsilon=10.0,
        budget_delta=1.0,
        n_jobs=1,
    )
    runtime = ServeRuntime(config)
    runtime.start()
    try:
        base = runtime.base_url
        status, _headers, _body = request(base, "GET", "/healthz")
        assert status == 200

        cold_warm = bench_cold_vs_warm(base, warm_rounds)
        print(
            f"cold fit {cold_warm['cold_ms']:8.1f} ms   "
            f"warm p50 {cold_warm['warm']['p50_ms']:6.2f} ms  "
            f"p95 {cold_warm['warm']['p95_ms']:6.2f} ms   "
            f"cache speedup {cold_warm['cache_speedup']:.1f}x"
        )

        sustained = bench_sustained(base, clients, requests_per_client)
        print(
            f"sustained  {sustained['clients']} clients x "
            f"{requests_per_client} reqs: {sustained['throughput_rps']:7.1f} req/s  "
            f"p95 {sustained['latency']['p95_ms']:6.2f} ms"
        )

        mixed = bench_mixed(base, clients)
        print(
            f"mixed      {mixed['clients']} clients fit+sample+release: "
            f"{mixed['throughput_rps']:7.1f} req/s"
        )
        stats = json.loads(request(base, "GET", "/stats")[2])
    finally:
        runtime.stop()

    report = {
        "bench": "bench_serve",
        "schema_version": SCHEMA_VERSION,
        "quick": arguments.quick,
        "dataset": DATASET,
        "serve_config": {
            "queue_limit": config.queue_limit,
            "timeout": config.timeout,
            "n_jobs": config.n_jobs,
        },
        "cold_vs_warm": cold_warm,
        "sustained": sustained,
        "mixed": mixed,
        "server_stats": stats,
        "cache_speedup_floor": {
            "required": CACHE_SPEEDUP_FLOOR,
            "measured": cold_warm["cache_speedup"],
        },
        "throughput_floor": {
            "required": THROUGHPUT_FLOOR,
            "measured": sustained["throughput_rps"],
        },
    }
    out_path = Path(arguments.out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"[written to {out_path}]")

    if not arguments.quick:
        assert cold_warm["cache_speedup"] >= CACHE_SPEEDUP_FLOOR, (
            f"cache speedup {cold_warm['cache_speedup']:.1f}x is below the "
            f"{CACHE_SPEEDUP_FLOOR}x floor"
        )
        assert sustained["throughput_rps"] >= THROUGHPUT_FLOOR, (
            f"sustained throughput {sustained['throughput_rps']:.1f} req/s is "
            f"below the {THROUGHPUT_FLOOR} req/s floor"
        )
        print(
            f"floors: cache {cold_warm['cache_speedup']:.1f}x >= "
            f"{CACHE_SPEEDUP_FLOOR}x, throughput "
            f"{sustained['throughput_rps']:.1f} >= {THROUGHPUT_FLOOR} req/s"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
