"""EXP-F1 — Figure 1: CA-GrQC overlays, including "Expected" ensembles.

Figure 1 of the paper additionally overlays the statistics averaged over
an ensemble of realizations (paper: 100; here ``REPRO_REALIZATIONS``,
default 20) to show that a single realization is representative.  The
bench asserts exactly that: each single-realization series stays close to
its own ensemble average.
"""

from __future__ import annotations

from benchmarks._figure_common import run_figure_bench
from repro.stats.comparison import log_series_distance


def test_figure1_ca_grqc(benchmark, emit):
    result = run_figure_bench(1, benchmark, emit)

    # Single realizations are representative of their ensembles (the
    # observation the paper draws from this figure).
    for method in result.estimates:
        single = result.statistics[method]
        expected = result.statistics[f"Expected {method}"]
        for statistic in ("hop_plot", "degree_distribution"):
            gap = log_series_distance(
                single[statistic].xs,
                single[statistic].ys,
                expected[statistic].xs,
                expected[statistic].ys,
            )
            assert gap < 0.5, (
                f"{method}/{statistic}: single realization strays "
                f"{gap:.3f} dex from its ensemble mean"
            )
