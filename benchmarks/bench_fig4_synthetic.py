"""EXP-F4 — Figure 4: synthetic Kronecker source graph overlays.

When the modeling assumption holds exactly (the source *is* an SKG), all
three estimators recover the generator and the synthetic overlays match
every statistic — including clustering, which fails on real co-authorship
graphs.  The bench asserts the parameter recovery claim of §4.2.
"""

from __future__ import annotations

from benchmarks._figure_common import run_figure_bench
from repro.kronecker.initiator import Initiator

TRUTH = Initiator(0.99, 0.45, 0.25)


def test_figure4_synthetic(benchmark, emit):
    result = run_figure_bench(4, benchmark, emit)
    for method, estimate in result.estimates.items():
        distance = estimate.initiator.distance(TRUTH)
        limit = 0.25 if method == "KronFit" else 0.1
        assert distance < limit, (
            f"{method}: recovered {estimate.initiator} is {distance:.3f} "
            f"from the true initiator"
        )
