"""Shared driver for the four figure benches (EXP-F1 .. EXP-F4).

Each figure bench regenerates the five overlaid statistics series of one
paper figure and asserts the figure's qualitative claim: the synthetic
graphs from all three estimators track the original's series, with the
private estimator comparable to the non-private ones.  The assertion
metric is the mean |log10| gap between each synthetic series and the
original series (the curves are compared on log axes in the paper).

The "Expected" ensembles inside :func:`repro.evaluation.figures.run_figure`
execute through :mod:`repro.runtime`, so ``REPRO_N_JOBS`` and
``REPRO_CACHE_DIR`` parallelize and memoize the dominant cost of the
figure benches without changing their results.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.experiments import default_config
from repro.evaluation.figures import STATISTIC_NAMES, FigureResult, run_figure
from repro.evaluation.reporting import render_figure
from repro.stats.comparison import log_series_distance
from repro.utils.tables import TextTable

# Per-statistic tolerance on the mean log10 gap to "Original".  Hop plots
# and degree distributions track tightly; spectra and clustering of a
# stochastic model fluctuate more (and clustering is *expected* to diverge
# on the co-authorship graphs — see the paper's §4.2 discussion).
GAP_LIMITS = {
    "hop_plot": 0.6,
    "degree_distribution": 1.0,
    "scree": 0.45,
    "network_value": 0.8,
}


def run_figure_bench(figure_number: int, benchmark, emit) -> FigureResult:
    config = default_config()
    result = benchmark.pedantic(
        lambda: run_figure(figure_number, config=config), rounds=1, iterations=1
    )
    gaps = TextTable(
        ["statistic"] + [m for m in result.estimates],
        title="Mean |log10 synthetic - log10 original| per series",
    )
    gap_values: dict[tuple[str, str], float] = {}
    original = result.statistics["Original"]
    for statistic in STATISTIC_NAMES:
        row: list[object] = [statistic]
        for method in result.estimates:
            synthetic = result.statistics[method]
            value = log_series_distance(
                original[statistic].xs,
                original[statistic].ys,
                synthetic[statistic].xs,
                synthetic[statistic].ys,
            )
            gap_values[(statistic, method)] = value
            row.append(value)
        gaps.add_row(row)
    emit(
        f"figure{figure_number}_{result.dataset}",
        render_figure(result) + "\n\n" + gaps.render(),
    )

    # Qualitative claims: every estimator's synthetic graph stays within
    # the per-statistic band of the original, and the private estimator is
    # not materially worse than the non-private KronMom.
    for statistic, limit in GAP_LIMITS.items():
        for method in result.estimates:
            value = gap_values[(statistic, method)]
            assert not np.isnan(value), f"{statistic}/{method} series did not overlap"
            assert value < limit, (
                f"{statistic}/{method}: mean log10 gap {value:.3f} "
                f"exceeds limit {limit}"
            )
    for statistic in GAP_LIMITS:
        private_gap = gap_values[(statistic, "Private")]
        kronmom_gap = gap_values[(statistic, "KronMom")]
        assert private_gap < kronmom_gap + 0.45, (
            f"{statistic}: private gap {private_gap:.3f} far above "
            f"kronmom gap {kronmom_gap:.3f}"
        )
    return result
