"""EXP-A6 — parametric (SKG) vs structure-based DP synthesis (paper §5).

The paper's future work asks how its model-based release compares to
structure-statistic synthesizers in the style of Sala et al.  This bench
runs the in-repo member of that family (DP degree sequence + erased
configuration model, `repro.core.baseline`) against Algorithm 1 at the
same total budget, and scores both against the original graph on the
statistics the paper plots.

Expected trade-off (asserted): the degree-only baseline wins on the
degree distribution (its whole budget buys degrees); the SKG release
carries triangle information the baseline cannot represent, so it wins
on the wedge/triangle balance of co-authorship-like graphs.

Both the synthesis *and* the scoring are the ``baseline-scoring``
scenario preset (:func:`repro.scenarios.baseline_scoring_scenarios`):
each trial fits, samples with the historical fixed seeds, and measures
the ``graph_comparison`` family — the same declarative metric rows a
tracked run (``repro run-scenario --preset baseline-scoring --track``)
persists, so the bench no longer hand-computes any score.  The sampled
graphs are bit-identical to the ``baseline-comparison`` preset's, hence
to the serial original.
"""

from __future__ import annotations

import dataclasses

from repro.evaluation.experiments import default_config
from repro.graphs.datasets import load_dataset
from repro.scenarios import build_scenarios, run_scenarios
from repro.stats.assortativity import degree_assortativity
from repro.stats.clustering import average_clustering
from repro.utils.tables import TextTable

EPSILON, DELTA = 0.2, 0.01


def _score(config):
    # The bench's assertions are tuned for the paper's operating point,
    # so pin the budget regardless of ambient REPRO_EPSILON/REPRO_DELTA
    # (the preset itself honours the config for CLI users).
    pinned = dataclasses.replace(config, epsilon=EPSILON, delta=DELTA)
    reports = run_scenarios(
        build_scenarios("baseline-scoring", pinned),
        n_jobs=config.n_jobs,
        cache=config.trial_cache,
        label="baseline_scoring",
    )
    return tuple(report.results[0] for report in reports)


def test_baseline_comparison(benchmark, emit):
    config = default_config()
    graph = load_dataset("ca-grqc")
    skg_metrics, baseline_metrics = benchmark.pedantic(
        lambda: _score(config), rounds=1, iterations=1
    )
    rows = {
        "SKG private (Algorithm 1)": skg_metrics,
        "DP degree-sequence baseline": baseline_metrics,
    }
    table = TextTable(
        [
            "synthesizer",
            "degree KS",
            "edges rel.err",
            "wedges rel.err",
            "triangles rel.err",
        ],
        title=(
            f"Parametric vs structure-based DP synthesis on ca-grqc "
            f"(epsilon={EPSILON}, delta={DELTA})"
        ),
    )
    for label, metrics in rows.items():
        table.add_row(
            [
                label,
                metrics["degree_ks"],
                metrics["edges_rel_err"],
                metrics["hairpins_rel_err"],
                metrics["triangles_rel_err"],
            ]
        )
    structure = TextTable(
        ["graph", "avg clustering", "degree assortativity"],
        title="Structure beyond degrees (neither synthesizer is told these)",
    )
    structure.add_row(
        ["original", average_clustering(graph), degree_assortativity(graph)]
    )
    for label, metrics in rows.items():
        structure.add_row(
            [label, metrics["avg_clustering"], metrics["degree_assortativity"]]
        )
    emit("baseline_comparison", table.render() + "\n\n" + structure.render())

    # The baseline's entire budget buys degrees: it must win on degree KS.
    assert baseline_metrics["degree_ks"] <= skg_metrics["degree_ks"] + 0.02
    # Both must reproduce the edge count well at this budget.
    assert skg_metrics["edges_rel_err"] < 0.2
    assert baseline_metrics["edges_rel_err"] < 0.2
