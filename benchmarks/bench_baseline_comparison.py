"""EXP-A6 — parametric (SKG) vs structure-based DP synthesis (paper §5).

The paper's future work asks how its model-based release compares to
structure-statistic synthesizers in the style of Sala et al.  This bench
runs the in-repo member of that family (DP degree sequence + erased
configuration model, `repro.core.baseline`) against Algorithm 1 at the
same total budget, and scores both against the original graph on the
statistics the paper plots.

Expected trade-off (asserted): the degree-only baseline wins on the
degree distribution (its whole budget buys degrees); the SKG release
carries triangle information the baseline cannot represent, so it wins
on the wedge/triangle balance of co-authorship-like graphs.

The two synthesizers are the ``baseline-comparison`` scenario preset
(:func:`repro.scenarios.baseline_comparison_scenarios`): independent
single-trial scenarios that run concurrently through the scenario engine
(honouring ``REPRO_N_JOBS`` / ``REPRO_CACHE_DIR``); each keeps its
historical fixed fit/sample seeds, so the comparison is bit-identical to
the serial original.
"""

from __future__ import annotations

import dataclasses

from repro.evaluation.experiments import default_config
from repro.graphs.datasets import load_dataset
from repro.scenarios import build_scenarios, run_scenarios
from repro.stats.assortativity import degree_assortativity
from repro.stats.clustering import average_clustering
from repro.stats.comparison import ks_distance, statistics_relative_errors
from repro.stats.counts import matching_statistics
from repro.utils.tables import TextTable

EPSILON, DELTA = 0.2, 0.01


def _compare(config):
    # The bench's assertions are tuned for the paper's operating point,
    # so pin the budget regardless of ambient REPRO_EPSILON/REPRO_DELTA
    # (the preset itself honours the config for CLI users).
    pinned = dataclasses.replace(config, epsilon=EPSILON, delta=DELTA)
    reports = run_scenarios(
        build_scenarios("baseline-comparison", pinned),
        n_jobs=config.n_jobs,
        cache=config.trial_cache,
        label="baseline_comparison",
    )
    return tuple(report.results[0] for report in reports)


def test_baseline_comparison(benchmark, emit):
    config = default_config()
    graph = load_dataset("ca-grqc")
    skg_synthetic, baseline_synthetic = benchmark.pedantic(
        lambda: _compare(config), rounds=1, iterations=1
    )
    original = matching_statistics(graph)
    rows = {
        "SKG private (Algorithm 1)": skg_synthetic,
        "DP degree-sequence baseline": baseline_synthetic,
    }
    table = TextTable(
        [
            "synthesizer",
            "degree KS",
            "edges rel.err",
            "wedges rel.err",
            "triangles rel.err",
        ],
        title=(
            f"Parametric vs structure-based DP synthesis on ca-grqc "
            f"(epsilon={EPSILON}, delta={DELTA})"
        ),
    )
    metrics = {}
    for label, synthetic in rows.items():
        stats = matching_statistics(synthetic)
        errors = statistics_relative_errors(stats, original)
        metrics[label] = {
            "degree_ks": ks_distance(
                graph.degrees[graph.degrees > 0],
                synthetic.degrees[synthetic.degrees > 0],
            ),
            "edges": errors["edges"],
            "wedges": errors["hairpins"],
            "triangles": errors["triangles"],
        }
        table.add_row(
            [
                label,
                metrics[label]["degree_ks"],
                metrics[label]["edges"],
                metrics[label]["wedges"],
                metrics[label]["triangles"],
            ]
        )
    structure = TextTable(
        ["graph", "avg clustering", "degree assortativity"],
        title="Structure beyond degrees (neither synthesizer is told these)",
    )
    structure.add_row(
        ["original", average_clustering(graph), degree_assortativity(graph)]
    )
    for label, synthetic in rows.items():
        structure.add_row(
            [label, average_clustering(synthetic), degree_assortativity(synthetic)]
        )
    emit("baseline_comparison", table.render() + "\n\n" + structure.render())

    skg_metrics = metrics["SKG private (Algorithm 1)"]
    baseline_metrics = metrics["DP degree-sequence baseline"]
    # The baseline's entire budget buys degrees: it must win on degree KS.
    assert baseline_metrics["degree_ks"] <= skg_metrics["degree_ks"] + 0.02
    # Both must reproduce the edge count well at this budget.
    assert skg_metrics["edges"] < 0.2
    assert baseline_metrics["edges"] < 0.2
