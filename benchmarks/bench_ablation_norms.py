"""EXP-A1 — ablation over the Dist × Norm objective variants (paper §3.4).

Gleich & Owen (quoted by the paper) report that the combination of the
squared distance with the observed-squared normalisation is the robust
choice.  This bench fits all eight combinations on the synthetic graph
(where ground truth is known) and on CA-GrQC (where the reference is the
default fit), ranking them by recovery error.
"""

from __future__ import annotations

from repro.graphs.datasets import load_dataset
from repro.kronecker.initiator import Initiator
from repro.kronecker.kronmom import DISTANCES, NORMALIZATIONS, KronMomEstimator
from repro.utils.tables import TextTable

TRUTH = Initiator(0.99, 0.45, 0.25)


def _fit_all_combinations(graph):
    results = {}
    for distance in sorted(DISTANCES):
        for normalization in sorted(NORMALIZATIONS):
            estimator = KronMomEstimator(
                distance=distance, normalization=normalization
            )
            results[(distance, normalization)] = estimator.fit(graph)
    return results


def test_objective_ablation(benchmark, emit):
    synthetic = load_dataset("synthetic-kronecker")
    results = benchmark.pedantic(
        lambda: _fit_all_combinations(synthetic), rounds=1, iterations=1
    )
    table = TextTable(
        ["distance", "normalization", "a", "b", "c", "distance to truth"],
        title="Objective ablation on the synthetic Kronecker graph "
        "(truth a=0.99 b=0.45 c=0.25)",
    )
    recovery = {}
    for (distance, normalization), result in sorted(results.items()):
        theta = result.initiator
        error = theta.distance(TRUTH)
        recovery[(distance, normalization)] = error
        table.add_row([distance, normalization, theta.a, theta.b, theta.c, error])
    emit("ablation_norms", table.render())

    # The paper's robust default must be among the accurate combinations.
    default_error = recovery[("squared", "observed_squared")]
    assert default_error < 0.1
    # And it should not be dominated by a large margin by any alternative.
    best_error = min(recovery.values())
    assert default_error < best_error + 0.1
