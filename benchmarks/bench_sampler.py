"""EXP-A4 — implementation ablation: exact grass-hopping vs naive sampler.

Times both exact SKG samplers at increasing order and verifies they agree
on mean statistics where both are feasible.  The grass-hopper is the
substrate that makes the paper-scale (k = 14) experiments practical, so
its speedup and exactness are worth a regenerated artifact.
"""

from __future__ import annotations

import time

import numpy as np

from repro.kronecker.initiator import Initiator
from repro.kronecker.moments import expected_edges
from repro.kronecker.sampling import sample_skg, sample_skg_naive
from repro.utils.tables import TextTable

THETA = Initiator(0.99, 0.45, 0.25)


def test_sampler_speed_and_agreement(benchmark, emit):
    # pytest-benchmark measures the paper-scale draw.
    graph = benchmark(lambda: sample_skg(THETA, 14, seed=0))
    assert graph.n_nodes == 2**14

    table = TextTable(
        ["k", "nodes", "grass-hop (s)", "naive (s)", "mean edges", "E[edges]"],
        title="Exact SKG samplers: timing and agreement",
    )
    for k in (8, 10, 12):
        t0 = time.perf_counter()
        fast_edges = [sample_skg(THETA, k, seed=s).n_edges for s in range(10)]
        fast_time = (time.perf_counter() - t0) / 10
        t0 = time.perf_counter()
        naive_edges = [sample_skg_naive(THETA, k, seed=100 + s).n_edges for s in range(10)]
        naive_time = (time.perf_counter() - t0) / 10
        expected = float(expected_edges(*THETA, k))
        table.add_row(
            [k, 2**k, fast_time, naive_time, np.mean(fast_edges + naive_edges), expected]
        )
        # Unbiasedness of both samplers at every order.
        assert np.mean(fast_edges) > 0.7 * expected
        assert np.mean(naive_edges) > 0.7 * expected
        assert fast_time < naive_time  # the point of grass-hopping
    emit("sampler_ablation", table.render())
