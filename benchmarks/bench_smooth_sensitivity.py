"""EXP-A3 — growth of the smooth sensitivity of Δ with graph size.

The paper's §5 poses this as future work: "examine the smooth sensitivity
of Δ as a function of the size of the graph G.  Preliminary experiments
indicate that in the SKG model, SS_Δ might grow slowly."  This bench runs
that experiment: sample SKGs of increasing order from the paper's
synthetic initiator, compute SS_β(Δ) at the paper's operating point, and
report the growth rate relative to the graph size and the triangle count.
"""

from __future__ import annotations

import numpy as np

from repro.kronecker.initiator import Initiator
from repro.kronecker.sampling import sample_skg
from repro.privacy.sensitivity import (
    local_sensitivity_triangles,
    smooth_sensitivity_triangles,
    triangle_smooth_beta,
)
from repro.stats.counts import count_triangles
from repro.utils.tables import TextTable

THETA = Initiator(0.99, 0.45, 0.25)
ORDERS = (7, 8, 9, 10, 11, 12, 13)
BETA = triangle_smooth_beta(epsilon=0.1, delta=0.01)  # the paper's sub-budget


def _measure():
    rows = []
    for k in ORDERS:
        graph = sample_skg(THETA, k, seed=k)
        rows.append(
            {
                "k": k,
                "nodes": graph.n_nodes,
                "edges": graph.n_edges,
                "triangles": count_triangles(graph),
                "local_sensitivity": local_sensitivity_triangles(graph),
                "smooth_sensitivity": smooth_sensitivity_triangles(graph, BETA),
            }
        )
    return rows


def test_smooth_sensitivity_growth(benchmark, emit):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table = TextTable(
        ["k", "nodes", "edges", "triangles", "LS", "SS_beta", "SS/nodes"],
        title=f"Smooth sensitivity of the triangle count vs SKG size "
        f"(theta=(0.99, 0.45, 0.25), beta={BETA:.5f})",
    )
    for row in rows:
        table.add_row(
            [
                row["k"],
                row["nodes"],
                row["edges"],
                row["triangles"],
                row["local_sensitivity"],
                row["smooth_sensitivity"],
                row["smooth_sensitivity"] / row["nodes"],
            ]
        )
    emit("smooth_sensitivity_growth", table.render())

    # "SS grows slowly": sub-linear in the node count by a wide margin.
    sizes = np.array([row["nodes"] for row in rows], dtype=float)
    sensitivities = np.array([row["smooth_sensitivity"] for row in rows])
    # Fit a power law SS ~ n^alpha; slow growth means alpha well below 1.
    alpha = np.polyfit(np.log(sizes), np.log(np.maximum(sensitivities, 1e-9)), 1)[0]
    assert alpha < 0.7, f"smooth sensitivity grows too fast: n^{alpha:.2f}"
    # And the relative noise floor shrinks: SS/triangles decreasing overall.
    ratios = sensitivities / np.maximum(
        np.array([row["triangles"] for row in rows], dtype=float), 1.0
    )
    assert ratios[-1] < ratios[0]
