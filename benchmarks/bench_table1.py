"""EXP-T1 — Table 1: initiator estimates across graphs and estimators.

Regenerates the paper's Table 1 (KronFit / KronMom / Private at ε = 0.2,
δ = 0.01 on CA-GrQC, CA-HepTh, AS20, and the synthetic Kronecker graph)
and appends the agreement metrics EXPERIMENTS.md reports: the max-abs
parameter distance between the private and non-private moment estimates
per graph, and the recovery error on the synthetic graph.
"""

from __future__ import annotations

from repro.evaluation.experiments import default_config
from repro.evaluation.table1 import SYNTHETIC_TRUTH, render_table1, run_table1
from repro.utils.tables import TextTable


def test_table1(benchmark, emit):
    config = default_config()
    rows = benchmark.pedantic(
        lambda: run_table1(config=config), rounds=1, iterations=1
    )
    text = render_table1(rows, config=config)

    by_key = {(row.dataset, row.method): row.initiator for row in rows}
    agreement = TextTable(
        ["network", "d(Private, KronMom)", "d(Private, KronFit)"],
        title="Estimator agreement (max-abs parameter distance)",
    )
    datasets = sorted({row.dataset for row in rows})
    for dataset in datasets:
        private = by_key[(dataset, "Private")]
        agreement.add_row(
            [
                dataset,
                private.distance(by_key[(dataset, "KronMom")]),
                private.distance(by_key[(dataset, "KronFit")]),
            ]
        )
    recovery = TextTable(
        ["method", "distance to true (0.99, 0.45, 0.25)"],
        title="Synthetic-graph parameter recovery",
    )
    for method in ("KronFit", "KronMom", "Private"):
        recovery.add_row(
            [method, by_key[("synthetic-kronecker", method)].distance(SYNTHETIC_TRUTH)]
        )
    emit(
        "table1",
        "\n\n".join([text, agreement.render(), recovery.render()]),
    )

    # The paper's headline: the private estimates track the non-private
    # moment estimates closely on every graph.
    for dataset in datasets:
        assert by_key[(dataset, "Private")].distance(by_key[(dataset, "KronMom")]) < 0.2
