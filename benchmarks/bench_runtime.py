"""EXP-R1 — the parallel trial runtime: determinism, speedup, resumability.

Runs a 100-realization synthetic SKG ensemble through
:func:`repro.runtime.run_trials` and asserts the three properties every
other bench now relies on:

* **determinism** — ``n_jobs=1`` and ``n_jobs=4`` produce bit-identical
  per-trial matching statistics (per-trial RNG streams depend only on the
  root seed and trial index, never on worker scheduling);
* **speedup** — the parallel run is ≥2× faster in wall-clock time.  Each
  trial carries a fixed 40 ms simulated latency on top of the sampling
  work — standing in for the fit/statistics cost that dominates real
  trials — so the assertion measures the engine's scheduling overlap and
  holds even on single-core CI runners;
* **resumability** — with an on-disk cache, a second run of the same
  ensemble executes zero trials and returns identical results.
"""

from __future__ import annotations

import time

from repro.kronecker.initiator import Initiator
from repro.kronecker.sampling import sample_skg
from repro.runtime import TrialCache, TrialSpec, run_trials
from repro.stats.counts import matching_statistics
from repro.utils.tables import TextTable

REALIZATIONS = 100
K = 9
THETA = (0.99, 0.45, 0.25)  # the paper's synthetic generator initiator
SEED = 20120330
TRIAL_LATENCY = 0.04
N_JOBS = 4


def _latency_trial(rng, *, a: float, b: float, c: float, k: int, latency: float):
    """Sample one Θ^{⊗k} realization, count its statistics, pay the latency."""
    graph = sample_skg(Initiator(a, b, c), k, seed=rng)
    stats = matching_statistics(graph)
    time.sleep(latency)
    return stats


def _specs() -> list[TrialSpec]:
    params = {
        "a": THETA[0],
        "b": THETA[1],
        "c": THETA[2],
        "k": K,
        "latency": TRIAL_LATENCY,
    }
    return [
        TrialSpec(fn=_latency_trial, params=params, index=trial)
        for trial in range(REALIZATIONS)
    ]


def test_runtime_parallel_ensemble(benchmark, emit, tmp_path):
    specs = _specs()
    serial = run_trials(specs, seed=SEED, n_jobs=1, label="runtime:serial")
    parallel = benchmark.pedantic(
        lambda: run_trials(specs, seed=SEED, n_jobs=N_JOBS, label="runtime:parallel"),
        rounds=1,
        iterations=1,
    )

    # Bit-identical ensembles for any worker count.
    assert parallel.results == serial.results

    # Resumability: a second cached run executes zero trials.
    cache = TrialCache(tmp_path / "trial-cache")
    first_cached = run_trials(
        specs, seed=SEED, n_jobs=N_JOBS, cache=cache, label="runtime:cache-fill"
    )
    second_cached = run_trials(
        specs, seed=SEED, n_jobs=1, cache=cache, label="runtime:cache-hit"
    )
    assert first_cached.executed == REALIZATIONS
    assert second_cached.executed == 0
    assert second_cached.cached == REALIZATIONS
    assert second_cached.results == serial.results

    speedup = serial.elapsed / parallel.elapsed
    table = TextTable(
        ["run", "n_jobs", "executed", "cached", "wall-clock (s)"],
        title=(
            f"Trial runtime on a {REALIZATIONS}-realization synthetic ensemble "
            f"(k={K}, {TRIAL_LATENCY * 1000:.0f} ms/trial simulated latency)"
        ),
    )
    table.add_row(["serial", serial.n_jobs, serial.executed, serial.cached,
                   round(serial.elapsed, 3)])
    table.add_row(["parallel", parallel.n_jobs, parallel.executed, parallel.cached,
                   round(parallel.elapsed, 3)])
    table.add_row(["cache fill", first_cached.n_jobs, first_cached.executed,
                   first_cached.cached, round(first_cached.elapsed, 3)])
    table.add_row(["cache hit", second_cached.n_jobs, second_cached.executed,
                   second_cached.cached, round(second_cached.elapsed, 3)])
    emit(
        "runtime",
        table.render() + f"\n\nparallel speedup at n_jobs={N_JOBS}: {speedup:.2f}x",
    )

    assert speedup >= 2.0, (
        f"n_jobs={N_JOBS} speedup {speedup:.2f}x below 2x "
        f"(serial {serial.elapsed:.2f}s, parallel {parallel.elapsed:.2f}s)"
    )
