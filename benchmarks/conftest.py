"""Shared infrastructure for the reproduction benches.

Every bench regenerates one paper artifact (table / figure / ablation),
prints it, and writes it under ``benchmarks/out/`` so EXPERIMENTS.md can
reference stable files.  pytest-benchmark timings measure the dominant
computation of each artifact.

Scale knobs are environment variables (see
:mod:`repro.evaluation.experiments`): notably ``REPRO_REALIZATIONS``
(default 20; the paper uses 100) and ``REPRO_KRONFIT_ITERATIONS``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def report_dir() -> Path:
    """Directory collecting the regenerated artifacts."""
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUT_DIR


@pytest.fixture
def emit(report_dir, capsys):
    """Print an artifact and persist it to benchmarks/out/<name>.txt."""

    def _emit(name: str, text: str) -> None:
        path = report_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        with capsys.disabled():
            print(f"\n{'=' * 72}\n{text}\n[written to {path}]")

    return _emit
