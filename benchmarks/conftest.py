"""Shared infrastructure for the reproduction benches.

Every bench regenerates one paper artifact (table / figure / ablation),
prints it, and writes it under ``benchmarks/out/`` so EXPERIMENTS.md can
reference stable files.  pytest-benchmark timings measure the dominant
computation of each artifact.

Scale knobs are environment variables (see
:mod:`repro.evaluation.experiments`): notably ``REPRO_REALIZATIONS``
(default 20; the paper uses 100) and ``REPRO_KRONFIT_ITERATIONS``.

Every repeated-trial loop (the "Expected" ensembles, Table 1's fits, the
ε-ablation grid, the baseline comparison) runs through the
:mod:`repro.runtime` engine, so two more knobs apply to the whole suite:

* ``REPRO_N_JOBS`` — fan trials across that many worker processes
  (results are bit-identical for any value; ``0`` = all cores),
* ``REPRO_CACHE_DIR`` — memoize completed trials on disk, making
  interrupted or repeated bench runs resumable.

CI's smoke job runs the fast configuration ``REPRO_REALIZATIONS=2
REPRO_N_JOBS=2`` against one figure bench plus ``repro run-ensemble`` so
the parallel engine is exercised end-to-end on every push; see
``.github/workflows/ci.yml``.  ``benchmarks/bench_runtime.py`` asserts
the engine's determinism, speedup, and cache-resume guarantees.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def report_dir() -> Path:
    """Directory collecting the regenerated artifacts."""
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUT_DIR


@pytest.fixture
def emit(report_dir, capsys):
    """Print an artifact and persist it to benchmarks/out/<name>.txt."""

    def _emit(name: str, text: str) -> None:
        path = report_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        with capsys.disabled():
            print(f"\n{'=' * 72}\n{text}\n[written to {path}]")

    return _emit
