"""Command-line interface: the curator workflow without writing Python.

Subcommands::

    python -m repro datasets
        List the registered experiment datasets.

    python -m repro summarize GRAPH
        Print the structural summary of a dataset or edge-list file.

    python -m repro fit GRAPH [--method private|kronmom|kronfit]
                              [--epsilon E --delta D --seed S]
        Estimate the SKG initiator and print it (with the privacy ledger
        for the private method).

    python -m repro release GRAPH --out DIR [--epsilon E --delta D
                              --samples N --seed S]
        Produce a complete private release package: parameter JSON,
        N synthetic edge lists, and the privacy ledger.

    python -m repro sample --a A --b B --c C -k K [--seed S --out FILE]
        Sample a synthetic SKG from an explicit initiator.

    python -m repro run-ensemble --a A --b B --c C -k K [--count N]
                              [--n-jobs J --cache-dir DIR --seed S --out FILE]
        Sample an ensemble of N realizations through the parallel trial
        engine (repro.runtime) and summarize the matching statistics
        against their closed-form expectations.  ``--n-jobs`` fans the
        trials across worker processes (results are bit-identical for any
        value); ``--cache-dir`` memoizes completed trials so a rerun is
        resumable and executes only what is missing.

    python -m repro run-scenario [--preset NAME | --datasets D1,D2
                              --estimators E1,E2] [--epsilon E --delta D]
                              [--count N] [--n-starts S] [--n-jobs J]
                              [--cache-dir DIR] [--out FILE] [--list]
                              [--track [--runs-dir DIR]]
        Run a declarative scenario grid (repro.scenarios).  ``--preset``
        executes a registered scenario list by name (``--list`` shows
        them); otherwise ``--datasets`` × ``--estimators`` (kronfit,
        kronmom, private, dpdegree) × the budget forms an ad-hoc grid:
        each cell fits the estimator ``--count`` times and measures the
        matching statistics of one synthetic realization per fit.
        ``--n-starts`` selects multi-start KronFit (S chains per fit,
        best final log-likelihood wins).  Scenario trials run through
        the parallel trial engine: bit-identical for any ``--n-jobs``,
        memoized under ``--cache-dir``.  ``--track`` additionally writes
        a run directory (config, materialized seeds, per-trial metric
        tables, environment fingerprint, cache attribution) under
        ``--runs-dir`` (default: REPRO_RUNS_DIR or ``runs/``).

    python -m repro compare RUN_A RUN_B [--runs-dir DIR] [--tolerance T]
        Diff two tracked runs (paths or names under the runs directory):
        config/environment deltas, per-scenario metric drift against the
        tolerance (default 0 = bit-identical), and each run's
        executed/cached attribution.  Exits 1 when metrics drift beyond
        tolerance or the runs measured different things.

    python -m repro runs {list | show RUN} [--runs-dir DIR]
        Inspect tracked run directories: ``list`` tabulates them oldest
        first (``--paths`` prints bare paths for scripting), ``show``
        prints one run's configuration, environment, and per-scenario
        metric summary.

``GRAPH`` is either a registered dataset name (see ``datasets``) or a path
to a SNAP-format edge list (optionally gzipped).

The global ``--block-size N`` option (before the subcommand) bounds the
peak memory of the blocked A² counting pass by running it N rows at a
time; the default 0 auto-tunes the block size from a memory budget.  The
global ``--kernel-backend {auto,scipy,numba,cext}`` option selects the
execution engine of *both* native-kernel families — the A² counting pass
and the KronFit Metropolis chain: ``auto`` (default) prefers the fused
kernels (numba-jitted when numba is installed, else the compiled-C
``cext``) and falls back to the pure-Python references (blocked scipy
SpGEMM / numpy chain); naming an unavailable backend fails with a clear
error.  All results are bit-identical for any block size and backend
(``repro --block-size 64 --kernel-backend scipy summarize ca-grqc``
equals ``repro summarize ca-grqc``, and ``repro --kernel-backend scipy
fit ca-grqc --method kronfit --seed 0`` equals the fused-kernel fit).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.errors import DatasetError, ReproError, ValidationError
from repro.graphs import Graph, load_dataset, read_edge_list, write_edge_list
from repro.graphs.datasets import available_datasets, dataset_info
from repro.core.estimator import PrivateKroneckerEstimator
from repro.core.nonprivate import fit_kronfit, fit_kronmom
from repro.kronecker.initiator import Initiator
from repro.kronecker.sampling import sample_skg
from repro.native.registry import KERNEL_THREADS_ENV, resolve_kernel_threads
from repro.stats.kernels import (
    KERNEL_BACKEND_CHOICES,
    KERNEL_BACKEND_ENV,
    resolve_block_size,
    resolve_kernel_backend,
)
from repro.stats.summary import summarize
from repro.utils.tables import TextTable
from repro.utils.validation import check_integer

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Differentially private stochastic Kronecker graph estimation",
    )
    parser.add_argument(
        "--block-size",
        type=int,
        default=None,
        dest="block_size",
        help=(
            "rows per block of the A² counting pass (sets REPRO_BLOCK_SIZE; "
            "0 = auto-tuned by memory budget; statistics are bit-identical "
            "for any value)"
        ),
    )
    parser.add_argument(
        "--kernel-backend",
        choices=KERNEL_BACKEND_CHOICES,
        default=None,
        dest="kernel_backend",
        help=(
            "execution engine of the native kernels — the A² counting pass "
            "and the KronFit Metropolis chain (sets REPRO_KERNEL_BACKEND; "
            "auto prefers the fused numba/C kernels and falls back to the "
            "pure-Python references; results are bit-identical for any "
            "backend)"
        ),
    )
    parser.add_argument(
        "--kernel-threads",
        type=int,
        default=None,
        dest="kernel_threads",
        help=(
            "threads the batched multichain kernel shards KronFit multi-start "
            "chains across (sets REPRO_KERNEL_THREADS; 0 = all usable cores; "
            "results are bit-identical for any value)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("datasets", help="list registered datasets")

    summarize_parser = commands.add_parser(
        "summarize", help="structural summary of a graph"
    )
    summarize_parser.add_argument("graph", help="dataset name or edge-list path")

    fit_parser = commands.add_parser("fit", help="estimate the SKG initiator")
    fit_parser.add_argument("graph", help="dataset name or edge-list path")
    fit_parser.add_argument(
        "--method",
        choices=("private", "kronmom", "kronfit"),
        default="private",
    )
    fit_parser.add_argument("--epsilon", type=float, default=0.2)
    fit_parser.add_argument("--delta", type=float, default=0.01)
    fit_parser.add_argument("--seed", type=int, default=None)
    fit_parser.add_argument(
        "--kronfit-iterations", type=int, default=30, dest="kronfit_iterations"
    )

    release_parser = commands.add_parser(
        "release", help="produce a private release package"
    )
    release_parser.add_argument("graph", help="dataset name or edge-list path")
    release_parser.add_argument("--out", required=True, help="output directory")
    release_parser.add_argument("--epsilon", type=float, default=0.2)
    release_parser.add_argument("--delta", type=float, default=0.01)
    release_parser.add_argument("--samples", type=int, default=1)
    release_parser.add_argument("--seed", type=int, default=None)

    sample_parser = commands.add_parser(
        "sample", help="sample a synthetic SKG from an initiator"
    )
    sample_parser.add_argument("--a", type=float, required=True)
    sample_parser.add_argument("--b", type=float, required=True)
    sample_parser.add_argument("--c", type=float, required=True)
    sample_parser.add_argument("-k", type=int, required=True)
    sample_parser.add_argument("--seed", type=int, default=None)
    sample_parser.add_argument("--out", default=None, help="edge-list output path")

    ensemble_parser = commands.add_parser(
        "run-ensemble",
        help="sample an SKG ensemble through the parallel trial engine",
    )
    ensemble_parser.add_argument("--a", type=float, required=True)
    ensemble_parser.add_argument("--b", type=float, required=True)
    ensemble_parser.add_argument("--c", type=float, required=True)
    ensemble_parser.add_argument("-k", type=int, required=True)
    ensemble_parser.add_argument(
        "--count", type=int, default=20, help="ensemble size (default 20)"
    )
    ensemble_parser.add_argument(
        "--n-jobs",
        type=int,
        default=None,
        dest="n_jobs",
        help="worker processes (default: REPRO_N_JOBS or 1; 0 = all cores)",
    )
    ensemble_parser.add_argument(
        "--cache-dir",
        default=None,
        dest="cache_dir",
        help="memoize completed trials in this directory",
    )
    ensemble_parser.add_argument("--seed", type=int, default=0)
    ensemble_parser.add_argument(
        "--out", default=None, help="write the per-trial statistics as JSON"
    )

    scenario_parser = commands.add_parser(
        "run-scenario",
        help="run a declarative scenario grid through the trial engine",
    )
    scenario_parser.add_argument(
        "--preset",
        default=None,
        help="registered scenario preset to run (see --list)",
    )
    scenario_parser.add_argument(
        "--list",
        action="store_true",
        dest="list_presets",
        help="list registered presets and estimator methods, then exit",
    )
    scenario_parser.add_argument(
        "--datasets",
        default=None,
        help="comma-separated dataset names forming the workload axis",
    )
    scenario_parser.add_argument(
        "--estimators",
        default=None,
        help=(
            "comma-separated estimator axis values: "
            "kronfit, kronmom, private, dpdegree"
        ),
    )
    scenario_parser.add_argument(
        "--epsilon", type=float, default=None, help="privacy budget axis value"
    )
    scenario_parser.add_argument(
        "--delta", type=float, default=None, help="privacy parameter delta"
    )
    scenario_parser.add_argument(
        "--count",
        type=int,
        default=None,
        help="trials per scenario (default: REPRO_REALIZATIONS)",
    )
    scenario_parser.add_argument(
        "--n-starts",
        type=int,
        default=None,
        dest="n_starts",
        help=(
            "KronFit chains per fit; best final log-likelihood wins "
            "(default: REPRO_N_STARTS, i.e. 1)"
        ),
    )
    scenario_parser.add_argument(
        "--n-jobs",
        type=int,
        default=None,
        dest="n_jobs",
        help="worker processes (default: REPRO_N_JOBS or 1; 0 = all cores)",
    )
    scenario_parser.add_argument(
        "--cache-dir",
        default=None,
        dest="cache_dir",
        help="memoize completed trials in this directory",
    )
    scenario_parser.add_argument(
        "--seed", type=int, default=None, help="root seed (default: REPRO_SEED)"
    )
    scenario_parser.add_argument(
        "--out", default=None, help="write the scenario report here"
    )
    scenario_parser.add_argument(
        "--on-error",
        choices=["raise", "collect"],
        default=None,
        dest="on_error",
        help=(
            "failure policy once a trial's retries are exhausted: raise "
            "(default) aborts the grid, collect records the failure and "
            "keeps the surviving trials (see REPRO_TRIAL_RETRIES / "
            "REPRO_TRIAL_TIMEOUT)"
        ),
    )
    scenario_parser.add_argument(
        "--track",
        action="store_true",
        help=(
            "write a tracked run directory (config, seeds, per-trial metric "
            "tables, environment fingerprint, cache attribution)"
        ),
    )
    scenario_parser.add_argument(
        "--runs-dir",
        default=None,
        dest="runs_dir",
        help="tracked-run root for --track (default: REPRO_RUNS_DIR or runs/)",
    )

    compare_parser = commands.add_parser(
        "compare", help="diff two tracked run directories"
    )
    compare_parser.add_argument("run_a", help="run directory path or name")
    compare_parser.add_argument("run_b", help="run directory path or name")
    compare_parser.add_argument(
        "--runs-dir",
        default=None,
        dest="runs_dir",
        help="where to resolve bare run names (default: REPRO_RUNS_DIR or runs/)",
    )
    compare_parser.add_argument(
        "--tolerance",
        type=float,
        default=0.0,
        help="max |metric delta| treated as identical (default 0 = bitwise)",
    )

    runs_parser = commands.add_parser(
        "runs", help="inspect tracked run directories"
    )
    runs_commands = runs_parser.add_subparsers(dest="runs_command", required=True)
    runs_list_parser = runs_commands.add_parser(
        "list", help="tabulate tracked runs, oldest first"
    )
    runs_list_parser.add_argument(
        "--runs-dir",
        default=None,
        dest="runs_dir",
        help="tracked-run root (default: REPRO_RUNS_DIR or runs/)",
    )
    runs_list_parser.add_argument(
        "--paths",
        action="store_true",
        help="print bare run-directory paths (for scripting)",
    )
    runs_show_parser = runs_commands.add_parser(
        "show", help="print one tracked run's record"
    )
    runs_show_parser.add_argument("run", help="run directory path or name")
    runs_show_parser.add_argument(
        "--runs-dir",
        default=None,
        dest="runs_dir",
        help="where to resolve bare run names (default: REPRO_RUNS_DIR or runs/)",
    )

    figure_parser = commands.add_parser(
        "figure", help="regenerate one of the paper's figures (1-4)"
    )
    figure_parser.add_argument("number", type=int, choices=(1, 2, 3, 4))
    figure_parser.add_argument("--out", default=None, help="write the report here")
    figure_parser.add_argument(
        "--no-plots", action="store_true", help="omit the ASCII scatter overlays"
    )

    serve_parser = commands.add_parser(
        "serve", help="run the synthesis-as-a-service JSON API"
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument(
        "--port", type=int, default=8377, help="bind port (0 = ephemeral)"
    )
    serve_parser.add_argument(
        "--queue", type=int, default=None,
        help="admission capacity before 429 (default REPRO_SERVE_QUEUE)",
    )
    serve_parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-request deadline in seconds (default REPRO_SERVE_TIMEOUT)",
    )
    serve_parser.add_argument(
        "--drain", type=float, default=None,
        help="graceful-drain deadline in seconds (default REPRO_SERVE_DRAIN)",
    )
    serve_parser.add_argument(
        "--breaker", type=int, default=None,
        help="circuit-breaker trip threshold (default REPRO_SERVE_BREAKER)",
    )
    serve_parser.add_argument(
        "--budget-epsilon", type=float, default=None,
        help="per-dataset epsilon budget (default REPRO_SERVE_BUDGET_EPSILON)",
    )
    serve_parser.add_argument(
        "--budget-delta", type=float, default=None,
        help="per-dataset delta budget (default REPRO_SERVE_BUDGET_DELTA)",
    )
    serve_parser.add_argument(
        "--n-jobs", type=int, default=None,
        help="worker pool size; 1 = in-process (default REPRO_N_JOBS)",
    )
    serve_parser.add_argument(
        "--cache-dir", default=None,
        help="response/model cache directory (default REPRO_CACHE_DIR)",
    )
    serve_parser.add_argument(
        "--ledger-dir", default=None,
        help="privacy ledger directory (default REPRO_SERVE_LEDGER_DIR)",
    )

    table_parser = commands.add_parser(
        "table1", help="regenerate the paper's Table 1"
    )
    table_parser.add_argument("--out", default=None, help="write the table here")
    table_parser.add_argument(
        "--methods",
        default="KronFit,KronMom,Private",
        help="comma-separated subset of KronFit,KronMom,Private",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        if arguments.block_size is not None:
            # Validate eagerly, then publish through the environment: the
            # counting kernels read REPRO_BLOCK_SIZE at pass time.
            resolve_block_size(arguments.block_size)
            os.environ["REPRO_BLOCK_SIZE"] = str(arguments.block_size)
        if arguments.kernel_backend is not None:
            # Same pattern; resolving eagerly makes an unavailable backend
            # (e.g. --kernel-backend numba without numba) fail loudly here
            # rather than mid-pipeline.
            resolve_kernel_backend(arguments.kernel_backend)
            os.environ[KERNEL_BACKEND_ENV] = arguments.kernel_backend
        if arguments.kernel_threads is not None:
            # Same pattern: the multichain kernel reads the knob wherever
            # a batched multi-start fit is constructed (including inside
            # pool workers, which inherit the environment).
            resolve_kernel_threads(arguments.kernel_threads)
            os.environ[KERNEL_THREADS_ENV] = str(arguments.kernel_threads)
        handler = _HANDLERS[arguments.command]
        return handler(arguments)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _resolve_graph(token: str) -> Graph:
    """Interpret ``token`` as a dataset name first, then as a file path."""
    try:
        return load_dataset(token)
    except DatasetError:
        pass
    path = Path(token)
    if not path.exists():
        raise DatasetError(
            f"{token!r} is neither a registered dataset "
            f"({', '.join(available_datasets())}) nor an existing file"
        )
    graph, _labels = read_edge_list(path)
    return graph


def _cmd_datasets(_arguments: argparse.Namespace) -> int:
    table = TextTable(
        ["name", "kind", "paper nodes", "paper edges", "description"],
        title="Registered datasets",
    )
    for name in available_datasets():
        spec = dataset_info(name)
        description = spec.description.split(".")[0]
        table.add_row(
            [name, spec.kind, spec.paper_nodes, spec.paper_edges, description]
        )
    print(table.render())
    return 0


def _cmd_summarize(arguments: argparse.Namespace) -> int:
    graph = _resolve_graph(arguments.graph)
    print(summarize(graph).render())
    return 0


def _cmd_fit(arguments: argparse.Namespace) -> int:
    graph = _resolve_graph(arguments.graph)
    if arguments.method == "private":
        estimate = PrivateKroneckerEstimator(
            arguments.epsilon, arguments.delta, seed=arguments.seed
        ).fit(graph)
        print(estimate.describe())
        return 0
    if arguments.method == "kronmom":
        result = fit_kronmom(graph)
    else:
        result = fit_kronfit(
            graph, n_iterations=arguments.kronfit_iterations, seed=arguments.seed
        )
    theta = result.initiator
    print(f"{result.method} estimate: a={theta.a:.4f} b={theta.b:.4f} c={theta.c:.4f}")
    print(f"kronecker order k={result.k} ({2 ** result.k} nodes)")
    return 0


def _cmd_release(arguments: argparse.Namespace) -> int:
    graph = _resolve_graph(arguments.graph)
    out_dir = Path(arguments.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    estimate = PrivateKroneckerEstimator(
        arguments.epsilon, arguments.delta, seed=arguments.seed
    ).fit(graph)

    theta = estimate.initiator
    (out_dir / "private_initiator.json").write_text(
        json.dumps(
            {
                "model": "stochastic-kronecker-2x2-symmetric",
                "a": theta.a,
                "b": theta.b,
                "c": theta.c,
                "k": estimate.k,
                "epsilon": estimate.epsilon,
                "delta": estimate.delta,
            },
            indent=2,
        )
        + "\n"
    )
    (out_dir / "privacy_ledger.txt").write_text(
        estimate.release.accountant.describe() + "\n"
    )
    for index, synthetic in enumerate(
        estimate.sample_graphs(arguments.samples, seed=arguments.seed)
    ):
        write_edge_list(synthetic, out_dir / f"synthetic_{index}.txt")
    print(estimate.describe())
    print(f"release package written to {out_dir}")
    return 0


def _cmd_sample(arguments: argparse.Namespace) -> int:
    theta = Initiator(arguments.a, arguments.b, arguments.c)
    graph = sample_skg(theta, arguments.k, seed=arguments.seed)
    if arguments.out:
        write_edge_list(graph, arguments.out)
        print(f"wrote {graph} to {arguments.out}")
    else:
        print(summarize(graph).render())
    return 0


def _ensemble_trial(rng, *, a: float, b: float, c: float, k: int):
    """One ensemble realization: sample Θ^{⊗k} and count its statistics.

    Module-level so the runtime engine can ship it to worker processes.
    """
    from repro.stats.counts import matching_statistics

    graph = sample_skg(Initiator(a, b, c), k, seed=rng)
    return matching_statistics(graph)


def _cmd_run_ensemble(arguments: argparse.Namespace) -> int:
    import numpy as np

    from repro.kronecker.moments import expected_statistics
    from repro.runtime import TrialSpec, run_trials

    theta = Initiator(arguments.a, arguments.b, arguments.c)
    check_integer(arguments.count, "count", minimum=1)
    params = {"a": theta.a, "b": theta.b, "c": theta.c, "k": arguments.k}
    specs = [
        TrialSpec(fn=_ensemble_trial, params=params, index=trial)
        for trial in range(arguments.count)
    ]
    report = run_trials(
        specs,
        seed=arguments.seed,
        n_jobs=arguments.n_jobs,
        cache=arguments.cache_dir,
        label="run-ensemble",
    )
    rows = np.array([tuple(stats) for stats in report.results], dtype=np.float64)
    expected = expected_statistics(theta, arguments.k)
    table = TextTable(
        ["statistic", "ensemble mean", "ensemble std", "expected (moments)"],
        title=(
            f"Ensemble of {arguments.count} SKG realizations "
            f"(a={theta.a}, b={theta.b}, c={theta.c}, k={arguments.k}, "
            f"seed={arguments.seed})"
        ),
    )
    names = ("edges", "hairpins", "tripins", "triangles")
    for column, name in enumerate(names):
        table.add_row(
            [
                name,
                float(rows[:, column].mean()),
                float(rows[:, column].std()),
                getattr(expected, name),
            ]
        )
    print(table.render())
    print(
        f"{report.executed} trial(s) executed, {report.cached} from cache, "
        f"n_jobs={report.n_jobs}, {report.elapsed:.2f}s"
    )
    if arguments.out:
        path = Path(arguments.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(
                {
                    "initiator": {"a": theta.a, "b": theta.b, "c": theta.c},
                    "k": arguments.k,
                    "count": arguments.count,
                    "seed": arguments.seed,
                    "n_jobs": report.n_jobs,
                    "executed": report.executed,
                    "cached": report.cached,
                    "elapsed_seconds": report.elapsed,
                    "statistics": [dict(zip(names, row)) for row in rows.tolist()],
                },
                indent=2,
            )
            + "\n"
        )
        print(f"per-trial statistics written to {path}")
    return 0


def _cmd_run_scenario(arguments: argparse.Namespace) -> int:
    # Imported lazily: the scenario layer pulls in the evaluation stack.
    import dataclasses

    from repro.evaluation.experiments import default_config
    from repro.scenarios import (
        available_estimator_axis_values,
        available_scenarios,
        build_scenarios,
        render_scenario_reports,
        run_scenarios,
        scenario_grid,
    )

    if arguments.list_presets:
        print("registered scenario presets: " + ", ".join(available_scenarios()))
        print(
            "estimator axis values: "
            + ", ".join(name.lower() for name in available_estimator_axis_values())
        )
        return 0

    config = default_config()
    overrides = {}
    if arguments.epsilon is not None:
        overrides["epsilon"] = arguments.epsilon
    if arguments.delta is not None:
        overrides["delta"] = arguments.delta
    if arguments.seed is not None:
        overrides["seed"] = arguments.seed
    if arguments.n_starts is not None:
        overrides["n_starts"] = check_integer(
            arguments.n_starts, "n_starts", minimum=1
        )
    if overrides:
        config = dataclasses.replace(config, **overrides)

    if arguments.preset is not None:
        if arguments.datasets or arguments.estimators or arguments.count is not None:
            raise ValidationError(
                "--preset and the grid flags (--datasets/--estimators/--count) "
                "are mutually exclusive; presets declare their own cells"
            )
        scenarios = build_scenarios(arguments.preset, config)
        title = f"Scenario report — preset {arguments.preset!r}"
    else:
        if not arguments.datasets or not arguments.estimators:
            raise ValidationError(
                "run-scenario needs either --preset NAME or both "
                "--datasets and --estimators (see --list)"
            )
        datasets = tuple(
            token.strip() for token in arguments.datasets.split(",") if token.strip()
        )
        methods = tuple(
            _resolve_estimator_axis(token.strip())
            for token in arguments.estimators.split(",")
            if token.strip()
        )
        count = arguments.count
        if count is not None:
            check_integer(count, "count", minimum=1)
        scenarios = scenario_grid(
            config,
            workloads=datasets,
            methods=methods,
            ensemble_size=count,
        )
        title = (
            f"Scenario report — {len(datasets)} workload(s) x "
            f"{len(methods)} estimator(s), seed={config.seed}"
        )

    reports = run_scenarios(
        scenarios,
        n_jobs=arguments.n_jobs,
        # The flag wins; otherwise honour REPRO_CACHE_DIR like the rest
        # of the evaluation harness.
        cache=arguments.cache_dir or config.trial_cache,
        on_error=arguments.on_error,
    )
    text = render_scenario_reports(reports, title=title)
    executed = sum(report.report.executed for report in reports)
    cached = sum(report.report.cached for report in reports)
    failed = sum(report.report.failed for report in reports)
    retried = sum(report.report.retried for report in reports)
    pool_restarts = max(
        (report.report.pool_restarts for report in reports), default=0
    )
    footer = (
        f"{len(reports)} scenario(s), {executed} trial(s) executed, "
        f"{cached} from cache"
    )
    if failed or retried or pool_restarts:
        footer += (
            f"\nfault recovery: {failed} trial(s) failed, {retried} retried, "
            f"{pool_restarts} pool restart(s)"
        )
    print(text)
    print(footer)
    if arguments.out:
        path = Path(arguments.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text + "\n" + footer + "\n", encoding="utf-8")
        print(f"scenario report written to {path}")
    if arguments.track:
        from repro.tracking import build_run_record, write_run

        record = build_run_record(
            reports,
            config=config,
            label=arguments.preset or "grid",
            preset=arguments.preset,
        )
        run_path = write_run(record, arguments.runs_dir)
        print(f"run directory: {run_path}")
    return 0


def _cmd_compare(arguments: argparse.Namespace) -> int:
    from repro.tracking import (
        compare_runs,
        find_run,
        load_run,
        render_comparison,
        resolve_runs_dir,
    )

    runs_dir = resolve_runs_dir(arguments.runs_dir)
    path_a = find_run(arguments.run_a, runs_dir)
    path_b = find_run(arguments.run_b, runs_dir)
    comparison = compare_runs(
        load_run(path_a),
        load_run(path_b),
        tolerance=arguments.tolerance,
        name_a=path_a.name,
        name_b=path_b.name,
    )
    print(render_comparison(comparison))
    return 1 if comparison.has_drift else 0


def _cmd_runs(arguments: argparse.Namespace) -> int:
    from repro.tracking import find_run, list_runs, load_run, resolve_runs_dir

    runs_dir = resolve_runs_dir(arguments.runs_dir)
    if arguments.runs_command == "list":
        paths = list_runs(runs_dir)
        if arguments.paths:
            for path in paths:
                print(path)
            return 0
        if not paths:
            print(f"no tracked runs under {runs_dir}")
            return 0
        table = TextTable(
            ["run", "created", "preset", "scenarios", "trials", "executed", "cached"],
            title=f"Tracked runs under {runs_dir}",
        )
        for path in paths:
            record = load_run(path)
            trials = sum(
                scenario["ensemble_size"] for scenario in record.scenarios
            )
            table.add_row(
                [
                    path.name,
                    record.created,
                    record.preset or "-",
                    len(record.scenarios),
                    trials,
                    record.timing["executed"],
                    record.timing["cached"],
                ]
            )
        print(table.render())
        return 0
    path = find_run(arguments.run, runs_dir)
    record = load_run(path)
    print(f"run {path.name}")
    print(f"  created: {record.created}")
    print(f"  label: {record.label}  preset: {record.preset or '-'}")
    print(f"  schema_version: {record.schema_version}")
    print(
        "  timing: "
        f"{record.timing['executed']} executed / {record.timing['cached']} cached, "
        f"n_jobs={record.timing['n_jobs']}, "
        f"{record.timing['elapsed_seconds']:.2f}s"
    )
    failed = record.timing.get("failed", 0)
    retried = record.timing.get("retried", 0)
    pool_restarts = record.timing.get("pool_restarts", 0)
    if failed or retried or pool_restarts:
        print(
            "  fault recovery: "
            f"{failed} failed / {retried} retried / "
            f"{pool_restarts} pool restart(s)"
        )
    print("  environment:")
    for key in sorted(record.environment):
        print(f"    {key}: {record.environment[key]}")
    print("  config:")
    for key in sorted(record.config):
        print(f"    {key}: {record.config[key]}")
    table = TextTable(
        ["scenario", "estimator", "trials", "executed", "cached", "failed",
         "metrics"],
        title="Scenarios",
    )
    for scenario in record.scenarios:
        metric_names = sorted(
            {name for row in scenario["metrics"] for name in row}
        )
        table.add_row(
            [
                scenario["name"],
                scenario["estimator"]["method"],
                scenario["ensemble_size"],
                scenario["executed"],
                scenario["cached"],
                scenario.get("failed", 0),
                ", ".join(metric_names) if metric_names else "-",
            ]
        )
    print(table.render())
    return 0


def _resolve_estimator_axis(token: str) -> str:
    """Map a CLI estimator token (case-insensitive) to its registry name."""
    from repro.scenarios import available_estimator_axis_values

    by_lower = {name.lower(): name for name in available_estimator_axis_values()}
    try:
        return by_lower[token.lower()]
    except KeyError:
        raise ValidationError(
            f"unknown estimator {token!r}; choose from "
            f"{', '.join(sorted(by_lower))}"
        ) from None


def _cmd_figure(arguments: argparse.Namespace) -> int:
    # Imported lazily: the evaluation harness pulls in the whole stack.
    from repro.evaluation.figures import run_figure
    from repro.evaluation.reporting import render_figure, write_report

    result = run_figure(arguments.number)
    text = render_figure(result, plots=not arguments.no_plots)
    if arguments.out:
        write_report(text, arguments.out)
        print(f"figure {arguments.number} written to {arguments.out}")
    else:
        print(text)
    return 0


def _cmd_table1(arguments: argparse.Namespace) -> int:
    from repro.evaluation.table1 import render_table1, run_table1

    methods = tuple(m.strip() for m in arguments.methods.split(",") if m.strip())
    rows = run_table1(methods=methods)
    text = render_table1(rows)
    if arguments.out:
        Path(arguments.out).parent.mkdir(parents=True, exist_ok=True)
        Path(arguments.out).write_text(text + "\n", encoding="utf-8")
        print(f"table 1 written to {arguments.out}")
    else:
        print(text)
    return 0


def _cmd_serve(arguments: argparse.Namespace) -> int:
    """Boot the JSON API and serve until SIGTERM/SIGINT drains it."""
    import logging

    from repro.serve.config import ServeConfig
    from repro.serve.server import ServeRuntime

    # A server's lifecycle (drain signals, pool self-healing, shutdown)
    # must be visible to its operator: give the serve namespace an INFO
    # handler — the CLI otherwise configures no logging at all.
    serve_logger = logging.getLogger("repro.serve")
    if not serve_logger.handlers:
        handler = logging.StreamHandler(sys.stdout)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s: %(message)s")
        )
        serve_logger.addHandler(handler)
        serve_logger.setLevel(logging.INFO)

    config = ServeConfig.resolve(
        host=arguments.host,
        port=arguments.port,
        queue=arguments.queue,
        timeout=arguments.timeout,
        drain=arguments.drain,
        breaker=arguments.breaker,
        budget_epsilon=arguments.budget_epsilon,
        budget_delta=arguments.budget_delta,
        n_jobs=arguments.n_jobs,
        cache_dir=arguments.cache_dir,
        ledger_dir=arguments.ledger_dir,
    )
    runtime = ServeRuntime(config)
    host, port = runtime.address
    print(f"repro serve listening on http://{host}:{port}")
    print(
        f"  queue={config.queue_limit} timeout={config.timeout:g}s "
        f"drain={config.drain_deadline:g}s breaker={config.breaker_threshold} "
        f"n_jobs={config.n_jobs}"
    )
    print(
        f"  budget per dataset: epsilon={config.budget_epsilon:g} "
        f"delta={config.budget_delta:g}"
        + (f"  ledger: {config.ledger_dir}" if config.ledger_dir else "  ledger: memory")
    )
    sys.stdout.flush()
    runtime.run()
    return 0


_HANDLERS = {
    "datasets": _cmd_datasets,
    "summarize": _cmd_summarize,
    "fit": _cmd_fit,
    "release": _cmd_release,
    "sample": _cmd_sample,
    "run-ensemble": _cmd_run_ensemble,
    "run-scenario": _cmd_run_scenario,
    "compare": _cmd_compare,
    "runs": _cmd_runs,
    "figure": _cmd_figure,
    "table1": _cmd_table1,
    "serve": _cmd_serve,
}


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
