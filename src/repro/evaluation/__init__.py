"""Experiment harness reproducing the paper's tables and figures.

* :mod:`repro.evaluation.table1` — Table 1 (parameter comparison across
  KronFit / KronMom / Private on the four experiment graphs),
* :mod:`repro.evaluation.figures` — the five statistics series of
  Figures 1-4 (hop plot, degree distribution, scree plot, network values,
  clustering by degree) for original and synthetic graphs,
* :mod:`repro.evaluation.reporting` — text rendering of tables and series,
* :mod:`repro.evaluation.experiments` — configuration shared by the
  benchmark entry points (seeds, realization counts, output paths).
"""

from repro.evaluation.table1 import Table1Row, run_table1, render_table1
from repro.evaluation.figures import (
    FigureSeries,
    GraphStatistics,
    compute_graph_statistics,
    average_statistics,
    FigureResult,
    run_figure,
)
from repro.evaluation.reporting import render_series_block, write_report
from repro.evaluation.experiments import (
    ExperimentConfig,
    default_config,
    FIGURE_DATASETS,
)

__all__ = [
    "Table1Row",
    "run_table1",
    "render_table1",
    "FigureSeries",
    "GraphStatistics",
    "compute_graph_statistics",
    "average_statistics",
    "FigureResult",
    "run_figure",
    "render_series_block",
    "write_report",
    "ExperimentConfig",
    "default_config",
    "FIGURE_DATASETS",
]
