"""Shared experiment configuration.

Centralises the knobs every bench uses, honouring environment variables so
a fast default run and a paper-faithful run use the same code paths:

* ``REPRO_REALIZATIONS`` — ensemble size for "Expected" series (paper: 100;
  default here: 20 to keep the bench suite responsive),
* ``REPRO_HOP_SOURCES`` — BFS sources for sampled hop plots (0 = exact),
* ``REPRO_KRONFIT_ITERATIONS`` — gradient iterations for the KronFit
  baseline,
* ``REPRO_N_STARTS`` — independent Metropolis chains per KronFit fit
  (multi-start: best final log-likelihood wins, deterministic tie-break;
  default 1 = the historical single chain, bit-identical),
* ``REPRO_EPSILON`` / ``REPRO_DELTA`` — the privacy budget of the private
  estimator,
* ``REPRO_SEED`` — root seed every harness derives its streams from.

Parallel/caching knobs (consumed by :mod:`repro.runtime`):

* ``REPRO_N_JOBS`` — worker processes for trial ensembles (default 1 =
  serial; ``0`` or negative = all cores).  Results are bit-identical for
  any value: per-trial RNG streams depend only on the root seed and the
  trial index,
* ``REPRO_CACHE_DIR`` — directory memoizing completed trials on disk
  (default: empty = caching disabled).  A rerun with the same
  configuration executes zero trials; changing any knob that feeds a
  trial (or the trial code itself) invalidates the affected entries.

Counting-kernel knobs (consumed by :mod:`repro.stats.kernels`):

* ``REPRO_BLOCK_SIZE`` — rows per block of the blocked A² counting pass
  (default 0 = auto: rows are packed until a block's predicted product
  size reaches a fixed entry budget, bounding peak memory).  Any value
  yields bit-identical statistics; the knob only trades peak memory
  against per-block overhead.  The stats layer reads the environment at
  pass time; ``config.block_size`` mirrors the knob so bench artifacts
  can record it (``benchmarks/bench_stats.py`` writes it into
  ``BENCH_stats.json``).
* ``REPRO_KERNEL_BACKEND`` — execution engine of *both* native-kernel
  families (default ``auto``): the blocked A² counting pass and the
  KronFit Metropolis chain (:mod:`repro.native`).  ``auto`` prefers the
  fused kernels — ``numba`` when numba is installed, else the
  compiled-C ``cext`` — and silently falls back to the pure-Python
  references (blocked ``scipy`` SpGEMM / numpy chain); naming an
  unavailable backend fails loudly at use time.  Results are
  bit-identical across backends; the knob only selects how fast they
  are computed.  Mirrored as ``config.kernel_backend`` for bench
  provenance (and threaded into Table 1's KronFit trials), like the
  block size.
* ``REPRO_KERNEL_THREADS`` — threads the batched multichain kernel
  shards chains across when a multi-start KronFit fit advances all its
  chains in one native call (default 1; ``0`` = all usable cores).
  Purely a throughput knob — chains are data-independent, so results
  are bit-identical for any value.  Mirrored as
  ``config.kernel_threads`` and threaded into Table 1 / scenario
  KronFit fits.

CI sets ``REPRO_REALIZATIONS=2`` with ``REPRO_N_JOBS=2`` so one figure
bench exercises the full parallel harness end-to-end in minutes; paper
runs use ``REPRO_REALIZATIONS=100`` with as many jobs as the machine has
cores and a persistent ``REPRO_CACHE_DIR`` so interrupted ensembles
resume instead of restarting.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.stats.kernels import KERNEL_BACKEND_CHOICES

__all__ = ["ExperimentConfig", "default_config", "FIGURE_DATASETS"]

# Dataset per paper figure, in figure order.
FIGURE_DATASETS = {
    1: "ca-grqc",
    2: "as20",
    3: "ca-hepth",
    4: "synthetic-kronecker",
}


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by the benches (see module docstring for env overrides)."""

    epsilon: float = 0.2
    delta: float = 0.01
    realizations: int = 20
    hop_sources: int = 512
    svd_rank: int = 50
    kronfit_iterations: int = 30
    n_starts: int = 1  # KronFit chains per fit; best log-likelihood wins
    seed: int = 20120330  # the PAIS'12 workshop date
    n_jobs: int = 1  # trial-engine workers; 0 or negative = all cores
    cache_dir: str = ""  # trial-cache directory; empty = caching disabled
    block_size: int = 0  # A²-pass rows per block; 0 = auto-tuned
    kernel_backend: str = "auto"  # A²-pass engine; auto = fused if available
    kernel_threads: int = 1  # multichain kernel threads; 0 = all cores

    @property
    def trial_cache(self) -> str | None:
        """The cache argument for :func:`repro.runtime.run_trials`."""
        return self.cache_dir or None


def _env_int(name: str, fallback: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return fallback
    try:
        return int(raw)
    except ValueError as exc:
        raise ValueError(
            f"environment variable {name} must be an integer, got {raw!r}"
        ) from exc


def _env_choice(name: str, fallback: str, choices: tuple[str, ...]) -> str:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return fallback
    if raw not in choices:
        raise ValueError(
            f"environment variable {name} must be one of {', '.join(choices)}, got {raw!r}"
        )
    return raw


def _env_float(name: str, fallback: float) -> float:
    raw = os.environ.get(name)
    if raw is None:
        return fallback
    try:
        return float(raw)
    except ValueError as exc:
        raise ValueError(
            f"environment variable {name} must be a number, got {raw!r}"
        ) from exc


def default_config() -> ExperimentConfig:
    """The configuration benches run with, after environment overrides."""
    base = ExperimentConfig()
    return ExperimentConfig(
        epsilon=_env_float("REPRO_EPSILON", base.epsilon),
        delta=_env_float("REPRO_DELTA", base.delta),
        realizations=_env_int("REPRO_REALIZATIONS", base.realizations),
        hop_sources=_env_int("REPRO_HOP_SOURCES", base.hop_sources),
        svd_rank=_env_int("REPRO_SVD_RANK", base.svd_rank),
        kronfit_iterations=_env_int("REPRO_KRONFIT_ITERATIONS", base.kronfit_iterations),
        n_starts=_env_int("REPRO_N_STARTS", base.n_starts),
        seed=_env_int("REPRO_SEED", base.seed),
        n_jobs=_env_int("REPRO_N_JOBS", base.n_jobs),
        cache_dir=os.environ.get("REPRO_CACHE_DIR", base.cache_dir),
        block_size=_env_int("REPRO_BLOCK_SIZE", base.block_size),
        kernel_backend=_env_choice(
            "REPRO_KERNEL_BACKEND", base.kernel_backend, KERNEL_BACKEND_CHOICES
        ),
        kernel_threads=_env_int("REPRO_KERNEL_THREADS", base.kernel_threads),
    )
