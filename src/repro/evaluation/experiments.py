"""Shared experiment configuration.

Centralises the knobs every bench uses, honouring environment variables so
a fast default run and a paper-faithful run use the same code paths:

* ``REPRO_REALIZATIONS`` — ensemble size for "Expected" series (paper: 100;
  default here: 20 to keep the bench suite responsive),
* ``REPRO_HOP_SOURCES`` — BFS sources for sampled hop plots (0 = exact),
* ``REPRO_KRONFIT_ITERATIONS`` — gradient iterations for the KronFit
  baseline.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["ExperimentConfig", "default_config", "FIGURE_DATASETS"]

# Dataset per paper figure, in figure order.
FIGURE_DATASETS = {
    1: "ca-grqc",
    2: "as20",
    3: "ca-hepth",
    4: "synthetic-kronecker",
}


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by the benches (see module docstring for env overrides)."""

    epsilon: float = 0.2
    delta: float = 0.01
    realizations: int = 20
    hop_sources: int = 512
    svd_rank: int = 50
    kronfit_iterations: int = 30
    seed: int = 20120330  # the PAIS'12 workshop date


def _env_int(name: str, fallback: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return fallback
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"environment variable {name} must be an integer, got {raw!r}")


def default_config() -> ExperimentConfig:
    """The configuration benches run with, after environment overrides."""
    base = ExperimentConfig()
    return ExperimentConfig(
        epsilon=float(os.environ.get("REPRO_EPSILON", base.epsilon)),
        delta=float(os.environ.get("REPRO_DELTA", base.delta)),
        realizations=_env_int("REPRO_REALIZATIONS", base.realizations),
        hop_sources=_env_int("REPRO_HOP_SOURCES", base.hop_sources),
        svd_rank=_env_int("REPRO_SVD_RANK", base.svd_rank),
        kronfit_iterations=_env_int("REPRO_KRONFIT_ITERATIONS", base.kronfit_iterations),
        seed=_env_int("REPRO_SEED", base.seed),
    )
