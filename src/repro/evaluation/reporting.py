"""Text rendering for figure series and experiment reports.

The paper's figures are gnuplot log-log overlays; with no plotting stack
the benches emit the same data as aligned text: each curve is printed as
up to ``max_points`` log-spaced (x, y) pairs, which is enough to read off
the shape, the crossovers, and who tracks whom — the claims EXPERIMENTS.md
checks.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.evaluation.figures import STATISTIC_NAMES, FigureResult
from repro.utils.asciiplot import ascii_scatter
from repro.utils.tables import format_float

__all__ = ["render_series_block", "render_figure", "write_report"]

# Hop plots have a linear hop axis in the paper; everything else is log-log.
_LINEAR_X = {"hop_plot"}

_TITLE = {
    "hop_plot": "(a) Hop plot — reachable ordered pairs vs hops",
    "degree_distribution": "(b) Degree distribution — node count vs degree",
    "scree": "(c) Scree plot — singular value vs rank",
    "network_value": "(d) Network value — principal singular vector component vs rank",
    "clustering": "(e) Average clustering coefficient vs node degree",
}


def _sample_indices(size: int, max_points: int) -> np.ndarray:
    if size <= max_points:
        return np.arange(size)
    # Log-spaced indices mirror what the paper's log axes emphasise.
    raw = np.unique(
        np.round(np.logspace(0, np.log10(size), max_points)).astype(int) - 1
    )
    return raw[(raw >= 0) & (raw < size)]


def render_series_block(
    result: FigureResult, statistic: str, *, max_points: int = 12
) -> str:
    """Render every curve of one statistic as aligned text rows."""
    lines = [_TITLE.get(statistic, statistic)]
    for label, stats in result.statistics.items():
        curve = stats[statistic]
        if curve.xs.size == 0:
            lines.append(f"  {label:<20s} (empty)")
            continue
        indices = _sample_indices(curve.xs.size, max_points)
        pairs = " ".join(
            f"({format_float(float(curve.xs[i]), 3)}, {format_float(float(curve.ys[i]), 3)})"
            for i in indices
        )
        lines.append(f"  {label:<20s} {pairs}")
    return "\n".join(lines)


def render_figure(
    result: FigureResult, *, max_points: int = 12, plots: bool = True
) -> str:
    """Render a complete figure: header, parameters, series, ASCII plots.

    ``plots=False`` drops the scatter overlays and keeps only the numeric
    series rows (useful for compact logs).
    """
    lines = [
        f"Figure {result.figure_number} — dataset {result.dataset}",
        "fitted initiators:",
    ]
    for method, estimate in result.estimates.items():
        theta = estimate.initiator
        lines.append(
            f"  {method:<10s} a={theta.a:.4f} b={theta.b:.4f} c={theta.c:.4f}"
        )
    for statistic in STATISTIC_NAMES:
        lines.append("")
        lines.append(render_series_block(result, statistic, max_points=max_points))
        if plots:
            # Single realizations only: the Expected curves sit on top of
            # them and would render the overlay unreadable.
            series = {
                label: (stats[statistic].xs, stats[statistic].ys)
                for label, stats in result.statistics.items()
                if not label.startswith("Expected")
            }
            lines.append("")
            lines.append(
                ascii_scatter(
                    series,
                    log_x=statistic not in _LINEAR_X,
                    log_y=True,
                )
            )
    return "\n".join(lines)


def write_report(text: str, path: str | Path) -> Path:
    """Write a report file, creating parent directories; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text + "\n", encoding="utf-8")
    return path
