"""Table 1: estimated initiator parameters across graphs and estimators.

The paper's Table 1 lists, for each of the four experiment graphs, the
(a, b, c) estimated by KronFit, KronMom, and the private Algorithm 1 at
(ε = 0.2, δ = 0.01).  :func:`run_table1` reproduces those twelve fits and
:func:`render_table1` prints them in the paper's layout, adding the true
initiator row for the synthetic graph where recovery can be judged
against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.datasets import load_dataset
from repro.core.nonprivate import fit_kronfit, fit_kronmom, fit_private
from repro.evaluation.experiments import ExperimentConfig, default_config
from repro.kronecker.initiator import Initiator
from repro.runtime import TrialSpec, run_trials
from repro.utils.tables import TextTable

__all__ = ["Table1Row", "run_table1", "render_table1", "TABLE1_DATASETS"]

TABLE1_DATASETS = ("ca-grqc", "ca-hepth", "as20", "synthetic-kronecker")

# Ground truth for the synthetic row (the paper's generator initiator).
SYNTHETIC_TRUTH = Initiator(0.99, 0.45, 0.25)


@dataclass(frozen=True)
class Table1Row:
    """One (dataset, estimator) cell group of Table 1."""

    dataset: str
    method: str
    initiator: Initiator


def run_table1(
    *,
    config: ExperimentConfig | None = None,
    datasets: tuple[str, ...] = TABLE1_DATASETS,
    methods: tuple[str, ...] = ("KronFit", "KronMom", "Private"),
) -> list[Table1Row]:
    """Fit every (dataset, method) pair of Table 1.

    The twelve fits are independent, so they run through
    :mod:`repro.runtime` honouring ``config.n_jobs`` / ``config.cache_dir``.
    Each trial keeps the historical per-(dataset, method) seed (the
    spawned children of ``config.seed + 100 + dataset_index``), so the
    table is bit-identical to the serial original for any worker count.
    """
    config = config or default_config()
    unknown = [method for method in methods if method not in _TABLE1_METHODS]
    if unknown:
        raise ValueError(f"unknown method {unknown[0]!r}")
    specs: list[TrialSpec] = []
    for dataset_index, dataset in enumerate(datasets):
        seeds = np.random.SeedSequence(config.seed + 100 + dataset_index).spawn(
            len(methods)
        )
        for method, seed in zip(methods, seeds):
            specs.append(
                TrialSpec(
                    fn=_table1_trial,
                    params={
                        "dataset": dataset,
                        "method": method,
                        "epsilon": config.epsilon,
                        "delta": config.delta,
                        "kronfit_iterations": config.kronfit_iterations,
                        "kernel_backend": config.kernel_backend,
                    },
                    index=len(specs),
                    seed=seed,
                )
            )
    report = run_trials(
        specs, n_jobs=config.n_jobs, cache=config.trial_cache, label="table1"
    )
    return [
        Table1Row(
            dataset=spec.params["dataset"],
            method=spec.params["method"],
            initiator=initiator,
        )
        for spec, initiator in zip(specs, report.results)
    ]


_TABLE1_METHODS = ("KronFit", "KronMom", "Private")


def _table1_trial(
    rng: np.random.Generator,
    *,
    dataset: str,
    method: str,
    epsilon: float,
    delta: float,
    kronfit_iterations: int,
    kernel_backend: str = "auto",
) -> Initiator:
    """One Table 1 cell group: load the dataset and fit one estimator.

    ``kernel_backend`` selects the Metropolis-chain engine of the KronFit
    baseline (results are bit-identical for every engine; the parameter
    exists so the configured backend is part of the trial's cache key and
    fails loudly inside the worker if unavailable there).
    """
    graph = load_dataset(dataset)
    if method == "KronFit":
        result = fit_kronfit(
            graph,
            n_iterations=kronfit_iterations,
            seed=rng,
            backend=kernel_backend,
        )
    elif method == "KronMom":
        result = fit_kronmom(graph)
    elif method == "Private":
        result = fit_private(graph, epsilon=epsilon, delta=delta, seed=rng)
    else:
        raise ValueError(f"unknown method {method!r}")
    return result.initiator


def render_table1(rows: list[Table1Row], *, config: ExperimentConfig | None = None) -> str:
    """Render rows in the paper's Table 1 layout (one line per dataset)."""
    config = config or default_config()
    methods: list[str] = []
    for row in rows:
        if row.method not in methods:
            methods.append(row.method)
    table = TextTable(
        ["network"] + [f"{m} (a, b, c)" for m in methods],
        title=(
            f"Table 1 — parameter estimates at epsilon={config.epsilon}, "
            f"delta={config.delta}"
        ),
    )
    datasets: list[str] = []
    for row in rows:
        if row.dataset not in datasets:
            datasets.append(row.dataset)
    by_key = {(row.dataset, row.method): row for row in rows}
    for dataset in datasets:
        cells: list[str] = [dataset]
        for method in methods:
            row = by_key.get((dataset, method))
            if row is None:
                cells.append("-")
            else:
                theta = row.initiator
                cells.append(f"{theta.a:.4f}, {theta.b:.4f}, {theta.c:.4f}")
        table.add_row(cells)
    if "synthetic-kronecker" in datasets:
        truth = SYNTHETIC_TRUTH
        table.add_row(
            ["synthetic truth"]
            + [f"{truth.a:.4f}, {truth.b:.4f}, {truth.c:.4f}"] * len(methods)
        )
    return table.render()
