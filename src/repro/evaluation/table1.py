"""Table 1: estimated initiator parameters across graphs and estimators.

The paper's Table 1 lists, for each of the four experiment graphs, the
(a, b, c) estimated by KronFit, KronMom, and the private Algorithm 1 at
(ε = 0.2, δ = 0.01).  :func:`run_table1` reproduces those twelve fits and
:func:`render_table1` prints them in the paper's layout, adding the true
initiator row for the synthetic graph where recovery can be judged
against ground truth.

The grid itself is declared in :func:`repro.scenarios.table1_scenarios`
(one single-fit scenario per (dataset, method) cell, historical fixed
seeds); this module is a thin consumer that executes the scenarios and
shapes the results into rows.  Multi-start KronFit enters through
``config.n_starts`` — with the default of 1 the table is bit-identical
to the pre-scenario harness for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.evaluation.experiments import ExperimentConfig, default_config
from repro.kronecker.initiator import Initiator
from repro.scenarios import run_scenarios, table1_scenarios
from repro.scenarios.presets import TABLE1_DATASETS, TABLE1_METHODS
from repro.utils.tables import TextTable

__all__ = ["Table1Row", "run_table1", "render_table1", "TABLE1_DATASETS"]

# Ground truth for the synthetic row (the paper's generator initiator).
SYNTHETIC_TRUTH = Initiator(0.99, 0.45, 0.25)


@dataclass(frozen=True)
class Table1Row:
    """One (dataset, estimator) cell group of Table 1."""

    dataset: str
    method: str
    initiator: Initiator


def run_table1(
    *,
    config: ExperimentConfig | None = None,
    datasets: tuple[str, ...] = TABLE1_DATASETS,
    methods: tuple[str, ...] = TABLE1_METHODS,
) -> list[Table1Row]:
    """Fit every (dataset, method) pair of Table 1.

    The fits are independent scenarios, so they run through
    :mod:`repro.runtime` honouring ``config.n_jobs`` / ``config.cache_dir``
    and reusing the persistent worker pool across cells.  Each cell keeps
    the historical per-(dataset, method) seed, so the table is
    bit-identical to the serial original for any worker count.
    """
    config = config or default_config()
    unknown = [method for method in methods if method not in TABLE1_METHODS]
    if unknown:
        # ValidationError subclasses ValueError *and* ReproError, so the
        # CLI renders "error: ..." instead of a traceback.
        raise ValidationError(f"unknown method {unknown[0]!r}")
    scenarios = table1_scenarios(config, datasets=datasets, methods=methods)
    reports = run_scenarios(
        scenarios, n_jobs=config.n_jobs, cache=config.trial_cache
    )
    return [
        Table1Row(
            dataset=report.scenario.workload,
            method=report.scenario.estimator.method,
            initiator=report.results[0],
        )
        for report in reports
    ]


def render_table1(rows: list[Table1Row], *, config: ExperimentConfig | None = None) -> str:
    """Render rows in the paper's Table 1 layout (one line per dataset)."""
    config = config or default_config()
    methods: list[str] = []
    for row in rows:
        if row.method not in methods:
            methods.append(row.method)
    table = TextTable(
        ["network"] + [f"{m} (a, b, c)" for m in methods],
        title=(
            f"Table 1 — parameter estimates at epsilon={config.epsilon}, "
            f"delta={config.delta}"
        ),
    )
    datasets: list[str] = []
    for row in rows:
        if row.dataset not in datasets:
            datasets.append(row.dataset)
    by_key = {(row.dataset, row.method): row for row in rows}
    for dataset in datasets:
        cells: list[str] = [dataset]
        for method in methods:
            row = by_key.get((dataset, method))
            if row is None:
                cells.append("-")
            else:
                theta = row.initiator
                cells.append(f"{theta.a:.4f}, {theta.b:.4f}, {theta.c:.4f}")
        table.add_row(cells)
    if "synthetic-kronecker" in datasets:
        truth = SYNTHETIC_TRUTH
        table.add_row(
            ["synthetic truth"]
            + [f"{truth.a:.4f}, {truth.b:.4f}, {truth.c:.4f}"] * len(methods)
        )
    return table.render()
