"""The five figure statistics and the per-figure experiment driver.

Each of the paper's Figures 1-4 overlays, for one dataset, the series of
the original graph and of synthetic Kronecker graphs generated from the
three estimators (KronFit / KronMom / Private), for five statistics:

(a) hop plot, (b) degree distribution, (c) scree plot (singular values),
(d) network values (principal singular vector components), (e) average
clustering coefficient by degree.

Figure 1 additionally overlays "Expected" curves: the statistic averaged
over an ensemble of realizations (the paper uses 100).  Each ensemble is
declared as a pure-sampling scenario
(:func:`repro.scenarios.expected_ensemble_scenario`: a ``Fixed``
initiator estimator with the ``graph_statistics`` measurement) and
executed by the scenario engine — ``config.n_jobs`` fans the
realizations across worker processes and ``config.cache_dir`` memoizes
completed trials, with results bit-identical for any worker count.

Within one graph the five statistics share the graph's
:class:`~repro.stats.kernels.StatsContext`: the clustering series reuses
the blocked A² pass (also shared with any triangle/sensitivity counts on
the same graph) and the hop plot reuses the cached float adjacency, so
per-realization cost is one pass plus the BFS/SVD work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graphs.datasets import load_dataset
from repro.graphs.graph import Graph
from repro.core.nonprivate import (
    EstimatorResult,
    fit_kronfit,
    fit_kronmom,
    fit_private,
)
from repro.evaluation.experiments import FIGURE_DATASETS, ExperimentConfig, default_config
from repro.scenarios import expected_ensemble_scenario, run_scenario
from repro.stats.clustering import clustering_by_degree
from repro.stats.degrees import degree_distribution
from repro.stats.hopplot import hop_plot
from repro.stats.spectral import network_values, singular_values
from repro.utils.rng import SeedLike, as_generator, spawn_generators

__all__ = [
    "FigureSeries",
    "GraphStatistics",
    "compute_graph_statistics",
    "average_statistics",
    "FigureResult",
    "run_figure",
    "STATISTIC_NAMES",
]

STATISTIC_NAMES = (
    "hop_plot",
    "degree_distribution",
    "scree",
    "network_value",
    "clustering",
)


@dataclass(frozen=True)
class FigureSeries:
    """One plotted curve: label plus (x, y) arrays."""

    label: str
    xs: np.ndarray
    ys: np.ndarray


@dataclass(frozen=True)
class GraphStatistics:
    """The five figure statistics of one graph, keyed by STATISTIC_NAMES."""

    series: dict[str, FigureSeries]

    def __getitem__(self, name: str) -> FigureSeries:
        return self.series[name]


def compute_graph_statistics(
    graph: Graph,
    label: str,
    *,
    hop_sources: int | None = 512,
    svd_rank: int = 50,
    seed: SeedLike = None,
) -> GraphStatistics:
    """Compute all five figure statistics of ``graph``."""
    rng = as_generator(seed)
    hops, pairs = hop_plot(graph, n_sources=hop_sources, seed=rng)
    degree_values, degree_counts = degree_distribution(graph)
    scree = singular_values(graph, k=svd_rank)
    netval = network_values(graph, k=svd_rank)
    cluster_degrees, cluster_means = clustering_by_degree(graph)
    series = {
        "hop_plot": FigureSeries(label, hops.astype(float), pairs.astype(float)),
        "degree_distribution": FigureSeries(
            label, degree_values.astype(float), degree_counts.astype(float)
        ),
        "scree": FigureSeries(
            label, np.arange(1, scree.size + 1, dtype=float), scree
        ),
        "network_value": FigureSeries(
            label, np.arange(1, netval.size + 1, dtype=float), netval
        ),
        "clustering": FigureSeries(
            label, cluster_degrees.astype(float), cluster_means
        ),
    }
    return GraphStatistics(series=series)


def average_statistics(
    per_graph: list[GraphStatistics], label: str
) -> GraphStatistics:
    """Average the five statistics across an ensemble ("Expected" curves).

    Aggregation is statistic-appropriate:

    * hop plot — mean pair count per hop, shorter series padded with their
      saturated final value,
    * degree distribution — mean node count per degree over the union of
      degree values (absent degree = 0 count),
    * scree / network value — mean per rank, truncated to the shortest
      series,
    * clustering — mean coefficient per degree over the graphs where that
      degree occurs.
    """
    if not per_graph:
        raise ValueError("cannot average an empty ensemble")
    series: dict[str, FigureSeries] = {}
    series["hop_plot"] = _average_padded(
        [g["hop_plot"] for g in per_graph], label, pad="last"
    )
    series["degree_distribution"] = _average_sparse(
        [g["degree_distribution"] for g in per_graph], label, absent_is_zero=True
    )
    series["scree"] = _average_truncated([g["scree"] for g in per_graph], label)
    series["network_value"] = _average_truncated(
        [g["network_value"] for g in per_graph], label
    )
    series["clustering"] = _average_sparse(
        [g["clustering"] for g in per_graph], label, absent_is_zero=False
    )
    return GraphStatistics(series=series)


def _average_padded(curves: list[FigureSeries], label: str, pad: str) -> FigureSeries:
    length = max(curve.ys.size for curve in curves)
    stacked = np.empty((len(curves), length), dtype=np.float64)
    for row, curve in enumerate(curves):
        values = curve.ys
        if values.size < length:
            fill = values[-1] if (pad == "last" and values.size) else 0.0
            values = np.concatenate([values, np.full(length - values.size, fill)])
        stacked[row] = values
    return FigureSeries(label, np.arange(length, dtype=float), stacked.mean(axis=0))


def _average_truncated(curves: list[FigureSeries], label: str) -> FigureSeries:
    length = min(curve.ys.size for curve in curves)
    if length == 0:
        return FigureSeries(label, np.empty(0), np.empty(0))
    stacked = np.stack([curve.ys[:length] for curve in curves])
    return FigureSeries(
        label, np.arange(1, length + 1, dtype=float), stacked.mean(axis=0)
    )


def _average_sparse(
    curves: list[FigureSeries], label: str, absent_is_zero: bool
) -> FigureSeries:
    all_xs = np.unique(np.concatenate([curve.xs for curve in curves]))
    if all_xs.size == 0:
        return FigureSeries(label, np.empty(0), np.empty(0))
    totals = np.zeros(all_xs.size, dtype=np.float64)
    counts = np.zeros(all_xs.size, dtype=np.float64)
    for curve in curves:
        positions = np.searchsorted(all_xs, curve.xs)
        totals[positions] += curve.ys
        counts[positions] += 1.0
    if absent_is_zero:
        averaged = totals / len(curves)
    else:
        averaged = np.divide(totals, counts, out=np.zeros_like(totals), where=counts > 0)
    return FigureSeries(label, all_xs.astype(float), averaged)


@dataclass(frozen=True)
class FigureResult:
    """Everything behind one paper figure.

    Attributes
    ----------
    figure_number, dataset:
        Which figure / which experiment graph.
    estimates:
        The three fitted estimators (method name -> result).
    statistics:
        Curve label -> the five series of that graph ("Original",
        "KronFit", "KronMom", "Private", and optionally "Expected <m>").
    """

    figure_number: int
    dataset: str
    estimates: dict[str, EstimatorResult] = field(repr=False)
    statistics: dict[str, GraphStatistics] = field(repr=False)


def run_figure(
    figure_number: int,
    *,
    config: ExperimentConfig | None = None,
    include_expected: bool | None = None,
    methods: tuple[str, ...] = ("KronFit", "KronMom", "Private"),
) -> FigureResult:
    """Reproduce one of Figures 1-4 end to end.

    Fits the requested estimators on the figure's dataset, samples one
    synthetic realization from each, computes the five statistics for the
    original and each synthetic graph, and (for Figure 1, or when
    ``include_expected`` is forced) the ensemble-averaged "Expected"
    curves over ``config.realizations`` realizations.
    """
    if figure_number not in FIGURE_DATASETS:
        raise ValueError(
            f"figure_number must be one of {sorted(FIGURE_DATASETS)}, got {figure_number}"
        )
    config = config or default_config()
    if include_expected is None:
        include_expected = figure_number == 1
    dataset = FIGURE_DATASETS[figure_number]
    graph = load_dataset(dataset)
    root = as_generator(config.seed + figure_number)
    seeds = spawn_generators(root, 4 + len(methods))

    estimates = _fit_methods(graph, methods, config, seeds[0])
    statistics: dict[str, GraphStatistics] = {}
    statistics["Original"] = compute_graph_statistics(
        graph,
        "Original",
        hop_sources=config.hop_sources or None,
        svd_rank=config.svd_rank,
        seed=seeds[1],
    )
    for index, (method, estimate) in enumerate(estimates.items()):
        synthetic = estimate.sample_graph(seed=seeds[2 + index])
        statistics[method] = compute_graph_statistics(
            synthetic,
            method,
            hop_sources=config.hop_sources or None,
            svd_rank=config.svd_rank,
            seed=seeds[2 + index],
        )
    if include_expected:
        for method_index, (method, estimate) in enumerate(estimates.items()):
            label = f"Expected {method}"
            theta = estimate.initiator
            scenario = expected_ensemble_scenario(
                name=f"figure{figure_number}:{label}",
                label=label,
                initiator=(theta.a, theta.b, theta.c),
                k=estimate.k,
                realizations=config.realizations,
                entropy=(config.seed, figure_number, method_index),
                hop_sources=config.hop_sources or None,
                svd_rank=config.svd_rank,
            )
            report = run_scenario(
                scenario, n_jobs=config.n_jobs, cache=config.trial_cache
            )
            statistics[label] = average_statistics(report.results, label)
    return FigureResult(
        figure_number=figure_number,
        dataset=dataset,
        estimates=estimates,
        statistics=statistics,
    )


def _fit_methods(
    graph: Graph,
    methods: tuple[str, ...],
    config: ExperimentConfig,
    seed: SeedLike,
) -> dict[str, EstimatorResult]:
    rng = as_generator(seed)
    results: dict[str, EstimatorResult] = {}
    for method in methods:
        if method == "KronFit":
            results[method] = fit_kronfit(
                graph,
                n_iterations=config.kronfit_iterations,
                n_starts=config.n_starts,
                seed=rng,
            )
        elif method == "KronMom":
            results[method] = fit_kronmom(graph)
        elif method == "Private":
            results[method] = fit_private(
                graph, epsilon=config.epsilon, delta=config.delta, seed=rng
            )
        else:
            raise ValueError(f"unknown method {method!r}")
    return results
