"""repro — differentially private stochastic Kronecker graph estimation.

A full reproduction of *Mir & Wright, "A Differentially Private Estimator
for the Stochastic Kronecker Graph Model" (PAIS @ EDBT 2012)*: the private
estimator (Algorithm 1), the KronFit and KronMom baselines it is compared
against, the DP substrate (Laplace mechanism, Hay et al. degree release,
NRS smooth sensitivity), exact SKG samplers, and the graph-statistics
suite behind the paper's tables and figures.

Quickstart::

    import repro

    graph = repro.load_dataset("ca-grqc")
    estimate = repro.PrivateKroneckerEstimator(epsilon=0.2, delta=0.01,
                                               seed=0).fit(graph)
    print(estimate.describe())
    synthetic = estimate.sample_graph(seed=1)

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from repro.errors import (
    ReproError,
    ValidationError,
    GraphFormatError,
    EstimationError,
    NotFittedError,
    PrivacyError,
    PrivacyBudgetError,
    DatasetError,
)
from repro.graphs import (
    Graph,
    read_edge_list,
    write_edge_list,
    load_dataset,
    available_datasets,
    dataset_info,
)
from repro.kronecker import (
    Initiator,
    as_initiator,
    sample_skg,
    sample_skg_naive,
    expected_statistics,
    KronMomEstimator,
    KronFitEstimator,
)
from repro.privacy import (
    laplace_mechanism,
    PrivacyAccountant,
    release_sorted_degrees,
    release_triangle_count,
    release_matching_statistics,
    smooth_sensitivity_triangles,
)
from repro.core import (
    PrivateKroneckerEstimator,
    PrivateEstimate,
    fit_kronmom,
    fit_kronfit,
    fit_private,
    sample_ensemble,
    DPDegreeSequenceSynthesizer,
)
from repro.runtime import TrialCache, TrialRunReport, TrialSpec, run_trials
from repro.stats import matching_statistics, summarize

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ValidationError",
    "GraphFormatError",
    "EstimationError",
    "NotFittedError",
    "PrivacyError",
    "PrivacyBudgetError",
    "DatasetError",
    # graphs
    "Graph",
    "read_edge_list",
    "write_edge_list",
    "load_dataset",
    "available_datasets",
    "dataset_info",
    # kronecker
    "Initiator",
    "as_initiator",
    "sample_skg",
    "sample_skg_naive",
    "expected_statistics",
    "KronMomEstimator",
    "KronFitEstimator",
    # privacy
    "laplace_mechanism",
    "PrivacyAccountant",
    "release_sorted_degrees",
    "release_triangle_count",
    "release_matching_statistics",
    "smooth_sensitivity_triangles",
    # core
    "PrivateKroneckerEstimator",
    "PrivateEstimate",
    "fit_kronmom",
    "fit_kronfit",
    "fit_private",
    "sample_ensemble",
    "DPDegreeSequenceSynthesizer",
    # runtime
    "TrialSpec",
    "TrialRunReport",
    "TrialCache",
    "run_trials",
    # stats
    "matching_statistics",
    "summarize",
]
