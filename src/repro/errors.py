"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the finer-grained categories below.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphFormatError",
    "ValidationError",
    "EstimationError",
    "NotFittedError",
    "PrivacyError",
    "PrivacyBudgetError",
    "DatasetError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong range, shape, or type)."""


class GraphFormatError(ReproError, ValueError):
    """An edge list or adjacency structure could not be interpreted."""


class EstimationError(ReproError, RuntimeError):
    """A parameter-estimation procedure failed to produce an estimate."""


class NotFittedError(EstimationError):
    """An estimator was queried for results before :meth:`fit` was called."""


class PrivacyError(ReproError, RuntimeError):
    """A differential-privacy invariant would be violated."""


class PrivacyBudgetError(PrivacyError):
    """The requested computation exceeds the remaining privacy budget."""


class DatasetError(ReproError, KeyError):
    """An unknown dataset name was requested from the registry."""
