"""repro.native — shared native-kernel layer (numba + compiled-C backends).

Hot loops in the reproduction run behind interchangeable execution
engines selected by one knob, ``REPRO_KERNEL_BACKEND``:

* the **counting kernel** (:mod:`repro.native.counting`) — the fused
  masked A² pass behind :func:`repro.stats.kernels.triangle_pass`;
* the **chain kernel** (:mod:`repro.native.chain`) — batched Metropolis
  proposals for KronFit's permutation sampler
  (:class:`repro.kronecker.likelihood.PermutationSampler`);
* the **multichain kernel** (same module) — S independent chains per
  native call for multi-start KronFit
  (:class:`repro.kronecker.likelihood.MultiChainSampler`), sharded
  across threads via the ``REPRO_KERNEL_THREADS`` knob.

Each kernel is written twice — a numba-jittable Python loop nest and an
identical C function compiled on first use via the system compiler — and
registered with the shared machinery in :mod:`repro.native.registry`:
lazy availability probes with memoized failure reasons, compile-once
shared-library caching, smoke tests at probe time, and the common
``auto``/loud-failure resolution contract.  Every engine of a kernel is
bit-identical to its pure-Python reference; the knob only selects speed.
"""

from repro.native.chain import (
    CHAIN_BACKENDS,
    CHAIN_KERNEL,
    MULTICHAIN_BACKENDS,
    MULTICHAIN_KERNEL,
    available_chain_backends,
    available_multichain_backends,
    chain_backend_available,
    chain_backend_error,
    chain_block,
    chain_kernel,
    draw_proposal_batch,
    multichain_backend_available,
    multichain_backend_error,
    multichain_block,
    multichain_kernel,
    resolve_chain_backend,
    resolve_multichain_backend,
)
from repro.native.counting import (
    COUNTING_KERNEL,
    FUSED_BACKENDS,
    backend_available,
    backend_error,
    backend_kernel,
    fused_block,
)
from repro.native.registry import (
    KERNEL_BACKEND_ENV,
    KERNEL_THREADS_ENV,
    NATIVE_BACKENDS,
    OPENMP_ENV,
    NativeKernel,
    available_backends,
    auto_backend,
    compile_shared_library,
    resolve_backend,
    resolve_kernel_threads,
)

__all__ = [
    "NATIVE_BACKENDS",
    "KERNEL_BACKEND_ENV",
    "KERNEL_THREADS_ENV",
    "OPENMP_ENV",
    "NativeKernel",
    "compile_shared_library",
    "resolve_backend",
    "auto_backend",
    "available_backends",
    "resolve_kernel_threads",
    "COUNTING_KERNEL",
    "FUSED_BACKENDS",
    "backend_available",
    "backend_error",
    "backend_kernel",
    "fused_block",
    "CHAIN_KERNEL",
    "CHAIN_BACKENDS",
    "chain_block",
    "chain_backend_available",
    "chain_backend_error",
    "chain_kernel",
    "draw_proposal_batch",
    "resolve_chain_backend",
    "available_chain_backends",
    "MULTICHAIN_KERNEL",
    "MULTICHAIN_BACKENDS",
    "multichain_block",
    "multichain_backend_available",
    "multichain_backend_error",
    "multichain_kernel",
    "resolve_multichain_backend",
    "available_multichain_backends",
]
