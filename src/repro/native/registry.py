"""The native-kernel backend registry: probe, compile-cache, loud failure.

PR 3 introduced fused counting kernels with two execution engines — a
numba-jitted Python loop nest and the identical loop compiled from C via
the system compiler and called through :mod:`ctypes` — plus the machinery
around them: lazy availability probing with memoized failure reasons,
compile-once shared-library caching with atomic installs, and the
``REPRO_KERNEL_BACKEND`` resolution contract (``auto`` prefers the fused
engines and silently falls back to the pure-Python reference; *naming* an
unavailable engine fails loudly).

That machinery is not counting-specific, and the KronFit permutation
chain needs exactly the same treatment, so this module hosts it for every
native kernel in the package:

* :class:`NativeKernel` — one kernel described twice (a numba-jittable
  Python loop nest and an identical C function), with per-backend lazy
  probing memoized in :attr:`NativeKernel.states`.  Tests monkeypatch
  that dict to simulate hosts without numba or a compiler.
* :func:`compile_shared_library` — compile a C source into a per-user
  cached ``.so`` (keyed by a hash of source + flags; concurrent probes
  build to private scratch files and install with atomic renames).
* :func:`resolve_backend` / :func:`auto_backend` /
  :func:`available_backends` — the shared resolution contract,
  parameterized by the kernel and the name of its pure-Python reference
  engine (``scipy`` for the counting pass, ``numpy`` for the chain).

Concrete kernels live next door: :mod:`repro.native.counting` and
:mod:`repro.native.chain`.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Callable, Sequence

from repro.errors import ValidationError

__all__ = [
    "NATIVE_BACKENDS",
    "KERNEL_BACKEND_ENV",
    "KERNEL_THREADS_ENV",
    "OPENMP_ENV",
    "NativeKernel",
    "compile_shared_library",
    "resolve_backend",
    "auto_backend",
    "available_backends",
    "resolve_kernel_threads",
]

# Compiled backend names, in the preference order `auto` resolution uses.
NATIVE_BACKENDS = ("numba", "cext")

# The environment knob shared by every native kernel (counting and chain).
KERNEL_BACKEND_ENV = "REPRO_KERNEL_BACKEND"

# Worker threads for batched kernels (the multichain family).  Resolution
# order: explicit argument, then this environment variable, then 1.  A
# value of 0 means "all usable cores".  Threads never change results —
# chains are data-independent, so the thread count only shards them.
KERNEL_THREADS_ENV = "REPRO_KERNEL_THREADS"

# Set to "off" (or 0/no/false) to compile cext kernels without -fopenmp
# even on hosts whose compiler supports it.  CI uses this to prove the
# serial fallback stays bit-identical; it is not needed for correctness.
OPENMP_ENV = "REPRO_OPENMP"

# Compile flags for every cext kernel.  -ffp-contract=off forbids the
# compiler from fusing a*b+c into an FMA: the chain kernel accumulates
# float64 scores and must round exactly like the numba and numpy engines
# on every host (the counting kernel is pure integer, where the flag is
# inert).  The flags participate in the cache key, so changing them
# recompiles.
_C_FLAGS = ("-O3", "-shared", "-fPIC", "-ffp-contract=off")

# Values of OPENMP_ENV that disable the -fopenmp optional flag.
_OPENMP_OFF = ("off", "0", "no", "false")


def _host_supports_popcnt() -> bool:
    """Whether this host can execute the x86 POPCNT instruction.

    ``-mpopcnt`` is only ever *offered* as an optional flag; it must not
    be passed on hosts whose CPU lacks the instruction (the compile would
    succeed but the kernel would die with SIGILL at run time), so the
    gate is the build host's own CPU flags — the compile cache is keyed
    by the chosen flags, so heterogeneous hosts sharing a cache directory
    build separate libraries.
    """
    if platform.machine() not in ("x86_64", "AMD64", "amd64"):
        return False
    try:
        with open("/proc/cpuinfo", "r", encoding="utf-8") as handle:
            return " popcnt" in handle.read()
    except OSError:
        return False


def _enabled_optional_flags(flags: Sequence[str]) -> tuple[str, ...]:
    """The subset of a kernel's optional compile flags usable on this host.

    ``-fopenmp`` is dropped when :data:`OPENMP_ENV` says "off";
    ``-mpopcnt`` is dropped unless the build host's CPU executes POPCNT.
    Unknown optional flags pass through (the compile try/fallback in
    :meth:`NativeKernel._probe_cext` still guards them).
    """
    chosen = []
    for flag in flags:
        if flag == "-fopenmp":
            raw = os.environ.get(OPENMP_ENV, "").strip().lower()
            if raw in _OPENMP_OFF:
                continue
        if flag == "-mpopcnt" and not _host_supports_popcnt():
            continue
        chosen.append(flag)
    return tuple(chosen)


def resolve_kernel_threads(threads: int | None = None) -> int:
    """How many threads a batched kernel call should use.

    Resolution order: explicit argument, then :data:`KERNEL_THREADS_ENV`,
    then 1 (serial — the bit-identity contracts make threading purely a
    throughput knob, so the conservative default never oversubscribes a
    pool worker).  A value of 0 (or any negative value) means "all usable
    cores".  Non-integer values fail loudly.
    """
    source = "argument"
    if threads is None:
        raw = os.environ.get(KERNEL_THREADS_ENV)
        if not raw or not raw.strip():
            return 1
        source = f"environment variable {KERNEL_THREADS_ENV}"
        try:
            threads = int(raw.strip())
        except ValueError:
            raise ValidationError(
                f"kernel threads (from {source}) must be an integer, "
                f"got {raw!r}"
            ) from None
    if isinstance(threads, bool) or not isinstance(threads, int):
        raise ValidationError(
            f"kernel threads (from {source}) must be an integer, "
            f"got {threads!r}"
        )
    if threads <= 0:
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except AttributeError:  # pragma: no cover - non-Linux hosts
            return max(1, os.cpu_count() or 1)
    return threads


class NativeKernel:
    """One kernel implemented as twin loop nests: Python (numba) and C.

    Parameters
    ----------
    name:
        Kernel identifier ("counting", "chain"); names the cached ``.so``.
    python_impl:
        The plain-Python loop nest.  Must be numba-jittable (it is *not*
        used as an execution engine itself — the pure-Python reference
        paths live with their callers).
    c_source / c_symbol:
        The identical loop nest as a C translation unit and the exported
        function name.
    c_restype / c_argtypes:
        The ctypes signature of ``c_symbol``.
    smoke_test:
        Callable run against every probed kernel on a hand-checked
        instance; raising turns the probe into "backend unavailable"
        instead of corrupting results later.  Doubles as the numba
        warm-up compile.
    numba_parallel:
        Jit the Python loop nest with ``parallel=True`` so its
        ``numba.prange`` loops shard across threads (the multichain
        kernel); plain kernels leave it off.
    c_optional_flags:
        Extra compile flags that improve the C twin but are not required
        for correctness (``-fopenmp``, ``-mpopcnt``).  Each is dropped
        up-front when the host can't honour it, and the whole set falls
        back to the base flags if the compile still fails; the flags that
        did take effect are recorded in :attr:`cext_extra_flags`.
    """

    def __init__(
        self,
        name: str,
        python_impl: Callable,
        c_source: str,
        c_symbol: str,
        c_restype,
        c_argtypes: Sequence,
        smoke_test: Callable[[Callable], None],
        numba_parallel: bool = False,
        c_optional_flags: Sequence[str] = (),
    ) -> None:
        self.name = name
        self.python_impl = python_impl
        self.c_source = c_source
        self.c_symbol = c_symbol
        self.c_restype = c_restype
        self.c_argtypes = list(c_argtypes)
        self.smoke_test = smoke_test
        self.numba_parallel = numba_parallel
        self.c_optional_flags = tuple(c_optional_flags)
        # The optional flags the cext probe actually compiled with (None
        # until the probe has run).  CI's OpenMP-less fallback check
        # reads this to prove -fopenmp really was dropped.
        self.cext_extra_flags: tuple[str, ...] | None = None
        # Lazily probed backend states: name -> (kernel or None, error or
        # None); exactly one of the two is None.  Tests monkeypatch
        # entries to simulate unavailable backends.
        self.states: dict[str, tuple[Callable | None, str | None]] = {}

    def available(self, backend: str) -> bool:
        """Whether ``backend`` can run this kernel on this host."""
        return self._state(backend)[0] is not None

    def error(self, backend: str) -> str | None:
        """Why ``backend`` is unavailable (None when it is available)."""
        return self._state(backend)[1]

    def kernel(self, backend: str) -> Callable:
        """The compiled kernel of an *available* backend.

        Raises ``RuntimeError`` if the backend is unavailable — callers
        are expected to have gone through :func:`resolve_backend` first,
        which turns unavailability into a user-facing
        :class:`ValidationError`.
        """
        kernel, error = self._state(backend)
        if kernel is None:
            raise RuntimeError(
                f"fused backend {backend!r} is unavailable: {error}"
            )
        return kernel

    # -- internals --------------------------------------------------------

    def _state(self, backend: str) -> tuple[Callable | None, str | None]:
        if backend not in NATIVE_BACKENDS:
            raise KeyError(f"unknown fused backend {backend!r}")
        state = self.states.get(backend)
        if state is None:
            probe = self._probe_numba if backend == "numba" else self._probe_cext
            try:
                state = (probe(), None)
            except Exception as error:  # unavailable, remember why
                state = (None, str(error))
            self.states[backend] = state
        return state

    def _probe_numba(self) -> Callable:
        """Jit the Python loop nest and warm it on the smoke instance."""
        try:
            import numba
        except ImportError as exc:
            raise RuntimeError(
                "numba is not installed (pip install numba, or the "
                "'accel' extra of this package)"
            ) from exc
        # cache=True persists the compiled kernel next to its module, so
        # new processes (CLI runs, pool workers under spawn) skip the
        # multi-second JIT; an unwritable cache location degrades to a
        # NumbaWarning plus an in-process compile, never an error.
        kernel = numba.njit(
            self.python_impl,
            cache=True,
            nogil=True,
            parallel=self.numba_parallel,
        )
        self.smoke_test(kernel)
        return kernel

    def _probe_cext(self) -> Callable:
        """Compile the C twin into a cached shared library and load it.

        Optional flags are tried first and dropped wholesale if the
        compile fails — a host without OpenMP support still gets the
        kernel, just serial (the ``#pragma omp`` lines become inert
        unknown pragmas, so results are bit-identical either way).
        """
        extra_flags = _enabled_optional_flags(self.c_optional_flags)
        try:
            library = compile_shared_library(
                self.c_source, self.name, extra_flags=extra_flags
            )
        except RuntimeError:
            if not extra_flags:
                raise
            extra_flags = ()
            library = compile_shared_library(self.c_source, self.name)
        self.cext_extra_flags = extra_flags
        raw = getattr(ctypes.CDLL(str(library)), self.c_symbol)
        raw.restype = self.c_restype
        raw.argtypes = self.c_argtypes

        def kernel(*args):
            return raw(*args)

        self.smoke_test(kernel)
        return kernel


def compile_shared_library(
    c_source: str, tag: str, extra_flags: Sequence[str] = ()
) -> Path:
    """Compile (once per source revision) and return the library path.

    The library is keyed by a hash of the C source and the compile flags
    (base and extra) in a per-user cache directory; concurrent processes
    may race to build it, so each builds to a private temporary file and
    installs it with an atomic rename.
    """
    compiler = os.environ.get("CC") or shutil.which("cc") or shutil.which("gcc")
    if compiler is None:
        raise RuntimeError("no C compiler found (install cc/gcc or set CC)")
    flags = (*_C_FLAGS, *extra_flags)
    fingerprint = c_source + "\x00" + " ".join(flags)
    digest = hashlib.sha256(fingerprint.encode()).hexdigest()[:16]
    cache_root = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    cache_dir = Path(cache_root) / "repro-kernels"
    library = cache_dir / f"{tag}-{digest}.so"
    if library.exists():
        return library
    cache_dir.mkdir(parents=True, exist_ok=True)
    # Both the source and the library are built under private temporary
    # names and installed with atomic renames: concurrent first-time
    # probes (e.g. pool workers on a fresh host) must never compile from
    # — or dlopen — another process's half-written file.
    source = cache_dir / f"{tag}-{digest}.c"
    source_fd, source_scratch = tempfile.mkstemp(suffix=".c", dir=cache_dir)
    with os.fdopen(source_fd, "w", encoding="utf-8") as handle:
        handle.write(c_source)
    library_fd, library_scratch = tempfile.mkstemp(suffix=".so", dir=cache_dir)
    os.close(library_fd)
    try:
        completed = subprocess.run(
            [compiler, *flags, "-o", library_scratch, source_scratch],
            capture_output=True,
            text=True,
        )
        if completed.returncode != 0:
            raise RuntimeError(
                f"C kernel compilation failed ({compiler}): "
                f"{completed.stderr.strip() or completed.stdout.strip()}"
            )
        os.replace(source_scratch, source)  # keep the source for debugging
        os.replace(library_scratch, library)
    finally:
        for scratch in (source_scratch, library_scratch):
            if os.path.exists(scratch):
                os.unlink(scratch)
    return library


def auto_backend(kernel: NativeKernel, reference: str) -> str:
    """``auto`` resolution: the first available native engine, else the
    kernel's pure-Python reference."""
    for candidate in NATIVE_BACKENDS:
        if kernel.available(candidate):
            return candidate
    return reference


def available_backends(kernel: NativeKernel, reference: str) -> tuple[str, ...]:
    """The concrete engines that can run ``kernel`` on this host.

    The reference engine leads (it always runs), followed by the
    available native engines in preference order.
    """
    return (reference,) + tuple(
        name for name in NATIVE_BACKENDS if kernel.available(name)
    )


def resolve_backend(
    kernel: NativeKernel,
    backend: str | None = None,
    *,
    accepted: tuple[str, ...],
    reference: str,
    aliases: tuple[str, ...] = (),
) -> str:
    """The concrete engine a pass/chain will run: argument, else environment.

    ``auto`` (the default) resolves to the first available native engine —
    ``numba``, then the compiled-C ``cext`` — and silently falls back to
    the kernel's pure-Python ``reference`` when neither can run on this
    host.  Explicitly requesting an unavailable engine raises a
    :class:`ValidationError` naming the reason, so a pipeline that
    *expects* the fused kernels fails loudly instead of quietly running
    slower.  ``aliases`` are extra names accepted for the reference engine
    (the chain accepts the counting knob's ``scipy`` as its ``numpy``),
    keeping one ``REPRO_KERNEL_BACKEND`` value valid for both kernels.
    """
    source = "argument"
    if backend is None:
        raw = os.environ.get(KERNEL_BACKEND_ENV)
        if not raw:  # unset or empty = auto
            return auto_backend(kernel, reference)
        backend = raw
        source = f"environment variable {KERNEL_BACKEND_ENV}"
    if not isinstance(backend, str) or backend not in accepted:
        raise ValidationError(
            f"kernel backend (from {source}) must be one of "
            f"{', '.join(accepted)}, got {backend!r}"
        )
    if backend == "auto":
        return auto_backend(kernel, reference)
    if backend == reference or backend in aliases:
        return reference
    if not kernel.available(backend):
        raise ValidationError(
            f"kernel backend {backend!r} (from {source}) is unavailable on "
            f"this host: {kernel.error(backend)}"
        )
    return backend
