"""The fused grass-hopping sampler kernel for exact SKG generation.

:func:`repro.kronecker.sampling.sample_skg` samples one profile class at
a time: the class edge count is Binomial(class size, class probability),
and the chosen pairs are uniform without replacement within the class.
The numpy reference used to realize "uniform without replacement" by
rejection (draw random pairs, dedup, top up) — fine at paper scale,
wasteful at k≈20 where single classes carry 10⁵–10⁶ edges.  This module
is the third ``repro.native`` kernel family (after counting and chain):
the whole per-class selection loop in compiled code, bit-identical across
engines by construction.

**The draw contract** (owned by ``sample_skg``).  All randomness is
pre-drawn in numpy-land, once per call:

1. Per class, in ascending ``(z, x)`` order — exactly the reference
   enumeration ``z ∈ 0..k``, ``x ∈ 0..k−z``, skipping empty classes and
   zero-probability classes *before* any draw —
   ``count ← rng.binomial(class_size, probability)``;
2. ``uniforms ← rng.random(Σ counts)`` — one flat stream, consumed
   class-by-class in the same ascending order, exactly ``count`` values
   per class.

Kernels only ever *consume* these streams, so stream consumption cannot
depend on the engine.

**The selection contract.**  Per class, Floyd's algorithm draws ``count``
distinct indices from ``[0, class_size)`` using exactly ``count``
uniforms: for ``t = class_size−count .. class_size−1``, ``r = ⌊u·(t+1)⌋``
(clamped to ``t``); emit ``t`` if ``r`` was already selected, else ``r``.
Membership is a Python ``set`` in the reference and an epoch-stamped
open-addressing table here (``table_stamp[slot] == class index + 1``
marks live entries, so the table is never cleared between classes).  The
engines emit the *same index sequence*, hence the same pair multiset.

**The unranking contract.**  A class index decomposes bijectively as
``idx = a·(C(k−z,x)·2^{x−1}) + b·2^{x−1} + w``: ``a`` lexicographically
unranks the both-0 level subset (levels ordered most-significant first),
``b`` the differing-level subset of the remaining levels, and ``w``
orients the differing levels — the most significant differing level is
fixed to ``u=0 / v=1`` (guaranteeing ``u < v``), the rest take bits of
``w`` from the least significant bit upward (bit set → ``u`` carries the
1).  The pair key is ``(u << k) | v``.  Pure integer arithmetic against a
caller-built Pascal table (:func:`choose_table`), so every engine maps
indices to identical keys; distinct indices within a class and disjoint
classes mean one global sort of the emitted keys yields the canonical
edge arrays directly.

The equivalence matrix (``tests/kronecker/test_sampler_equivalence.py``)
pins every backend × k × initiator cell to graphs bit-identical to the
numpy reference.
"""

from __future__ import annotations

import ctypes
from math import comb
from typing import Callable

import numpy as np

from repro.native.registry import (
    NativeKernel,
    available_backends,
    resolve_backend,
)

__all__ = [
    "SAMPLER_KERNEL",
    "SAMPLER_BACKENDS",
    "sampler_block",
    "sampler_backend_available",
    "sampler_backend_error",
    "sampler_kernel",
    "resolve_sampler_backend",
    "available_sampler_backends",
    "choose_table",
]

# Accepted values of the sampler-backend knob.  The sampler's pure-Python
# reference engine is called "numpy"; "scipy" is accepted as an alias so
# one REPRO_KERNEL_BACKEND value can force the reference engine of the
# counting pass, the chain, and the sampler at once.
SAMPLER_BACKENDS = ("auto", "numpy", "scipy", "numba", "cext")


def choose_table(k: int) -> np.ndarray:
    """Flat ``(k+1)×(k+1)`` Pascal table ``C(n, r)`` at ``n*(k+1)+r``.

    Entries with ``r > n`` are 0.  Every binomial the kernels consult
    (class sizes, combination unranking) lives in this range; values fit
    int64 comfortably for the supported ``k`` (pair counts at k=20 are
    ~5·10¹¹ ≪ 2⁶³).
    """
    table = np.zeros((k + 1) * (k + 1), dtype=np.int64)
    for n in range(k + 1):
        for r in range(n + 1):
            table[n * (k + 1) + r] = comb(n, r)
    return table


def sampler_block(
    k,
    n_classes,
    z_arr,
    x_arr,
    counts,
    offsets,
    class_sizes,
    choose,
    uniforms,
    keys_out,
    table_keys,
    table_stamp,
    capacity,
):
    """Select and unrank every class's pairs (numba-jittable loop nest).

    Per class ``c`` (skipped when ``counts[c] == 0``): Floyd's algorithm
    over ``uniforms[offsets[c] : offsets[c]+counts[c]]`` emits distinct
    class indices, each unranked to a pair key written at the same slot
    of ``keys_out``.  ``table_keys``/``table_stamp`` (length ``capacity``,
    a power of two ≥ 2·max(counts)) back the epoch-stamped membership
    table.  Returns the number of keys written (Σ counts).
    """
    kp1 = k + 1
    mask = capacity - 1
    full = (1 << k) - 1
    total = 0
    for c in range(n_classes):
        count = counts[c]
        if count == 0:
            continue
        z = z_arr[c]
        x = x_arr[c]
        size = class_sizes[c]
        base = offsets[c]
        epoch = c + 1
        n_orient = 1 << (x - 1)
        c2 = choose[(k - z) * kp1 + x]
        emitted = 0
        for t in range(size - count, size):
            u = uniforms[base + emitted]
            r = int(u * (t + 1.0))
            if r > t:
                r = t
            slot = r & mask
            found = False
            while table_stamp[slot] == epoch:
                if table_keys[slot] == r:
                    found = True
                    break
                slot = (slot + 1) & mask
            if found:
                idx = t
                slot = t & mask
                while table_stamp[slot] == epoch:
                    slot = (slot + 1) & mask
            else:
                idx = r
            table_keys[slot] = idx
            table_stamp[slot] = epoch
            # unrank idx -> (a, b, w) -> bit masks -> pair key
            a = idx // (c2 * n_orient)
            rem = idx % (c2 * n_orient)
            b = rem // n_orient
            w = rem % n_orient
            zero_mask = 0
            slots = z
            aa = a
            for level in range(k):
                if slots == 0:
                    break
                cnt = choose[(k - 1 - level) * kp1 + (slots - 1)]
                if aa < cnt:
                    zero_mask |= 1 << (k - 1 - level)
                    slots -= 1
                else:
                    aa -= cnt
            differ_mask = 0
            m = k - z
            pos = 0
            bb = b
            slots = x
            for level in range(k):
                if slots == 0:
                    break
                bit = 1 << (k - 1 - level)
                if zero_mask & bit:
                    continue
                cnt = choose[(m - 1 - pos) * kp1 + (slots - 1)]
                if bb < cnt:
                    differ_mask |= bit
                    slots -= 1
                else:
                    bb -= cnt
                pos += 1
            one_mask = full & ~zero_mask & ~differ_mask
            u_val = one_mask
            v_val = one_mask
            first = True
            tw = 0
            for level in range(k):
                bit = 1 << (k - 1 - level)
                if not (differ_mask & bit):
                    continue
                if first:
                    v_val |= bit
                    first = False
                else:
                    if (w >> tw) & 1:
                        u_val |= bit
                    else:
                        v_val |= bit
                    tw += 1
            keys_out[base + emitted] = (u_val << k) | v_val
            emitted += 1
        total += emitted
    return total


_C_SOURCE = r"""
#include <stdint.h>

int64_t repro_sampler_block(
    int64_t k,
    int64_t n_classes,
    const int64_t *z_arr,
    const int64_t *x_arr,
    const int64_t *counts,
    const int64_t *offsets,
    const int64_t *class_sizes,
    const int64_t *choose,
    const double *uniforms,
    int64_t *keys_out,
    int64_t *table_keys,
    int64_t *table_stamp,
    int64_t capacity)
{
    int64_t kp1 = k + 1;
    int64_t mask = capacity - 1;
    int64_t full = ((int64_t)1 << k) - 1;
    int64_t total = 0;
    for (int64_t c = 0; c < n_classes; c++) {
        int64_t count = counts[c];
        if (count == 0) {
            continue;
        }
        int64_t z = z_arr[c];
        int64_t x = x_arr[c];
        int64_t size = class_sizes[c];
        int64_t base = offsets[c];
        int64_t epoch = c + 1;
        int64_t n_orient = (int64_t)1 << (x - 1);
        int64_t c2 = choose[(k - z) * kp1 + x];
        int64_t emitted = 0;
        for (int64_t t = size - count; t < size; t++) {
            double u = uniforms[base + emitted];
            int64_t r = (int64_t)(u * ((double)t + 1.0));
            if (r > t) {
                r = t;
            }
            int64_t slot = r & mask;
            int64_t found = 0;
            while (table_stamp[slot] == epoch) {
                if (table_keys[slot] == r) {
                    found = 1;
                    break;
                }
                slot = (slot + 1) & mask;
            }
            int64_t idx;
            if (found) {
                idx = t;
                slot = t & mask;
                while (table_stamp[slot] == epoch) {
                    slot = (slot + 1) & mask;
                }
            } else {
                idx = r;
            }
            table_keys[slot] = idx;
            table_stamp[slot] = epoch;
            /* unrank idx -> (a, b, w) -> bit masks -> pair key */
            int64_t a = idx / (c2 * n_orient);
            int64_t rem = idx % (c2 * n_orient);
            int64_t b = rem / n_orient;
            int64_t w = rem % n_orient;
            int64_t zero_mask = 0;
            int64_t slots = z;
            int64_t aa = a;
            for (int64_t level = 0; level < k; level++) {
                if (slots == 0) {
                    break;
                }
                int64_t cnt = choose[(k - 1 - level) * kp1 + (slots - 1)];
                if (aa < cnt) {
                    zero_mask |= (int64_t)1 << (k - 1 - level);
                    slots -= 1;
                } else {
                    aa -= cnt;
                }
            }
            int64_t differ_mask = 0;
            int64_t m = k - z;
            int64_t pos = 0;
            int64_t bb = b;
            slots = x;
            for (int64_t level = 0; level < k; level++) {
                if (slots == 0) {
                    break;
                }
                int64_t bit = (int64_t)1 << (k - 1 - level);
                if (zero_mask & bit) {
                    continue;
                }
                int64_t cnt = choose[(m - 1 - pos) * kp1 + (slots - 1)];
                if (bb < cnt) {
                    differ_mask |= bit;
                    slots -= 1;
                } else {
                    bb -= cnt;
                }
                pos += 1;
            }
            int64_t one_mask = full & ~zero_mask & ~differ_mask;
            int64_t u_val = one_mask;
            int64_t v_val = one_mask;
            int64_t first = 1;
            int64_t tw = 0;
            for (int64_t level = 0; level < k; level++) {
                int64_t bit = (int64_t)1 << (k - 1 - level);
                if (!(differ_mask & bit)) {
                    continue;
                }
                if (first) {
                    v_val |= bit;
                    first = 0;
                } else {
                    if ((w >> tw) & 1) {
                        u_val |= bit;
                    } else {
                        v_val |= bit;
                    }
                    tw += 1;
                }
            }
            keys_out[base + emitted] = (u_val << k) | v_val;
            emitted += 1;
        }
        total += emitted;
    }
    return total;
}
"""


def _smoke_test(kernel: Callable) -> None:
    """Run the kernel on a hand-checked 3-class instance at k=2.

    Classes in ascending (z, x) order — (0,1,1), (0,2,0), (1,1,0), each of
    size 2 — with uniforms chosen so Floyd's algorithm takes both arms
    (two collisions emit ``t``) and the epoch-stamped table is reused
    across classes without clearing.  The expected keys were derived by
    hand from the unranking contract.  Catches a miscompiled or
    ABI-mismatched kernel at probe time; doubles as the numba warm-up
    compile.
    """
    k = 2
    z_arr = np.array([0, 0, 1], dtype=np.int64)
    x_arr = np.array([1, 2, 1], dtype=np.int64)
    counts = np.array([1, 2, 2], dtype=np.int64)
    offsets = np.array([0, 1, 3], dtype=np.int64)
    class_sizes = np.array([2, 2, 2], dtype=np.int64)
    choose = choose_table(k)
    uniforms = np.array([0.9, 0.5, 0.3, 0.99, 0.2], dtype=np.float64)
    keys_out = np.zeros(5, dtype=np.int64)
    table_keys = np.zeros(16, dtype=np.int64)
    table_stamp = np.zeros(16, dtype=np.int64)
    total = int(
        kernel(k, 3, z_arr, x_arr, counts, offsets, class_sizes,
               choose, uniforms, keys_out, table_keys, table_stamp, 16)
    )
    expected = [11, 3, 6, 1, 2]
    if total != 5 or keys_out.tolist() != expected:
        raise RuntimeError(
            f"sampler kernel self-check failed: total={total}, "
            f"keys={keys_out.tolist()} (expected {expected})"
        )


_INT64_ARG = np.ctypeslib.ndpointer(np.int64, flags="C_CONTIGUOUS")
_FLOAT64_ARG = np.ctypeslib.ndpointer(np.float64, flags="C_CONTIGUOUS")

SAMPLER_KERNEL = NativeKernel(
    name="sampler",
    python_impl=sampler_block,
    c_source=_C_SOURCE,
    c_symbol="repro_sampler_block",
    c_restype=ctypes.c_int64,
    c_argtypes=[
        ctypes.c_int64,  # k
        ctypes.c_int64,  # n_classes
        _INT64_ARG,  # z_arr
        _INT64_ARG,  # x_arr
        _INT64_ARG,  # counts (binomial draws, per class)
        _INT64_ARG,  # offsets into uniforms/keys_out
        _INT64_ARG,  # class_sizes
        _INT64_ARG,  # choose (flat Pascal table)
        _FLOAT64_ARG,  # uniforms (one flat stream)
        _INT64_ARG,  # keys_out
        _INT64_ARG,  # table_keys (membership scratch)
        _INT64_ARG,  # table_stamp (epoch scratch)
        ctypes.c_int64,  # capacity (power of two)
    ],
    smoke_test=_smoke_test,
)


def sampler_backend_available(name: str) -> bool:
    """Whether the fused sampler backend ``name`` can run on this host."""
    return SAMPLER_KERNEL.available(name)


def sampler_backend_error(name: str) -> str | None:
    """Why ``name`` is unavailable (None when it is available)."""
    return SAMPLER_KERNEL.error(name)


def sampler_kernel(name: str) -> Callable:
    """The batch kernel of an *available* fused sampler backend.

    The callable has the :func:`sampler_block` signature and contract.
    """
    return SAMPLER_KERNEL.kernel(name)


def resolve_sampler_backend(backend: str | None = None) -> str:
    """The concrete engine :func:`sample_skg` will select pairs with.

    Same contract as the counting and chain kernels: ``auto`` prefers the
    fused engines and silently falls back to the numpy reference; naming
    an unavailable engine raises.  ``scipy`` is accepted as an alias for
    the reference so one ``REPRO_KERNEL_BACKEND`` value can force every
    kernel family onto its reference engine.
    """
    return resolve_backend(
        SAMPLER_KERNEL,
        backend,
        accepted=SAMPLER_BACKENDS,
        reference="numpy",
        aliases=("scipy",),
    )


def available_sampler_backends() -> tuple[str, ...]:
    """The concrete sampler engines that can run on this host."""
    return available_backends(SAMPLER_KERNEL, "numpy")
