"""The fused counting kernel: one CSR walk per row block, no product matrix.

The scipy backend of :func:`repro.stats.kernels.triangle_pass` is bound by
the sparse product ``A[r0:r1] @ A``: scipy's SpGEMM materializes (and
sorts the column indices of) every path-2 entry before the pass reduces
them.  The fused kernel here never builds the product.  It walks the CSR
rows directly with Gustavson's dense accumulator —

* scatter the multiplicities of every 2-path out of row ``u`` into an
  O(n) workspace,
* read the edge-restricted sum straight back through ``N(u)`` (twice the
  row's triangle count),
* fold the off-diagonal maximum (the LS_Δ ingredient) while zeroing the
  touched workspace slots for the next row —

so each path-2 contribution costs one increment instead of an SpGEMM
entry, and peak extra memory is two length-n scratch arrays.

The kernel is registered with :class:`repro.native.registry.NativeKernel`
twice over: :func:`fused_block` jitted by numba, and the identical loop
nest as a ~40-line C function compiled on first use with the system C
compiler.  Both are integer-exact (the arithmetic is increments and
comparisons on int64 accumulators), so their results are bit-identical to
the scipy backend and to the pre-blocking reference oracles — the
cross-backend equivalence suite (``tests/stats/test_backend_equivalence.py``)
enforces this for every block size and graph family.

Backend selection goes through
:func:`repro.stats.kernels.resolve_kernel_backend`.  (The PR 3-era
``repro.stats._fused`` shim that re-exported this surface was removed in
PR 7 — import from here.)
"""

from __future__ import annotations

import ctypes
from typing import Callable

import numpy as np

from repro.native.registry import NATIVE_BACKENDS, NativeKernel

__all__ = [
    "COUNTING_KERNEL",
    "FUSED_BACKENDS",
    "backend_available",
    "backend_error",
    "backend_kernel",
    "fused_block",
]

# Historical name for the native engines (PR 3's `_fused.FUSED_BACKENDS`).
FUSED_BACKENDS = NATIVE_BACKENDS


def fused_block(indptr, indices, r0, r1, per_node, workspace, touched):
    """One fused row block of the A² pass (jitted by the numba backend).

    Parameters are the int32 CSR structure of the symmetric adjacency,
    the block's row range ``[r0, r1)``, the block's slice of the per-node
    triangle vector (int64, written in place), and two zeroed/garbage
    scratch arrays of length ``n_nodes`` (int64 counts, int32 touched
    columns).  Returns the block's off-diagonal maximum common-neighbour
    count.  The workspace must arrive all-zero and is left all-zero.
    """
    max_common = np.int64(0)
    for u in range(r0, r1):
        row_start = indptr[u]
        row_end = indptr[u + 1]
        n_touched = 0
        for idx in range(row_start, row_end):
            w = indices[idx]
            for jdx in range(indptr[w], indptr[w + 1]):
                v = indices[jdx]
                if workspace[v] == 0:
                    touched[n_touched] = v
                    n_touched += 1
                workspace[v] += 1
        on_edges = np.int64(0)
        for idx in range(row_start, row_end):
            on_edges += workspace[indices[idx]]
        per_node[u - r0] = on_edges // 2
        for t in range(n_touched):
            v = touched[t]
            count = workspace[v]
            workspace[v] = 0
            if v != u and count > max_common:
                max_common = count
    return max_common


# The cext backend: fused_block transliterated to C.  Kept in lockstep
# with the Python loop nest above — the equivalence suite cross-checks
# every backend against the reference oracles on every run.
_C_SOURCE = """\
#include <stdint.h>

int64_t repro_fused_block(
    const int32_t *indptr,
    const int32_t *indices,
    int64_t r0,
    int64_t r1,
    int64_t *per_node,
    int64_t *workspace,
    int32_t *touched)
{
    int64_t max_common = 0;
    for (int64_t u = r0; u < r1; u++) {
        int32_t row_start = indptr[u];
        int32_t row_end = indptr[u + 1];
        int64_t n_touched = 0;
        for (int32_t idx = row_start; idx < row_end; idx++) {
            int32_t w = indices[idx];
            for (int32_t jdx = indptr[w]; jdx < indptr[w + 1]; jdx++) {
                int32_t v = indices[jdx];
                if (workspace[v] == 0) {
                    touched[n_touched++] = v;
                }
                workspace[v] += 1;
            }
        }
        int64_t on_edges = 0;
        for (int32_t idx = row_start; idx < row_end; idx++) {
            on_edges += workspace[indices[idx]];
        }
        per_node[u - r0] = on_edges / 2;
        for (int64_t t = 0; t < n_touched; t++) {
            int32_t v = touched[t];
            int64_t count = workspace[v];
            workspace[v] = 0;
            if (v != (int32_t)u && count > max_common) {
                max_common = count;
            }
        }
    }
    return max_common;
}
"""


def _smoke_test(kernel: Callable) -> None:
    """Run the kernel on a hand-checked diamond graph.

    Catches a miscompiled or ABI-mismatched kernel at probe time (turning
    it into "backend unavailable") instead of corrupting statistics later.
    Also serves as the numba warm-up compile.
    """
    # The diamond: triangles {0,1,2} and {1,2,3}; nodes 0 and 3 (and the
    # adjacent pair 1, 2) share two common neighbours.
    indptr = np.array([0, 2, 5, 8, 10], dtype=np.int32)
    indices = np.array([1, 2, 0, 2, 3, 0, 1, 3, 1, 2], dtype=np.int32)
    per_node = np.zeros(4, dtype=np.int64)
    workspace = np.zeros(4, dtype=np.int64)
    touched = np.empty(4, dtype=np.int32)
    max_common = int(kernel(indptr, indices, 0, 4, per_node, workspace, touched))
    if per_node.tolist() != [1, 2, 2, 1] or max_common != 2:
        raise RuntimeError(
            f"fused kernel self-check failed: per_node={per_node.tolist()}, "
            f"max_common={max_common}"
        )
    if workspace.any():
        raise RuntimeError("fused kernel self-check failed: workspace not zeroed")


_INT32_ARG = np.ctypeslib.ndpointer(np.int32, flags="C_CONTIGUOUS")
_INT64_ARG = np.ctypeslib.ndpointer(np.int64, flags="C_CONTIGUOUS")

COUNTING_KERNEL = NativeKernel(
    name="counting",
    python_impl=fused_block,
    c_source=_C_SOURCE,
    c_symbol="repro_fused_block",
    c_restype=ctypes.c_int64,
    c_argtypes=[
        _INT32_ARG,  # indptr
        _INT32_ARG,  # indices
        ctypes.c_int64,  # r0
        ctypes.c_int64,  # r1
        _INT64_ARG,  # per_node (block slice)
        _INT64_ARG,  # workspace
        _INT32_ARG,  # touched
    ],
    smoke_test=_smoke_test,
)


def backend_available(name: str) -> bool:
    """Whether the fused counting backend ``name`` can run on this host."""
    return COUNTING_KERNEL.available(name)


def backend_error(name: str) -> str | None:
    """Why ``name`` is unavailable (None when it is available)."""
    return COUNTING_KERNEL.error(name)


def backend_kernel(name: str) -> Callable:
    """The block kernel of an *available* fused counting backend.

    The callable has the :func:`fused_block` signature and contract.
    """
    return COUNTING_KERNEL.kernel(name)
