"""The fused Metropolis-chain kernel for KronFit permutation sampling.

One KronFit fit runs on the order of 10⁵ Metropolis proposals over node
correspondences σ (see :mod:`repro.kronecker.likelihood`).  Executed as
individual Python steps, each proposal costs ~10 tiny numpy operations;
this module executes whole proposal *batches* inside compiled code, with
three contracts that make every execution engine bit-identical:

**The draw contract** (:func:`draw_proposal_batch`).  All randomness is
pre-drawn in numpy-land, once per :meth:`PermutationSampler.run` call:

1. ``i ← rng.integers(0, n, size)`` — one draw per proposal;
2. ``j ← rng.integers(0, n, size)``, then, while any ``i == j`` collision
   remains, redraw exactly the colliding ``j`` entries (in index order).
   Resampling only ``j`` keeps the proposal uniform over *distinct*
   ordered pairs, and means every proposal is a real swap — ``proposed``
   and ``acceptance_rate`` count actual proposals;
3. ``log u ← log(rng.random(size))`` — the acceptance thresholds, drawn
   after the collision loop settles.

Kernels only ever *consume* these streams, so stream consumption cannot
depend on the engine or on how a run is chunked into kernel batches.

**The score contract.**  A swap of σ(i) and σ(j) changes the edge term by
``Σ_cells Δcount[cell] · score[cell]`` where ``score = log P − log(1−P)``
per profile cell and ``Δcount`` is the *integer* profile-histogram change
— computed exactly (increments), hence order-independent.  The float
accumulation visits the *touched* cells in ascending index order,
skipping zero counts; the numpy reference performs the identical scan
(``np.unique`` yields ascending touched cells), so the sum sequence —
and therefore every accept/reject decision — is bit-identical across
engines.  (The cext build passes ``-ffp-contract=off`` so no FMA
contraction can perturb the rounding.)

**The delta-scan contract.**  Every ``counts[]`` update records its cell
in a touched-cell event list (at most ``2·(deg i + deg j)`` events per
proposal); the per-proposal scan, histogram fold, and scratch reset all
walk that list instead of the full ``(k+1)²`` table.  A proposal on a
sparse graph therefore costs O(deg) rather than O(deg + k²) — the two
full-table rescans PR 4 paid per swap are gone.  Because any cell with a
nonzero count necessarily appears in the event list, sorting the events
and skipping duplicates reproduces the full ascending scan's float
accumulation sequence exactly: the optimization cannot perturb a single
trajectory.  ``stats[0]`` accumulates the number of score-table touches
(nonzero cells accumulated), which is how tests prove the O(k²) rescan
stays gone.

**The histogram contract.**  ``Δcount`` of an accepted swap is folded
into the persistent profile histogram, so the histogram is maintained
incrementally on touched edges only — no O(E) ``edge_profiles`` recompute
per permutation sample.

The kernel is registered twice (numba jit of :func:`chain_block`, and the
identical C loop compiled via :func:`repro.native.registry`); the numpy
reference lives with its caller,
:class:`repro.kronecker.likelihood.PermutationSampler`.  The equivalence
matrix (``tests/kronecker/test_chain_equivalence.py``) pins every
backend × batch size × graph family × θ cell to identical σ trajectories,
histograms, and acceptance counts.

**The multichain family** (:func:`multichain_block`) advances S
*independent* chains — each with its own σ, score table, histogram, and
pre-drawn draw-contract streams — in one native call, parallelized
*across chains* (OpenMP in C, ``numba.prange`` in the jit; both optional
and inert when unavailable).  Within a chain the proposal loop is the
same contract as :func:`chain_block`, with one integer-exact rewrite: the
profile cell is derived via the popcount identity
``popcount(id ^ w) = popcount(id) + popcount(w) − 2·popcount(id & w)``,
so each neighbor costs three popcounts instead of four and the row index
``z = (k − popcount(id)) − popcount(w) + o`` hoists the two
``k − popcount(id)`` terms out of the neighbor loops.  All quantities are
integers, so every touched cell — and therefore every float accumulation
sequence and accept/reject decision — is *identical* to the single-chain
kernel's: chain ``c`` of a batched call is bit-identical to the solo
trajectory it replaces, for any chain count, batch size, or thread count
(threads only shard whole chains).  The C twin uses the compiler's
``__builtin_popcountll`` (same values as the SWAR popcount the Python
twin keeps, enforced by the equivalence matrix), and its registration
offers ``-fopenmp`` and ``-mpopcnt`` as optional compile flags with
graceful fallback.
"""

from __future__ import annotations

import ctypes
from typing import Callable

import numpy as np

from repro.errors import ValidationError
from repro.native.registry import (
    NativeKernel,
    available_backends,
    resolve_backend,
)

try:  # numba.prange parallelizes under njit(parallel=True); without
    # numba the plain function still runs — prange degrades to range.
    from numba import prange
except ImportError:  # pragma: no cover - exercised on numba-less hosts
    prange = range

__all__ = [
    "CHAIN_KERNEL",
    "CHAIN_BACKENDS",
    "chain_block",
    "chain_backend_available",
    "chain_backend_error",
    "chain_kernel",
    "resolve_chain_backend",
    "available_chain_backends",
    "draw_proposal_batch",
    "MULTICHAIN_KERNEL",
    "MULTICHAIN_BACKENDS",
    "multichain_block",
    "multichain_backend_available",
    "multichain_backend_error",
    "multichain_kernel",
    "resolve_multichain_backend",
    "available_multichain_backends",
]

# Accepted values of the chain-backend knob.  The chain's pure-Python
# reference engine is called "numpy"; "scipy" is accepted as an alias so
# one REPRO_KERNEL_BACKEND value can force the reference engine of both
# the counting pass and the chain.
CHAIN_BACKENDS = ("auto", "numpy", "scipy", "numba", "cext")


def draw_proposal_batch(
    rng: np.random.Generator, n_nodes: int, size: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pre-draw ``size`` Metropolis proposals: ``(i, j, log u)`` streams.

    This function *is* the draw contract (see the module docstring): every
    chain engine consumes these arrays verbatim, so trajectories cannot
    depend on the engine or the kernel batch size.  Requires ``n_nodes >= 2``
    (with one node no distinct pair exists).
    """
    if n_nodes < 2:
        raise ValidationError(
            f"proposal draws need at least 2 nodes, got {n_nodes}"
        )
    i_nodes = rng.integers(0, n_nodes, size=size, dtype=np.int64)
    j_nodes = rng.integers(0, n_nodes, size=size, dtype=np.int64)
    while True:
        collisions = np.flatnonzero(i_nodes == j_nodes)
        if collisions.size == 0:
            break
        j_nodes[collisions] = rng.integers(
            0, n_nodes, size=collisions.size, dtype=np.int64
        )
    # rng.random() may return exactly 0.0 (probability 2^-53): log u is
    # -inf, which accepts — matching u < exp(delta) for any finite delta.
    with np.errstate(divide="ignore"):
        log_u = np.log(rng.random(size=size))
    return i_nodes, j_nodes, log_u


def chain_block(
    indptr,
    indices,
    sigma,
    k,
    score,
    hist,
    counts,
    touched,
    stats,
    i_nodes,
    j_nodes,
    log_u,
    start,
    stop,
):
    """Execute proposals ``[start, stop)`` of a pre-drawn stream in place.

    Parameters are the int32 CSR structure of the symmetric adjacency,
    the int64 correspondence ``sigma`` (mutated on accepted swaps), the
    Kronecker order ``k``, the flat ``(k+1)²`` float64 score table
    ``log P − log(1−P)``, the flat int64 profile histogram (maintained
    incrementally), an all-zero int64 scratch of the same length (left
    all-zero), the touched-cell event scratch (int64, at least
    ``2·(deg i + deg j)`` long for any proposal — ``4·max_degree``
    suffices), the int64 ``stats`` accumulator (``stats[0]`` gains the
    number of score-table touches), and the three draw-contract streams.
    Returns the number of accepted swaps.
    """

    def popcount(v):
        # Branch-free SWAR popcount; identical in the C twin, and exact
        # for any non-negative int64 (Kronecker ids are < 2^k).
        v = v - ((v >> 1) & 0x5555555555555555)
        v = (v & 0x3333333333333333) + ((v >> 2) & 0x3333333333333333)
        v = (v + (v >> 4)) & 0x0F0F0F0F0F0F0F0F
        v = v + (v >> 8)
        v = v + (v >> 16)
        v = v + (v >> 32)
        return v & 0x7F

    accepted = 0
    touches = 0
    for t in range(start, stop):
        i = i_nodes[t]
        j = j_nodes[t]
        id_i = sigma[i]
        id_j = sigma[j]
        # Net profile-count change of swapping sigma(i) and sigma(j): the
        # edges at i trade center id id_i for id_j, the edges at j trade
        # id_j for id_i; the i-j edge (if any) keeps its profile and is
        # excluded symmetrically.  Every counts[] update logs its cell in
        # the touched event list (the delta-scan contract).
        n_touched = 0
        for idx in range(indptr[i], indptr[i + 1]):
            w = indices[idx]
            if w == j:
                continue
            wid = sigma[w]
            x = popcount(id_i ^ wid)
            o = popcount(id_i & wid)
            cell = (k - x - o) * (k + 1) + o
            counts[cell] -= 1
            touched[n_touched] = cell
            n_touched += 1
            x = popcount(id_j ^ wid)
            o = popcount(id_j & wid)
            cell = (k - x - o) * (k + 1) + o
            counts[cell] += 1
            touched[n_touched] = cell
            n_touched += 1
        for idx in range(indptr[j], indptr[j + 1]):
            w = indices[idx]
            if w == i:
                continue
            wid = sigma[w]
            x = popcount(id_j ^ wid)
            o = popcount(id_j & wid)
            cell = (k - x - o) * (k + 1) + o
            counts[cell] -= 1
            touched[n_touched] = cell
            n_touched += 1
            x = popcount(id_i ^ wid)
            o = popcount(id_i & wid)
            cell = (k - x - o) * (k + 1) + o
            counts[cell] += 1
            touched[n_touched] = cell
            n_touched += 1
        # Insertion-sort the event list ascending: event counts are tiny
        # (2·(deg i + deg j)) and mostly short, where insertion sort beats
        # anything with setup cost — and identical ordering across the
        # twins keeps the accumulation sequence bit-reproducible.
        for a in range(1, n_touched):
            key = touched[a]
            b = a - 1
            while b >= 0 and touched[b] > key:
                touched[b + 1] = touched[b]
                b -= 1
            touched[b + 1] = key
        # Ascending touched-cell scan, skipping duplicates and zero
        # counts: the same accumulation sequence as a full ascending
        # 0..(k+1)²−1 scan, because untouched cells have zero counts.
        delta = 0.0
        previous = -1
        for a in range(n_touched):
            cell = touched[a]
            if cell == previous:
                continue
            previous = cell
            if counts[cell] != 0:
                delta += counts[cell] * score[cell]
                touches += 1
        if delta >= 0.0 or log_u[t] < delta:
            sigma[i] = id_j
            sigma[j] = id_i
            accepted += 1
            for a in range(n_touched):
                cell = touched[a]
                if counts[cell] != 0:
                    hist[cell] += counts[cell]
                    counts[cell] = 0
        else:
            for a in range(n_touched):
                counts[touched[a]] = 0
    stats[0] += touches
    return accepted


# The cext backend: chain_block transliterated to C.  Kept in lockstep
# with the Python loop nest above — the chain equivalence suite
# cross-checks every backend cell on every run.
_C_SOURCE = """\
#include <stdint.h>

static int64_t repro_popcount(int64_t v)
{
    v = v - ((v >> 1) & 0x5555555555555555LL);
    v = (v & 0x3333333333333333LL) + ((v >> 2) & 0x3333333333333333LL);
    v = (v + (v >> 4)) & 0x0F0F0F0F0F0F0F0FLL;
    v = v + (v >> 8);
    v = v + (v >> 16);
    v = v + (v >> 32);
    return v & 0x7F;
}

int64_t repro_chain_block(
    const int32_t *indptr,
    const int32_t *indices,
    int64_t *sigma,
    int64_t k,
    const double *score,
    int64_t *hist,
    int64_t *counts,
    int64_t *touched,
    int64_t *stats,
    const int64_t *i_nodes,
    const int64_t *j_nodes,
    const double *log_u,
    int64_t start,
    int64_t stop)
{
    int64_t accepted = 0;
    int64_t touches = 0;
    for (int64_t t = start; t < stop; t++) {
        int64_t i = i_nodes[t];
        int64_t j = j_nodes[t];
        int64_t id_i = sigma[i];
        int64_t id_j = sigma[j];
        int64_t x, o, wid, cell;
        int64_t n_touched = 0;
        for (int32_t idx = indptr[i]; idx < indptr[i + 1]; idx++) {
            int32_t w = indices[idx];
            if (w == j) {
                continue;
            }
            wid = sigma[w];
            x = repro_popcount(id_i ^ wid);
            o = repro_popcount(id_i & wid);
            cell = (k - x - o) * (k + 1) + o;
            counts[cell] -= 1;
            touched[n_touched++] = cell;
            x = repro_popcount(id_j ^ wid);
            o = repro_popcount(id_j & wid);
            cell = (k - x - o) * (k + 1) + o;
            counts[cell] += 1;
            touched[n_touched++] = cell;
        }
        for (int32_t idx = indptr[j]; idx < indptr[j + 1]; idx++) {
            int32_t w = indices[idx];
            if (w == i) {
                continue;
            }
            wid = sigma[w];
            x = repro_popcount(id_j ^ wid);
            o = repro_popcount(id_j & wid);
            cell = (k - x - o) * (k + 1) + o;
            counts[cell] -= 1;
            touched[n_touched++] = cell;
            x = repro_popcount(id_i ^ wid);
            o = repro_popcount(id_i & wid);
            cell = (k - x - o) * (k + 1) + o;
            counts[cell] += 1;
            touched[n_touched++] = cell;
        }
        for (int64_t a = 1; a < n_touched; a++) {
            int64_t key = touched[a];
            int64_t b = a - 1;
            while (b >= 0 && touched[b] > key) {
                touched[b + 1] = touched[b];
                b -= 1;
            }
            touched[b + 1] = key;
        }
        double delta = 0.0;
        int64_t previous = -1;
        for (int64_t a = 0; a < n_touched; a++) {
            cell = touched[a];
            if (cell == previous) {
                continue;
            }
            previous = cell;
            if (counts[cell] != 0) {
                delta += (double)counts[cell] * score[cell];
                touches += 1;
            }
        }
        if (delta >= 0.0 || log_u[t] < delta) {
            sigma[i] = id_j;
            sigma[j] = id_i;
            accepted += 1;
            for (int64_t a = 0; a < n_touched; a++) {
                cell = touched[a];
                if (counts[cell] != 0) {
                    hist[cell] += counts[cell];
                    counts[cell] = 0;
                }
            }
        } else {
            for (int64_t a = 0; a < n_touched; a++) {
                counts[touched[a]] = 0;
            }
        }
    }
    stats[0] += touches;
    return accepted;
}
"""


def _smoke_test(kernel: Callable) -> None:
    """Run the kernel on a hand-checked 4-proposal batch.

    Path graph 0–1–2–3 at k=2, identity σ, a synthetic score table: the
    batch accepts a below-threshold negative delta, two non-negative
    deltas, then rejects a negative delta above its threshold.  Catches a
    miscompiled or ABI-mismatched kernel at probe time; doubles as the
    numba warm-up compile.
    """
    indptr = np.array([0, 1, 3, 5, 6], dtype=np.int32)
    indices = np.array([1, 0, 2, 1, 3, 2], dtype=np.int32)
    sigma = np.arange(4, dtype=np.int64)
    score = np.array(
        [0.5, -0.25, 0.125, 1.5, 0.0, 0.0, 0.0, 0.0, 0.0], dtype=np.float64
    )
    hist = np.zeros(9, dtype=np.int64)
    counts = np.zeros(9, dtype=np.int64)
    touched = np.zeros(16, dtype=np.int64)
    stats = np.zeros(1, dtype=np.int64)
    i_nodes = np.array([1, 0, 0, 0], dtype=np.int64)
    j_nodes = np.array([3, 2, 1, 1], dtype=np.int64)
    log_u = np.array([-2.0, -0.5, -0.5, -0.5], dtype=np.float64)
    accepted = int(
        kernel(indptr, indices, sigma, 2, score, hist, counts, touched,
               stats, i_nodes, j_nodes, log_u, 0, 4)
    )
    expected_hist = np.zeros(9, dtype=np.int64)
    expected_hist[0] = -1
    expected_hist[3] = 1
    if (
        accepted != 3
        or sigma.tolist() != [3, 2, 0, 1]
        or not np.array_equal(hist, expected_hist)
        or int(stats[0]) != 8
    ):
        raise RuntimeError(
            f"chain kernel self-check failed: accepted={accepted}, "
            f"sigma={sigma.tolist()}, hist={hist.tolist()}, "
            f"touches={int(stats[0])}"
        )
    if counts.any():
        raise RuntimeError("chain kernel self-check failed: counts not zeroed")


_INT32_ARG = np.ctypeslib.ndpointer(np.int32, flags="C_CONTIGUOUS")
_INT64_ARG = np.ctypeslib.ndpointer(np.int64, flags="C_CONTIGUOUS")
_FLOAT64_ARG = np.ctypeslib.ndpointer(np.float64, flags="C_CONTIGUOUS")

CHAIN_KERNEL = NativeKernel(
    name="chain",
    python_impl=chain_block,
    c_source=_C_SOURCE,
    c_symbol="repro_chain_block",
    c_restype=ctypes.c_int64,
    c_argtypes=[
        _INT32_ARG,  # indptr
        _INT32_ARG,  # indices
        _INT64_ARG,  # sigma
        ctypes.c_int64,  # k
        _FLOAT64_ARG,  # score (flat (k+1)^2)
        _INT64_ARG,  # hist (flat (k+1)^2)
        _INT64_ARG,  # counts scratch (flat (k+1)^2)
        _INT64_ARG,  # touched scratch (event list)
        _INT64_ARG,  # stats (score-table touch accumulator)
        _INT64_ARG,  # i_nodes
        _INT64_ARG,  # j_nodes
        _FLOAT64_ARG,  # log_u
        ctypes.c_int64,  # start
        ctypes.c_int64,  # stop
    ],
    smoke_test=_smoke_test,
)


def chain_backend_available(name: str) -> bool:
    """Whether the fused chain backend ``name`` can run on this host."""
    return CHAIN_KERNEL.available(name)


def chain_backend_error(name: str) -> str | None:
    """Why ``name`` is unavailable (None when it is available)."""
    return CHAIN_KERNEL.error(name)


def chain_kernel(name: str) -> Callable:
    """The batch kernel of an *available* fused chain backend.

    The callable has the :func:`chain_block` signature and contract.
    """
    return CHAIN_KERNEL.kernel(name)


def resolve_chain_backend(backend: str | None = None) -> str:
    """The concrete chain engine: argument, else ``REPRO_KERNEL_BACKEND``.

    Returns one of ``numpy`` (the pure-Python reference inside
    :class:`~repro.kronecker.likelihood.PermutationSampler`), ``numba``,
    or ``cext``.  ``auto`` prefers the fused engines; ``scipy`` (the
    counting knob's reference name) is accepted as an alias for
    ``numpy``, so one environment value drives both kernel families.
    Naming an unavailable engine raises :class:`ValidationError` with the
    reason.  Every engine produces bit-identical chains; the knob only
    selects how fast they run.
    """
    return resolve_backend(
        CHAIN_KERNEL,
        backend,
        accepted=CHAIN_BACKENDS,
        reference="numpy",
        aliases=("scipy",),
    )


def available_chain_backends() -> tuple[str, ...]:
    """The chain engines that can run on this host (numpy always can)."""
    return available_backends(CHAIN_KERNEL, "numpy")


# ---------------------------------------------------------------------------
# The multichain family: S independent chains per native call.
# ---------------------------------------------------------------------------

# The multichain knob accepts the same values as the single-chain knob;
# its pure-Python reference engine ("numpy") loops the per-chain
# reference inside MultiChainSampler.
MULTICHAIN_BACKENDS = CHAIN_BACKENDS


def multichain_block(
    indptr,
    indices,
    n_chains,
    n_nodes,
    sigma_all,
    k,
    score_all,
    hist_all,
    counts_all,
    touched_all,
    touched_len,
    stats_all,
    i_all,
    j_all,
    u_all,
    stream_len,
    start,
    stop,
    accepted_all,
    n_threads,
):
    """Execute proposals ``[start, stop)`` of S pre-drawn streams in place.

    Stacked per-chain state is passed as flat C-contiguous arrays: chain
    ``c`` owns ``sigma_all[c·n_nodes:]``, the ``(k+1)²``-long slices of
    ``score_all`` / ``hist_all`` / ``counts_all`` at ``c·(k+1)²``, the
    ``touched_len``-long event scratch at ``c·touched_len``, and the
    draw-contract streams ``i_all``/``j_all``/``u_all`` at
    ``c·stream_len``.  ``accepted_all[c]`` is *set* to the number of
    accepted swaps of this call (the caller accumulates);
    ``stats_all[c]`` accumulates score-table touches exactly like the
    solo kernel's ``stats[0]``.  ``n_threads`` only shards chains across
    OpenMP/numba threads — per-chain arithmetic is untouched, so results
    are bit-identical for any thread count.  Returns the total accepted
    across chains.

    Within a chain this is the :func:`chain_block` contract with the
    popcount-identity cell derivation (see the module docstring):
    integer-exact, so trajectories match the solo kernel bit for bit.
    """

    def popcount(v):
        # Branch-free SWAR popcount; the C twin uses the compiler
        # builtin, which returns identical values for Kronecker ids.
        v = v - ((v >> 1) & 0x5555555555555555)
        v = (v & 0x3333333333333333) + ((v >> 2) & 0x3333333333333333)
        v = (v + (v >> 4)) & 0x0F0F0F0F0F0F0F0F
        v = v + (v >> 8)
        v = v + (v >> 16)
        v = v + (v >> 32)
        return v & 0x7F

    n_cells = (k + 1) * (k + 1)
    for c in prange(n_chains):
        s0 = c * n_nodes
        g0 = c * n_cells
        t0 = c * touched_len
        d0 = c * stream_len
        accepted = 0
        touches = 0
        for t in range(start, stop):
            i = i_all[d0 + t]
            j = j_all[d0 + t]
            id_i = sigma_all[s0 + i]
            id_j = sigma_all[s0 + j]
            # Popcount identity: cell row z = (k − pc(id)) − pc(wid) + o,
            # so the two k − pc(id) terms hoist out of the neighbor loops
            # and each neighbor costs three popcounts instead of four.
            zi = k - popcount(id_i)
            zj = k - popcount(id_j)
            n_touched = 0
            for idx in range(indptr[i], indptr[i + 1]):
                w = indices[idx]
                if w == j:
                    continue
                wid = sigma_all[s0 + w]
                zw = zi - popcount(wid)
                o = popcount(id_i & wid)
                cell = (zw + o) * (k + 1) + o
                counts_all[g0 + cell] -= 1
                touched_all[t0 + n_touched] = cell
                n_touched += 1
                o = popcount(id_j & wid)
                cell = (zw - zi + zj + o) * (k + 1) + o
                counts_all[g0 + cell] += 1
                touched_all[t0 + n_touched] = cell
                n_touched += 1
            for idx in range(indptr[j], indptr[j + 1]):
                w = indices[idx]
                if w == i:
                    continue
                wid = sigma_all[s0 + w]
                zw = zj - popcount(wid)
                o = popcount(id_j & wid)
                cell = (zw + o) * (k + 1) + o
                counts_all[g0 + cell] -= 1
                touched_all[t0 + n_touched] = cell
                n_touched += 1
                o = popcount(id_i & wid)
                cell = (zw - zj + zi + o) * (k + 1) + o
                counts_all[g0 + cell] += 1
                touched_all[t0 + n_touched] = cell
                n_touched += 1
            for a in range(1, n_touched):
                key = touched_all[t0 + a]
                b = a - 1
                while b >= 0 and touched_all[t0 + b] > key:
                    touched_all[t0 + b + 1] = touched_all[t0 + b]
                    b -= 1
                touched_all[t0 + b + 1] = key
            delta = 0.0
            previous = -1
            for a in range(n_touched):
                cell = touched_all[t0 + a]
                if cell == previous:
                    continue
                previous = cell
                if counts_all[g0 + cell] != 0:
                    delta += counts_all[g0 + cell] * score_all[g0 + cell]
                    touches += 1
            if delta >= 0.0 or u_all[d0 + t] < delta:
                sigma_all[s0 + i] = id_j
                sigma_all[s0 + j] = id_i
                accepted += 1
                for a in range(n_touched):
                    cell = touched_all[t0 + a]
                    if counts_all[g0 + cell] != 0:
                        hist_all[g0 + cell] += counts_all[g0 + cell]
                        counts_all[g0 + cell] = 0
            else:
                for a in range(n_touched):
                    counts_all[g0 + touched_all[t0 + a]] = 0
        accepted_all[c] = accepted
        stats_all[c] += touches
    total = 0
    for c in range(n_chains):
        total += accepted_all[c]
    return total


# The cext twin of multichain_block.  Kept in lockstep with the Python
# loop nest above; the only deviations are the compiler-builtin popcount
# (identical values) and the OpenMP pragma (inert without -fopenmp, and
# chains are data-independent, so threading never changes results).
_MULTICHAIN_C_SOURCE = """\
#include <stdint.h>

int64_t repro_multichain_block(
    const int32_t *indptr,
    const int32_t *indices,
    int64_t n_chains,
    int64_t n_nodes,
    int64_t *sigma_all,
    int64_t k,
    const double *score_all,
    int64_t *hist_all,
    int64_t *counts_all,
    int64_t *touched_all,
    int64_t touched_len,
    int64_t *stats_all,
    const int64_t *i_all,
    const int64_t *j_all,
    const double *u_all,
    int64_t stream_len,
    int64_t start,
    int64_t stop,
    int64_t *accepted_all,
    int64_t n_threads)
{
    int64_t n_cells = (k + 1) * (k + 1);
    int nt = n_threads > 0 ? (int)n_threads : 1;
    (void)nt;
#pragma omp parallel for num_threads(nt) schedule(static)
    for (int64_t c = 0; c < n_chains; c++) {
        int64_t *sigma = sigma_all + c * n_nodes;
        const double *score = score_all + c * n_cells;
        int64_t *hist = hist_all + c * n_cells;
        int64_t *counts = counts_all + c * n_cells;
        int64_t *touched = touched_all + c * touched_len;
        const int64_t *i_nodes = i_all + c * stream_len;
        const int64_t *j_nodes = j_all + c * stream_len;
        const double *log_u = u_all + c * stream_len;
        int64_t accepted = 0;
        int64_t touches = 0;
        for (int64_t t = start; t < stop; t++) {
            int64_t i = i_nodes[t];
            int64_t j = j_nodes[t];
            int64_t id_i = sigma[i];
            int64_t id_j = sigma[j];
            int64_t o, wid, cell;
            int64_t zi = k - __builtin_popcountll((uint64_t)id_i);
            int64_t zj = k - __builtin_popcountll((uint64_t)id_j);
            int64_t n_touched = 0;
            for (int32_t idx = indptr[i]; idx < indptr[i + 1]; idx++) {
                int32_t w = indices[idx];
                if (w == j) {
                    continue;
                }
                wid = sigma[w];
                int64_t zw = zi - __builtin_popcountll((uint64_t)wid);
                o = __builtin_popcountll((uint64_t)(id_i & wid));
                cell = (zw + o) * (k + 1) + o;
                counts[cell] -= 1;
                touched[n_touched++] = cell;
                o = __builtin_popcountll((uint64_t)(id_j & wid));
                cell = (zw - zi + zj + o) * (k + 1) + o;
                counts[cell] += 1;
                touched[n_touched++] = cell;
            }
            for (int32_t idx = indptr[j]; idx < indptr[j + 1]; idx++) {
                int32_t w = indices[idx];
                if (w == i) {
                    continue;
                }
                wid = sigma[w];
                int64_t zw = zj - __builtin_popcountll((uint64_t)wid);
                o = __builtin_popcountll((uint64_t)(id_j & wid));
                cell = (zw + o) * (k + 1) + o;
                counts[cell] -= 1;
                touched[n_touched++] = cell;
                o = __builtin_popcountll((uint64_t)(id_i & wid));
                cell = (zw - zj + zi + o) * (k + 1) + o;
                counts[cell] += 1;
                touched[n_touched++] = cell;
            }
            for (int64_t a = 1; a < n_touched; a++) {
                int64_t key = touched[a];
                int64_t b = a - 1;
                while (b >= 0 && touched[b] > key) {
                    touched[b + 1] = touched[b];
                    b -= 1;
                }
                touched[b + 1] = key;
            }
            double delta = 0.0;
            int64_t previous = -1;
            for (int64_t a = 0; a < n_touched; a++) {
                cell = touched[a];
                if (cell == previous) {
                    continue;
                }
                previous = cell;
                if (counts[cell] != 0) {
                    delta += (double)counts[cell] * score[cell];
                    touches += 1;
                }
            }
            if (delta >= 0.0 || log_u[t] < delta) {
                sigma[i] = id_j;
                sigma[j] = id_i;
                accepted += 1;
                for (int64_t a = 0; a < n_touched; a++) {
                    cell = touched[a];
                    if (counts[cell] != 0) {
                        hist[cell] += counts[cell];
                        counts[cell] = 0;
                    }
                }
            } else {
                for (int64_t a = 0; a < n_touched; a++) {
                    counts[touched[a]] = 0;
                }
            }
        }
        accepted_all[c] = accepted;
        stats_all[c] += touches;
    }
    int64_t total = 0;
    for (int64_t c = 0; c < n_chains; c++) {
        total += accepted_all[c];
    }
    return total;
}
"""


def _multichain_smoke_test(kernel: Callable) -> None:
    """Run the kernel on three chains and compare against the solo kernel.

    Three chains on the smoke path graph (0–1–2–3 at k=2) with different
    σ, score tables, and acceptance thresholds — chain 0 is the exact
    single-chain smoke instance.  Expected outputs come from running the
    trusted plain-Python :func:`chain_block` per chain, so the check is
    the family's core contract itself: each batched chain must match its
    solo trajectory exactly.  Runs with ``n_threads=2`` to exercise the
    threaded path at probe time.
    """
    indptr = np.array([0, 1, 3, 5, 6], dtype=np.int32)
    indices = np.array([1, 0, 2, 1, 3, 2], dtype=np.int32)
    base_score = np.array(
        [0.5, -0.25, 0.125, 1.5, 0.0, 0.0, 0.0, 0.0, 0.0], dtype=np.float64
    )
    sigma = np.stack(
        [
            np.arange(4, dtype=np.int64),
            np.array([1, 0, 3, 2], dtype=np.int64),
            np.array([3, 1, 2, 0], dtype=np.int64),
        ]
    )
    score = np.stack([base_score, -base_score, 0.5 * base_score])
    i_nodes = np.tile(np.array([1, 0, 0, 0], dtype=np.int64), (3, 1))
    j_nodes = np.tile(np.array([3, 2, 1, 1], dtype=np.int64), (3, 1))
    log_u = np.stack(
        [
            np.array([-2.0, -0.5, -0.5, -0.5], dtype=np.float64),
            np.array([-0.5, -0.5, -0.5, -0.5], dtype=np.float64),
            np.array([-0.01, -3.0, -0.01, -3.0], dtype=np.float64),
        ]
    )
    hist = np.zeros((3, 9), dtype=np.int64)
    counts = np.zeros((3, 9), dtype=np.int64)
    touched = np.zeros((3, 16), dtype=np.int64)
    stats = np.zeros(3, dtype=np.int64)
    accepted = np.zeros(3, dtype=np.int64)

    expected_sigma = sigma.copy()
    expected_hist = hist.copy()
    expected_stats = np.zeros(3, dtype=np.int64)
    expected_accepted = np.zeros(3, dtype=np.int64)
    for c in range(3):
        scratch = np.zeros(9, dtype=np.int64)
        events = np.zeros(16, dtype=np.int64)
        stat = np.zeros(1, dtype=np.int64)
        expected_accepted[c] = chain_block(
            indptr, indices, expected_sigma[c], 2, score[c],
            expected_hist[c], scratch, events, stat,
            i_nodes[c], j_nodes[c], log_u[c], 0, 4,
        )
        expected_stats[c] = stat[0]

    total = int(
        kernel(
            indptr, indices, 3, 4, sigma.ravel(), 2, score.ravel(),
            hist.ravel(), counts.ravel(), touched.ravel(), 16, stats,
            i_nodes.ravel(), j_nodes.ravel(), log_u.ravel(), 4, 0, 4,
            accepted, 2,
        )
    )
    if (
        total != int(expected_accepted.sum())
        or not np.array_equal(accepted, expected_accepted)
        or not np.array_equal(sigma, expected_sigma)
        or not np.array_equal(hist, expected_hist)
        or not np.array_equal(stats, expected_stats)
    ):
        raise RuntimeError(
            f"multichain kernel self-check failed: total={total}, "
            f"accepted={accepted.tolist()}, sigma={sigma.tolist()}, "
            f"hist={hist.tolist()}, stats={stats.tolist()}"
        )
    if counts.any():
        raise RuntimeError(
            "multichain kernel self-check failed: counts not zeroed"
        )


MULTICHAIN_KERNEL = NativeKernel(
    name="multichain",
    python_impl=multichain_block,
    c_source=_MULTICHAIN_C_SOURCE,
    c_symbol="repro_multichain_block",
    c_restype=ctypes.c_int64,
    c_argtypes=[
        _INT32_ARG,  # indptr
        _INT32_ARG,  # indices
        ctypes.c_int64,  # n_chains
        ctypes.c_int64,  # n_nodes
        _INT64_ARG,  # sigma_all (flat S x n_nodes)
        ctypes.c_int64,  # k
        _FLOAT64_ARG,  # score_all (flat S x (k+1)^2)
        _INT64_ARG,  # hist_all (flat S x (k+1)^2)
        _INT64_ARG,  # counts_all scratch (flat S x (k+1)^2)
        _INT64_ARG,  # touched_all scratch (flat S x touched_len)
        ctypes.c_int64,  # touched_len
        _INT64_ARG,  # stats_all (per-chain touch accumulators)
        _INT64_ARG,  # i_all (flat S x stream_len)
        _INT64_ARG,  # j_all
        _FLOAT64_ARG,  # u_all
        ctypes.c_int64,  # stream_len
        ctypes.c_int64,  # start
        ctypes.c_int64,  # stop
        _INT64_ARG,  # accepted_all (per-chain, set per call)
        ctypes.c_int64,  # n_threads
    ],
    smoke_test=_multichain_smoke_test,
    numba_parallel=True,
    c_optional_flags=("-fopenmp", "-mpopcnt"),
)


def multichain_backend_available(name: str) -> bool:
    """Whether the fused multichain backend ``name`` can run here."""
    return MULTICHAIN_KERNEL.available(name)


def multichain_backend_error(name: str) -> str | None:
    """Why ``name`` is unavailable (None when it is available)."""
    return MULTICHAIN_KERNEL.error(name)


def multichain_kernel(name: str) -> Callable:
    """The batch kernel of an *available* fused multichain backend.

    The callable has the :func:`multichain_block` signature and contract.
    """
    return MULTICHAIN_KERNEL.kernel(name)


def resolve_multichain_backend(backend: str | None = None) -> str:
    """The concrete multichain engine: argument, else environment.

    Same contract as :func:`resolve_chain_backend` — ``auto`` prefers the
    fused engines and silently falls back to the ``numpy`` reference (a
    plain loop over per-chain reference engines inside
    :class:`~repro.kronecker.likelihood.MultiChainSampler`); naming an
    unavailable engine raises :class:`ValidationError`.  Every engine and
    thread count produces bit-identical chains.
    """
    return resolve_backend(
        MULTICHAIN_KERNEL,
        backend,
        accepted=MULTICHAIN_BACKENDS,
        reference="numpy",
        aliases=("scipy",),
    )


def available_multichain_backends() -> tuple[str, ...]:
    """The multichain engines that can run here (numpy always can)."""
    return available_backends(MULTICHAIN_KERNEL, "numpy")
