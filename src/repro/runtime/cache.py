"""On-disk memoization of completed trials.

The cache is a directory of pickle files, fanned out over 256 two-hex
subdirectories, keyed by :func:`repro.runtime.hashing.trial_key`.  Writes
go through a temporary file and :func:`os.replace`, so a crashed or
interrupted run never leaves a truncated entry behind — an interrupted
ensemble simply resumes from the trials that completed.  A corrupt or
unreadable entry is treated as a miss: it is quarantined in place (renamed
to ``<key>.pkl.corrupt``, with a warning naming the file) so the bad bytes
stay available for a post-mortem while the trial transparently
re-executes and overwrites the slot.

Results are arbitrary picklable Python objects.  As with any pickle-based
store, only load caches you produced yourself (the same trust boundary as
the repository's datasets).
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Tuple

from repro.utils.logging import get_logger

__all__ = ["TrialCache"]

_logger = get_logger(__name__)

# A quarantined (corrupt) entry is the original file renamed with this
# suffix; __len__ counts only healthy *.pkl entries, so quarantine is
# invisible to the hit/miss accounting.
CORRUPT_SUFFIX = ".corrupt"


class TrialCache:
    """Pickle-file cache mapping trial keys to trial results.

    >>> import tempfile
    >>> cache = TrialCache(tempfile.mkdtemp())
    >>> cache.store("ab" * 32, {"edges": 12.0})
    >>> cache.load("ab" * 32)
    (True, {'edges': 12.0})
    >>> cache.load("cd" * 32)
    (False, None)
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (whether or not it exists)."""
        return self.directory / key[:2] / f"{key}.pkl"

    def load(self, key: str) -> Tuple[bool, Any]:
        """``(True, result)`` on a hit, ``(False, None)`` on a miss.

        A present-but-unreadable entry (truncated file, incompatible
        pickle) counts as a miss: the bad file is quarantined as
        ``<name>.pkl.corrupt`` (kept for post-mortems, overwritten if the
        same entry corrupts again) and a warning is logged, then the
        caller re-executes the trial and re-stores the slot.
        """
        path = self.path_for(key)
        try:
            with path.open("rb") as handle:
                return True, pickle.load(handle)
        except FileNotFoundError:
            return False, None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError) as exc:
            self._quarantine(path, exc)
            return False, None

    def _quarantine(self, path: Path, exc: Exception) -> None:
        quarantined = path.with_name(path.name + CORRUPT_SUFFIX)
        try:
            os.replace(path, quarantined)
        except OSError:
            # Already gone (raced with another process) or unmovable;
            # either way the entry stays a miss.
            _logger.warning(
                "corrupt cache entry %s (%s: %s); treating as a miss",
                path, type(exc).__name__, exc,
            )
            return
        _logger.warning(
            "corrupt cache entry %s (%s: %s); quarantined as %s and "
            "treating as a miss (the trial will re-execute)",
            path, type(exc).__name__, exc, quarantined.name,
        )

    def store(self, key: str, result: Any) -> None:
        """Persist ``result`` under ``key`` atomically (write + rename)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".pkl"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        """Number of cached entries currently on disk."""
        return sum(1 for _ in self.directory.glob("*/*.pkl"))

    def __repr__(self) -> str:
        return f"TrialCache({str(self.directory)!r})"
