"""On-disk memoization of completed trials.

The cache is a directory of pickle files, fanned out over 256 two-hex
subdirectories, keyed by :func:`repro.runtime.hashing.trial_key`.  Writes
go through a temporary file and :func:`os.replace`, so a crashed or
interrupted run never leaves a truncated entry behind — an interrupted
ensemble simply resumes from the trials that completed.  Corrupt or
unreadable entries are treated as misses and overwritten on the next
store.

Results are arbitrary picklable Python objects.  As with any pickle-based
store, only load caches you produced yourself (the same trust boundary as
the repository's datasets).
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Tuple

__all__ = ["TrialCache"]


class TrialCache:
    """Pickle-file cache mapping trial keys to trial results.

    >>> import tempfile
    >>> cache = TrialCache(tempfile.mkdtemp())
    >>> cache.store("ab" * 32, {"edges": 12.0})
    >>> cache.load("ab" * 32)
    (True, {'edges': 12.0})
    >>> cache.load("cd" * 32)
    (False, None)
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (whether or not it exists)."""
        return self.directory / key[:2] / f"{key}.pkl"

    def load(self, key: str) -> Tuple[bool, Any]:
        """``(True, result)`` on a hit, ``(False, None)`` on a miss.

        A present-but-unreadable entry (truncated file, incompatible
        pickle) counts as a miss.
        """
        path = self.path_for(key)
        try:
            with path.open("rb") as handle:
                return True, pickle.load(handle)
        except FileNotFoundError:
            return False, None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            return False, None

    def store(self, key: str, result: Any) -> None:
        """Persist ``result`` under ``key`` atomically (write + rename)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".pkl"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        """Number of cached entries currently on disk."""
        return sum(1 for _ in self.directory.glob("*/*.pkl"))

    def __repr__(self) -> str:
        return f"TrialCache({str(self.directory)!r})"
