"""Stable content hashing for trial cache keys.

The on-disk trial cache (:mod:`repro.runtime.cache`) must key results by
*value*, not by object identity, and the key must be identical across
processes and interpreter runs (``hash()`` is salted per process, so it is
useless here).  :func:`stable_hash` canonically serialises a restricted
vocabulary of values — scalars, strings, bytes, sequences, mappings, sets,
dataclasses, and numpy arrays — into a SHA-256 digest.  Unsupported types
raise :class:`TypeError` instead of silently producing an unstable key.

:func:`trial_key` combines a :class:`~repro.runtime.spec.TrialSpec` with
its effective seed and a fingerprint of the trial function's source code,
so editing the trial function invalidates its cached results.
"""

from __future__ import annotations

import dataclasses
import hashlib
import inspect
import struct
from typing import Any, Callable, Mapping

import numpy as np

__all__ = ["stable_hash", "code_fingerprint", "trial_key"]


def stable_hash(value: Any) -> str:
    """SHA-256 hex digest of a canonical, process-independent encoding.

    Mappings hash independently of insertion order; ints and floats hash
    distinctly (``1 != 1.0`` as keys); numpy arrays hash by dtype, shape,
    and contents.

    >>> stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})
    True
    """
    digest = hashlib.sha256()
    _feed(digest, value)
    return digest.hexdigest()


def code_fingerprint(fn: Callable[..., Any]) -> str:
    """Short fingerprint of a callable's source code (cache invalidation).

    Falls back to the qualified name when the source is unavailable
    (builtins, C extensions, interactive definitions).
    """
    try:
        token = inspect.getsource(fn)
    except (OSError, TypeError):
        token = f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', repr(fn))}"
    return hashlib.sha256(token.encode("utf-8")).hexdigest()[:16]


def trial_key(spec: Any, effective_seed: Any) -> str:
    """Cache key of one trial: function identity + code + config + seed.

    ``spec`` is a :class:`repro.runtime.spec.TrialSpec`; ``effective_seed``
    is the integer or :class:`numpy.random.SeedSequence` the engine will
    hand to the trial (after root-seed spawning), so re-seeding an ensemble
    never reuses stale results.
    """
    fn = spec.fn
    payload = (
        getattr(fn, "__module__", "?"),
        getattr(fn, "__qualname__", repr(fn)),
        code_fingerprint(fn),
        dict(spec.params),
        spec.index,
        _seed_token(effective_seed),
    )
    return stable_hash(payload)


def _seed_token(seed: Any) -> tuple:
    """A hashable, value-stable token for an engine seed."""
    if isinstance(seed, np.random.SeedSequence):
        entropy = seed.entropy
        if isinstance(entropy, (list, tuple)):
            entropy = tuple(int(e) for e in entropy)
        elif entropy is not None:
            entropy = int(entropy)
        return ("seedsequence", entropy, tuple(seed.spawn_key))
    if seed is None:
        return ("none",)
    return ("int", int(seed))


def _feed(digest: "hashlib._Hash", value: Any) -> None:
    """Recursively feed a type-tagged, length-prefixed encoding of value."""
    if value is None:
        digest.update(b"N")
    elif isinstance(value, bool) or isinstance(value, np.bool_):
        digest.update(b"B1" if value else b"B0")
    elif isinstance(value, (int, np.integer)):
        token = str(int(value)).encode("ascii")
        digest.update(b"I%d:" % len(token))
        digest.update(token)
    elif isinstance(value, (float, np.floating)):
        digest.update(b"F")
        digest.update(struct.pack("<d", float(value)))
    elif isinstance(value, str):
        token = value.encode("utf-8")
        digest.update(b"S%d:" % len(token))
        digest.update(token)
    elif isinstance(value, (bytes, bytearray)):
        digest.update(b"Y%d:" % len(value))
        digest.update(bytes(value))
    elif isinstance(value, np.ndarray):
        if value.dtype.hasobject:
            raise TypeError(
                "stable_hash does not support object-dtype arrays (their "
                "bytes are memory addresses, not values)"
            )
        array = np.ascontiguousarray(value)
        digest.update(b"A")
        _feed(digest, str(array.dtype))
        _feed(digest, array.shape)
        digest.update(array.tobytes())
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        digest.update(b"D")
        _feed(digest, f"{type(value).__module__}.{type(value).__qualname__}")
        _feed(digest, {f.name: getattr(value, f.name) for f in dataclasses.fields(value)})
    elif isinstance(value, (list, tuple)):
        digest.update(b"L%d:" % len(value))
        for item in value:
            _feed(digest, item)
    elif isinstance(value, Mapping):
        items = sorted(
            ((stable_hash(key), key, item) for key, item in value.items()),
            key=lambda entry: entry[0],
        )
        digest.update(b"M%d:" % len(items))
        for _, key, item in items:
            _feed(digest, key)
            _feed(digest, item)
    elif isinstance(value, (set, frozenset)):
        digest.update(b"T%d:" % len(value))
        for token in sorted(stable_hash(item) for item in value):
            digest.update(token.encode("ascii"))
    else:
        raise TypeError(
            f"stable_hash does not support {type(value).__qualname__}; trial "
            f"params must be built from scalars, strings, sequences, mappings, "
            f"dataclasses, and numpy arrays"
        )
