"""The parallel trial-execution engine.

:func:`run_trials` fans a list of :class:`~repro.runtime.spec.TrialSpec`
across a :class:`concurrent.futures.ProcessPoolExecutor` (or runs them
in-process when ``n_jobs=1``), with three guarantees:

* **Determinism** — per-trial RNG streams are derived from the root seed
  with :meth:`numpy.random.SeedSequence.spawn`, indexed by trial position.
  A trial's stream depends only on ``(root seed, index)`` — never on which
  worker ran it or in what order — so ensemble results are bit-identical
  for any ``n_jobs``.
* **Memoization** — with a cache directory configured, completed trials
  are persisted keyed by a stable hash of (function qualname + source
  fingerprint, params, trial index, effective seed); a rerun executes only
  the missing trials, which makes interrupted ensembles resumable.
* **Observability** — the returned
  :class:`~repro.runtime.spec.TrialRunReport` carries the executed/cached
  split and wall-clock timing, and progress is logged through
  :mod:`repro.utils.logging`.

Worker count resolution: an explicit ``n_jobs`` argument wins, then the
``REPRO_N_JOBS`` environment variable, then the serial default of 1.
``n_jobs <= 0`` means "all available cores".  Trial callables must be
module-level functions (workers import them by name).

Parallel runs execute on a **persistent worker pool** by default: one
process-wide :class:`~concurrent.futures.ProcessPoolExecutor`, created on
first parallel use and reused across :func:`run_trials` calls and blocked
counting passes, so consecutive ensembles (Table 1's fits, figure
ensembles, bench trajectories) pay the worker fork/spawn cost once
instead of per call.  The pool is lifecycle-managed: it is resized only
when a caller asks for a *different* worker count, shut down at
interpreter exit (and discarded on breakage), and :func:`shutdown_pool`
releases it eagerly.  ``pool="ephemeral"`` (or ``REPRO_POOL=ephemeral``)
restores the per-call executor.  The serial default (``n_jobs=1``) never
touches any pool, and results are bit-identical either way — per-trial
seeds depend only on (root seed, index), never on which worker ran what.
Workers inherit the parent's state (environment, loaded modules) at pool
creation time, not per call.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import os
import time
from typing import Any, Iterable, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.runtime.cache import TrialCache
from repro.runtime.hashing import trial_key
from repro.runtime.spec import TrialRunReport, TrialSpec
from repro.utils.logging import get_logger
from repro.utils.validation import check_integer

__all__ = [
    "run_trials",
    "resolve_n_jobs",
    "resolve_pool_mode",
    "persistent_executor",
    "shutdown_pool",
    "pool_worker_pids",
    "POOL_MODE_ENV",
    "POOL_MODES",
]

_logger = get_logger(__name__)

POOL_MODE_ENV = "REPRO_POOL"
POOL_MODES = ("persistent", "ephemeral")

# The process-wide persistent executor: the pool itself, the worker count
# it was created for, and whether the atexit hook is installed.
_pool: concurrent.futures.ProcessPoolExecutor | None = None
_pool_workers = 0
_atexit_registered = False


def resolve_pool_mode(mode: str | None = None) -> str:
    """Resolve the executor lifecycle: argument, then ``REPRO_POOL``.

    ``persistent`` (the default) reuses one process-wide pool across
    parallel runs; ``ephemeral`` creates and tears down an executor per
    call (the pre-PR 4 behaviour).
    """
    source = "argument"
    if mode is None:
        raw = os.environ.get(POOL_MODE_ENV)
        if not raw:  # unset or empty = default
            return "persistent"
        mode = raw
        source = f"environment variable {POOL_MODE_ENV}"
    if mode not in POOL_MODES:
        raise ValidationError(
            f"pool mode (from {source}) must be one of "
            f"{', '.join(POOL_MODES)}, got {mode!r}"
        )
    return mode


def persistent_executor(n_workers: int) -> concurrent.futures.ProcessPoolExecutor:
    """The process-wide pool, (re)created for ``n_workers`` workers.

    Reused as long as callers keep asking for the same worker count; a
    different count (or a broken pool) shuts the old executor down and
    builds a fresh one.  Workers are started lazily by the executor, so a
    pool sized for N workers running fewer pending trials forks only what
    it needs.
    """
    global _pool, _pool_workers, _atexit_registered
    n_workers = check_integer(n_workers, "n_workers", minimum=1)
    broken = _pool is not None and getattr(_pool, "_broken", False)
    if _pool is None or _pool_workers != n_workers or broken:
        shutdown_pool()
        _pool = concurrent.futures.ProcessPoolExecutor(max_workers=n_workers)
        _pool_workers = n_workers
        if not _atexit_registered:
            atexit.register(shutdown_pool)
            _atexit_registered = True
        _logger.debug("persistent pool created with %d workers", n_workers)
    return _pool


def shutdown_pool() -> None:
    """Shut the persistent pool down (idempotent; next use recreates it)."""
    global _pool, _pool_workers
    if _pool is not None:
        _pool.shutdown(wait=True, cancel_futures=True)
        _pool = None
        _pool_workers = 0


def pool_worker_pids() -> tuple[int, ...]:
    """PIDs of the live persistent-pool workers (empty without a pool).

    Workers fork lazily, so the tuple grows as tasks are submitted; a
    stable tuple across consecutive ensembles is the observable "zero
    re-fork" guarantee the pool-reuse tests assert.
    """
    if _pool is None:
        return ()
    processes = getattr(_pool, "_processes", None) or {}
    return tuple(sorted(processes))


def resolve_n_jobs(n_jobs: int | None = None) -> int:
    """Resolve a worker count: argument, then ``REPRO_N_JOBS``, then 1.

    ``n_jobs <= 0`` (from either source) requests one worker per available
    CPU core.  Non-integral values raise the same clear errors as the
    other ``REPRO_*`` knobs.
    """
    if n_jobs is None:
        raw = os.environ.get("REPRO_N_JOBS")
        if raw is None:
            return 1
        try:
            n_jobs = int(raw)
        except ValueError:
            raise ValidationError(
                f"environment variable REPRO_N_JOBS must be an integer, got {raw!r}"
            )
    n_jobs = check_integer(n_jobs, "n_jobs")
    if n_jobs <= 0:
        return os.cpu_count() or 1
    return n_jobs


def run_trials(
    specs: Iterable[TrialSpec],
    *,
    seed: Any = None,
    n_jobs: int | None = None,
    cache: TrialCache | str | os.PathLike | None = None,
    label: str = "trials",
    pool: str | None = None,
) -> TrialRunReport:
    """Execute an ensemble of trials, in parallel and with memoization.

    Parameters
    ----------
    specs:
        The trials.  Results come back in spec order regardless of
        completion order.
    seed:
        Root seed for the ensemble (``None``, int,
        :class:`~numpy.random.SeedSequence`, or
        :class:`~numpy.random.Generator`).  Each trial receives the child
        stream at its ``index``; specs carrying an explicit ``seed`` keep
        it.  Pass a fixed seed for reproducible (and cacheable) ensembles.
    n_jobs:
        Worker processes; see :func:`resolve_n_jobs`.  ``1`` runs serially
        in-process (no pickling, monkeypatch-friendly).
    cache:
        ``None`` (no caching), a directory path, or a
        :class:`~repro.runtime.cache.TrialCache`.
    label:
        Human-readable ensemble name for progress logging.
    pool:
        Executor lifecycle for parallel runs: ``persistent`` (default;
        reuse the process-wide pool across calls) or ``ephemeral`` (a
        fresh executor per call); see :func:`resolve_pool_mode`.
        Irrelevant when the run is serial.  Results are bit-identical
        either way.

    Returns
    -------
    TrialRunReport
        Ordered results plus the executed/cached split and elapsed time.
    """
    specs = list(specs)
    n_jobs = resolve_n_jobs(n_jobs)
    # Validate eagerly: a bad pool mode must fail on the serial/cached
    # branches too, not only once the call site first runs parallel.
    pool = resolve_pool_mode(pool)
    store = _as_cache(cache)
    seeds = _effective_seeds(specs, seed)
    start = time.perf_counter()

    results: list[Any] = [None] * len(specs)
    keys: list[str | None] = [None] * len(specs)
    pending: list[int] = []
    for position, (spec, trial_seed) in enumerate(zip(specs, seeds)):
        if store is not None:
            keys[position] = trial_key(spec, trial_seed)
            hit, value = store.load(keys[position])
            if hit:
                results[position] = value
                continue
        pending.append(position)
    cached = len(specs) - len(pending)

    _logger.info(
        "%s: %d trials (%d cached, %d to run) with n_jobs=%d",
        label, len(specs), cached, len(pending), n_jobs,
    )
    if pending:
        if n_jobs == 1 or len(pending) == 1:
            for position in pending:
                results[position] = _run_one(specs[position], seeds[position])
                _store_result(store, keys[position], results[position])
                _logger.debug("%s: trial %d done", label, specs[position].index)
        elif pool == "persistent":
            # Size the pool by the requested n_jobs (stable across calls
            # with the same budget), not by this call's pending count —
            # workers fork lazily, so a small ensemble on a big pool only
            # starts what it uses.
            executor = persistent_executor(n_jobs)
            try:
                _collect(executor, specs, seeds, pending, results, keys, store, label)
            except concurrent.futures.process.BrokenProcessPool:
                shutdown_pool()  # do not hand a dead pool to the next caller
                raise
        else:
            workers = min(n_jobs, len(pending))
            with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as executor:
                _collect(executor, specs, seeds, pending, results, keys, store, label)

    elapsed = time.perf_counter() - start
    _logger.info(
        "%s: completed %d trials in %.2fs (%d executed, %d cached)",
        label, len(specs), elapsed, len(pending), cached,
    )
    pending_set = set(pending)
    return TrialRunReport(
        results=results,
        executed=len(pending),
        cached=cached,
        n_jobs=n_jobs,
        elapsed=elapsed,
        cached_indices=tuple(
            position for position in range(len(specs)) if position not in pending_set
        ),
    )


def _collect(
    executor: concurrent.futures.Executor,
    specs: Sequence[TrialSpec],
    seeds: Sequence[Any],
    pending: Sequence[int],
    results: list[Any],
    keys: Sequence[str | None],
    store: TrialCache | None,
    label: str,
) -> None:
    """Submit the pending trials and fold results back in spec order.

    On any failure the not-yet-started futures are cancelled before the
    exception propagates, so a persistent pool is left idle (and usable)
    rather than draining abandoned work.
    """
    futures = {
        executor.submit(_run_one, specs[position], seeds[position]): position
        for position in pending
    }
    try:
        for future in concurrent.futures.as_completed(futures):
            position = futures[future]
            results[position] = future.result()
            _store_result(store, keys[position], results[position])
            _logger.debug("%s: trial %d done", label, specs[position].index)
    except BaseException:
        for future in futures:
            future.cancel()
        raise


def _run_one(spec: TrialSpec, trial_seed: Any) -> Any:
    """Execute one trial with its derived generator (runs in workers too)."""
    rng = np.random.default_rng(trial_seed)
    return spec.fn(rng, **dict(spec.params))


def _store_result(store: TrialCache | None, key: str | None, result: Any) -> None:
    if store is not None and key is not None:
        store.store(key, result)


def _as_cache(cache: TrialCache | str | os.PathLike | None) -> TrialCache | None:
    if cache is None:
        return None
    if isinstance(cache, TrialCache):
        return cache
    return TrialCache(cache)


def _effective_seeds(specs: Sequence[TrialSpec], seed: Any) -> list[Any]:
    """Per-trial seeds: spawned children of the root, or spec overrides."""
    if isinstance(seed, np.random.Generator):
        seed = int(seed.integers(0, 2**63 - 1))
    root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    children = root.spawn(len(specs)) if specs else []
    return [
        spec.seed if spec.seed is not None else child
        for spec, child in zip(specs, children)
    ]
