"""The parallel trial-execution engine.

:func:`run_trials` fans a list of :class:`~repro.runtime.spec.TrialSpec`
across a :class:`concurrent.futures.ProcessPoolExecutor` (or runs them
in-process when ``n_jobs=1``), with three guarantees:

* **Determinism** — per-trial RNG streams are derived from the root seed
  with :meth:`numpy.random.SeedSequence.spawn`, indexed by trial position.
  A trial's stream depends only on ``(root seed, index)`` — never on which
  worker ran it or in what order — so ensemble results are bit-identical
  for any ``n_jobs``.
* **Memoization** — with a cache directory configured, completed trials
  are persisted keyed by a stable hash of (function qualname + source
  fingerprint, params, trial index, effective seed); a rerun executes only
  the missing trials, which makes interrupted ensembles resumable.
* **Observability** — the returned
  :class:`~repro.runtime.spec.TrialRunReport` carries the executed/cached
  split and wall-clock timing, and progress is logged through
  :mod:`repro.utils.logging`.

Worker count resolution: an explicit ``n_jobs`` argument wins, then the
``REPRO_N_JOBS`` environment variable, then the serial default of 1.
``n_jobs <= 0`` means "all available cores".  Trial callables must be
module-level functions (workers import them by name).
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from typing import Any, Iterable, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.runtime.cache import TrialCache
from repro.runtime.hashing import trial_key
from repro.runtime.spec import TrialRunReport, TrialSpec
from repro.utils.logging import get_logger
from repro.utils.validation import check_integer

__all__ = ["run_trials", "resolve_n_jobs"]

_logger = get_logger(__name__)


def resolve_n_jobs(n_jobs: int | None = None) -> int:
    """Resolve a worker count: argument, then ``REPRO_N_JOBS``, then 1.

    ``n_jobs <= 0`` (from either source) requests one worker per available
    CPU core.  Non-integral values raise the same clear errors as the
    other ``REPRO_*`` knobs.
    """
    if n_jobs is None:
        raw = os.environ.get("REPRO_N_JOBS")
        if raw is None:
            return 1
        try:
            n_jobs = int(raw)
        except ValueError:
            raise ValidationError(
                f"environment variable REPRO_N_JOBS must be an integer, got {raw!r}"
            )
    n_jobs = check_integer(n_jobs, "n_jobs")
    if n_jobs <= 0:
        return os.cpu_count() or 1
    return n_jobs


def run_trials(
    specs: Iterable[TrialSpec],
    *,
    seed: Any = None,
    n_jobs: int | None = None,
    cache: TrialCache | str | os.PathLike | None = None,
    label: str = "trials",
) -> TrialRunReport:
    """Execute an ensemble of trials, in parallel and with memoization.

    Parameters
    ----------
    specs:
        The trials.  Results come back in spec order regardless of
        completion order.
    seed:
        Root seed for the ensemble (``None``, int,
        :class:`~numpy.random.SeedSequence`, or
        :class:`~numpy.random.Generator`).  Each trial receives the child
        stream at its ``index``; specs carrying an explicit ``seed`` keep
        it.  Pass a fixed seed for reproducible (and cacheable) ensembles.
    n_jobs:
        Worker processes; see :func:`resolve_n_jobs`.  ``1`` runs serially
        in-process (no pickling, monkeypatch-friendly).
    cache:
        ``None`` (no caching), a directory path, or a
        :class:`~repro.runtime.cache.TrialCache`.
    label:
        Human-readable ensemble name for progress logging.

    Returns
    -------
    TrialRunReport
        Ordered results plus the executed/cached split and elapsed time.
    """
    specs = list(specs)
    n_jobs = resolve_n_jobs(n_jobs)
    store = _as_cache(cache)
    seeds = _effective_seeds(specs, seed)
    start = time.perf_counter()

    results: list[Any] = [None] * len(specs)
    keys: list[str | None] = [None] * len(specs)
    pending: list[int] = []
    for position, (spec, trial_seed) in enumerate(zip(specs, seeds)):
        if store is not None:
            keys[position] = trial_key(spec, trial_seed)
            hit, value = store.load(keys[position])
            if hit:
                results[position] = value
                continue
        pending.append(position)
    cached = len(specs) - len(pending)

    _logger.info(
        "%s: %d trials (%d cached, %d to run) with n_jobs=%d",
        label, len(specs), cached, len(pending), n_jobs,
    )
    if pending:
        if n_jobs == 1 or len(pending) == 1:
            for position in pending:
                results[position] = _run_one(specs[position], seeds[position])
                _store_result(store, keys[position], results[position])
                _logger.debug("%s: trial %d done", label, specs[position].index)
        else:
            workers = min(n_jobs, len(pending))
            with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_run_one, specs[position], seeds[position]): position
                    for position in pending
                }
                for future in concurrent.futures.as_completed(futures):
                    position = futures[future]
                    results[position] = future.result()
                    _store_result(store, keys[position], results[position])
                    _logger.debug("%s: trial %d done", label, specs[position].index)

    elapsed = time.perf_counter() - start
    _logger.info(
        "%s: completed %d trials in %.2fs (%d executed, %d cached)",
        label, len(specs), elapsed, len(pending), cached,
    )
    return TrialRunReport(
        results=results,
        executed=len(pending),
        cached=cached,
        n_jobs=n_jobs,
        elapsed=elapsed,
    )


def _run_one(spec: TrialSpec, trial_seed: Any) -> Any:
    """Execute one trial with its derived generator (runs in workers too)."""
    rng = np.random.default_rng(trial_seed)
    return spec.fn(rng, **dict(spec.params))


def _store_result(store: TrialCache | None, key: str | None, result: Any) -> None:
    if store is not None and key is not None:
        store.store(key, result)


def _as_cache(cache: TrialCache | str | os.PathLike | None) -> TrialCache | None:
    if cache is None:
        return None
    if isinstance(cache, TrialCache):
        return cache
    return TrialCache(cache)


def _effective_seeds(specs: Sequence[TrialSpec], seed: Any) -> list[Any]:
    """Per-trial seeds: spawned children of the root, or spec overrides."""
    if isinstance(seed, np.random.Generator):
        seed = int(seed.integers(0, 2**63 - 1))
    root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    children = root.spawn(len(specs)) if specs else []
    return [
        spec.seed if spec.seed is not None else child
        for spec, child in zip(specs, children)
    ]
