"""The parallel, fault-tolerant trial-execution engine.

:func:`run_trials` fans a list of :class:`~repro.runtime.spec.TrialSpec`
across a :class:`concurrent.futures.ProcessPoolExecutor` (or runs them
in-process when ``n_jobs=1``), with four guarantees:

* **Determinism** — per-trial RNG streams are derived from the root seed
  with :meth:`numpy.random.SeedSequence.spawn`, indexed by trial position.
  A trial's stream depends only on ``(root seed, index)`` — never on which
  worker ran it, in what order, or on which attempt — so ensemble results
  are bit-identical for any ``n_jobs`` *and under transient faults*: a
  retried or resubmitted trial re-derives exactly the stream a clean run
  would have used.
* **Memoization** — with a cache directory configured, completed trials
  are persisted keyed by a stable hash of (function qualname + source
  fingerprint, params, trial index, effective seed); a rerun executes only
  the missing trials, which makes interrupted ensembles resumable.
* **Fault tolerance** — each trial gets bounded retries with
  deterministic exponential backoff (``REPRO_TRIAL_RETRIES``,
  ``REPRO_TRIAL_BACKOFF``) and an optional per-attempt timeout
  (``REPRO_TRIAL_TIMEOUT``), applied identically on the serial and pool
  paths.  The per-trial **failure policy** decides what a permanently
  failed trial does: ``on_error="raise"`` (the default) aborts the
  ensemble with the original exception; ``on_error="collect"`` records a
  structured :class:`~repro.runtime.spec.TrialFailure` at the trial's
  position and keeps going.  A broken worker pool
  (:class:`~concurrent.futures.process.BrokenProcessPool`, e.g. an
  OOM-killed worker) **self-heals**: the executor is rebuilt and only the
  lost in-flight trials are resubmitted — completed results and cache
  hits are kept — within a bounded restart budget
  (``REPRO_POOL_RESTARTS``) before the breakage surfaces as a hard error.
* **Observability** — the returned
  :class:`~repro.runtime.spec.TrialRunReport` carries the executed/cached
  split, the failed/retried/pool-restart attribution, and wall-clock
  timing, and progress is logged through :mod:`repro.utils.logging`.

Worker count resolution: an explicit ``n_jobs`` argument wins, then the
``REPRO_N_JOBS`` environment variable, then the serial default of 1.
``n_jobs <= 0`` means "all available cores".  Trial callables must be
module-level functions (workers import them by name).

Parallel runs execute on a **persistent worker pool** by default: one
process-wide :class:`~concurrent.futures.ProcessPoolExecutor`, created on
first parallel use and reused across :func:`run_trials` calls and blocked
counting passes, so consecutive ensembles (Table 1's fits, figure
ensembles, bench trajectories) pay the worker fork/spawn cost once
instead of per call.  The pool is lifecycle-managed: it is resized only
when a caller asks for a *different* worker count, shut down at
interpreter exit (and discarded on breakage), and :func:`shutdown_pool`
releases it eagerly.  ``pool="ephemeral"`` (or ``REPRO_POOL=ephemeral``)
restores the per-call executor.  The serial default (``n_jobs=1``) never
touches any pool, and results are bit-identical either way — per-trial
seeds depend only on (root seed, index), never on which worker ran what.
Workers inherit the parent's state (environment, loaded modules) at pool
creation time, not per call.

Every recovery path above is exercisable deterministically through the
fault-injection harness (:mod:`repro.runtime.faults`,
``REPRO_FAULT_INJECT``): injected trial errors, worker crashes, and slow
trials are threaded into the task payloads — never the environment — so
chaos runs behave identically at any worker count.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import os
from concurrent.futures.process import BrokenProcessPool
from contextlib import ExitStack
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.graphs.graph import Graph
from repro.runtime.cache import TrialCache
from repro.runtime.faults import (
    CRASH_EXIT_CODE,
    FAULT_INJECT_ENV,
    FaultPlan,
    InjectedFault,
    NO_FAULTS,
    TrialFaults,
    resolve_fault_plan,
)
from repro.runtime.hashing import trial_key
from repro.runtime.shm import share_graph
from repro.runtime.spec import TrialFailure, TrialRunReport, TrialSpec
from repro.utils.logging import get_logger
from repro.utils.validation import check_integer

__all__ = [
    "run_trials",
    "resolve_n_jobs",
    "resolve_pool_mode",
    "resolve_on_error",
    "resolve_trial_retries",
    "resolve_trial_timeout",
    "resolve_retry_backoff",
    "resolve_pool_restarts",
    "persistent_executor",
    "shutdown_pool",
    "pool_worker_pids",
    "call_with_timeout",
    "TrialTimeoutError",
    "POOL_MODE_ENV",
    "POOL_MODES",
    "ON_ERROR_POLICIES",
    "TRIAL_RETRIES_ENV",
    "TRIAL_TIMEOUT_ENV",
    "TRIAL_BACKOFF_ENV",
    "POOL_RESTARTS_ENV",
]

_logger = get_logger(__name__)

POOL_MODE_ENV = "REPRO_POOL"
POOL_MODES = ("persistent", "ephemeral")

ON_ERROR_POLICIES = ("raise", "collect")
TRIAL_RETRIES_ENV = "REPRO_TRIAL_RETRIES"
TRIAL_TIMEOUT_ENV = "REPRO_TRIAL_TIMEOUT"
TRIAL_BACKOFF_ENV = "REPRO_TRIAL_BACKOFF"
POOL_RESTARTS_ENV = "REPRO_POOL_RESTARTS"

# Deterministic retry pacing: attempt N sleeps BACKOFF * 2**(N-1) seconds
# (no jitter — two chaos runs with the same faults back off identically),
# capped so a deep retry budget cannot stall a worker for minutes.
DEFAULT_RETRY_BACKOFF = 0.05
MAX_RETRY_BACKOFF = 5.0

# How many times a broken pool is rebuilt within one run_trials call
# before the BrokenProcessPool surfaces to the caller.
DEFAULT_POOL_RESTARTS = 2

# The process-wide persistent executor: the pool itself, the worker count
# it was created for, and whether the atexit hook is installed.  All three
# are guarded by _pool_lock: concurrent serve handlers (threads) acquire
# and shut the pool down concurrently, and the create/resize/discard
# decisions must see a consistent snapshot.  The lock is reentrant so a
# signal handler firing mid-acquisition can still run shutdown_pool.
_pool: concurrent.futures.ProcessPoolExecutor | None = None
_pool_workers = 0
_atexit_registered = False
_pool_lock = threading.RLock()


class TrialTimeoutError(RuntimeError):
    """An attempt exceeded the per-trial timeout (retryable)."""


def resolve_pool_mode(mode: str | None = None) -> str:
    """Resolve the executor lifecycle: argument, then ``REPRO_POOL``.

    ``persistent`` (the default) reuses one process-wide pool across
    parallel runs; ``ephemeral`` creates and tears down an executor per
    call (the pre-PR 4 behaviour).
    """
    source = "argument"
    if mode is None:
        raw = os.environ.get(POOL_MODE_ENV)
        if not raw:  # unset or empty = default
            return "persistent"
        mode = raw
        source = f"environment variable {POOL_MODE_ENV}"
    if mode not in POOL_MODES:
        raise ValidationError(
            f"pool mode (from {source}) must be one of "
            f"{', '.join(POOL_MODES)}, got {mode!r}"
        )
    return mode


def resolve_on_error(on_error: str | None = None) -> str:
    """Resolve the failure policy: argument, else the ``raise`` default.

    ``raise`` aborts the ensemble on the first permanently failed trial
    (the original exception propagates); ``collect`` records failures as
    :class:`~repro.runtime.spec.TrialFailure` results and keeps going.
    The policy is an API/CLI choice, not an environment knob — silently
    swallowing failures because of an inherited variable would be a
    footgun.
    """
    if on_error is None:
        return "raise"
    if on_error not in ON_ERROR_POLICIES:
        raise ValidationError(
            f"on_error must be one of {', '.join(ON_ERROR_POLICIES)}, "
            f"got {on_error!r}"
        )
    return on_error


def resolve_trial_retries(retries: int | None = None) -> int:
    """Resolve the per-trial retry budget: argument, then
    ``REPRO_TRIAL_RETRIES``, then 0 (a trial runs exactly once)."""
    if retries is None:
        raw = os.environ.get(TRIAL_RETRIES_ENV)
        if raw is None or raw == "":
            return 0
        try:
            retries = int(raw)
        except ValueError as exc:
            raise ValidationError(
                f"environment variable {TRIAL_RETRIES_ENV} must be an "
                f"integer, got {raw!r}"
            ) from exc
    return check_integer(retries, "retries", minimum=0)


def resolve_trial_timeout(timeout: float | None = None) -> float | None:
    """Resolve the per-attempt timeout in seconds: argument, then
    ``REPRO_TRIAL_TIMEOUT``, then ``None`` (no timeout)."""
    if timeout is None:
        raw = os.environ.get(TRIAL_TIMEOUT_ENV)
        if raw is None or raw == "":
            return None
        try:
            timeout = float(raw)
        except ValueError as exc:
            raise ValidationError(
                f"environment variable {TRIAL_TIMEOUT_ENV} must be a "
                f"number of seconds, got {raw!r}"
            ) from exc
    timeout = float(timeout)
    if not timeout > 0:
        raise ValidationError(f"trial timeout must be positive, got {timeout}")
    return timeout


def resolve_retry_backoff(backoff: float | None = None) -> float:
    """Resolve the base backoff delay: argument, then
    ``REPRO_TRIAL_BACKOFF``, then {default}s.  Deterministic (no jitter);
    attempt N waits ``backoff * 2**(N-1)``, capped at {cap}s.  0 disables
    the wait (useful in tests).
    """
    if backoff is None:
        raw = os.environ.get(TRIAL_BACKOFF_ENV)
        if raw is None or raw == "":
            return DEFAULT_RETRY_BACKOFF
        try:
            backoff = float(raw)
        except ValueError as exc:
            raise ValidationError(
                f"environment variable {TRIAL_BACKOFF_ENV} must be a "
                f"number of seconds, got {raw!r}"
            ) from exc
    backoff = float(backoff)
    if backoff < 0:
        raise ValidationError(f"retry backoff must be >= 0, got {backoff}")
    return backoff


resolve_retry_backoff.__doc__ = resolve_retry_backoff.__doc__.format(
    default=DEFAULT_RETRY_BACKOFF, cap=MAX_RETRY_BACKOFF
)


def resolve_pool_restarts(restarts: int | None = None) -> int:
    """Resolve the pool-restart budget: argument, then
    ``REPRO_POOL_RESTARTS``, then {default}.  0 disables self-healing
    (the first broken pool surfaces immediately)."""
    if restarts is None:
        raw = os.environ.get(POOL_RESTARTS_ENV)
        if raw is None or raw == "":
            return DEFAULT_POOL_RESTARTS
        try:
            restarts = int(raw)
        except ValueError as exc:
            raise ValidationError(
                f"environment variable {POOL_RESTARTS_ENV} must be an "
                f"integer, got {raw!r}"
            ) from exc
    return check_integer(restarts, "pool restarts", minimum=0)


resolve_pool_restarts.__doc__ = resolve_pool_restarts.__doc__.format(
    default=DEFAULT_POOL_RESTARTS
)


def persistent_executor(n_workers: int) -> concurrent.futures.ProcessPoolExecutor:
    """The process-wide pool, (re)created for ``n_workers`` workers.

    Reused as long as callers keep asking for the same worker count; a
    different count (or a broken pool) shuts the old executor down and
    builds a fresh one.  Workers are started lazily by the executor, so a
    pool sized for N workers running fewer pending trials forks only what
    it needs.
    """
    global _pool, _pool_workers, _atexit_registered
    n_workers = check_integer(n_workers, "n_workers", minimum=1)
    with _pool_lock:
        broken = _pool is not None and getattr(_pool, "_broken", False)
        if _pool is None or _pool_workers != n_workers or broken:
            shutdown_pool()
            _pool = concurrent.futures.ProcessPoolExecutor(max_workers=n_workers)
            _pool_workers = n_workers
            if not _atexit_registered:
                atexit.register(shutdown_pool)
                _atexit_registered = True
            _logger.debug("persistent pool created with %d workers", n_workers)
        return _pool


def shutdown_pool() -> None:
    """Shut the persistent pool down (idempotent; next use recreates it).

    Safe to call concurrently from multiple threads and reentrantly from
    a signal handler: the pool reference is detached under the lock
    first, so overlapping calls see no pool and return immediately while
    one caller performs the actual (blocking) shutdown.
    """
    global _pool, _pool_workers
    with _pool_lock:
        pool = _pool
        _pool = None
        _pool_workers = 0
    if pool is not None:
        pool.shutdown(wait=True, cancel_futures=True)


def pool_worker_pids() -> tuple[int, ...]:
    """PIDs of the live persistent-pool workers (empty without a pool).

    Workers fork lazily, so the tuple grows as tasks are submitted; a
    stable tuple across consecutive ensembles is the observable "zero
    re-fork" guarantee the pool-reuse tests assert.
    """
    pool = _pool
    if pool is None:
        return ()
    processes = getattr(pool, "_processes", None) or {}
    return tuple(sorted(processes))


def resolve_n_jobs(n_jobs: int | None = None) -> int:
    """Resolve a worker count: argument, then ``REPRO_N_JOBS``, then 1.

    ``n_jobs <= 0`` (from either source) requests one worker per available
    CPU core.  Non-integral values raise the same clear errors as the
    other ``REPRO_*`` knobs.
    """
    if n_jobs is None:
        raw = os.environ.get("REPRO_N_JOBS")
        if raw is None:
            return 1
        try:
            n_jobs = int(raw)
        except ValueError as exc:
            raise ValidationError(
                f"environment variable REPRO_N_JOBS must be an integer, got {raw!r}"
            ) from exc
    n_jobs = check_integer(n_jobs, "n_jobs")
    if n_jobs <= 0:
        return os.cpu_count() or 1
    return n_jobs


@dataclass(frozen=True)
class _ExecutionSettings:
    """Per-submission execution policy, shipped inside the task payload.

    Picklable and explicit: retries, timeout, backoff, the collect/raise
    policy, this trial's injected faults, and whether *this submission*
    should crash its worker (the parent re-decides per submission so a
    pool rebuild never re-arms an exhausted crash fault).
    """

    retries: int = 0
    timeout: float | None = None
    backoff: float = DEFAULT_RETRY_BACKOFF
    collect: bool = False
    faults: TrialFaults = NO_FAULTS
    crash: bool = False


@dataclass(frozen=True)
class _TrialOutcome:
    """What one executed trial sends back: a value or a failure, plus the
    attempt count (for retry attribution)."""

    value: Any = None
    failure: TrialFailure | None = None
    attempts: int = 1


def _shared_graph_params(
    specs: Sequence[TrialSpec], pending: Sequence[int]
) -> list[Graph]:
    """Distinct Graph instances appearing in the pending specs' params.

    Deduplicated by identity: fan-outs (multi-start fits, block groups)
    reference one graph object from many specs, and one segment serves
    them all.
    """
    seen: dict[int, Graph] = {}
    for position in pending:
        for value in specs[position].params.values():
            if isinstance(value, Graph) and id(value) not in seen:
                seen[id(value)] = value
    return list(seen.values())


def run_trials(
    specs: Iterable[TrialSpec],
    *,
    seed: Any = None,
    n_jobs: int | None = None,
    cache: TrialCache | str | os.PathLike | None = None,
    label: str = "trials",
    pool: str | None = None,
    on_error: str | None = None,
    retries: int | None = None,
    timeout: float | None = None,
    backoff: float | None = None,
    pool_restarts: int | None = None,
    faults: str | FaultPlan | None = None,
) -> TrialRunReport:
    """Execute an ensemble of trials, in parallel and with memoization.

    Parameters
    ----------
    specs:
        The trials.  Results come back in spec order regardless of
        completion order.
    seed:
        Root seed for the ensemble (``None``, int,
        :class:`~numpy.random.SeedSequence`, or
        :class:`~numpy.random.Generator`).  Each trial receives the child
        stream at its ``index``; specs carrying an explicit ``seed`` keep
        it.  Pass a fixed seed for reproducible (and cacheable) ensembles.
    n_jobs:
        Worker processes; see :func:`resolve_n_jobs`.  ``1`` runs serially
        in-process (no pickling, monkeypatch-friendly).
    cache:
        ``None`` (no caching), a directory path, or a
        :class:`~repro.runtime.cache.TrialCache`.
    label:
        Human-readable ensemble name for progress logging.
    pool:
        Executor lifecycle for parallel runs: ``persistent`` (default;
        reuse the process-wide pool across calls) or ``ephemeral`` (a
        fresh executor per call); see :func:`resolve_pool_mode`.
        Irrelevant when the run is serial.  Results are bit-identical
        either way.
    on_error:
        Failure policy once a trial's retries are exhausted: ``raise``
        (default; the original exception aborts the ensemble) or
        ``collect`` (a :class:`~repro.runtime.spec.TrialFailure` takes
        the trial's place in the results and the ensemble continues).
    retries:
        Extra attempts per trial after the first; see
        :func:`resolve_trial_retries` (``REPRO_TRIAL_RETRIES``, default
        0).  Every attempt re-derives the same per-trial stream, so a
        retried run is bit-identical to a clean one.
    timeout:
        Per-attempt wall-clock budget in seconds; see
        :func:`resolve_trial_timeout` (``REPRO_TRIAL_TIMEOUT``, default
        none).  A timed-out attempt counts as a failure (and is retried
        if budget remains).  Enforced identically on the serial and pool
        paths via an in-process watchdog; the abandoned attempt finishes
        in a daemon thread whose result is discarded, so trial callables
        should be pure (they already must be, for caching).
    backoff:
        Base seconds of the deterministic exponential backoff between
        attempts; see :func:`resolve_retry_backoff`
        (``REPRO_TRIAL_BACKOFF``).
    pool_restarts:
        How many broken-pool rebuilds this call may perform before
        surfacing the breakage; see :func:`resolve_pool_restarts`
        (``REPRO_POOL_RESTARTS``).
    faults:
        Deterministic fault-injection plan — a spec string, a parsed
        :class:`~repro.runtime.faults.FaultPlan`, or ``None`` to honour
        ``REPRO_FAULT_INJECT`` (see :mod:`repro.runtime.faults`).

    Returns
    -------
    TrialRunReport
        Ordered results plus the executed/cached split, the
        failed/retried/pool-restart attribution, and elapsed time.
    """
    specs = list(specs)
    n_jobs = resolve_n_jobs(n_jobs)
    # Validate eagerly: a bad pool mode or fault spec must fail on the
    # serial/cached branches too, not only once the call site first runs
    # parallel (or first injects a fault).
    pool = resolve_pool_mode(pool)
    on_error = resolve_on_error(on_error)
    retries = resolve_trial_retries(retries)
    timeout = resolve_trial_timeout(timeout)
    backoff = resolve_retry_backoff(backoff)
    restart_budget = resolve_pool_restarts(pool_restarts)
    plan = resolve_fault_plan(faults)
    store = _as_cache(cache)
    seeds = _effective_seeds(specs, seed)
    start = time.perf_counter()

    results: list[Any] = [None] * len(specs)
    keys: list[str | None] = [None] * len(specs)
    pending: list[int] = []
    for position, (spec, trial_seed) in enumerate(zip(specs, seeds)):
        if store is not None:
            keys[position] = trial_key(spec, trial_seed)
            hit, value = store.load(keys[position])
            if hit:
                results[position] = value
                continue
        pending.append(position)
    cached = len(specs) - len(pending)
    trial_faults = plan.for_pending(pending)
    if trial_faults:
        _logger.warning(
            "%s: fault injection active on %d trial(s): %s",
            label, len(trial_faults), sorted(trial_faults),
        )

    state = _RunState(results=results, keys=keys, store=store, label=label)
    base = _ExecutionSettings(
        retries=retries,
        timeout=timeout,
        backoff=backoff,
        collect=(on_error == "collect"),
    )

    _logger.info(
        "%s: %d trials (%d cached, %d to run) with n_jobs=%d",
        label, len(specs), cached, len(pending), n_jobs,
    )
    restarts = 0
    if pending:
        if n_jobs == 1 or len(pending) == 1:
            # Serial path: same retry/timeout/policy semantics, no pool
            # (worker_crash faults are inert — there is no worker to kill
            # without killing the ensemble itself).
            for position in pending:
                settings = _settings_for(base, trial_faults.get(position))
                outcome = _execute_trial(specs[position], seeds[position], settings)
                state.fold(position, specs[position], outcome)
        else:
            # Publish large graphs appearing in pending trial params to
            # shared memory for the duration of the pool session: every
            # task payload then pickles an attach token instead of the
            # edge arrays (see repro.runtime.shm).  Cache keys were
            # computed above — before any token existed — and worker
            # results are fresh instances, so nothing cacheable can
            # observe a token.  The ExitStack's unwind is the single
            # release point; worker crashes and pool rebuilds inside
            # _collect re-attach by name against the still-open segments.
            with ExitStack() as session:
                for graph in _shared_graph_params(specs, pending):
                    session.enter_context(share_graph(graph))
                restarts = _collect(
                    specs, seeds, pending, state, base, trial_faults,
                    n_jobs=n_jobs, pool=pool, restart_budget=restart_budget,
                )

    elapsed = time.perf_counter() - start
    _logger.info(
        "%s: completed %d trials in %.2fs "
        "(%d executed, %d cached, %d failed, %d retried, %d pool restart(s))",
        label, len(specs), elapsed, len(pending), cached,
        len(state.failed), len(state.retried), restarts,
    )
    pending_set = set(pending)
    return TrialRunReport(
        results=results,
        executed=len(pending),
        cached=cached,
        n_jobs=n_jobs,
        elapsed=elapsed,
        cached_indices=tuple(
            position for position in range(len(specs)) if position not in pending_set
        ),
        failed=len(state.failed),
        retried=len(state.retried),
        pool_restarts=restarts,
        failed_indices=tuple(sorted(state.failed)),
        retried_indices=tuple(sorted(state.retried)),
    )


class _RunState:
    """Mutable fold target shared by the serial and pool paths."""

    def __init__(self, *, results, keys, store, label):
        self.results = results
        self.keys = keys
        self.store = store
        self.label = label
        self.failed: set[int] = set()
        self.retried: set[int] = set()

    def fold(self, position: int, spec: TrialSpec, outcome: _TrialOutcome) -> None:
        if outcome.attempts > 1:
            self.retried.add(position)
        if outcome.failure is not None:
            self.results[position] = outcome.failure
            self.failed.add(position)
            _logger.warning("%s: %s", self.label, outcome.failure)
            return
        self.results[position] = outcome.value
        _store_result(self.store, self.keys[position], outcome.value)
        _logger.debug("%s: trial %d done", self.label, spec.index)


def _settings_for(
    base: _ExecutionSettings,
    faults: TrialFaults | None,
    submission: int = 0,
) -> _ExecutionSettings:
    """The settings one submission of one trial ships with.

    ``submission`` is the 1-based pool-submission counter; the serial
    path passes 0 (its default), which keeps ``worker_crash`` faults
    disarmed — there is no worker process to kill, and arming the crash
    in-process would take down the ensemble itself.
    """
    if faults is None:
        return base
    return _ExecutionSettings(
        retries=base.retries,
        timeout=base.timeout,
        backoff=base.backoff,
        collect=base.collect,
        faults=faults,
        crash=0 < submission <= faults.crash_submissions,
    )


def _collect(
    specs: Sequence[TrialSpec],
    seeds: Sequence[Any],
    pending: Sequence[int],
    state: _RunState,
    base: _ExecutionSettings,
    trial_faults: dict[int, TrialFaults],
    *,
    n_jobs: int,
    pool: str,
    restart_budget: int,
) -> int:
    """Run the pending trials on an executor, self-healing pool breakage.

    Returns the number of pool restarts performed.  Each round submits
    the not-yet-completed trials; when the pool breaks mid-round
    (a worker died — OOM killer, segfault, injected crash), results that
    completed before the breakage are kept, the executor is rebuilt, and
    only the lost trials are resubmitted.  On any *trial* exception
    (``raise`` policy) the not-yet-started futures are cancelled before
    the exception propagates, so a persistent pool is left idle (and
    usable) rather than draining abandoned work.
    """
    todo = list(pending)
    submissions = dict.fromkeys(pending, 0)
    restarts = 0
    while todo:
        executor = _acquire_executor(pool, n_jobs, len(todo))
        futures: dict[concurrent.futures.Future, int] = {}
        for position in todo:
            submissions[position] += 1
            settings = _settings_for(
                base, trial_faults.get(position), submissions[position]
            )
            futures[
                executor.submit(_execute_trial, specs[position], seeds[position], settings)
            ] = position
        completed: set[int] = set()
        try:
            for future in concurrent.futures.as_completed(futures):
                position = futures[future]
                state.fold(position, specs[position], future.result())
                completed.add(position)
        except BrokenProcessPool:
            # Keep every result that finished before the breakage, even
            # ones as_completed had not yielded yet.
            for future, position in futures.items():
                if position in completed or not future.done() or future.cancelled():
                    continue
                if future.exception() is None:
                    state.fold(position, specs[position], future.result())
                    completed.add(position)
            _release_executor(pool, executor, broken=True)
            todo = [position for position in todo if position not in completed]
            restarts += 1
            if restarts > restart_budget:
                _logger.error(
                    "%s: worker pool broke %d time(s), exceeding the restart "
                    "budget of %d (%s=%d); %d trial(s) unrecovered",
                    state.label, restarts, restart_budget, POOL_RESTARTS_ENV,
                    restart_budget, len(todo),
                )
                raise
            _logger.warning(
                "%s: worker pool broke (a worker process died); rebuilding "
                "and resubmitting %d lost trial(s) (restart %d of at most %d, "
                "%d completed result(s) kept)",
                state.label, len(todo), restarts, restart_budget, len(completed),
            )
            continue
        except BaseException:
            for future in futures:
                future.cancel()
            _release_executor(pool, executor, broken=False)
            raise
        _release_executor(pool, executor, broken=False)
        todo = []
    return restarts


def _acquire_executor(
    pool: str, n_jobs: int, pending_count: int
) -> concurrent.futures.Executor:
    if pool == "persistent":
        # Size the pool by the requested n_jobs (stable across calls with
        # the same budget), not by this call's pending count — workers
        # fork lazily, so a small ensemble on a big pool only starts what
        # it uses.
        return persistent_executor(n_jobs)
    return concurrent.futures.ProcessPoolExecutor(
        max_workers=min(n_jobs, pending_count)
    )


def _release_executor(
    pool: str, executor: concurrent.futures.Executor, *, broken: bool
) -> None:
    if pool == "persistent":
        if broken:
            shutdown_pool()  # do not hand a dead pool to the next round/caller
        return
    executor.shutdown(wait=True, cancel_futures=True)


def _execute_trial(
    spec: TrialSpec, trial_seed: Any, settings: _ExecutionSettings
) -> _TrialOutcome:
    """Execute one trial under the run's policy (runs in workers too).

    Retries re-derive the generator from the same ``trial_seed``, so a
    successful attempt N returns bit-identical results to a clean
    attempt 1.  Only :class:`Exception` is retried/collected —
    ``KeyboardInterrupt``/``SystemExit`` always propagate.
    """
    if settings.crash:
        # Simulated worker death (OOM killer / segfault): bypass every
        # Python-level cleanup, exactly like the real thing.
        os._exit(CRASH_EXIT_CODE)
    attempts = settings.retries + 1
    start = time.perf_counter()
    final: Exception | None = None
    final_traceback = ""
    for attempt in range(1, attempts + 1):
        try:
            value = _attempt(spec, trial_seed, settings, attempt)
            return _TrialOutcome(value=value, attempts=attempt)
        except Exception as exc:
            final = exc
            final_traceback = traceback.format_exc()
            if attempt < attempts:
                _sleep_backoff(settings.backoff, attempt)
    elapsed = time.perf_counter() - start
    if settings.collect:
        return _TrialOutcome(
            failure=TrialFailure(
                index=spec.index,
                error_type=type(final).__name__,
                message=str(final),
                traceback=final_traceback,
                attempts=attempts,
                elapsed=elapsed,
            ),
            attempts=attempts,
        )
    raise final


def _sleep_backoff(backoff: float, attempt: int) -> None:
    if backoff > 0:
        time.sleep(min(backoff * 2 ** (attempt - 1), MAX_RETRY_BACKOFF))


def _attempt(
    spec: TrialSpec, trial_seed: Any, settings: _ExecutionSettings, attempt: int
) -> Any:
    """One attempt: injected faults first, then the trial callable."""
    faults = settings.faults

    def call() -> Any:
        if faults.slow_attempts >= attempt and faults.slow_seconds > 0:
            time.sleep(faults.slow_seconds)
        if faults.error_attempts >= attempt:
            raise InjectedFault(
                f"injected trial error (trial {spec.index}, attempt {attempt}; "
                f"{FAULT_INJECT_ENV})"
            )
        rng = np.random.default_rng(trial_seed)
        return spec.fn(rng, **dict(spec.params))

    if settings.timeout is None:
        return call()
    return call_with_timeout(call, settings.timeout, spec.index)


def call_with_timeout(call: Callable[[], Any], timeout: float, index: int) -> Any:
    """Run ``call`` under a watchdog; raise :class:`TrialTimeoutError` on
    expiry.

    The attempt runs in a daemon thread; on timeout the thread is
    abandoned (its eventual result is discarded) rather than killed —
    Python cannot safely preempt arbitrary code — which is why this works
    identically in-process and inside pool workers without breaking the
    pool.  The serve layer reuses this watchdog for per-request deadlines
    (``index`` is then the request sequence number).
    """
    box: dict[str, Any] = {}

    def runner() -> None:
        try:
            box["value"] = call()
        except BaseException as exc:  # ferried to the caller, not lost
            box["error"] = exc

    thread = threading.Thread(
        target=runner, name=f"repro-trial-{index}", daemon=True
    )
    thread.start()
    thread.join(timeout)
    if thread.is_alive():
        raise TrialTimeoutError(
            f"trial {index} exceeded the per-attempt timeout of {timeout:g}s"
        )
    if "error" in box:
        raise box["error"]
    return box["value"]


def _store_result(store: TrialCache | None, key: str | None, result: Any) -> None:
    if store is not None and key is not None:
        store.store(key, result)


def _as_cache(cache: TrialCache | str | os.PathLike | None) -> TrialCache | None:
    if cache is None:
        return None
    if isinstance(cache, TrialCache):
        return cache
    return TrialCache(cache)


def _effective_seeds(specs: Sequence[TrialSpec], seed: Any) -> list[Any]:
    """Per-trial seeds: spawned children of the root, or spec overrides."""
    if isinstance(seed, np.random.Generator):
        seed = int(seed.integers(0, 2**63 - 1))
    root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    children = root.spawn(len(specs)) if specs else []
    return [
        spec.seed if spec.seed is not None else child
        for spec, child in zip(specs, children)
    ]
