"""Deterministic fault injection for the trial engine.

Fault tolerance is only trustworthy if its recovery paths run — not just
under unit mocks, but through the real engine: real worker processes
dying, real trials raising, real attempts timing out.  This module turns
the ``REPRO_FAULT_INJECT`` environment knob (or an explicit argument to
:func:`repro.runtime.run_trials`) into a **deterministic fault plan** the
engine applies while executing an ensemble, so every recovery path can be
exercised reproducibly from tests and the CLI.

The spec is a ``;``-separated list of clauses, each
``kind:key=value[:key=value...]``::

    trial_error:index=3:attempts=1      # trial 3 raises InjectedFault on
                                        # its first attempt (then succeeds)
    worker_crash:nth=2                  # the 2nd pending trial kills its
                                        # worker process (os._exit) on its
                                        # first submission
    worker_crash:index=4:attempts=2     # trial 4 crashes its worker on
                                        # its first two submissions
    slow_trial:index=5:seconds=30       # trial 5 sleeps 30s before
                                        # executing, on its first attempt

``index`` names the trial's **position in the run's spec list** (the same
positions :attr:`~repro.runtime.spec.TrialRunReport.cached_indices`
uses); ``nth`` is 1-based over the *pending* (not cached) trials in
submission order.  ``attempts`` bounds how many attempts (or, for
``worker_crash``, submissions) the fault fires on — the default 1 models
a transient fault that a single retry (or one pool restart) heals, which
is what keeps fault-injected runs **bit-identical** to clean ones: a
retried attempt re-derives the same ``(root seed, index)`` stream, so the
surviving results carry no trace of the fault.

Faults are threaded to workers inside the task payload (never via the
environment), so they apply identically on the serial and pool paths and
never depend on what a worker process inherited at fork time.
``worker_crash`` is a no-op on the serial path — there is no worker to
kill without killing the ensemble itself.

The serve layer (:mod:`repro.serve`) has its own clause vocabulary under
the separate ``REPRO_SERVE_FAULT_INJECT`` knob, targeting *requests*
instead of trials (``nth`` is 1-based over the work requests admitted
past the backpressure gate, in admission order)::

    slow_request:nth=3:seconds=30       # 3rd admitted work request stalls
                                        # 30s inside its deadline watchdog
                                        # (drives a 504)
    handler_error:nth=4                 # 4th admitted work request raises
                                        # InjectedFault in its handler
    pool_breakage:nth=5                 # 5th admitted work request kills
                                        # its pool worker on its first
                                        # submission (drives self-healing
                                        # and the circuit breaker)
    pool_breakage:nth=6:attempts=9      # ...on its first 9 submissions
                                        # (exhausts the restart budget)

Requests are not retried by the server, so ``slow_request`` and
``handler_error`` fire at most once; ``attempts`` only applies to
``pool_breakage``, bounding how many resubmissions crash their worker.
``pool_breakage`` is inert when the server runs its work in-process
(``--n-jobs 1``), mirroring ``worker_crash`` on the serial trial path.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Mapping, Sequence

from repro.errors import ValidationError

__all__ = [
    "FAULT_INJECT_ENV",
    "FAULT_KINDS",
    "SERVE_FAULT_INJECT_ENV",
    "SERVE_FAULT_KINDS",
    "InjectedFault",
    "TrialFaults",
    "NO_FAULTS",
    "RequestFaults",
    "NO_REQUEST_FAULTS",
    "FaultClause",
    "FaultPlan",
    "ServeFaultPlan",
    "parse_fault_plan",
    "parse_serve_fault_plan",
    "resolve_fault_plan",
    "resolve_serve_fault_plan",
]

FAULT_INJECT_ENV = "REPRO_FAULT_INJECT"
FAULT_KINDS = ("trial_error", "worker_crash", "slow_trial")

SERVE_FAULT_INJECT_ENV = "REPRO_SERVE_FAULT_INJECT"
SERVE_FAULT_KINDS = ("slow_request", "handler_error", "pool_breakage")

# Exit code an injected worker crash dies with: distinguishable from a
# clean exit in worker logs, meaningless otherwise.
CRASH_EXIT_CODE = 87


class InjectedFault(RuntimeError):
    """The transient, retryable error ``trial_error`` clauses raise."""


@dataclass(frozen=True)
class TrialFaults:
    """The faults one trial is subject to (picklable; ships in the task).

    Attributes
    ----------
    error_attempts:
        Attempts 1..N raise :class:`InjectedFault` instead of running.
    slow_attempts / slow_seconds:
        Attempts 1..N sleep ``slow_seconds`` before executing (inside the
        timed section, so a per-trial timeout observes the delay).
    crash_submissions:
        Submissions 1..N kill the worker process (pool paths only; the
        parent decides per submission and never re-arms a crash beyond
        this budget, so pool self-healing terminates).
    """

    error_attempts: int = 0
    slow_attempts: int = 0
    slow_seconds: float = 0.0
    crash_submissions: int = 0

    def merged(self, other: "TrialFaults") -> "TrialFaults":
        """Combine two clauses targeting the same trial (maxima win)."""
        return TrialFaults(
            error_attempts=max(self.error_attempts, other.error_attempts),
            slow_attempts=max(self.slow_attempts, other.slow_attempts),
            slow_seconds=max(self.slow_seconds, other.slow_seconds),
            crash_submissions=max(self.crash_submissions, other.crash_submissions),
        )


NO_FAULTS = TrialFaults()


@dataclass(frozen=True)
class FaultClause:
    """One parsed spec clause (see the module docstring for the grammar)."""

    kind: str
    index: int | None = None
    nth: int | None = None
    attempts: int = 1
    seconds: float = 0.0


@dataclass(frozen=True)
class FaultPlan:
    """The parsed ``REPRO_FAULT_INJECT`` spec: zero or more clauses."""

    clauses: tuple[FaultClause, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.clauses)

    def for_pending(self, pending: Sequence[int]) -> dict[int, TrialFaults]:
        """Resolve the plan against a run's pending positions.

        ``nth`` clauses bind to ``pending[nth - 1]`` (clauses pointing
        past the pending list are inert); ``index`` clauses bind to that
        position directly (inert if the position is cached or absent —
        a cache hit never executes, so it cannot fault).  The result maps
        position → merged :class:`TrialFaults` for every targeted trial.
        """
        pending_set = set(pending)
        targeted: dict[int, TrialFaults] = {}
        for clause in self.clauses:
            if clause.nth is not None:
                if clause.nth > len(pending):
                    continue
                position = pending[clause.nth - 1]
            else:
                position = clause.index
                if position not in pending_set:
                    continue
            faults = _clause_faults(clause)
            previous = targeted.get(position)
            targeted[position] = faults if previous is None else previous.merged(faults)
        return targeted


def _clause_faults(clause: FaultClause) -> TrialFaults:
    if clause.kind == "trial_error":
        return replace(NO_FAULTS, error_attempts=clause.attempts)
    if clause.kind == "slow_trial":
        return replace(
            NO_FAULTS, slow_attempts=clause.attempts, slow_seconds=clause.seconds
        )
    return replace(NO_FAULTS, crash_submissions=clause.attempts)


_TRIAL_EXAMPLES = (
    "trial_error:index=3:attempts=1, worker_crash:nth=2, "
    "slow_trial:index=5:seconds=30"
)
_SERVE_EXAMPLES = (
    "slow_request:nth=3:seconds=30, handler_error:nth=4, "
    "pool_breakage:nth=5:attempts=2"
)


def _clause_error(
    clause: str,
    reason: str,
    kinds: Sequence[str] = FAULT_KINDS,
    examples: str = _TRIAL_EXAMPLES,
) -> ValidationError:
    return ValidationError(
        f"bad fault clause {clause!r}: {reason}; expected "
        f"kind:key=value[:key=value...] with kind one of {', '.join(kinds)} "
        f"(e.g. {examples})"
    )


def _serve_clause_error(clause: str, reason: str) -> ValidationError:
    return _clause_error(clause, reason, SERVE_FAULT_KINDS, _SERVE_EXAMPLES)


def _parse_fields(clause: str, fields: Sequence[str], error=_clause_error) -> dict[str, str]:
    values: dict[str, str] = {}
    for token in fields:
        key, separator, value = token.partition("=")
        if not separator or not key or not value:
            raise error(clause, f"malformed field {token!r}")
        if key in values:
            raise error(clause, f"duplicate key {key!r}")
        values[key] = value
    return values


def _field_int(
    clause: str, values: Mapping[str, str], key: str, minimum: int, error=_clause_error
) -> int:
    raw = values[key]
    try:
        value = int(raw)
    except ValueError as exc:
        raise error(clause, f"{key} must be an integer, got {raw!r}") from exc
    if value < minimum:
        raise error(clause, f"{key} must be >= {minimum}, got {value}")
    return value


def _field_float(
    clause: str, values: Mapping[str, str], key: str, error=_clause_error
) -> float:
    raw = values[key]
    try:
        value = float(raw)
    except ValueError as exc:
        raise error(clause, f"{key} must be a number, got {raw!r}") from exc
    if not value > 0:
        raise error(clause, f"{key} must be positive, got {value}")
    return value


_ALLOWED_KEYS = {
    "trial_error": {"index", "attempts"},
    "slow_trial": {"index", "seconds", "attempts"},
    "worker_crash": {"index", "nth", "attempts"},
}


def parse_fault_plan(spec: str) -> FaultPlan:
    """Parse a fault spec string into a :class:`FaultPlan`.

    Malformed specs raise :class:`~repro.errors.ValidationError` with the
    offending clause named — an injection harness that silently ignores a
    typo'd fault would "pass" every chaos test vacuously.
    """
    clauses: list[FaultClause] = []
    for raw in spec.split(";"):
        raw = raw.strip()
        if not raw:
            continue
        kind, *fields = [token.strip() for token in raw.split(":")]
        if kind not in FAULT_KINDS:
            raise _clause_error(raw, f"unknown kind {kind!r}")
        values = _parse_fields(raw, fields)
        unknown = set(values) - _ALLOWED_KEYS[kind]
        if unknown:
            raise _clause_error(
                raw, f"unknown key(s) {', '.join(sorted(unknown))} for {kind}"
            )
        attempts = _field_int(raw, values, "attempts", 1) if "attempts" in values else 1
        if kind == "worker_crash":
            if ("index" in values) == ("nth" in values):
                raise _clause_error(raw, "needs exactly one of index= or nth=")
            index = _field_int(raw, values, "index", 0) if "index" in values else None
            nth = _field_int(raw, values, "nth", 1) if "nth" in values else None
            clauses.append(
                FaultClause(kind=kind, index=index, nth=nth, attempts=attempts)
            )
            continue
        if "index" not in values:
            raise _clause_error(raw, "needs index=")
        index = _field_int(raw, values, "index", 0)
        seconds = 0.0
        if kind == "slow_trial":
            if "seconds" not in values:
                raise _clause_error(raw, "needs seconds=")
            seconds = _field_float(raw, values, "seconds")
        clauses.append(
            FaultClause(kind=kind, index=index, attempts=attempts, seconds=seconds)
        )
    return FaultPlan(clauses=tuple(clauses))


def resolve_fault_plan(faults: "str | FaultPlan | None" = None) -> FaultPlan:
    """Resolve the fault plan: argument, then ``REPRO_FAULT_INJECT``,
    then the empty (fault-free) plan."""
    if isinstance(faults, FaultPlan):
        return faults
    if faults is None:
        faults = os.environ.get(FAULT_INJECT_ENV) or ""
    return parse_fault_plan(faults)


@dataclass(frozen=True)
class RequestFaults:
    """The faults one serve request is subject to.

    Attributes
    ----------
    error:
        The handler raises :class:`InjectedFault` instead of executing
        (the server answers with a structured 503).
    slow_seconds:
        The handler sleeps this long before executing, inside the
        per-request deadline watchdog (so ``REPRO_SERVE_TIMEOUT``
        observes the stall and answers 504).
    crash_submissions:
        Submissions 1..N of this request's pool work kill their worker
        process, driving the server's pool self-healing (and, when the
        restart budget is exhausted, the circuit breaker).
    """

    error: bool = False
    slow_seconds: float = 0.0
    crash_submissions: int = 0

    def merged(self, other: "RequestFaults") -> "RequestFaults":
        """Combine two clauses targeting the same request (maxima win)."""
        return RequestFaults(
            error=self.error or other.error,
            slow_seconds=max(self.slow_seconds, other.slow_seconds),
            crash_submissions=max(self.crash_submissions, other.crash_submissions),
        )


NO_REQUEST_FAULTS = RequestFaults()


@dataclass(frozen=True)
class ServeFaultPlan:
    """The parsed ``REPRO_SERVE_FAULT_INJECT`` spec: zero or more clauses.

    All serve clauses target by ``nth`` — the 1-based position of a work
    request (``/fit``, ``/sample``, ``/release``) in admission order —
    which is the only stable coordinate under concurrent clients.
    """

    clauses: tuple[FaultClause, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.clauses)

    def for_request(self, nth: int) -> RequestFaults:
        """The merged faults the ``nth`` admitted work request suffers."""
        faults = NO_REQUEST_FAULTS
        for clause in self.clauses:
            if clause.nth != nth:
                continue
            if clause.kind == "handler_error":
                faults = faults.merged(RequestFaults(error=True))
            elif clause.kind == "slow_request":
                faults = faults.merged(RequestFaults(slow_seconds=clause.seconds))
            else:  # pool_breakage
                faults = faults.merged(
                    RequestFaults(crash_submissions=clause.attempts)
                )
        return faults


_SERVE_ALLOWED_KEYS = {
    "slow_request": {"nth", "seconds"},
    "handler_error": {"nth"},
    "pool_breakage": {"nth", "attempts"},
}


def parse_serve_fault_plan(spec: str) -> ServeFaultPlan:
    """Parse a serve fault spec string into a :class:`ServeFaultPlan`.

    Same strictness contract as :func:`parse_fault_plan`: malformed specs
    raise :class:`~repro.errors.ValidationError` naming the clause.
    """
    clauses: list[FaultClause] = []
    for raw in spec.split(";"):
        raw = raw.strip()
        if not raw:
            continue
        kind, *fields = [token.strip() for token in raw.split(":")]
        if kind not in SERVE_FAULT_KINDS:
            raise _serve_clause_error(raw, f"unknown kind {kind!r}")
        values = _parse_fields(raw, fields, _serve_clause_error)
        unknown = set(values) - _SERVE_ALLOWED_KEYS[kind]
        if unknown:
            raise _serve_clause_error(
                raw, f"unknown key(s) {', '.join(sorted(unknown))} for {kind}"
            )
        if "nth" not in values:
            raise _serve_clause_error(raw, "needs nth=")
        nth = _field_int(raw, values, "nth", 1, _serve_clause_error)
        seconds = 0.0
        if kind == "slow_request":
            if "seconds" not in values:
                raise _serve_clause_error(raw, "needs seconds=")
            seconds = _field_float(raw, values, "seconds", _serve_clause_error)
        attempts = 1
        if "attempts" in values:
            attempts = _field_int(raw, values, "attempts", 1, _serve_clause_error)
        clauses.append(
            FaultClause(kind=kind, nth=nth, attempts=attempts, seconds=seconds)
        )
    return ServeFaultPlan(clauses=tuple(clauses))


def resolve_serve_fault_plan(
    faults: "str | ServeFaultPlan | None" = None,
) -> ServeFaultPlan:
    """Resolve the serve fault plan: argument, then
    ``REPRO_SERVE_FAULT_INJECT``, then the empty (fault-free) plan."""
    if isinstance(faults, ServeFaultPlan):
        return faults
    if faults is None:
        faults = os.environ.get(SERVE_FAULT_INJECT_ENV) or ""
    return parse_serve_fault_plan(faults)
