"""Trial descriptions and run reports for the execution engine.

A :class:`TrialSpec` names one unit of ensemble work: a module-level
callable, its keyword configuration, the trial's index within the
ensemble, and optionally an explicit seed overriding the engine's derived
per-trial stream.  Specs must be picklable (the engine ships them to
worker processes) and their ``params`` must be hashable by
:func:`repro.runtime.hashing.stable_hash` when caching is enabled.

:class:`TrialRunReport` is what :func:`repro.runtime.engine.run_trials`
returns: the ordered results plus the executed/cached split, failure and
retry attribution, and wall-clock timing, so callers (and tests) can
observe cache and recovery behaviour directly.

:class:`TrialFailure` is the structured stand-in a permanently failed
trial leaves in the results under the ``on_error="collect"`` policy: the
exception's type, message, and formatted traceback plus the attempt count
and wall clock — plain picklable strings/numbers, so it crosses process
boundaries and serializes into tracked run records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Union

import numpy as np

__all__ = ["TrialSpec", "TrialRunReport", "TrialSeed", "TrialFailure"]

# Explicit per-trial seed forms the engine accepts on a spec.
TrialSeed = Union[None, int, np.random.SeedSequence]


@dataclass(frozen=True)
class TrialSpec:
    """One trial: ``fn(rng, **params)`` at position ``index`` of an ensemble.

    Attributes
    ----------
    fn:
        Module-level callable invoked as ``fn(rng, **params)`` where ``rng``
        is a :class:`numpy.random.Generator` derived for this trial.  Must
        be importable by name so worker processes can unpickle it.
    params:
        Keyword configuration, identical across processes.  Part of the
        cache key, so values must be stable-hashable.
    index:
        Position of the trial in its ensemble; selects which spawned child
        stream the trial receives and distinguishes otherwise-identical
        trials in the cache.
    seed:
        Optional explicit seed (int or :class:`numpy.random.SeedSequence`)
        overriding the engine-derived stream — used by consumers that must
        preserve historical per-trial seeding exactly.
    """

    fn: Callable[..., Any]
    params: Mapping[str, Any] = field(default_factory=dict)
    index: int = 0
    seed: TrialSeed = None


@dataclass(frozen=True)
class TrialFailure:
    """A permanently failed trial, as structured data (picklable).

    Under the ``on_error="collect"`` failure policy, a trial whose every
    attempt raised ends up as a :class:`TrialFailure` in the report's
    ``results`` instead of aborting the ensemble.  Everything is plain
    strings and numbers so the object crosses process boundaries and
    lands in tracked run records unchanged.

    Attributes
    ----------
    index:
        The failed trial's ensemble index (``TrialSpec.index``).
    error_type:
        Class name of the final exception (e.g. ``"RuntimeError"``).
    message:
        ``str()`` of the final exception.
    traceback:
        The formatted traceback of the final attempt.
    attempts:
        Total attempts made (1 + retries actually used).
    elapsed:
        Wall-clock seconds spent across all attempts, backoff included.
    """

    index: int
    error_type: str
    message: str
    traceback: str = field(repr=False, default="")
    attempts: int = 1
    elapsed: float = 0.0

    def __str__(self) -> str:
        return (
            f"trial {self.index} failed after {self.attempts} attempt(s): "
            f"{self.error_type}: {self.message}"
        )


@dataclass(frozen=True)
class TrialRunReport:
    """Outcome of one :func:`~repro.runtime.engine.run_trials` call.

    Attributes
    ----------
    results:
        Trial results in spec order (independent of completion order).
        Under ``on_error="collect"``, permanently failed trials appear
        as :class:`TrialFailure` entries at their positions.
    executed:
        Number of trials actually run in this call (failures included).
    cached:
        Number of trials served from the on-disk cache.
    n_jobs:
        The resolved worker count the run used.
    elapsed:
        Wall-clock seconds for the whole batch, including cache probes.
    cached_indices:
        Positions (in spec order) that were served from the cache —
        lets batching callers (e.g. :mod:`repro.scenarios`) attribute
        the executed/cached split to their own sub-ranges.
    failed:
        Number of trials that permanently failed (``collect`` policy
        only; the ``raise`` policy never returns a report with failures).
    retried:
        Number of trials that needed more than one attempt (whether they
        eventually succeeded or failed).
    pool_restarts:
        Times the worker pool was rebuilt after breaking mid-run
        (lost in-flight trials were resubmitted; completed results and
        cache hits were kept).
    failed_indices / retried_indices:
        The positions (in spec order) behind ``failed`` / ``retried``.
    """

    results: list
    executed: int
    cached: int
    n_jobs: int
    elapsed: float
    cached_indices: tuple[int, ...] = ()
    failed: int = 0
    retried: int = 0
    pool_restarts: int = 0
    failed_indices: tuple[int, ...] = ()
    retried_indices: tuple[int, ...] = ()
