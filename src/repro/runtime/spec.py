"""Trial descriptions and run reports for the execution engine.

A :class:`TrialSpec` names one unit of ensemble work: a module-level
callable, its keyword configuration, the trial's index within the
ensemble, and optionally an explicit seed overriding the engine's derived
per-trial stream.  Specs must be picklable (the engine ships them to
worker processes) and their ``params`` must be hashable by
:func:`repro.runtime.hashing.stable_hash` when caching is enabled.

:class:`TrialRunReport` is what :func:`repro.runtime.engine.run_trials`
returns: the ordered results plus the executed/cached split and wall-clock
timing, so callers (and tests) can observe cache behaviour directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Union

import numpy as np

__all__ = ["TrialSpec", "TrialRunReport", "TrialSeed"]

# Explicit per-trial seed forms the engine accepts on a spec.
TrialSeed = Union[None, int, np.random.SeedSequence]


@dataclass(frozen=True)
class TrialSpec:
    """One trial: ``fn(rng, **params)`` at position ``index`` of an ensemble.

    Attributes
    ----------
    fn:
        Module-level callable invoked as ``fn(rng, **params)`` where ``rng``
        is a :class:`numpy.random.Generator` derived for this trial.  Must
        be importable by name so worker processes can unpickle it.
    params:
        Keyword configuration, identical across processes.  Part of the
        cache key, so values must be stable-hashable.
    index:
        Position of the trial in its ensemble; selects which spawned child
        stream the trial receives and distinguishes otherwise-identical
        trials in the cache.
    seed:
        Optional explicit seed (int or :class:`numpy.random.SeedSequence`)
        overriding the engine-derived stream — used by consumers that must
        preserve historical per-trial seeding exactly.
    """

    fn: Callable[..., Any]
    params: Mapping[str, Any] = field(default_factory=dict)
    index: int = 0
    seed: TrialSeed = None


@dataclass(frozen=True)
class TrialRunReport:
    """Outcome of one :func:`~repro.runtime.engine.run_trials` call.

    Attributes
    ----------
    results:
        Trial results in spec order (independent of completion order).
    executed:
        Number of trials actually run in this call.
    cached:
        Number of trials served from the on-disk cache.
    n_jobs:
        The resolved worker count the run used.
    elapsed:
        Wall-clock seconds for the whole batch, including cache probes.
    cached_indices:
        Positions (in spec order) that were served from the cache —
        lets batching callers (e.g. :mod:`repro.scenarios`) attribute
        the executed/cached split to their own sub-ranges.
    """

    results: list
    executed: int
    cached: int
    n_jobs: int
    elapsed: float
    cached_indices: tuple[int, ...] = ()
