"""repro.runtime — the parallel, cached trial-execution engine.

Every repeated-trial ensemble in the reproduction (the "Expected" series
behind Figures 1–4, Table 1's twelve fits, the ε-ablation sweeps, the
baseline comparison) is a list of independent trials.  This subsystem runs
such lists through one engine:

* :class:`TrialSpec` — one trial: a module-level callable plus its keyword
  configuration, ensemble index, and optional explicit seed;
* :func:`run_trials` — fans specs across a process pool (serial fallback
  at ``n_jobs=1``), derives bit-identical per-trial RNG streams from the
  root seed via ``SeedSequence.spawn``, and memoizes completed trials in a
  :class:`TrialCache`;
* :class:`TrialRunReport` — the ordered results plus executed/cached
  counts and timing.

The ``REPRO_N_JOBS`` and ``REPRO_CACHE_DIR`` environment knobs (see
:mod:`repro.evaluation.experiments`) wire the engine into every bench and
the ``repro run-ensemble`` CLI subcommand.
"""

from repro.runtime.cache import TrialCache
from repro.runtime.engine import resolve_n_jobs, run_trials
from repro.runtime.hashing import code_fingerprint, stable_hash, trial_key
from repro.runtime.spec import TrialRunReport, TrialSeed, TrialSpec

__all__ = [
    "TrialSpec",
    "TrialRunReport",
    "TrialSeed",
    "TrialCache",
    "run_trials",
    "resolve_n_jobs",
    "stable_hash",
    "code_fingerprint",
    "trial_key",
]
