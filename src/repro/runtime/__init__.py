"""repro.runtime — the parallel, cached, fault-tolerant trial engine.

Every repeated-trial ensemble in the reproduction (the "Expected" series
behind Figures 1–4, Table 1's twelve fits, the ε-ablation sweeps, the
baseline comparison) is a list of independent trials.  This subsystem runs
such lists through one engine:

* :class:`TrialSpec` — one trial: a module-level callable plus its keyword
  configuration, ensemble index, and optional explicit seed;
* :func:`run_trials` — fans specs across a process pool (serial fallback
  at ``n_jobs=1``), derives bit-identical per-trial RNG streams from the
  root seed via ``SeedSequence.spawn``, and memoizes completed trials in a
  :class:`TrialCache`;
* :class:`TrialRunReport` — the ordered results plus executed/cached
  counts, failed/retried/pool-restart attribution, and timing;
* :class:`TrialFailure` — the structured stand-in a permanently failed
  trial leaves in the results under the ``on_error="collect"`` policy.

Parallel runs reuse one **persistent worker pool** across calls (and
across the blocked counting passes that fan through the same engine), so
consecutive ensembles pay the worker start-up cost once;
:func:`shutdown_pool` releases it, and ``pool="ephemeral"`` /
``REPRO_POOL=ephemeral`` restores per-call executors.

The engine is fault-tolerant without giving up bit-identity: bounded
retries with deterministic backoff (``REPRO_TRIAL_RETRIES``,
``REPRO_TRIAL_BACKOFF``), an optional per-attempt timeout
(``REPRO_TRIAL_TIMEOUT``), and self-healing pool rebuilds
(``REPRO_POOL_RESTARTS``) all re-derive the same ``(root seed, index)``
streams, so a run with transient faults matches a clean run bit for bit.
Every recovery path is exercisable deterministically through the
fault-injection harness (:mod:`repro.runtime.faults`,
``REPRO_FAULT_INJECT``).

The ``REPRO_N_JOBS``, ``REPRO_CACHE_DIR``, and ``REPRO_POOL`` environment
knobs (see :mod:`repro.evaluation.experiments`) wire the engine into
every bench and the ``repro run-ensemble`` CLI subcommand.
"""

from repro.runtime.cache import TrialCache
from repro.runtime.engine import (
    ON_ERROR_POLICIES,
    POOL_MODE_ENV,
    POOL_MODES,
    POOL_RESTARTS_ENV,
    TRIAL_BACKOFF_ENV,
    TRIAL_RETRIES_ENV,
    TRIAL_TIMEOUT_ENV,
    TrialTimeoutError,
    call_with_timeout,
    persistent_executor,
    pool_worker_pids,
    resolve_n_jobs,
    resolve_on_error,
    resolve_pool_mode,
    resolve_pool_restarts,
    resolve_retry_backoff,
    resolve_trial_retries,
    resolve_trial_timeout,
    run_trials,
    shutdown_pool,
)
from repro.runtime.faults import (
    CRASH_EXIT_CODE,
    FAULT_INJECT_ENV,
    FAULT_KINDS,
    SERVE_FAULT_INJECT_ENV,
    SERVE_FAULT_KINDS,
    FaultClause,
    FaultPlan,
    InjectedFault,
    RequestFaults,
    ServeFaultPlan,
    TrialFaults,
    parse_fault_plan,
    parse_serve_fault_plan,
    resolve_fault_plan,
    resolve_serve_fault_plan,
)
from repro.runtime.hashing import code_fingerprint, stable_hash, trial_key
from repro.runtime.spec import TrialFailure, TrialRunReport, TrialSeed, TrialSpec

__all__ = [
    "TrialSpec",
    "TrialRunReport",
    "TrialSeed",
    "TrialFailure",
    "TrialCache",
    "run_trials",
    "resolve_n_jobs",
    "resolve_pool_mode",
    "resolve_on_error",
    "resolve_trial_retries",
    "resolve_trial_timeout",
    "resolve_retry_backoff",
    "resolve_pool_restarts",
    "persistent_executor",
    "shutdown_pool",
    "pool_worker_pids",
    "call_with_timeout",
    "TrialTimeoutError",
    "POOL_MODE_ENV",
    "POOL_MODES",
    "ON_ERROR_POLICIES",
    "TRIAL_RETRIES_ENV",
    "TRIAL_TIMEOUT_ENV",
    "TRIAL_BACKOFF_ENV",
    "POOL_RESTARTS_ENV",
    "FAULT_INJECT_ENV",
    "FAULT_KINDS",
    "SERVE_FAULT_INJECT_ENV",
    "SERVE_FAULT_KINDS",
    "CRASH_EXIT_CODE",
    "InjectedFault",
    "TrialFaults",
    "RequestFaults",
    "FaultClause",
    "FaultPlan",
    "ServeFaultPlan",
    "parse_fault_plan",
    "parse_serve_fault_plan",
    "resolve_fault_plan",
    "resolve_serve_fault_plan",
    "stable_hash",
    "code_fingerprint",
    "trial_key",
]
