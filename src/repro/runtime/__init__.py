"""repro.runtime — the parallel, cached trial-execution engine.

Every repeated-trial ensemble in the reproduction (the "Expected" series
behind Figures 1–4, Table 1's twelve fits, the ε-ablation sweeps, the
baseline comparison) is a list of independent trials.  This subsystem runs
such lists through one engine:

* :class:`TrialSpec` — one trial: a module-level callable plus its keyword
  configuration, ensemble index, and optional explicit seed;
* :func:`run_trials` — fans specs across a process pool (serial fallback
  at ``n_jobs=1``), derives bit-identical per-trial RNG streams from the
  root seed via ``SeedSequence.spawn``, and memoizes completed trials in a
  :class:`TrialCache`;
* :class:`TrialRunReport` — the ordered results plus executed/cached
  counts and timing.

Parallel runs reuse one **persistent worker pool** across calls (and
across the blocked counting passes that fan through the same engine), so
consecutive ensembles pay the worker start-up cost once;
:func:`shutdown_pool` releases it, and ``pool="ephemeral"`` /
``REPRO_POOL=ephemeral`` restores per-call executors.

The ``REPRO_N_JOBS``, ``REPRO_CACHE_DIR``, and ``REPRO_POOL`` environment
knobs (see :mod:`repro.evaluation.experiments`) wire the engine into
every bench and the ``repro run-ensemble`` CLI subcommand.
"""

from repro.runtime.cache import TrialCache
from repro.runtime.engine import (
    POOL_MODE_ENV,
    POOL_MODES,
    persistent_executor,
    pool_worker_pids,
    resolve_n_jobs,
    resolve_pool_mode,
    run_trials,
    shutdown_pool,
)
from repro.runtime.hashing import code_fingerprint, stable_hash, trial_key
from repro.runtime.spec import TrialRunReport, TrialSeed, TrialSpec

__all__ = [
    "TrialSpec",
    "TrialRunReport",
    "TrialSeed",
    "TrialCache",
    "run_trials",
    "resolve_n_jobs",
    "resolve_pool_mode",
    "persistent_executor",
    "shutdown_pool",
    "pool_worker_pids",
    "POOL_MODE_ENV",
    "POOL_MODES",
    "stable_hash",
    "code_fingerprint",
    "trial_key",
]
