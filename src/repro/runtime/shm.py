"""Shared-memory CSR handoff: ship graphs to pool workers without pickling.

Every pool task whose params carry a :class:`~repro.graphs.graph.Graph`
used to pickle the graph's canonical edge arrays into the task payload —
per *task*.  Multi-start KronFit fans S starts over the same graph, the
parallel counting pass fans B block groups over the same graph; at 10⁶
edges that is S (or B) × 16 MB of serialization for bytes every worker
could share.  This module publishes the canonical arrays once into POSIX
shared memory (:mod:`multiprocessing.shared_memory`) and lets the
graph's pickle reduce to a ~100-byte token for the duration of a trial
session.

How the pieces fit:

* :func:`share_graph` — a context manager the trial engine wraps around
  its pool dispatch.  On entry it copies the graph's edge arrays into a
  fresh segment and stamps the *instance* with a ``(name, n_nodes,
  n_edges)`` token; :meth:`Graph.__reduce__` sees the token and pickles
  to ``(_attach_graph, token)`` instead of the arrays.  On exit the
  token is cleared and the segment is closed and unlinked — by the
  *creating process only*, so worker crashes and pool rebuilds mid-run
  can never leak a named segment: replacement workers re-attach by name
  while the session holds the segment open, and the parent's ``finally``
  is the single point of release.
* :func:`_attach_graph` — the worker-side unpickling hook: attaches the
  named segment (memoized per process) and builds the graph around
  read-only views of the shared buffer — zero copy.  Attached instances
  do **not** carry the token, so a graph a worker sends back to the
  parent pickles by value; nothing that outlives the session (trial
  cache entries, results) can capture a segment name.
* ``REPRO_SHM`` — ``auto`` (default: share graphs whose edge payload is
  at least 1 MiB), ``on`` (share every graph on the pool path), ``off``
  (always pickle by value).

Attachment registers nothing with :mod:`multiprocessing.resource_tracker`
(``track=False`` where available, explicit unregister otherwise): the
tracker would otherwise unlink segments still in use when the *first*
worker exits — precisely the self-healing scenario PR 7 exists for.

:func:`live_segments` / :func:`attached_segments` expose the bookkeeping
for the lifecycle tests (``tests/runtime/test_shm.py``).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from multiprocessing import shared_memory

import numpy as np

from repro.errors import ValidationError
from repro.graphs.graph import Graph

__all__ = [
    "SHM_ENV",
    "SHM_MODES",
    "AUTO_THRESHOLD_BYTES",
    "resolve_shm_mode",
    "should_share",
    "share_graph",
    "live_segments",
    "attached_segments",
]

SHM_ENV = "REPRO_SHM"
SHM_MODES = ("auto", "on", "off")

# `auto` shares a graph once its pickled edge payload reaches 1 MiB
# (two int64 arrays: 65536 edges).  Below that, pickling is cheaper than
# a segment round trip.
AUTO_THRESHOLD_BYTES = 1 << 20

# Segments created by *this* process that are currently published:
# name -> SharedMemory.  share_graph is the only writer.
_LIVE: dict[str, shared_memory.SharedMemory] = {}

# Segments this process has attached to (worker side): name ->
# SharedMemory.  Entries keep the mapping alive across tasks so repeated
# trials over one graph attach once; the parent's unlink removes the
# *name*, the memory itself lives until the last mapping drops.
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}


def resolve_shm_mode(mode: str | None = None) -> str:
    """The effective sharing mode: argument, else ``REPRO_SHM``, else auto."""
    source = "argument"
    if mode is None:
        raw = os.environ.get(SHM_ENV)
        if not raw:  # unset or empty = auto
            return "auto"
        mode = raw
        source = f"environment variable {SHM_ENV}"
    if not isinstance(mode, str) or mode not in SHM_MODES:
        raise ValidationError(
            f"shared-memory mode (from {source}) must be one of "
            f"{', '.join(SHM_MODES)}, got {mode!r}"
        )
    return mode


def should_share(graph: Graph, mode: str | None = None) -> bool:
    """Whether the pool path should publish ``graph`` to shared memory."""
    mode = resolve_shm_mode(mode)
    if mode == "off":
        return False
    if graph.n_edges == 0:
        return False
    if mode == "on":
        return True
    return 2 * 8 * graph.n_edges >= AUTO_THRESHOLD_BYTES


@contextmanager
def share_graph(graph: Graph, mode: str | None = None):
    """Publish ``graph`` to a shared segment for the duration of the block.

    Inside the block the instance pickles to an attach token (see the
    module docstring); on exit — and only in the creating process — the
    segment is closed and unlinked.  Graphs below the sharing threshold
    (or with sharing off, or already shared) pass through untouched, so
    callers can wrap unconditionally.
    """
    if graph._shm is not None or not should_share(graph, mode):
        yield graph
        return
    edge_u, edge_v = graph.edge_arrays
    n_edges = graph.n_edges
    segment = shared_memory.SharedMemory(create=True, size=2 * 8 * n_edges)
    try:
        buffer = np.ndarray((2, n_edges), dtype=np.int64, buffer=segment.buf)
        buffer[0] = edge_u
        buffer[1] = edge_v
        graph._shm = (segment.name, graph.n_nodes, n_edges)
        _LIVE[segment.name] = segment
        yield graph
    finally:
        graph._shm = None
        _LIVE.pop(segment.name, None)
        # Release order matters: the local ndarray view must be the only
        # remaining buffer export when close() runs, so drop it first.
        del buffer
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - platform quirk
            pass


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a named segment without resource-tracker registration.

    The tracker keys segments by *name* across all processes feeding it,
    so letting an attach register (and then unregistering) would cancel
    the creating process's registration — and the tracker would unlink
    live segments when the first worker exits.  Python 3.13 has
    ``track=False``; earlier versions need registration suppressed for
    the duration of the attach (single-threaded in workers, and the
    suppression window is one constructor call).
    """
    segment = _ATTACHED.get(name)
    if segment is not None:
        return segment
    try:
        segment = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track flag
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            segment = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original
    _ATTACHED[name] = segment
    return segment


def _attach_graph(token: tuple[str, int, int]) -> Graph:
    """Worker-side unpickling hook: rebuild a graph over the shared buffer.

    The returned instance wraps *read-only views* of the segment (zero
    copy) and carries no token, so re-pickling it ships the arrays by
    value — session-scoped segment names never escape into caches or
    results.
    """
    name, n_nodes, n_edges = token
    segment = _attach_segment(name)
    buffer = np.ndarray((2, n_edges), dtype=np.int64, buffer=segment.buf)
    return Graph._from_canonical(n_nodes, buffer[0], buffer[1])


def live_segments() -> tuple[str, ...]:
    """Names of segments this process has published and not yet released."""
    return tuple(sorted(_LIVE))


def attached_segments() -> tuple[str, ...]:
    """Names of segments this process has attached to (worker side)."""
    return tuple(sorted(_ATTACHED))
