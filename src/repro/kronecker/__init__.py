"""Stochastic Kronecker graph model: generation and parameter estimation.

Layout:

* :mod:`repro.kronecker.initiator` — the 2×2 symmetric initiator matrix
  Θ = [[a, b], [b, c]] the paper estimates,
* :mod:`repro.kronecker.kronpower` — dense Kronecker powers and brute-force
  expected counts (the test oracle for the closed forms),
* :mod:`repro.kronecker.moments` — Gleich–Owen closed-form expectations of
  edges/hairpins/tripins/triangles under Θ^{⊗k} (paper Eq. 1),
* :mod:`repro.kronecker.sampling` — exact SKG samplers (O(E) grass-hopping
  and naive O(N²)),
* :mod:`repro.kronecker.likelihood` / ``kronfit`` — the Leskovec–Faloutsos
  approximate-MLE baseline (permutation MCMC + gradient ascent),
* :mod:`repro.kronecker.kronmom` — the Gleich–Owen moment-matching
  estimator (paper Eq. 2) that the private estimator wraps.
"""

from repro.kronecker.initiator import Initiator, as_initiator
from repro.kronecker.kronpower import (
    kronecker_power,
    edge_probability_matrix,
    brute_force_expected_counts,
)
from repro.kronecker.moments import (
    expected_edges,
    expected_hairpins,
    expected_tripins,
    expected_triangles,
    expected_statistics,
)
from repro.kronecker.sampling import sample_skg, sample_skg_naive
from repro.kronecker.kronmom import (
    KronMomEstimator,
    MomentMatchResult,
    DISTANCES,
    NORMALIZATIONS,
)
from repro.kronecker.kronfit import (
    KronFitEstimator,
    KronFitResult,
    perturbed_initial_sigma,
    select_best_start,
)

__all__ = [
    "Initiator",
    "as_initiator",
    "kronecker_power",
    "edge_probability_matrix",
    "brute_force_expected_counts",
    "expected_edges",
    "expected_hairpins",
    "expected_tripins",
    "expected_triangles",
    "expected_statistics",
    "sample_skg",
    "sample_skg_naive",
    "KronMomEstimator",
    "MomentMatchResult",
    "DISTANCES",
    "NORMALIZATIONS",
    "KronFitEstimator",
    "KronFitResult",
    "perturbed_initial_sigma",
    "select_best_start",
]
