"""The 2×2 symmetric Kronecker initiator matrix Θ = [[a, b], [b, c]].

Following the paper (§3.4) and Gleich & Owen, the model space is restricted
to symmetric 2×2 initiators with entries in [0, 1] and the identifiability
convention ``a ≥ c`` (swapping a and c relabels nodes by complementing
their bits, producing the same distribution on graphs up to isomorphism —
:meth:`Initiator.canonical` applies the convention).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import check_in_unit_interval

__all__ = ["Initiator", "as_initiator"]


@dataclass(frozen=True)
class Initiator:
    """Immutable 2×2 symmetric stochastic-Kronecker initiator.

    Iterating an ``Initiator`` yields ``(a, b, c)``, so instances unpack
    anywhere a parameter triple is accepted.

    >>> theta = Initiator(0.99, 0.45, 0.25)
    >>> a, b, c = theta
    >>> theta.matrix().shape
    (2, 2)
    """

    a: float
    b: float
    c: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "a", check_in_unit_interval(self.a, "a"))
        object.__setattr__(self, "b", check_in_unit_interval(self.b, "b"))
        object.__setattr__(self, "c", check_in_unit_interval(self.c, "c"))

    def __iter__(self) -> Iterator[float]:
        return iter((self.a, self.b, self.c))

    def matrix(self) -> np.ndarray:
        """The 2×2 matrix [[a, b], [b, c]] as float64."""
        return np.array([[self.a, self.b], [self.b, self.c]], dtype=np.float64)

    def canonical(self) -> "Initiator":
        """The equivalent initiator with ``a >= c`` (identifiability)."""
        if self.a >= self.c:
            return self
        return Initiator(self.c, self.b, self.a)

    def expected_degree_factor(self) -> float:
        """Sum of entries (a + 2b + c): governs expected edge growth per level."""
        return self.a + 2.0 * self.b + self.c

    def sample(self, k: int, seed=None):
        """Sample one undirected SKG realization of order ``k``.

        Convenience wrapper around :func:`repro.kronecker.sampling.sample_skg`.
        """
        from repro.kronecker.sampling import sample_skg

        return sample_skg(self, k, seed=seed)

    def distance(self, other: "Initiator") -> float:
        """Max-abs parameter difference after canonicalizing both sides."""
        mine = self.canonical()
        theirs = other.canonical()
        return max(
            abs(mine.a - theirs.a), abs(mine.b - theirs.b), abs(mine.c - theirs.c)
        )

    def __repr__(self) -> str:
        return f"Initiator(a={self.a:.4f}, b={self.b:.4f}, c={self.c:.4f})"


def as_initiator(value) -> Initiator:
    """Coerce an ``Initiator``, an (a, b, c) triple, or a 2×2 symmetric
    matrix into an :class:`Initiator`."""
    if isinstance(value, Initiator):
        return value
    array = np.asarray(value, dtype=np.float64)
    if array.shape == (3,):
        return Initiator(float(array[0]), float(array[1]), float(array[2]))
    if array.shape == (2, 2):
        if not np.isclose(array[0, 1], array[1, 0]):
            raise ValidationError(
                f"initiator matrix must be symmetric, got off-diagonals "
                f"{array[0, 1]!r} and {array[1, 0]!r}"
            )
        return Initiator(float(array[0, 0]), float(array[0, 1]), float(array[1, 1]))
    raise ValidationError(
        f"cannot interpret {value!r} as an initiator: expected Initiator, "
        "(a, b, c), or a 2x2 symmetric matrix"
    )
