"""Dense Kronecker powers and brute-force expected counts.

These routines realise Definitions 3.1–3.4 of the paper literally: the
k-th Kronecker power of the initiator is the edge-probability matrix P of
the SKG.  They are exponential in ``k`` by nature (P has ``4^k`` entries),
so they exist for two purposes only:

* as the **reference semantics** against which the O(E) sampler and the
  closed-form moment formulas are verified in tests, and
* for pedagogical use on small graphs in the examples.

Production paths (sampling, estimation) never materialise P.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.kronecker.initiator import as_initiator
from repro.stats.counts import MatchingStatistics
from repro.utils.validation import check_integer, check_probability_matrix

__all__ = [
    "kronecker_power",
    "edge_probability_matrix",
    "brute_force_expected_counts",
]

# 2**12 x 2**12 float64 = 128 MiB; anything beyond is almost certainly a bug.
_MAX_DENSE_NODES = 4096


def kronecker_power(matrix: np.ndarray, k: int) -> np.ndarray:
    """The k-fold Kronecker power ``matrix ⊗ ... ⊗ matrix`` (k >= 1)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    k = check_integer(k, "k", minimum=1)
    side = matrix.shape[0] ** k
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValidationError(f"matrix must be square, got shape {matrix.shape}")
    if side > _MAX_DENSE_NODES:
        raise ValidationError(
            f"refusing to materialise a dense {side}x{side} Kronecker power "
            f"(limit {_MAX_DENSE_NODES}); use repro.kronecker.sampling instead"
        )
    result = matrix
    for _ in range(k - 1):
        result = np.kron(result, matrix)
    return result


def edge_probability_matrix(initiator, k: int) -> np.ndarray:
    """P = Θ^{⊗k} with the diagonal zeroed — undirected edge probabilities.

    Under the paper's §3.2 symmetrization (loops dropped, lower triangle of
    the directed realization mirrored), each unordered pair {u, v}, u ≠ v,
    is an edge independently with probability ``P[u, v]``; P is symmetric
    because Θ is.
    """
    theta = as_initiator(initiator)
    power = kronecker_power(theta.matrix(), k)
    np.fill_diagonal(power, 0.0)
    return power


def brute_force_expected_counts(probabilities: np.ndarray) -> MatchingStatistics:
    """Exact expectations of {E, H, T, Δ} under independent edges.

    ``probabilities`` is any symmetric zero-diagonal matrix of edge
    probabilities (not necessarily Kronecker-structured).  With row sums
    ``s1``, ``s2``, ``s3`` of P, P², P³ (entrywise powers):

    * ``E[E] = ½ Σ_v s1_v``
    * ``E[H] = Σ_v e₂(row v) = ½ Σ_v (s1_v² − s2_v)``
    * ``E[T] = Σ_v e₃(row v) = ⅙ Σ_v (s1_v³ − 3 s1_v s2_v + 2 s3_v)``
    * ``E[Δ] = tr(P³)/6`` (zero diagonal kills degenerate triples)

    This is the oracle used to validate the paper's Eq. (1) closed forms.
    """
    p = check_probability_matrix(probabilities, "probabilities")
    if not np.allclose(p, p.T):
        raise ValidationError("probabilities must be symmetric")
    if np.any(np.diagonal(p) != 0.0):
        raise ValidationError("probabilities must have a zero diagonal")
    s1 = p.sum(axis=1)
    s2 = (p**2).sum(axis=1)
    s3 = (p**3).sum(axis=1)
    expected_edges = 0.5 * s1.sum()
    expected_hairpins = 0.5 * (s1**2 - s2).sum()
    expected_tripins = (s1**3 - 3.0 * s1 * s2 + 2.0 * s3).sum() / 6.0
    expected_triangles = np.trace(p @ p @ p) / 6.0
    return MatchingStatistics(
        edges=float(expected_edges),
        hairpins=float(expected_hairpins),
        tripins=float(expected_tripins),
        triangles=float(expected_triangles),
    )
