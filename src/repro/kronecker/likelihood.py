"""Log-likelihood machinery for KronFit (Leskovec–Faloutsos approximate MLE).

Given a node correspondence σ (a permutation mapping graph nodes to
Kronecker ids), the undirected SKG log-likelihood is

    l(Θ, σ) = Σ_{uv ∈ E} log P_{σu σv} + Σ_{uv ∉ E} log(1 − P_{σu σv}).

Two structural facts make this tractable:

* ``P_{uv} = a^z b^x c^o`` where the *profile* (z, x, o) counts the bit
  positions of (u, v) that are (0,0)/differing/(1,1).  Every edge reduces
  to a profile, and the whole edge term reduces to a ``(k+1)×(k+1)``
  profile histogram.
* The sum over *all* pairs of ``log(1 − P)`` is permutation-invariant and
  has a closed-form second-order Taylor approximation (Leskovec's trick):
  ``Σ log(1−P) ≈ −ΣP − ½ΣP²`` with ``ΣP``, ``ΣP²`` geometric sums of the
  initiator entries.

The residual edge correction ``−Σ_{uv∈E} log(1−P_uv)`` is computed exactly,
so the only approximation is the Taylor step on non-edges — accurate for
the sparse graphs the model targets.  :func:`exact_log_likelihood` is the
O(N²) reference used by tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.graphs.graph import Graph
from repro.kronecker.initiator import Initiator, as_initiator

__all__ = [
    "edge_profiles",
    "profile_histogram",
    "ProfileLikelihood",
    "exact_log_likelihood",
    "PermutationSampler",
]

# Initiator entries are clamped into this open interval before taking logs.
_PARAM_FLOOR = 1e-6
_PARAM_CEIL = 1.0 - 1e-6


def _popcount(values: np.ndarray) -> np.ndarray:
    return np.bitwise_count(values.astype(np.uint64)).astype(np.int64)


def edge_profiles(
    graph: Graph, sigma: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-edge profiles (z, x, o) under node correspondence ``sigma``.

    ``sigma[node]`` is the Kronecker id assigned to ``node``; ids must be a
    permutation of ``0 .. 2^k - 1`` with ``2^k == graph.n_nodes``.
    """
    if graph.n_nodes != 2**k:
        raise ValidationError(
            f"graph has {graph.n_nodes} nodes, expected 2^{k} = {2**k}"
        )
    sigma = np.asarray(sigma, dtype=np.int64)
    if sigma.shape != (graph.n_nodes,):
        raise ValidationError("sigma must assign an id to every node")
    u, v = graph.edge_arrays
    su, sv = sigma[u], sigma[v]
    x = _popcount(su ^ sv)
    o = _popcount(su & sv)
    z = k - x - o
    return z, x, o


def profile_histogram(z: np.ndarray, x: np.ndarray, o: np.ndarray, k: int) -> np.ndarray:
    """Dense ``(k+1)×(k+1)`` histogram ``counts[z, o]`` of edge profiles."""
    flat = z * (k + 1) + o
    counts = np.bincount(flat, minlength=(k + 1) * (k + 1))
    return counts.reshape(k + 1, k + 1)


@dataclass(frozen=True)
class _LogTables:
    """Per-profile log-probability tables for one initiator."""

    log_p: np.ndarray  # (k+1, k+1): log P for profile (z, o)
    log_1mp: np.ndarray  # log(1 - P)
    p: np.ndarray  # P itself

    @classmethod
    def build(cls, theta: Initiator, k: int) -> "_LogTables":
        a = min(max(theta.a, _PARAM_FLOOR), _PARAM_CEIL)
        b = min(max(theta.b, _PARAM_FLOOR), _PARAM_CEIL)
        c = min(max(theta.c, _PARAM_FLOOR), _PARAM_CEIL)
        z = np.arange(k + 1)[:, None]
        o = np.arange(k + 1)[None, :]
        x = k - z - o  # negative for infeasible cells (z + o > k)
        valid = x >= 0
        # Infeasible cells can never receive histogram mass (edge profiles
        # always satisfy z + o <= k), so zeroing them is safe and avoids
        # 0 * inf = NaN in histogram contractions.
        log_p = np.where(
            valid,
            z * np.log(a) + np.where(valid, x, 0) * np.log(b) + o * np.log(c),
            0.0,
        )
        p = np.where(valid, np.exp(log_p), 0.0)
        log_1mp = np.where(valid, np.log1p(-np.minimum(p, _PARAM_CEIL)), 0.0)
        return cls(log_p=log_p, log_1mp=log_1mp, p=p)


class ProfileLikelihood:
    """Approximate log-likelihood and gradient from a profile histogram.

    The histogram fixes σ; this class evaluates l(Θ, σ) and ∇_Θ l(Θ, σ)
    for any Θ in O(k²).
    """

    def __init__(self, histogram: np.ndarray, k: int) -> None:
        histogram = np.asarray(histogram, dtype=np.float64)
        if histogram.shape != (k + 1, k + 1):
            raise ValidationError(
                f"histogram must be ({k + 1}, {k + 1}), got {histogram.shape}"
            )
        self.histogram = histogram
        self.k = k
        z = np.arange(k + 1)[:, None]
        o = np.arange(k + 1)[None, :]
        self._z = np.broadcast_to(z, histogram.shape)
        self._o = np.broadcast_to(o, histogram.shape)
        self._x = k - self._z - self._o

    def log_likelihood(self, theta: Initiator) -> float:
        """l(Θ, σ) with the Taylor-approximated non-edge term."""
        tables = _LogTables.build(theta, self.k)
        edge_term = float((self.histogram * (tables.log_p - tables.log_1mp)).sum())
        return edge_term + self._empty_graph_term(theta)

    def gradient(self, theta: Initiator) -> np.ndarray:
        """∇_{(a,b,c)} l(Θ, σ) (same approximation as the value)."""
        a = min(max(theta.a, _PARAM_FLOOR), _PARAM_CEIL)
        b = min(max(theta.b, _PARAM_FLOOR), _PARAM_CEIL)
        c = min(max(theta.c, _PARAM_FLOOR), _PARAM_CEIL)
        tables = _LogTables.build(theta, self.k)
        # d/dθ [log P - log(1-P)] = (count_θ / θ) / (1 - P)
        inv_1mp = 1.0 / np.maximum(1.0 - tables.p, 1.0 - _PARAM_CEIL)
        weight = self.histogram * inv_1mp
        grad_a = float((weight * self._z).sum()) / a
        grad_b = float((weight * np.maximum(self._x, 0)).sum()) / b
        grad_c = float((weight * self._o).sum()) / c
        empty = self._empty_graph_gradient(a, b, c)
        return np.array([grad_a, grad_b, grad_c]) + empty

    # -- the permutation-invariant "empty graph" term ---------------------

    def _empty_graph_term(self, theta: Initiator) -> float:
        a, b, c, k = theta.a, theta.b, theta.c, self.k
        s1 = (a + 2 * b + c) ** k
        d1 = (a + c) ** k
        s2 = (a**2 + 2 * b**2 + c**2) ** k
        d2 = (a**2 + c**2) ** k
        return -(s1 - d1) / 2.0 - (s2 - d2) / 4.0

    def _empty_graph_gradient(self, a: float, b: float, c: float) -> np.ndarray:
        k = self.k
        s1_base = (a + 2 * b + c) ** (k - 1)
        d1_base = (a + c) ** (k - 1)
        s2_base = (a**2 + 2 * b**2 + c**2) ** (k - 1)
        d2_base = (a**2 + c**2) ** (k - 1)
        grad_a = -k * (s1_base - d1_base) / 2.0 - k * (2 * a * s2_base - 2 * a * d2_base) / 4.0
        grad_b = -k * (2 * s1_base) / 2.0 - k * (4 * b * s2_base) / 4.0
        grad_c = -k * (s1_base - d1_base) / 2.0 - k * (2 * c * s2_base - 2 * c * d2_base) / 4.0
        return np.array([grad_a, grad_b, grad_c])


def exact_log_likelihood(initiator, graph: Graph, sigma: np.ndarray, k: int) -> float:
    """O(N²) exact undirected log-likelihood — the test oracle.

    Materialises Θ^{⊗k} (so subject to the dense-size guard) and sums
    ``log P`` over edges and ``log(1−P)`` over non-edges under σ.
    """
    from repro.kronecker.kronpower import edge_probability_matrix

    theta = as_initiator(initiator)
    sigma = np.asarray(sigma, dtype=np.int64)
    probabilities = edge_probability_matrix(theta, k)
    probabilities = np.clip(probabilities, _PARAM_FLOOR**k, _PARAM_CEIL)
    n = graph.n_nodes
    dense = graph.to_dense().astype(bool)
    mapped = np.zeros_like(dense)
    mapped[np.ix_(sigma, sigma)] = dense
    upper = np.triu(np.ones((n, n), dtype=bool), k=1)
    edge_mask = mapped & upper
    non_edge_mask = ~mapped & upper
    return float(
        np.log(probabilities[edge_mask]).sum()
        + np.log1p(-probabilities[non_edge_mask]).sum()
    )


class PermutationSampler:
    """Metropolis sampler over node correspondences σ for fixed Θ.

    Proposals swap the Kronecker ids of two random nodes; the acceptance
    ratio only involves edges incident to the swapped nodes because the
    non-edge term is permutation-invariant under the Taylor approximation.
    """

    def __init__(self, graph: Graph, k: int, theta: Initiator, sigma: np.ndarray | None = None):
        if graph.n_nodes != 2**k:
            raise ValidationError(
                f"graph has {graph.n_nodes} nodes, expected 2^{k} = {2**k}"
            )
        self.graph = graph
        self.k = k
        adjacency = graph.adjacency
        self._indptr = adjacency.indptr
        self._indices = adjacency.indices
        self.sigma = (
            np.asarray(sigma, dtype=np.int64).copy()
            if sigma is not None
            else degree_matched_initial_sigma(graph, k)
        )
        self._tables: _LogTables | None = None
        self.set_theta(theta)
        self.accepted = 0
        self.proposed = 0

    def set_theta(self, theta: Initiator) -> None:
        """Update Θ (rebuilds the per-profile log tables)."""
        self.theta = theta
        self._tables = _LogTables.build(theta, self.k)

    def step(self, rng: np.random.Generator) -> bool:
        """One Metropolis proposal; returns True if accepted."""
        n = self.graph.n_nodes
        i = int(rng.integers(0, n))
        j = int(rng.integers(0, n))
        if i == j:
            return False
        self.proposed += 1
        delta = self._swap_delta(i, j)
        if delta >= 0 or rng.random() < np.exp(delta):
            self.sigma[i], self.sigma[j] = self.sigma[j], self.sigma[i]
            self.accepted += 1
            return True
        return False

    def run(self, n_steps: int, rng: np.random.Generator) -> None:
        """Run ``n_steps`` proposals."""
        for _ in range(n_steps):
            self.step(rng)

    def edge_term(self) -> float:
        """Current Σ_E [log P − log(1−P)] under σ (for diagnostics)."""
        z, x, o = edge_profiles(self.graph, self.sigma, self.k)
        tables = self._tables
        return float(
            (tables.log_p - tables.log_1mp)[z, o].sum()
        )

    def histogram(self) -> np.ndarray:
        """Profile histogram of the current σ (input to ProfileLikelihood)."""
        z, x, o = edge_profiles(self.graph, self.sigma, self.k)
        return profile_histogram(z, x, o, self.k)

    # -- internals --------------------------------------------------------

    def _neighbors(self, node: int) -> np.ndarray:
        return self._indices[self._indptr[node] : self._indptr[node + 1]]

    def _swap_delta(self, i: int, j: int) -> float:
        """Change in the edge term if σ(i) and σ(j) were exchanged."""
        sigma = self.sigma
        tables = self._tables
        score = tables.log_p - tables.log_1mp
        k = self.k

        def edges_term(center: int, center_id: int, skip: int) -> float:
            neighbors = self._neighbors(center)
            if neighbors.size == 0:
                return 0.0
            neighbors = neighbors[neighbors != skip]
            if neighbors.size == 0:
                return 0.0
            other_ids = sigma[neighbors]
            # Neighbour j (or i) will itself move; use its post-swap id.
            x = _popcount(np.int64(center_id) ^ other_ids)
            o = _popcount(np.int64(center_id) & other_ids)
            z = k - x - o
            return float(score[z, o].sum())

        id_i, id_j = int(sigma[i]), int(sigma[j])
        before = edges_term(i, id_i, j) + edges_term(j, id_j, i)
        # After the swap the ids of i and j are exchanged; the i-j edge (if
        # any) keeps its profile, and is excluded symmetrically anyway.
        sigma[i], sigma[j] = id_j, id_i
        after = edges_term(i, id_j, j) + edges_term(j, id_i, i)
        sigma[i], sigma[j] = id_i, id_j
        return after - before


def degree_matched_initial_sigma(graph: Graph, k: int) -> np.ndarray:
    """Heuristic initial correspondence: high-degree nodes get the Kronecker
    ids with the highest expected degree.

    For a canonical initiator (a ≥ c) the expected degree of Kronecker id
    ``u`` decreases with ``popcount(u)``, so ids are ranked by (popcount,
    value) and matched against nodes ranked by observed degree.  This
    starts the MCMC near the mode instead of a uniformly random σ.
    """
    n = graph.n_nodes
    ids = np.arange(n, dtype=np.int64)
    id_rank = np.lexsort((ids, _popcount(ids)))
    node_rank = np.argsort(-graph.degrees, kind="stable")
    sigma = np.empty(n, dtype=np.int64)
    sigma[node_rank] = ids[id_rank]
    return sigma
