"""Log-likelihood machinery for KronFit (Leskovec–Faloutsos approximate MLE).

Given a node correspondence σ (a permutation mapping graph nodes to
Kronecker ids), the undirected SKG log-likelihood is

    l(Θ, σ) = Σ_{uv ∈ E} log P_{σu σv} + Σ_{uv ∉ E} log(1 − P_{σu σv}).

Two structural facts make this tractable:

* ``P_{uv} = a^z b^x c^o`` where the *profile* (z, x, o) counts the bit
  positions of (u, v) that are (0,0)/differing/(1,1).  Every edge reduces
  to a profile, and the whole edge term reduces to a ``(k+1)×(k+1)``
  profile histogram.
* The sum over *all* pairs of ``log(1 − P)`` is permutation-invariant and
  has a closed-form second-order Taylor approximation (Leskovec's trick):
  ``Σ log(1−P) ≈ −ΣP − ½ΣP²`` with ``ΣP``, ``ΣP²`` geometric sums of the
  initiator entries.

The residual edge correction ``−Σ_{uv∈E} log(1−P_uv)`` is computed exactly,
so the only approximation is the Taylor step on non-edges — accurate for
the sparse graphs the model targets.  :func:`exact_log_likelihood` is the
O(N²) reference used by tests.

:class:`PermutationSampler` — the Metropolis chain over σ that KronFit
averages its gradients over — executes pre-drawn proposal streams behind
the ``REPRO_KERNEL_BACKEND`` knob: the numpy reference engine defined
here, or the fused numba / compiled-C batch kernels of
:mod:`repro.native.chain`.  All engines are bit-identical (see the
contracts documented there).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.graphs.graph import Graph
from repro.kronecker.initiator import Initiator, as_initiator
from repro.native.chain import (
    chain_kernel,
    draw_proposal_batch,
    multichain_kernel,
    resolve_chain_backend,
    resolve_multichain_backend,
)
from repro.native.registry import resolve_kernel_threads

__all__ = [
    "edge_profiles",
    "profile_histogram",
    "ProfileLikelihood",
    "exact_log_likelihood",
    "PermutationSampler",
    "MultiChainSampler",
]

# Initiator entries are clamped into this open interval before taking logs.
_PARAM_FLOOR = 1e-6
_PARAM_CEIL = 1.0 - 1e-6


def _popcount(values: np.ndarray) -> np.ndarray:
    return np.bitwise_count(values.astype(np.uint64)).astype(np.int64)


def edge_profiles(
    graph: Graph, sigma: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-edge profiles (z, x, o) under node correspondence ``sigma``.

    ``sigma[node]`` is the Kronecker id assigned to ``node``; ids must be a
    permutation of ``0 .. 2^k - 1`` with ``2^k == graph.n_nodes``.
    """
    if graph.n_nodes != 2**k:
        raise ValidationError(
            f"graph has {graph.n_nodes} nodes, expected 2^{k} = {2**k}"
        )
    sigma = np.asarray(sigma, dtype=np.int64)
    if sigma.shape != (graph.n_nodes,):
        raise ValidationError("sigma must assign an id to every node")
    u, v = graph.edge_arrays
    su, sv = sigma[u], sigma[v]
    x = _popcount(su ^ sv)
    o = _popcount(su & sv)
    z = k - x - o
    return z, x, o


def profile_histogram(z: np.ndarray, x: np.ndarray, o: np.ndarray, k: int) -> np.ndarray:
    """Dense ``(k+1)×(k+1)`` histogram ``counts[z, o]`` of edge profiles."""
    flat = z * (k + 1) + o
    counts = np.bincount(flat, minlength=(k + 1) * (k + 1))
    return counts.reshape(k + 1, k + 1)


@dataclass(frozen=True)
class _LogTables:
    """Per-profile log-probability tables for one initiator."""

    log_p: np.ndarray  # (k+1, k+1): log P for profile (z, o)
    log_1mp: np.ndarray  # log(1 - P)
    p: np.ndarray  # P itself

    @classmethod
    def build(cls, theta: Initiator, k: int) -> "_LogTables":
        a = min(max(theta.a, _PARAM_FLOOR), _PARAM_CEIL)
        b = min(max(theta.b, _PARAM_FLOOR), _PARAM_CEIL)
        c = min(max(theta.c, _PARAM_FLOOR), _PARAM_CEIL)
        z = np.arange(k + 1)[:, None]
        o = np.arange(k + 1)[None, :]
        x = k - z - o  # negative for infeasible cells (z + o > k)
        valid = x >= 0
        # Infeasible cells can never receive histogram mass (edge profiles
        # always satisfy z + o <= k), so zeroing them is safe and avoids
        # 0 * inf = NaN in histogram contractions.
        log_p = np.where(
            valid,
            z * np.log(a) + np.where(valid, x, 0) * np.log(b) + o * np.log(c),
            0.0,
        )
        p = np.where(valid, np.exp(log_p), 0.0)
        log_1mp = np.where(valid, np.log1p(-np.minimum(p, _PARAM_CEIL)), 0.0)
        return cls(log_p=log_p, log_1mp=log_1mp, p=p)


class ProfileLikelihood:
    """Approximate log-likelihood and gradient from a profile histogram.

    The histogram fixes σ; this class evaluates l(Θ, σ) and ∇_Θ l(Θ, σ)
    for any Θ in O(k²).
    """

    def __init__(self, histogram: np.ndarray, k: int) -> None:
        histogram = np.asarray(histogram, dtype=np.float64)
        if histogram.shape != (k + 1, k + 1):
            raise ValidationError(
                f"histogram must be ({k + 1}, {k + 1}), got {histogram.shape}"
            )
        self.histogram = histogram
        self.k = k
        z = np.arange(k + 1)[:, None]
        o = np.arange(k + 1)[None, :]
        self._z = np.broadcast_to(z, histogram.shape)
        self._o = np.broadcast_to(o, histogram.shape)
        self._x = k - self._z - self._o

    def log_likelihood(self, theta: Initiator) -> float:
        """l(Θ, σ) with the Taylor-approximated non-edge term."""
        tables = _LogTables.build(theta, self.k)
        edge_term = float((self.histogram * (tables.log_p - tables.log_1mp)).sum())
        return edge_term + self._empty_graph_term(theta)

    def gradient(self, theta: Initiator) -> np.ndarray:
        """∇_{(a,b,c)} l(Θ, σ) (same approximation as the value)."""
        a = min(max(theta.a, _PARAM_FLOOR), _PARAM_CEIL)
        b = min(max(theta.b, _PARAM_FLOOR), _PARAM_CEIL)
        c = min(max(theta.c, _PARAM_FLOOR), _PARAM_CEIL)
        tables = _LogTables.build(theta, self.k)
        # d/dθ [log P - log(1-P)] = (count_θ / θ) / (1 - P)
        inv_1mp = 1.0 / np.maximum(1.0 - tables.p, 1.0 - _PARAM_CEIL)
        weight = self.histogram * inv_1mp
        grad_a = float((weight * self._z).sum()) / a
        grad_b = float((weight * np.maximum(self._x, 0)).sum()) / b
        grad_c = float((weight * self._o).sum()) / c
        empty = self._empty_graph_gradient(a, b, c)
        return np.array([grad_a, grad_b, grad_c]) + empty

    # -- the permutation-invariant "empty graph" term ---------------------

    def _empty_graph_term(self, theta: Initiator) -> float:
        return _empty_graph_term(theta, self.k)

    def _empty_graph_gradient(self, a: float, b: float, c: float) -> np.ndarray:
        return _empty_graph_gradient(a, b, c, self.k)


def _empty_graph_term(theta: Initiator, k: int) -> float:
    """The Taylor-approximated Σ log(1−P) over all pairs (σ-invariant).

    Module-level so the batched multi-start fit can evaluate it per chain
    with the exact scalar arithmetic of :class:`ProfileLikelihood`.
    """
    a, b, c = theta.a, theta.b, theta.c
    s1 = (a + 2 * b + c) ** k
    d1 = (a + c) ** k
    s2 = (a**2 + 2 * b**2 + c**2) ** k
    d2 = (a**2 + c**2) ** k
    return -(s1 - d1) / 2.0 - (s2 - d2) / 4.0


def _empty_graph_gradient(a: float, b: float, c: float, k: int) -> np.ndarray:
    s1_base = (a + 2 * b + c) ** (k - 1)
    d1_base = (a + c) ** (k - 1)
    s2_base = (a**2 + 2 * b**2 + c**2) ** (k - 1)
    d2_base = (a**2 + c**2) ** (k - 1)
    grad_a = -k * (s1_base - d1_base) / 2.0 - k * (2 * a * s2_base - 2 * a * d2_base) / 4.0
    grad_b = -k * (2 * s1_base) / 2.0 - k * (4 * b * s2_base) / 4.0
    grad_c = -k * (s1_base - d1_base) / 2.0 - k * (2 * c * s2_base - 2 * c * d2_base) / 4.0
    return np.array([grad_a, grad_b, grad_c])


def exact_log_likelihood(initiator, graph: Graph, sigma: np.ndarray, k: int) -> float:
    """O(N²) exact undirected log-likelihood — the test oracle.

    Materialises Θ^{⊗k} (so subject to the dense-size guard) and sums
    ``log P`` over edges and ``log(1−P)`` over non-edges under σ.
    """
    from repro.kronecker.kronpower import edge_probability_matrix

    theta = as_initiator(initiator)
    sigma = np.asarray(sigma, dtype=np.int64)
    probabilities = edge_probability_matrix(theta, k)
    probabilities = np.clip(probabilities, _PARAM_FLOOR**k, _PARAM_CEIL)
    n = graph.n_nodes
    dense = graph.to_dense().astype(bool)
    mapped = np.zeros_like(dense)
    mapped[np.ix_(sigma, sigma)] = dense
    upper = np.triu(np.ones((n, n), dtype=bool), k=1)
    edge_mask = mapped & upper
    non_edge_mask = ~mapped & upper
    return float(
        np.log(probabilities[edge_mask]).sum()
        + np.log1p(-probabilities[non_edge_mask]).sum()
    )


class PermutationSampler:
    """Metropolis sampler over node correspondences σ for fixed Θ.

    Proposals swap the Kronecker ids of two random nodes; the acceptance
    ratio only involves edges incident to the swapped nodes because the
    non-edge term is permutation-invariant under the Taylor approximation.

    The sampler runs on pre-drawn proposal streams (the draw contract of
    :func:`repro.native.chain.draw_proposal_batch`) behind interchangeable
    execution engines selected by ``backend`` / ``REPRO_KERNEL_BACKEND``:
    the pure-numpy reference implemented here, and the fused
    numba/compiled-C batch kernels of :mod:`repro.native.chain`.  Every
    engine follows the same score contract — the swap delta is an integer
    profile-count change dotted with the cached score table in ascending
    cell order — so σ trajectories, histograms, and acceptance counts are
    **bit-identical** across engines and kernel batch sizes.  The profile
    histogram is maintained incrementally on accepted swaps (touched
    edges only); treat :attr:`sigma` as read-only between calls, and use
    :meth:`set_sigma` to reset the correspondence.
    """

    def __init__(
        self,
        graph: Graph,
        k: int,
        theta: Initiator,
        sigma: np.ndarray | None = None,
        backend: str | None = None,
    ):
        if graph.n_nodes != 2**k:
            raise ValidationError(
                f"graph has {graph.n_nodes} nodes, expected 2^{k} = {2**k}"
            )
        self.graph = graph
        self.k = k
        adjacency = graph.adjacency
        self._indptr = adjacency.indptr
        self._indices = adjacency.indices
        # Resolve the engine eagerly so a misconfigured pipeline (numba
        # requested but not installed) fails at construction, not mid-fit.
        self.backend = resolve_chain_backend(backend)
        self._kernel = None
        if self.backend != "numpy":
            self._kernel = chain_kernel(self.backend)
            self._indptr32 = np.ascontiguousarray(self._indptr, dtype=np.int32)
            self._indices32 = np.ascontiguousarray(self._indices, dtype=np.int32)
        self._n_cells = (k + 1) * (k + 1)
        self._counts = np.zeros(self._n_cells, dtype=np.int64)
        # Delta-scan scratch: a proposal touches at most 2·(deg i + deg j)
        # cells, so 4·max_deg bounds the per-proposal event list (+8 slack
        # for degenerate graphs).  stats[0] accumulates score-table touches
        # across every engine — the observable the O(k²)-rescan regression
        # test pins (see the delta-scan contract in repro.native.chain).
        max_deg = int(np.diff(self._indptr).max()) if graph.n_edges else 0
        self._touched = np.zeros(4 * max_deg + 8, dtype=np.int64)
        self._stats = np.zeros(1, dtype=np.int64)
        self._tables: _LogTables | None = None
        self.set_sigma(
            np.asarray(sigma, dtype=np.int64).copy()
            if sigma is not None
            else degree_matched_initial_sigma(graph, k)
        )
        self.set_theta(theta)
        self.accepted = 0
        self.proposed = 0

    def set_theta(self, theta: Initiator) -> None:
        """Update Θ (rebuilds the log tables and the cached score table)."""
        self.theta = theta
        self._tables = _LogTables.build(theta, self.k)
        # Hoisted out of the proposal loop: `log P - log(1-P)` per profile
        # cell used to be re-materialized twice per proposal.
        self._score = np.ascontiguousarray(
            (self._tables.log_p - self._tables.log_1mp).ravel(), dtype=np.float64
        )

    def set_sigma(self, sigma: np.ndarray) -> None:
        """Replace the correspondence (rebuilds the profile histogram)."""
        sigma = np.ascontiguousarray(sigma, dtype=np.int64)
        if sigma.shape != (self.graph.n_nodes,):
            raise ValidationError("sigma must assign an id to every node")
        self.sigma = sigma
        z, x, o = edge_profiles(self.graph, sigma, self.k)
        self._hist = np.ascontiguousarray(
            profile_histogram(z, x, o, self.k).ravel(), dtype=np.int64
        )

    def step(self, rng: np.random.Generator) -> bool:
        """One Metropolis proposal; returns True if accepted.

        Draws a single-proposal stream, so a sequence of ``step`` calls
        consumes the generator differently from one :meth:`run` call (run
        pre-draws its whole stream en bloc per the draw contract).
        """
        before = self.accepted
        self._execute(*draw_proposal_batch(rng, self.graph.n_nodes, 1))
        return self.accepted > before

    def run(
        self,
        n_steps: int,
        rng: np.random.Generator,
        batch_size: int | None = None,
    ) -> None:
        """Run ``n_steps`` proposals.

        The ``(i, j, log u)`` streams for the whole call are pre-drawn up
        front (the draw contract), then executed by the configured engine
        in kernel batches of ``batch_size`` (default: one batch).  The
        batch size only bounds how much work enters compiled code at
        once — the trajectory is bit-identical for any value.
        """
        if n_steps < 0:
            raise ValidationError(f"n_steps must be non-negative, got {n_steps}")
        if n_steps == 0 or self.graph.n_nodes < 2:
            return
        i_nodes, j_nodes, log_u = draw_proposal_batch(
            rng, self.graph.n_nodes, n_steps
        )
        self._execute(i_nodes, j_nodes, log_u, batch_size)

    def edge_term(self) -> float:
        """Current Σ_E [log P − log(1−P)] under σ (for diagnostics)."""
        z, x, o = edge_profiles(self.graph, self.sigma, self.k)
        tables = self._tables
        return float(
            (tables.log_p - tables.log_1mp)[z, o].sum()
        )

    @property
    def score_touches(self) -> int:
        """Total score-table cells read while scanning proposal deltas.

        Every engine increments this once per *distinct nonzero* touched
        cell per proposal — O(deg i + deg j) per swap, never O(k²).  The
        delta-scan regression tests assert this stays proportional to the
        touched neighbourhoods rather than the full profile table.
        """
        return int(self._stats[0])

    def histogram(self) -> np.ndarray:
        """Profile histogram of the current σ (input to ProfileLikelihood).

        Maintained incrementally from the count changes of accepted swaps;
        bit-equal to recomputing :func:`edge_profiles` over all edges.
        """
        return self._hist.reshape(self.k + 1, self.k + 1).copy()

    # -- internals --------------------------------------------------------

    def _execute(
        self,
        i_nodes: np.ndarray,
        j_nodes: np.ndarray,
        log_u: np.ndarray,
        batch_size: int | None = None,
    ) -> None:
        """Run a pre-drawn proposal stream through the configured engine."""
        total = i_nodes.shape[0]
        if batch_size is None:
            batch_size = total
        if batch_size < 1:
            raise ValidationError(f"batch_size must be positive, got {batch_size}")
        for start in range(0, total, batch_size):
            stop = min(start + batch_size, total)
            if self._kernel is None:
                self.accepted += self._reference_block(
                    i_nodes, j_nodes, log_u, start, stop
                )
            else:
                self.accepted += int(
                    self._kernel(
                        self._indptr32,
                        self._indices32,
                        self.sigma,
                        self.k,
                        self._score,
                        self._hist,
                        self._counts,
                        self._touched,
                        self._stats,
                        i_nodes,
                        j_nodes,
                        log_u,
                        start,
                        stop,
                    )
                )
        self.proposed += total

    def _reference_block(
        self,
        i_nodes: np.ndarray,
        j_nodes: np.ndarray,
        log_u: np.ndarray,
        start: int,
        stop: int,
    ) -> int:
        """The numpy reference engine: one proposal at a time, vectorized
        per neighbourhood, with the score contract's ascending-cell scan.
        """
        sigma = self.sigma
        accepted = 0
        touches = 0
        for t in range(start, stop):
            i = int(i_nodes[t])
            j = int(j_nodes[t])
            counts, touched = self._count_delta(i, j)
            delta, scanned = self._scan_delta(counts, touched)
            touches += scanned
            if delta >= 0.0 or log_u[t] < delta:
                sigma[i], sigma[j] = sigma[j], sigma[i]
                self._hist[touched] += counts[touched]
                accepted += 1
        self._stats[0] += touches
        return accepted

    def _neighbors(self, node: int) -> np.ndarray:
        return self._indices[self._indptr[node] : self._indptr[node + 1]]

    def _cells(self, center_id: int, other_ids: np.ndarray) -> np.ndarray:
        """Flat profile-cell indices of edges (center_id, other_ids)."""
        x = _popcount(np.int64(center_id) ^ other_ids)
        o = _popcount(np.int64(center_id) & other_ids)
        z = self.k - x - o
        return z * (self.k + 1) + o

    def _count_delta(self, i: int, j: int) -> tuple[np.ndarray, np.ndarray]:
        """Integer profile-histogram change of swapping σ(i) and σ(j).

        Exact (increment arithmetic), hence independent of neighbour
        order.  The i-j edge (if any) keeps its profile and is excluded
        symmetrically.  Returns ``(counts, touched)`` where ``touched``
        is the ascending deduplicated list of cells any event landed in
        (``np.unique`` of the old/new cell streams) — the delta-scan
        contract's touched set.
        """
        sigma = self.sigma
        id_i, id_j = int(sigma[i]), int(sigma[j])
        nbr_i = self._neighbors(i)
        nbr_i = nbr_i[nbr_i != j]
        nbr_j = self._neighbors(j)
        nbr_j = nbr_j[nbr_j != i]
        ids_i = sigma[nbr_i]
        ids_j = sigma[nbr_j]
        old_cells = np.concatenate(
            [self._cells(id_i, ids_i), self._cells(id_j, ids_j)]
        )
        new_cells = np.concatenate(
            [self._cells(id_j, ids_i), self._cells(id_i, ids_j)]
        )
        counts = np.bincount(new_cells, minlength=self._n_cells).astype(
            np.int64, copy=False
        ) - np.bincount(old_cells, minlength=self._n_cells).astype(
            np.int64, copy=False
        )
        touched = np.unique(np.concatenate([old_cells, new_cells]))
        return counts, touched

    def _scan_delta(
        self, counts: np.ndarray, touched: np.ndarray
    ) -> tuple[float, int]:
        """Σ counts[cell] · score[cell] over the touched cells, ascending.

        The scan is a scalar Python loop on purpose: numpy's pairwise
        summation would round differently from the compiled kernels'
        sequential accumulation, breaking cross-engine bit-identity.
        ``touched`` (``np.unique`` output) is ascending and deduplicated —
        the same cell sequence as the kernels' sorted dup-skipping event
        scan, and every nonzero-count cell is in it.  Returns the delta
        and the number of score-table cells actually read.
        """
        score = self._score
        delta = 0.0
        scanned = 0
        for cell in touched:
            if counts[cell] != 0:
                delta += counts[cell] * score[cell]
                scanned += 1
        return delta, scanned

    def _swap_delta(self, i: int, j: int) -> float:
        """Change in the edge term if σ(i) and σ(j) were exchanged.

        Diagnostic view of the score contract (does not mutate state);
        exactly the delta every engine computes for proposal (i, j).
        """
        counts, touched = self._count_delta(i, j)
        delta, _ = self._scan_delta(counts, touched)
        return delta


class MultiChainSampler:
    """S independent Metropolis chains over σ advanced in one native call.

    Each chain has its own Θ, σ, score table, and profile histogram —
    multi-start KronFit runs one chain per start — but they share the
    graph's CSR structure, so the whole ensemble advances inside a single
    :func:`repro.native.chain.multichain_block` call, sharded across
    threads (``threads`` / ``REPRO_KERNEL_THREADS``).  Every chain is
    **bit-identical** to the solo :class:`PermutationSampler` trajectory
    it replaces, for any backend, batch size, or thread count: the draws
    are made per chain in chain order with the same
    :func:`~repro.native.chain.draw_proposal_batch` contract, and the
    kernel's per-chain arithmetic is integer-exact against the solo
    kernel's (see the multichain section of :mod:`repro.native.chain`).

    Per-chain state is stacked into C-contiguous blocks; each chain is
    still exposed as a :class:`PermutationSampler` whose arrays alias the
    stacked rows (:meth:`chain`), so observables — ``sigma``,
    ``accepted``, ``proposed``, :meth:`PermutationSampler.histogram`,
    ``score_touches`` — read exactly like the solo sampler's.  Mutate a
    chain only through :meth:`set_theta` / :meth:`set_sigma` (calling the
    adapter's own setters directly would desynchronize the stacked score
    row the fused kernel reads).

    The ``numpy`` reference engine loops the per-chain reference blocks;
    ``numba`` / ``cext`` run the fused multichain kernel.
    """

    def __init__(
        self,
        graph: Graph,
        k: int,
        thetas,
        sigmas=None,
        backend: str | None = None,
        threads: int | None = None,
    ):
        thetas = list(thetas)
        if not thetas:
            raise ValidationError("MultiChainSampler needs at least one chain")
        if sigmas is None:
            sigmas = [None] * len(thetas)
        else:
            sigmas = list(sigmas)
            if len(sigmas) != len(thetas):
                raise ValidationError(
                    f"got {len(sigmas)} sigmas for {len(thetas)} chains"
                )
        self.graph = graph
        self.k = k
        self.n_chains = len(thetas)
        # Resolve engine and threads eagerly: misconfiguration fails at
        # construction, not mid-fit.
        self.backend = resolve_multichain_backend(backend)
        self.threads = resolve_kernel_threads(threads)
        # Per-chain adapters carry the solo sampler's validation and
        # observables; their engine is the reference (the fused call, when
        # any, happens at the ensemble level).
        self._chains = [
            PermutationSampler(graph, k, theta, sigma=sigma, backend="numpy")
            for theta, sigma in zip(thetas, sigmas)
        ]
        # Stack the mutable per-chain state into C-contiguous blocks and
        # re-alias each adapter onto its row, so adapter observables stay
        # live views of what the fused kernel mutates.
        self._sigma = np.stack([chain.sigma for chain in self._chains])
        self._hist = np.stack([chain._hist for chain in self._chains])
        self._score = np.stack([chain._score for chain in self._chains])
        self._counts = np.zeros(
            (self.n_chains, self._chains[0]._n_cells), dtype=np.int64
        )
        self._touched_len = self._chains[0]._touched.shape[0]
        self._touched = np.zeros(
            (self.n_chains, self._touched_len), dtype=np.int64
        )
        self._stats = np.zeros(self.n_chains, dtype=np.int64)
        self._accepted_scratch = np.zeros(self.n_chains, dtype=np.int64)
        for s, chain in enumerate(self._chains):
            self._realias(s)
            chain._counts = self._counts[s]
            chain._touched = self._touched[s]
            chain._stats = self._stats[s : s + 1]
        self._kernel = None
        if self.backend != "numpy":
            self._kernel = multichain_kernel(self.backend)
            adjacency = graph.adjacency
            self._indptr32 = np.ascontiguousarray(
                adjacency.indptr, dtype=np.int32
            )
            self._indices32 = np.ascontiguousarray(
                adjacency.indices, dtype=np.int32
            )
        # Draw-stream buffers, reused across same-length run() calls.
        self._streams: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

    def chain(self, index: int) -> PermutationSampler:
        """Chain ``index`` as a live solo-sampler view (read observables
        through it; mutate only via the ensemble setters)."""
        return self._chains[index]

    def set_theta(self, index: int, theta: Initiator) -> None:
        """Update chain ``index``'s Θ (rebuilds its tables and score row)."""
        self._chains[index].set_theta(theta)
        self._score[index, :] = self._chains[index]._score
        self._realias(index)

    def set_sigma(self, index: int, sigma: np.ndarray) -> None:
        """Replace chain ``index``'s σ (rebuilds its profile histogram)."""
        self._chains[index].set_sigma(sigma)
        self._sigma[index, :] = self._chains[index].sigma
        self._hist[index, :] = self._chains[index]._hist
        self._realias(index)

    def histograms(self) -> np.ndarray:
        """All profile histograms, stacked ``(S, k+1, k+1)`` (a copy)."""
        return self._hist.reshape(
            self.n_chains, self.k + 1, self.k + 1
        ).copy()

    def run(
        self,
        n_steps: int,
        rngs,
        batch_size: int | None = None,
    ) -> None:
        """Advance every chain ``n_steps`` proposals.

        ``rngs`` holds one generator per chain; streams are pre-drawn per
        chain **in chain order** with the draw contract, so chain ``s``
        consumes its generator exactly like a solo sampler would — then
        the whole ensemble executes the batch in one fused call (or the
        per-chain reference loop under the ``numpy`` engine).
        """
        rngs = list(rngs)
        if len(rngs) != self.n_chains:
            raise ValidationError(
                f"got {len(rngs)} generators for {self.n_chains} chains"
            )
        if n_steps < 0:
            raise ValidationError(f"n_steps must be non-negative, got {n_steps}")
        if n_steps == 0 or self.graph.n_nodes < 2:
            return
        streams = self._streams.get(n_steps)
        if streams is None:
            streams = (
                np.empty((self.n_chains, n_steps), dtype=np.int64),
                np.empty((self.n_chains, n_steps), dtype=np.int64),
                np.empty((self.n_chains, n_steps), dtype=np.float64),
            )
            self._streams[n_steps] = streams
        i_all, j_all, u_all = streams
        for s, rng in enumerate(rngs):
            i_nodes, j_nodes, log_u = draw_proposal_batch(
                rng, self.graph.n_nodes, n_steps
            )
            i_all[s] = i_nodes
            j_all[s] = j_nodes
            u_all[s] = log_u
        self._execute(i_all, j_all, u_all, batch_size)

    # -- internals --------------------------------------------------------

    def _realias(self, index: int) -> None:
        """Point adapter ``index``'s arrays at its stacked rows."""
        chain = self._chains[index]
        chain.sigma = self._sigma[index]
        chain._hist = self._hist[index]
        chain._score = self._score[index]

    def _execute(
        self,
        i_all: np.ndarray,
        j_all: np.ndarray,
        u_all: np.ndarray,
        batch_size: int | None = None,
    ) -> None:
        total = i_all.shape[1]
        if self._kernel is None:
            for s, chain in enumerate(self._chains):
                chain._execute(i_all[s], j_all[s], u_all[s], batch_size)
            return
        if batch_size is None:
            batch_size = total
        if batch_size < 1:
            raise ValidationError(
                f"batch_size must be positive, got {batch_size}"
            )
        if self.backend == "numba":
            import numba

            numba.set_num_threads(
                max(1, min(self.threads, numba.config.NUMBA_NUM_THREADS))
            )
        for start in range(0, total, batch_size):
            stop = min(start + batch_size, total)
            self._kernel(
                self._indptr32,
                self._indices32,
                self.n_chains,
                self.graph.n_nodes,
                self._sigma.ravel(),
                self.k,
                self._score.ravel(),
                self._hist.ravel(),
                self._counts.ravel(),
                self._touched.ravel(),
                self._touched_len,
                self._stats,
                i_all.ravel(),
                j_all.ravel(),
                u_all.ravel(),
                total,
                start,
                stop,
                self._accepted_scratch,
                self.threads,
            )
            for s, chain in enumerate(self._chains):
                chain.accepted += int(self._accepted_scratch[s])
        for chain in self._chains:
            chain.proposed += total


def degree_matched_initial_sigma(graph: Graph, k: int) -> np.ndarray:
    """Heuristic initial correspondence: high-degree nodes get the Kronecker
    ids with the highest expected degree.

    For a canonical initiator (a ≥ c) the expected degree of Kronecker id
    ``u`` decreases with ``popcount(u)``, so ids are ranked by (popcount,
    value) and matched against nodes ranked by observed degree.  This
    starts the MCMC near the mode instead of a uniformly random σ.
    """
    n = graph.n_nodes
    ids = np.arange(n, dtype=np.int64)
    id_rank = np.lexsort((ids, _popcount(ids)))
    node_rank = np.argsort(-graph.degrees, kind="stable")
    sigma = np.empty(n, dtype=np.int64)
    sigma[node_rank] = ids[id_rank]
    return sigma
