"""KronMom: Gleich–Owen moment matching (the estimator the paper privatises).

The estimator solves the paper's Eq. (2):

    min_{a, b, c}  Σ_F  Dist(F, E_{a,b,c}(F)) / Norm(F, E_{a,b,c}(F))

over features F drawn from {edges, hairpins, tripins, triangles}, where
``E_{a,b,c}(F)`` are the closed-form expectations of
:mod:`repro.kronecker.moments` and the observed values may be exact counts
(non-private KronMom) or DP approximations (the paper's Algorithm 1 feeds
its noisy statistics into this very routine).

Both distance functions (squared / absolute) and all four normalisations
(F, F², E, E²) of the paper are implemented; Gleich & Owen report
``DistSq`` with ``NormF²`` as the robust default, which is ours as well.
Optimisation is a dense vectorised grid search (the closed forms broadcast
over parameter arrays) followed by Nelder–Mead refinement from the best
grid points, with the identifiability convention a ≥ c applied at the end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.optimize

from repro.errors import EstimationError, ValidationError
from repro.graphs.graph import Graph
from repro.graphs.operations import next_power_of_two_exponent
from repro.kronecker.initiator import Initiator
from repro.kronecker.moments import expected_feature_vector
from repro.stats.counts import MatchingStatistics, matching_statistics
from repro.utils.validation import check_integer

__all__ = [
    "KronMomEstimator",
    "MomentMatchResult",
    "DISTANCES",
    "NORMALIZATIONS",
    "DEFAULT_FEATURES",
]

DEFAULT_FEATURES = ("edges", "hairpins", "tripins", "triangles")

# Observed DP statistics can be negative after noising; they are floored
# here before matching (an estimator detail, not a privacy issue — the
# floor is data-independent post-processing).
_FEATURE_FLOOR = 1.0


def _dist_squared(observed, expected):
    return (observed - expected) ** 2


def _dist_absolute(observed, expected):
    return np.abs(observed - expected)


DISTANCES = {
    "squared": _dist_squared,
    "absolute": _dist_absolute,
}


def _norm_observed(observed, expected):
    return observed


def _norm_observed_squared(observed, expected):
    return observed**2


def _norm_expected(observed, expected):
    return expected


def _norm_expected_squared(observed, expected):
    return expected**2


NORMALIZATIONS = {
    "observed": _norm_observed,
    "observed_squared": _norm_observed_squared,
    "expected": _norm_expected,
    "expected_squared": _norm_expected_squared,
}

# Denominators are floored at this value to keep the objective finite when
# an expected count vanishes (e.g. b = c = 0 grid corners).
_NORM_FLOOR = 1e-12


@dataclass(frozen=True)
class MomentMatchResult:
    """Outcome of a moment-matching solve.

    Attributes
    ----------
    initiator:
        Fitted initiator (canonical, a >= c).
    objective:
        Final objective value.
    k:
        Kronecker order the expectations were evaluated at.
    observed:
        The feature values that were matched (post-flooring).
    features:
        Names of the matched features, in objective order.
    n_restarts:
        Number of Nelder–Mead refinements run.
    """

    initiator: Initiator
    objective: float
    k: int
    observed: MatchingStatistics
    features: tuple[str, ...]
    n_restarts: int


class KronMomEstimator:
    """Moment-matching estimation of a 2×2 symmetric SKG initiator.

    Parameters
    ----------
    distance, normalization:
        Keys into :data:`DISTANCES` / :data:`NORMALIZATIONS` selecting the
        paper's Dist and Norm functions (defaults: ``"squared"``,
        ``"observed_squared"`` — the combination Gleich & Owen found robust).
    features:
        Subset of ``{"edges", "hairpins", "tripins", "triangles"}`` to match.
    grid_points:
        Grid resolution per axis for the global search stage.
    n_refinements:
        How many of the best grid points get Nelder–Mead refinement.

    Examples
    --------
    >>> graph = Initiator(0.99, 0.45, 0.25).sample(10, seed=7)
    >>> result = KronMomEstimator().fit(graph)
    >>> abs(result.initiator.b - 0.45) < 0.2
    True
    """

    def __init__(
        self,
        *,
        distance: str = "squared",
        normalization: str = "observed_squared",
        features: tuple[str, ...] = DEFAULT_FEATURES,
        grid_points: int = 21,
        n_refinements: int = 5,
    ) -> None:
        if distance not in DISTANCES:
            raise ValidationError(
                f"unknown distance {distance!r}; options: {sorted(DISTANCES)}"
            )
        if normalization not in NORMALIZATIONS:
            raise ValidationError(
                f"unknown normalization {normalization!r}; "
                f"options: {sorted(NORMALIZATIONS)}"
            )
        if not features:
            raise ValidationError("at least one feature must be matched")
        self.distance = distance
        self.normalization = normalization
        self.features = tuple(features)
        self.grid_points = check_integer(grid_points, "grid_points", minimum=3)
        self.n_refinements = check_integer(n_refinements, "n_refinements", minimum=1)

    # ------------------------------------------------------------------

    def fit(self, graph: Graph) -> MomentMatchResult:
        """Fit to the exact matching statistics of ``graph``."""
        if graph.n_nodes < 2:
            raise EstimationError("graph too small for moment matching")
        k = next_power_of_two_exponent(graph.n_nodes)
        return self.fit_statistics(matching_statistics(graph), k)

    def fit_statistics(self, observed: MatchingStatistics, k: int) -> MomentMatchResult:
        """Fit to externally supplied (possibly noisy) statistics.

        This is the entry point Algorithm 1 uses: the private estimator
        computes DP statistics and hands them to the same solver as the
        non-private KronMom.
        """
        k = check_integer(k, "k", minimum=1)
        floored = MatchingStatistics(
            edges=max(float(observed.edges), _FEATURE_FLOOR),
            hairpins=max(float(observed.hairpins), _FEATURE_FLOOR),
            tripins=max(float(observed.tripins), _FEATURE_FLOOR),
            triangles=max(float(observed.triangles), _FEATURE_FLOOR),
        )
        observed_vector = np.array(
            [getattr(floored, name) for name in self.features], dtype=np.float64
        )
        best_params, best_value = self._grid_stage(observed_vector, k)
        best_params, best_value = self._refine_stage(
            observed_vector, k, best_params, best_value
        )
        a, b, c = (float(np.clip(p, 0.0, 1.0)) for p in best_params)
        return MomentMatchResult(
            initiator=Initiator(a, b, c).canonical(),
            objective=float(best_value),
            k=k,
            observed=floored,
            features=self.features,
            n_restarts=self.n_refinements,
        )

    # ------------------------------------------------------------------

    def _objective_vectorized(self, observed: np.ndarray, a, b, c, k: int):
        expected = expected_feature_vector(a, b, c, k, self.features)
        observed_cols = observed.reshape((-1,) + (1,) * (expected.ndim - 1))
        dist = DISTANCES[self.distance](observed_cols, expected)
        norm = NORMALIZATIONS[self.normalization](observed_cols, expected)
        norm = np.maximum(np.abs(norm), _NORM_FLOOR)
        return (dist / norm).sum(axis=0)

    def _grid_stage(self, observed: np.ndarray, k: int) -> tuple[np.ndarray, float]:
        axis = np.linspace(0.0, 1.0, self.grid_points)
        a, b, c = np.meshgrid(axis, axis, axis, indexing="ij")
        # Identifiability: only scan a >= c (the objective is symmetric).
        mask = a >= c
        values = np.full(a.shape, np.inf)
        values[mask] = self._objective_vectorized(
            observed, a[mask], b[mask], c[mask], k
        )
        flat_best = int(np.argmin(values))
        index = np.unravel_index(flat_best, values.shape)
        best = np.array([a[index], b[index], c[index]])
        return best, float(values[index])

    def _refine_stage(
        self,
        observed: np.ndarray,
        k: int,
        grid_best: np.ndarray,
        grid_value: float,
    ) -> tuple[np.ndarray, float]:
        def objective(params: np.ndarray) -> float:
            clipped = np.clip(params, 0.0, 1.0)
            penalty = float(np.abs(params - clipped).sum()) * 1e3
            value = float(
                self._objective_vectorized(
                    observed, clipped[0], clipped[1], clipped[2], k
                )
            )
            return value + penalty

        rng = np.random.default_rng(12345)  # deterministic restart jitter
        best_params, best_value = grid_best.copy(), grid_value
        starts = [grid_best]
        for _ in range(self.n_refinements - 1):
            jitter = rng.normal(scale=0.08, size=3)
            starts.append(np.clip(grid_best + jitter, 0.0, 1.0))
        for start in starts:
            result = scipy.optimize.minimize(
                objective,
                start,
                method="Nelder-Mead",
                options={"xatol": 1e-6, "fatol": 1e-10, "maxiter": 2000},
            )
            if result.fun < best_value:
                best_value = float(result.fun)
                best_params = np.clip(result.x, 0.0, 1.0)
        return best_params, best_value
