"""KronFit: the Leskovec–Faloutsos approximate MLE baseline.

This is the "KronFit" column of the paper's Table 1: gradient ascent on
the SKG log-likelihood, with the intractable sum over node correspondences
σ replaced by Metropolis sampling (see :mod:`repro.kronecker.likelihood`).

The public interface mirrors the other estimators: construct with
hyper-parameters, call :meth:`fit` with a graph, receive a
:class:`KronFitResult` carrying the fitted :class:`Initiator` and
convergence diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import EstimationError
from repro.graphs.graph import Graph
from repro.graphs.operations import pad_to_power_of_two
from repro.kronecker.initiator import Initiator, as_initiator
from repro.kronecker.likelihood import PermutationSampler, ProfileLikelihood
from repro.utils.logging import get_logger
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer, check_positive

__all__ = ["KronFitEstimator", "KronFitResult"]

_logger = get_logger(__name__)

_PARAM_LOW = 0.001
_PARAM_HIGH = 0.999


@dataclass(frozen=True)
class KronFitResult:
    """Outcome of a KronFit run.

    Attributes
    ----------
    initiator:
        The fitted initiator, canonicalized to a >= c.
    k:
        Kronecker order used (graph padded to 2^k nodes).
    log_likelihoods:
        Approximate log-likelihood after each gradient iteration.
    acceptance_rate:
        Fraction of accepted Metropolis proposals over the whole run.
    trajectory:
        Parameter triple after each gradient iteration.
    """

    initiator: Initiator
    k: int
    log_likelihoods: tuple[float, ...]
    acceptance_rate: float
    trajectory: tuple[tuple[float, float, float], ...] = field(repr=False)


class KronFitEstimator:
    """Approximate-MLE estimation of a 2×2 symmetric SKG initiator.

    Parameters
    ----------
    n_iterations:
        Gradient-ascent iterations.
    warmup_swaps:
        Metropolis proposals before the first permutation sample of each
        iteration (re-mixing after each Θ update).
    n_permutation_samples:
        Permutations averaged per gradient estimate.
    sample_spacing:
        Proposals between consecutive permutation samples.
    learning_rate:
        Initial step size for the sup-norm-normalised gradient step; decays
        harmonically.  Normalising by the gradient's sup-norm makes the
        step size meaningful across graph scales (raw SKG gradients grow
        with |E|·k).
    initial:
        Starting initiator (defaults to the paper's generic seed point).
    backend:
        Execution engine of the Metropolis permutation chain (``auto`` |
        ``numpy`` | ``numba`` | ``cext``; default: the
        ``REPRO_KERNEL_BACKEND`` knob, else ``auto``).  Results are
        bit-identical for every engine — the knob only selects speed.

    Examples
    --------
    >>> from repro.kronecker import Initiator
    >>> graph = Initiator(0.9, 0.5, 0.2).sample(8, seed=1)
    >>> fit = KronFitEstimator(n_iterations=10, seed=0).fit(graph)
    >>> 0 <= fit.initiator.c <= fit.initiator.a <= 1
    True
    """

    def __init__(
        self,
        *,
        n_iterations: int = 40,
        warmup_swaps: int = 2000,
        n_permutation_samples: int = 4,
        sample_spacing: int = 200,
        learning_rate: float = 0.08,
        initial: Initiator | tuple[float, float, float] = (0.9, 0.6, 0.2),
        seed: SeedLike = None,
        backend: str | None = None,
    ) -> None:
        self.n_iterations = check_integer(n_iterations, "n_iterations", minimum=1)
        self.warmup_swaps = check_integer(warmup_swaps, "warmup_swaps", minimum=0)
        self.n_permutation_samples = check_integer(
            n_permutation_samples, "n_permutation_samples", minimum=1
        )
        self.sample_spacing = check_integer(sample_spacing, "sample_spacing", minimum=1)
        self.learning_rate = check_positive(learning_rate, "learning_rate")
        self.initial = as_initiator(initial)
        self.seed = seed
        self.backend = backend

    def fit(self, graph: Graph) -> KronFitResult:
        """Fit the initiator to ``graph`` (padded to 2^k nodes internally)."""
        if graph.n_edges == 0:
            raise EstimationError("cannot fit KronFit to a graph with no edges")
        rng = as_generator(self.seed)
        padded, k = pad_to_power_of_two(graph)
        theta = _clip(self.initial)
        sampler = PermutationSampler(padded, k, theta, backend=self.backend)
        log_likelihoods: list[float] = []
        trajectory: list[tuple[float, float, float]] = []
        for iteration in range(self.n_iterations):
            sampler.set_theta(theta)
            sampler.run(self.warmup_swaps, rng)
            gradient = np.zeros(3)
            value = 0.0
            for _ in range(self.n_permutation_samples):
                sampler.run(self.sample_spacing, rng)
                likelihood = ProfileLikelihood(sampler.histogram(), k)
                gradient += likelihood.gradient(theta)
                value += likelihood.log_likelihood(theta)
            gradient /= self.n_permutation_samples
            value /= self.n_permutation_samples
            log_likelihoods.append(value)
            step_scale = self.learning_rate / (1.0 + iteration / 10.0)
            sup_norm = float(np.abs(gradient).max())
            if sup_norm > 0:
                step = step_scale * gradient / sup_norm
                theta = _clip(
                    Initiator(
                        float(np.clip(theta.a + step[0], _PARAM_LOW, _PARAM_HIGH)),
                        float(np.clip(theta.b + step[1], _PARAM_LOW, _PARAM_HIGH)),
                        float(np.clip(theta.c + step[2], _PARAM_LOW, _PARAM_HIGH)),
                    )
                )
            trajectory.append((theta.a, theta.b, theta.c))
            _logger.debug(
                "kronfit iter %d: loglik=%.2f theta=(%.4f, %.4f, %.4f)",
                iteration,
                value,
                theta.a,
                theta.b,
                theta.c,
            )
        acceptance = sampler.accepted / max(sampler.proposed, 1)
        return KronFitResult(
            initiator=theta.canonical(),
            k=k,
            log_likelihoods=tuple(log_likelihoods),
            acceptance_rate=float(acceptance),
            trajectory=tuple(trajectory),
        )


def _clip(theta: Initiator) -> Initiator:
    return Initiator(
        float(np.clip(theta.a, _PARAM_LOW, _PARAM_HIGH)),
        float(np.clip(theta.b, _PARAM_LOW, _PARAM_HIGH)),
        float(np.clip(theta.c, _PARAM_LOW, _PARAM_HIGH)),
    )
