"""KronFit: the Leskovec–Faloutsos approximate MLE baseline.

This is the "KronFit" column of the paper's Table 1: gradient ascent on
the SKG log-likelihood, with the intractable sum over node correspondences
σ replaced by Metropolis sampling (see :mod:`repro.kronecker.likelihood`).

The public interface mirrors the other estimators: construct with
hyper-parameters, call :meth:`fit` with a graph, receive a
:class:`KronFitResult` carrying the fitted :class:`Initiator` and
convergence diagnostics.

**Multi-start fitting.**  The Metropolis chain mixes from its initial
correspondence, so a single run can settle on a local mode.  With
``n_starts=S > 1`` the estimator runs S independent chains — start 0 from
the degree-matched σ every single-start fit uses, starts 1..S−1 from
deterministic perturbations of it — and keeps the fit with the best final
log-likelihood (ties broken by the lowest start index, so the winner is
deterministic).

Two execution strategies produce the identical winner:

* ``multi_start="batched"`` (the default): all S chains advance inside
  one :class:`~repro.kronecker.likelihood.MultiChainSampler` — a single
  native call per proposal batch, sharded across threads by the
  ``kernel_threads`` / ``REPRO_KERNEL_THREADS`` knob — submitted as
  *one* task to the :mod:`repro.runtime` engine.  Per-start seeds are
  spawned from the estimator seed exactly as the trial engine spawns
  per-trial seeds, so every chain consumes the same stream as its
  fanned-out counterpart.
* ``multi_start="fanout"``: the pre-batched path — S independent trials
  fanned across the worker pool (``n_jobs``), one chain each.  Kept as
  the benchmark baseline and the cross-check oracle.

Chains are bit-identical between the strategies (and for any worker
count, pool mode, thread count, or kernel backend), so
``select_best_start`` picks the same winner with the same
log-likelihoods either way; ``n_starts=1`` remains bit-identical to the
historical single-chain fit.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import EstimationError, ValidationError
from repro.graphs.graph import Graph
from repro.graphs.operations import pad_to_power_of_two
from repro.kronecker.initiator import Initiator, as_initiator
from repro.kronecker.likelihood import (
    _PARAM_CEIL,
    _PARAM_FLOOR,
    MultiChainSampler,
    PermutationSampler,
    ProfileLikelihood,
    _empty_graph_gradient,
    _empty_graph_term,
    degree_matched_initial_sigma,
)
from repro.utils.logging import get_logger
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer, check_positive

__all__ = [
    "KronFitEstimator",
    "KronFitResult",
    "perturbed_initial_sigma",
    "select_best_start",
]

_logger = get_logger(__name__)

_PARAM_LOW = 0.001
_PARAM_HIGH = 0.999

# Entropy word of the deterministic per-start σ perturbation streams.
# Fixed forever: changing it changes every multi-start trajectory.
_START_SIGMA_KEY = 0x5163_F17  # "SIG FIT"


@dataclass(frozen=True)
class KronFitResult:
    """Outcome of a KronFit run.

    Attributes
    ----------
    initiator:
        The fitted initiator, canonicalized to a >= c.
    k:
        Kronecker order used (graph padded to 2^k nodes).
    log_likelihoods:
        Approximate log-likelihood after each gradient iteration.
    acceptance_rate:
        Fraction of accepted Metropolis proposals over the whole run.
    trajectory:
        Parameter triple after each gradient iteration.
    n_starts:
        How many independent chains competed for this result.
    start:
        Index of the winning start (0 = the degree-matched σ).
    start_log_likelihoods:
        Final log-likelihood of every start, in start order (empty for
        single-start fits).
    """

    initiator: Initiator
    k: int
    log_likelihoods: tuple[float, ...]
    acceptance_rate: float
    trajectory: tuple[tuple[float, float, float], ...] = field(repr=False)
    n_starts: int = 1
    start: int = 0
    start_log_likelihoods: tuple[float, ...] = ()


class KronFitEstimator:
    """Approximate-MLE estimation of a 2×2 symmetric SKG initiator.

    Parameters
    ----------
    n_iterations:
        Gradient-ascent iterations.
    warmup_swaps:
        Metropolis proposals before the first permutation sample of each
        iteration (re-mixing after each Θ update).
    n_permutation_samples:
        Permutations averaged per gradient estimate.
    sample_spacing:
        Proposals between consecutive permutation samples.
    learning_rate:
        Initial step size for the sup-norm-normalised gradient step; decays
        harmonically.  Normalising by the gradient's sup-norm makes the
        step size meaningful across graph scales (raw SKG gradients grow
        with |E|·k).
    initial:
        Starting initiator (defaults to the paper's generic seed point).
    backend:
        Execution engine of the Metropolis permutation chain (``auto`` |
        ``numpy`` | ``numba`` | ``cext``; default: the
        ``REPRO_KERNEL_BACKEND`` knob, else ``auto``).  Results are
        bit-identical for every engine — the knob only selects speed.
    n_starts:
        Independent Metropolis chains per fit; the best final
        log-likelihood wins (deterministic tie-break by start index).
        ``1`` (the default) is bit-identical to the historical
        single-chain fit.
    n_jobs:
        Worker processes used by the trial engine.  Under
        ``multi_start="fanout"`` the starts fan across them; under
        ``multi_start="batched"`` the single batched task runs on one
        worker (``n_jobs > 1`` still moves it off-process).  ``None``
        runs in-process — deliberately *not* the ``REPRO_N_JOBS``
        default, so fits nested inside scenario trials never fork a pool
        inside a pool worker.  Results are bit-identical for any value.
    multi_start:
        Execution strategy for ``n_starts > 1``: ``"batched"`` (default,
        all chains in one native call per batch) or ``"fanout"`` (one
        trial per start).  Identical results either way.
    kernel_threads:
        Threads the batched multichain kernel shards chains across
        (default: the ``REPRO_KERNEL_THREADS`` knob, else 1; 0 means all
        usable cores).  Purely a throughput knob — results are
        bit-identical for any value.

    Examples
    --------
    >>> from repro.kronecker import Initiator
    >>> graph = Initiator(0.9, 0.5, 0.2).sample(8, seed=1)
    >>> fit = KronFitEstimator(n_iterations=10, seed=0).fit(graph)
    >>> 0 <= fit.initiator.c <= fit.initiator.a <= 1
    True
    """

    def __init__(
        self,
        *,
        n_iterations: int = 40,
        warmup_swaps: int = 2000,
        n_permutation_samples: int = 4,
        sample_spacing: int = 200,
        learning_rate: float = 0.08,
        initial: Initiator | tuple[float, float, float] = (0.9, 0.6, 0.2),
        seed: SeedLike = None,
        backend: str | None = None,
        n_starts: int = 1,
        n_jobs: int | None = None,
        multi_start: str = "batched",
        kernel_threads: int | None = None,
    ) -> None:
        self.n_iterations = check_integer(n_iterations, "n_iterations", minimum=1)
        self.warmup_swaps = check_integer(warmup_swaps, "warmup_swaps", minimum=0)
        self.n_permutation_samples = check_integer(
            n_permutation_samples, "n_permutation_samples", minimum=1
        )
        self.sample_spacing = check_integer(sample_spacing, "sample_spacing", minimum=1)
        self.learning_rate = check_positive(learning_rate, "learning_rate")
        self.initial = as_initiator(initial)
        self.seed = seed
        self.backend = backend
        self.n_starts = check_integer(n_starts, "n_starts", minimum=1)
        self.n_jobs = (
            None if n_jobs is None else check_integer(n_jobs, "n_jobs", minimum=1)
        )
        if multi_start not in ("batched", "fanout"):
            raise ValidationError(
                f"multi_start must be 'batched' or 'fanout', got {multi_start!r}"
            )
        self.multi_start = multi_start
        self.kernel_threads = (
            None
            if kernel_threads is None
            else check_integer(kernel_threads, "kernel_threads", minimum=0)
        )

    def fit(self, graph: Graph) -> KronFitResult:
        """Fit the initiator to ``graph`` (padded to 2^k nodes internally)."""
        if graph.n_edges == 0:
            raise EstimationError("cannot fit KronFit to a graph with no edges")
        if self.n_starts == 1:
            rng = as_generator(self.seed)
            padded, k = pad_to_power_of_two(graph)
            return self._fit_chain(padded, k, rng, sigma=None)
        if self.multi_start == "fanout":
            return self._fit_multi_start_fanout(graph)
        return self._fit_multi_start_batched(graph)

    def _fit_multi_start_batched(self, graph: Graph) -> KronFitResult:
        """All ``n_starts`` chains in one batched task; best LL wins.

        Per-start seeds are spawned from the estimator seed with the
        exact derivation the trial engine applies to fanned-out specs
        (Generator → one ``integers`` draw, then ``SeedSequence.spawn``
        by start index), so chain ``s`` consumes the same stream here as
        trial ``s`` does under ``multi_start="fanout"`` — the winner and
        every log-likelihood are bit-identical between the strategies.
        """
        from repro.runtime import TrialSpec, run_trials

        padded, k = pad_to_power_of_two(graph)
        seed = self.seed
        if isinstance(seed, np.random.Generator):
            seed = int(seed.integers(0, 2**63 - 1))
        root = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        children = tuple(root.spawn(self.n_starts))
        spec = TrialSpec(
            fn=_kronfit_batched_trial,
            params={
                "graph": padded,
                "k": k,
                "seeds": children,
                "n_iterations": self.n_iterations,
                "warmup_swaps": self.warmup_swaps,
                "n_permutation_samples": self.n_permutation_samples,
                "sample_spacing": self.sample_spacing,
                "learning_rate": self.learning_rate,
                "initial": (self.initial.a, self.initial.b, self.initial.c),
                "backend": self.backend,
                "threads": self.kernel_threads,
            },
            index=0,
        )
        report = run_trials(
            [spec],
            seed=0,
            n_jobs=self.n_jobs if self.n_jobs is not None else 1,
            label=f"kronfit:{self.n_starts}-starts-batched",
        )
        results = report.results[0]
        winner = select_best_start(results)
        result = results[winner]
        _logger.debug(
            "kronfit multi-start (batched): start %d of %d wins with loglik=%.2f",
            winner,
            self.n_starts,
            result.log_likelihoods[-1],
        )
        return replace(
            result,
            n_starts=self.n_starts,
            start=winner,
            start_log_likelihoods=tuple(
                r.log_likelihoods[-1] for r in results
            ),
        )

    def _fit_multi_start_fanout(self, graph: Graph) -> KronFitResult:
        """Fan ``n_starts`` chains across the trial engine; best LL wins."""
        from repro.runtime import TrialSpec, run_trials

        padded, k = pad_to_power_of_two(graph)
        chain_params = {
            "n_iterations": self.n_iterations,
            "warmup_swaps": self.warmup_swaps,
            "n_permutation_samples": self.n_permutation_samples,
            "sample_spacing": self.sample_spacing,
            "learning_rate": self.learning_rate,
            "initial": (self.initial.a, self.initial.b, self.initial.c),
            "backend": self.backend,
        }
        specs = [
            TrialSpec(
                fn=_kronfit_start_trial,
                params={"graph": padded, "k": k, "start": start, **chain_params},
                index=start,
            )
            for start in range(self.n_starts)
        ]
        report = run_trials(
            specs,
            seed=self.seed,
            n_jobs=self.n_jobs if self.n_jobs is not None else 1,
            label=f"kronfit:{self.n_starts}-starts",
        )
        winner = select_best_start(report.results)
        result = report.results[winner]
        _logger.debug(
            "kronfit multi-start: start %d of %d wins with loglik=%.2f",
            winner,
            self.n_starts,
            result.log_likelihoods[-1],
        )
        return replace(
            result,
            n_starts=self.n_starts,
            start=winner,
            start_log_likelihoods=tuple(
                r.log_likelihoods[-1] for r in report.results
            ),
        )

    def _fit_chain(
        self,
        padded: Graph,
        k: int,
        rng: np.random.Generator,
        sigma: np.ndarray | None,
    ) -> KronFitResult:
        """One gradient-ascent run over one Metropolis chain.

        ``sigma=None`` starts from the degree-matched correspondence —
        exactly the historical single-start fit.
        """
        theta = _clip(self.initial)
        sampler = PermutationSampler(
            padded, k, theta, sigma=sigma, backend=self.backend
        )
        log_likelihoods: list[float] = []
        trajectory: list[tuple[float, float, float]] = []
        for iteration in range(self.n_iterations):
            sampler.set_theta(theta)
            sampler.run(self.warmup_swaps, rng)
            gradient = np.zeros(3)
            value = 0.0
            for _ in range(self.n_permutation_samples):
                sampler.run(self.sample_spacing, rng)
                likelihood = ProfileLikelihood(sampler.histogram(), k)
                gradient += likelihood.gradient(theta)
                value += likelihood.log_likelihood(theta)
            gradient /= self.n_permutation_samples
            value /= self.n_permutation_samples
            log_likelihoods.append(value)
            step_scale = self.learning_rate / (1.0 + iteration / 10.0)
            sup_norm = float(np.abs(gradient).max())
            if sup_norm > 0:
                step = step_scale * gradient / sup_norm
                theta = _clip(
                    Initiator(
                        float(np.clip(theta.a + step[0], _PARAM_LOW, _PARAM_HIGH)),
                        float(np.clip(theta.b + step[1], _PARAM_LOW, _PARAM_HIGH)),
                        float(np.clip(theta.c + step[2], _PARAM_LOW, _PARAM_HIGH)),
                    )
                )
            trajectory.append((theta.a, theta.b, theta.c))
            _logger.debug(
                "kronfit iter %d: loglik=%.2f theta=(%.4f, %.4f, %.4f)",
                iteration,
                value,
                theta.a,
                theta.b,
                theta.c,
            )
        acceptance = sampler.accepted / max(sampler.proposed, 1)
        return KronFitResult(
            initiator=theta.canonical(),
            k=k,
            log_likelihoods=tuple(log_likelihoods),
            acceptance_rate=float(acceptance),
            trajectory=tuple(trajectory),
        )


def perturbed_initial_sigma(graph: Graph, k: int, start: int) -> np.ndarray:
    """Initial correspondence of multi-start chain ``start``.

    Start 0 is the degree-matched σ every single-start fit uses; start
    ``s > 0`` reshuffles the assignments of a quarter of the nodes with a
    dedicated deterministic stream keyed by ``s`` alone — independent of
    worker count, pool mode, and the chain's own RNG — so every engine
    and schedule sees the same S starting points.
    """
    sigma = degree_matched_initial_sigma(graph, k)
    start = check_integer(start, "start", minimum=0)
    if start == 0 or graph.n_nodes < 2:
        return sigma
    rng = np.random.default_rng(np.random.SeedSequence([_START_SIGMA_KEY, start]))
    n = graph.n_nodes
    shuffled = rng.choice(n, size=max(2, n // 4), replace=False)
    sigma[shuffled] = sigma[shuffled[rng.permutation(shuffled.size)]]
    return sigma


def select_best_start(results: list[KronFitResult]) -> int:
    """Index of the winning start: best final log-likelihood.

    Strict improvement is required to displace an earlier start, so ties
    (including NaN-free exact equality from converged duplicate chains)
    deterministically resolve to the lowest start index.
    """
    if not results:
        raise EstimationError("multi-start selection needs at least one result")
    best = 0
    best_value = results[0].log_likelihoods[-1]
    for index, result in enumerate(results[1:], start=1):
        value = result.log_likelihoods[-1]
        if value > best_value:
            best = index
            best_value = value
    return best


def _kronfit_start_trial(
    rng: np.random.Generator,
    *,
    graph: Graph,
    k: int,
    start: int,
    n_iterations: int,
    warmup_swaps: int,
    n_permutation_samples: int,
    sample_spacing: int,
    learning_rate: float,
    initial: tuple[float, float, float],
    backend: str | None,
) -> KronFitResult:
    """One multi-start chain (module-level so the engine can ship it).

    ``graph`` is already padded to ``2^k`` nodes; ``rng`` is the
    engine-derived per-start stream, and the starting σ depends only on
    ``start``.
    """
    estimator = KronFitEstimator(
        n_iterations=n_iterations,
        warmup_swaps=warmup_swaps,
        n_permutation_samples=n_permutation_samples,
        sample_spacing=sample_spacing,
        learning_rate=learning_rate,
        initial=initial,
        backend=backend,
    )
    sigma = perturbed_initial_sigma(graph, k, start)
    return estimator._fit_chain(graph, k, rng, sigma=sigma)


def _kronfit_batched_trial(
    rng: np.random.Generator,
    *,
    graph: Graph,
    k: int,
    seeds: tuple,
    n_iterations: int,
    warmup_swaps: int,
    n_permutation_samples: int,
    sample_spacing: int,
    learning_rate: float,
    initial: tuple[float, float, float],
    backend: str | None,
    threads: int | None,
) -> list[KronFitResult]:
    """All multi-start chains as one trial (module-level so the engine
    can ship it to a pool worker).

    The engine-derived ``rng`` is ignored: each chain runs on its own
    pre-spawned seed from ``seeds`` so trajectories match the fanned-out
    per-start trials bit for bit.
    """
    del rng
    return _fit_chains_batched(
        graph,
        k,
        seeds,
        n_iterations=n_iterations,
        warmup_swaps=warmup_swaps,
        n_permutation_samples=n_permutation_samples,
        sample_spacing=sample_spacing,
        learning_rate=learning_rate,
        initial=initial,
        backend=backend,
        threads=threads,
    )


def _fit_chains_batched(
    graph: Graph,
    k: int,
    seeds,
    *,
    n_iterations: int,
    warmup_swaps: int,
    n_permutation_samples: int,
    sample_spacing: int,
    learning_rate: float,
    initial: tuple[float, float, float],
    backend: str | None,
    threads: int | None,
) -> list[KronFitResult]:
    """Gradient-ascent over S Metropolis chains advancing in lockstep.

    Chain ``s`` is bit-identical to ``_fit_chain`` run solo with start
    ``s``'s σ and ``default_rng(seeds[s])``: the Metropolis kernel is
    exact by the multichain contracts, and the stacked likelihood math
    below uses only IEEE correctly-rounded elementwise operations plus
    per-row contiguous sums — shape-independent, so each row reproduces
    :class:`ProfileLikelihood`'s float sequence exactly.  The only
    position-sensitive pieces (the ``exp``/``log1p`` table builds and the
    scalar empty-graph terms) stay per-chain, computed once per gradient
    iteration (Θ is constant within an iteration, so caching them is
    exact — the solo path just rebuilds the identical tables per sample).
    """
    seeds = tuple(seeds)
    n_chains = len(seeds)
    rngs = [np.random.default_rng(child) for child in seeds]
    theta0 = _clip(as_initiator(initial))
    sigmas = [
        perturbed_initial_sigma(graph, k, start) for start in range(n_chains)
    ]
    sampler = MultiChainSampler(
        graph,
        k,
        [theta0] * n_chains,
        sigmas=sigmas,
        backend=backend,
        threads=threads,
    )
    thetas = [theta0] * n_chains
    log_likelihoods: list[list[float]] = [[] for _ in range(n_chains)]
    trajectories: list[list[tuple[float, float, float]]] = [
        [] for _ in range(n_chains)
    ]
    grid = np.arange(k + 1)
    z_grid = np.broadcast_to(grid[:, None], (k + 1, k + 1))
    o_grid = np.broadcast_to(grid[None, :], (k + 1, k + 1))
    x_grid = np.maximum(k - z_grid - o_grid, 0)
    for iteration in range(n_iterations):
        # Θ is fixed within an iteration: build each chain's tables once
        # and reuse them for the score row and all likelihood samples.
        tables = []
        for s in range(n_chains):
            sampler.set_theta(s, thetas[s])
            tables.append(sampler.chain(s)._tables)
        w_tab = np.stack([t.log_p - t.log_1mp for t in tables])
        inv_1mp = 1.0 / np.maximum(
            1.0 - np.stack([t.p for t in tables]), 1.0 - _PARAM_CEIL
        )
        abc = np.array(
            [
                [
                    min(max(theta.a, _PARAM_FLOOR), _PARAM_CEIL),
                    min(max(theta.b, _PARAM_FLOOR), _PARAM_CEIL),
                    min(max(theta.c, _PARAM_FLOOR), _PARAM_CEIL),
                ]
                for theta in thetas
            ]
        )
        empty_grad = np.stack(
            [
                _empty_graph_gradient(abc[s, 0], abc[s, 1], abc[s, 2], k)
                for s in range(n_chains)
            ]
        )
        empty_term = np.array(
            [_empty_graph_term(thetas[s], k) for s in range(n_chains)]
        )
        sampler.run(warmup_swaps, rngs)
        gradients = np.zeros((n_chains, 3))
        values = np.zeros(n_chains)
        for _ in range(n_permutation_samples):
            sampler.run(sample_spacing, rngs)
            hist = sampler.histograms().astype(np.float64)
            weight = hist * inv_1mp
            grad_a = (weight * z_grid).reshape(n_chains, -1).sum(axis=1)
            grad_b = (weight * x_grid).reshape(n_chains, -1).sum(axis=1)
            grad_c = (weight * o_grid).reshape(n_chains, -1).sum(axis=1)
            gradients += (
                np.stack(
                    [
                        grad_a / abc[:, 0],
                        grad_b / abc[:, 1],
                        grad_c / abc[:, 2],
                    ],
                    axis=1,
                )
                + empty_grad
            )
            values += (hist * w_tab).reshape(n_chains, -1).sum(axis=1) + empty_term
        gradients /= n_permutation_samples
        values /= n_permutation_samples
        step_scale = learning_rate / (1.0 + iteration / 10.0)
        for s in range(n_chains):
            log_likelihoods[s].append(float(values[s]))
            gradient = gradients[s]
            sup_norm = float(np.abs(gradient).max())
            if sup_norm > 0:
                step = step_scale * gradient / sup_norm
                theta = thetas[s]
                thetas[s] = _clip(
                    Initiator(
                        float(np.clip(theta.a + step[0], _PARAM_LOW, _PARAM_HIGH)),
                        float(np.clip(theta.b + step[1], _PARAM_LOW, _PARAM_HIGH)),
                        float(np.clip(theta.c + step[2], _PARAM_LOW, _PARAM_HIGH)),
                    )
                )
            trajectories[s].append((thetas[s].a, thetas[s].b, thetas[s].c))
    results = []
    for s in range(n_chains):
        chain = sampler.chain(s)
        acceptance = chain.accepted / max(chain.proposed, 1)
        results.append(
            KronFitResult(
                initiator=thetas[s].canonical(),
                k=k,
                log_likelihoods=tuple(log_likelihoods[s]),
                acceptance_rate=float(acceptance),
                trajectory=tuple(trajectories[s]),
            )
        )
    return results


def _clip(theta: Initiator) -> Initiator:
    return Initiator(
        float(np.clip(theta.a, _PARAM_LOW, _PARAM_HIGH)),
        float(np.clip(theta.b, _PARAM_LOW, _PARAM_HIGH)),
        float(np.clip(theta.c, _PARAM_LOW, _PARAM_HIGH)),
    )
