"""Exact sampling of undirected stochastic Kronecker graphs.

Two samplers, both drawing from the *exact* product-Bernoulli distribution
of Definition 3.4 with the paper's undirected semantics (zero diagonal,
each unordered pair {u, v} an independent edge with probability
``P[u, v] = ∏ᵢ Θ[uᵢ, vᵢ]``):

* :func:`sample_skg_naive` — materialises each row of P (O(N²) time); the
  reference implementation, usable to k ≈ 12.
* :func:`sample_skg` — **grass-hopping**: for a 2×2 symmetric initiator the
  probability of pair (u, v) depends only on the *bit-pattern profile*
  ``(z, x, o)`` = (#levels where both bits are 0, #levels where they
  differ, #levels where both are 1), because ``P[u,v] = a^z b^x c^o``.
  There are only ``C(k+2, 2)`` profiles; per profile the edge count is
  Binomial(#pairs, probability) and the chosen pairs are uniform without
  replacement within the profile class.  Expected time O(E + k²), exact
  for every k.  (Leskovec's widely used "ball dropping" generator is only
  approximate; this sampler is not.)

Both samplers agree in distribution; tests check profile-class counts and
expected statistics across thousands of draws.
"""

from __future__ import annotations

from math import comb

import numpy as np

from repro.errors import ValidationError
from repro.graphs.graph import Graph
from repro.kronecker.initiator import as_initiator
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer

__all__ = ["sample_skg", "sample_skg_naive", "profile_class_size", "pair_probability"]

_NAIVE_LIMIT_K = 12


def pair_probability(initiator, z: int, x: int, o: int) -> float:
    """Edge probability ``a^z b^x c^o`` of any pair with profile (z, x, o)."""
    theta = as_initiator(initiator)
    return float(theta.a**z * theta.b**x * theta.c**o)


def profile_class_size(k: int, z: int, x: int, o: int) -> int:
    """Number of unordered node pairs {u, v}, u ≠ v, with profile (z, x, o).

    Choosing which levels carry each pattern gives the multinomial
    ``k!/(z! x! o!)``; each of the ``x`` differing levels has two
    orientations, and dividing ordered pairs by two yields ``2^{x-1}``
    orientation choices.  Profiles with ``x = 0`` describe u = v only.
    """
    if z + x + o != k:
        raise ValidationError(f"profile ({z}, {x}, {o}) does not sum to k={k}")
    if x == 0:
        return 0
    return comb(k, z) * comb(k - z, x) * 2 ** (x - 1)


def sample_skg(initiator, k: int, seed: SeedLike = None) -> Graph:
    """Draw one undirected SKG on ``2^k`` nodes by exact grass-hopping."""
    theta = as_initiator(initiator)
    k = check_integer(k, "k", minimum=1)
    rng = as_generator(seed)
    n = 2**k
    chunks: list[np.ndarray] = []
    for z in range(k + 1):
        for x in range(k - z + 1):
            o = k - z - x
            class_size = profile_class_size(k, z, x, o)
            if class_size == 0:
                continue
            probability = pair_probability(theta, z, x, o)
            if probability <= 0.0:
                continue
            count = int(rng.binomial(class_size, probability))
            if count == 0:
                continue
            chunks.append(_sample_class_pairs(rng, k, z, x, count, class_size))
    if not chunks:
        return Graph(n)
    # Keys within a class are distinct and classes are disjoint, so one
    # global sort yields canonical edge arrays directly: the key
    # (u << k) | v with u < v orders exactly like the lexicographic (u, v)
    # pair, which lets the trusted constructor skip re-canonicalization.
    keys = np.sort(np.concatenate(chunks))
    u = (keys >> np.int64(k)).astype(np.int64)
    v = (keys & np.int64(n - 1)).astype(np.int64)
    return Graph._from_canonical(n, u, v)


def _sample_class_pairs(
    rng: np.random.Generator, k: int, z: int, x: int, count: int, class_size: int
) -> np.ndarray:
    """``count`` distinct uniform pairs from profile class (z, x, k-z-x).

    Pairs are encoded as int64 keys ``(u << k) | v`` with u < v.  Sampling
    is with-replacement plus dedup and top-up; by pair exchangeability
    within the class, keeping the first ``count`` distinct draws is uniform
    without replacement.  ``class_size`` bounds the loop for tiny classes.
    """
    count = min(count, class_size)
    keys = np.empty(0, dtype=np.int64)
    while keys.size < count:
        need = count - keys.size
        batch = max(2 * need, 16)
        keys = np.unique(np.concatenate([keys, _draw_class_keys(rng, k, z, x, batch)]))
    if keys.size > count:
        keys = rng.choice(keys, size=count, replace=False)
    return keys


def _draw_class_keys(
    rng: np.random.Generator, k: int, z: int, x: int, batch: int
) -> np.ndarray:
    """``batch`` uniform (with replacement) pair keys from class (z, x, o)."""
    # Random level-type assignment: argsort of uniforms is a uniform
    # permutation per row; the first z permuted levels get type both-0,
    # the next x get type differ, the rest get type both-1.
    order = np.argsort(rng.random((batch, k)), axis=1)
    u_bits = np.zeros((batch, k), dtype=np.int64)
    v_bits = np.zeros((batch, k), dtype=np.int64)
    differ_levels = order[:, z : z + x]
    one_levels = order[:, z + x :]
    rows = np.arange(batch)[:, None]
    orientation = rng.integers(0, 2, size=differ_levels.shape, dtype=np.int64)
    u_bits[rows, differ_levels] = orientation
    v_bits[rows, differ_levels] = 1 - orientation
    u_bits[rows, one_levels] = 1
    v_bits[rows, one_levels] = 1
    weights = np.int64(1) << np.arange(k - 1, -1, -1, dtype=np.int64)
    u = u_bits @ weights
    v = v_bits @ weights
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    return (lo << np.int64(k)) | hi


def sample_skg_naive(initiator, k: int, seed: SeedLike = None) -> Graph:
    """Reference O(N²) sampler: Bernoulli per upper-triangle entry of Θ^{⊗k}.

    Builds each row of P as a Kronecker product of k two-vectors, so it
    never materialises the full matrix, but still touches all N²/2 pairs —
    keep ``k`` ≤ 12.
    """
    theta = as_initiator(initiator)
    k = check_integer(k, "k", minimum=1)
    if k > _NAIVE_LIMIT_K:
        raise ValidationError(
            f"naive sampler is O(4^k); k={k} exceeds limit {_NAIVE_LIMIT_K} "
            "— use sample_skg instead"
        )
    rng = as_generator(seed)
    n = 2**k
    matrix = theta.matrix()
    u_list: list[np.ndarray] = []
    v_list: list[np.ndarray] = []
    for u in range(n - 1):
        row = _probability_row(matrix, u, k)
        tail = row[u + 1 :]
        hits = np.flatnonzero(rng.random(tail.size) < tail) + u + 1
        if hits.size:
            u_list.append(np.full(hits.size, u, dtype=np.int64))
            v_list.append(hits.astype(np.int64))
    if not u_list:
        return Graph(n)
    # The row loop emits u ascending with sorted hits v > u per row, so the
    # concatenated arrays are already canonical.
    return Graph._from_canonical(n, np.concatenate(u_list), np.concatenate(v_list))


def _probability_row(matrix: np.ndarray, u: int, k: int) -> np.ndarray:
    """Row ``u`` of Θ^{⊗k}: the Kronecker product of the k selected rows."""
    row = np.ones(1, dtype=np.float64)
    for level in range(k - 1, -1, -1):
        bit = (u >> level) & 1
        row = np.kron(row, matrix[bit])
    return row
