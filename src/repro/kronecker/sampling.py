"""Exact sampling of undirected stochastic Kronecker graphs.

Two samplers, both drawing from the *exact* product-Bernoulli distribution
of Definition 3.4 with the paper's undirected semantics (zero diagonal,
each unordered pair {u, v} an independent edge with probability
``P[u, v] = ∏ᵢ Θ[uᵢ, vᵢ]``):

* :func:`sample_skg_naive` — materialises each row of P (O(N²) time); the
  reference implementation, usable to k ≈ 12.
* :func:`sample_skg` — **grass-hopping**: for a 2×2 symmetric initiator the
  probability of pair (u, v) depends only on the *bit-pattern profile*
  ``(z, x, o)`` = (#levels where both bits are 0, #levels where they
  differ, #levels where both are 1), because ``P[u,v] = a^z b^x c^o``.
  There are only ``C(k+2, 2)`` profiles; per profile the edge count is
  Binomial(#pairs, probability) and the chosen pairs are uniform without
  replacement within the profile class.  Expected time O(E + k²), exact
  for every k.  (Leskovec's widely used "ball dropping" generator is only
  approximate; this sampler is not.)

``sample_skg`` executes behind the ``REPRO_KERNEL_BACKEND`` knob like the
counting pass and the Metropolis chain: the pure-Python reference engine
defined here, or the fused numba / compiled-C selection kernel of
:mod:`repro.native.sampling`.  All engines consume the same pre-drawn
streams (the draw contract documented there) and run the same Floyd
selection + combination unranking, so the sampled graph is
**bit-identical** across engines for every seed.

Both samplers agree in distribution; tests check profile-class counts and
expected statistics across thousands of draws.
"""

from __future__ import annotations

from math import comb

import numpy as np

from repro.errors import ValidationError
from repro.graphs.graph import Graph
from repro.kronecker.initiator import as_initiator
from repro.native.sampling import (
    choose_table,
    resolve_sampler_backend,
    sampler_kernel,
)
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer

__all__ = ["sample_skg", "sample_skg_naive", "profile_class_size", "pair_probability"]

_NAIVE_LIMIT_K = 12


def pair_probability(initiator, z: int, x: int, o: int) -> float:
    """Edge probability ``a^z b^x c^o`` of any pair with profile (z, x, o)."""
    theta = as_initiator(initiator)
    return float(theta.a**z * theta.b**x * theta.c**o)


def profile_class_size(k: int, z: int, x: int, o: int) -> int:
    """Number of unordered node pairs {u, v}, u ≠ v, with profile (z, x, o).

    Choosing which levels carry each pattern gives the multinomial
    ``k!/(z! x! o!)``; each of the ``x`` differing levels has two
    orientations, and dividing ordered pairs by two yields ``2^{x-1}``
    orientation choices.  Profiles with ``x = 0`` describe u = v only.
    """
    if z + x + o != k:
        raise ValidationError(f"profile ({z}, {x}, {o}) does not sum to k={k}")
    if x == 0:
        return 0
    return comb(k, z) * comb(k - z, x) * 2 ** (x - 1)


def sample_skg(
    initiator, k: int, seed: SeedLike = None, backend: str | None = None
) -> Graph:
    """Draw one undirected SKG on ``2^k`` nodes by exact grass-hopping.

    ``backend`` selects the pair-selection engine (``auto``/``numpy``/
    ``numba``/``cext``; default: the ``REPRO_KERNEL_BACKEND``
    environment knob) — the sampled graph is bit-identical across
    engines for any seed.
    """
    theta = as_initiator(initiator)
    k = check_integer(k, "k", minimum=1)
    rng = as_generator(seed)
    engine = resolve_sampler_backend(backend)
    n = 2**k
    # Draw contract, part 1: per-class binomial counts in ascending
    # (z, x) order, skipping empty and zero-probability classes before
    # any draw.
    z_list: list[int] = []
    x_list: list[int] = []
    count_list: list[int] = []
    size_list: list[int] = []
    for z in range(k + 1):
        for x in range(k - z + 1):
            o = k - z - x
            class_size = profile_class_size(k, z, x, o)
            if class_size == 0:
                continue
            probability = pair_probability(theta, z, x, o)
            if probability <= 0.0:
                continue
            count = int(rng.binomial(class_size, probability))
            if count == 0:
                continue
            z_list.append(z)
            x_list.append(x)
            count_list.append(count)
            size_list.append(class_size)
    if not count_list:
        return Graph(n)
    counts = np.asarray(count_list, dtype=np.int64)
    offsets = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)[:-1]]
    )
    total = int(counts.sum())
    # Draw contract, part 2: one flat uniform stream, count values per
    # class in the same ascending order.
    uniforms = rng.random(total)
    z_arr = np.asarray(z_list, dtype=np.int64)
    x_arr = np.asarray(x_list, dtype=np.int64)
    class_sizes = np.asarray(size_list, dtype=np.int64)
    choose = choose_table(k)
    if engine == "numpy":
        keys = _reference_select(
            k, z_arr, x_arr, counts, offsets, class_sizes, choose, uniforms
        )
    else:
        kernel = sampler_kernel(engine)
        capacity = 16
        while capacity < 2 * int(counts.max()):
            capacity *= 2
        keys = np.zeros(total, dtype=np.int64)
        table_keys = np.zeros(capacity, dtype=np.int64)
        table_stamp = np.zeros(capacity, dtype=np.int64)
        written = int(
            kernel(
                k,
                counts.shape[0],
                z_arr,
                x_arr,
                counts,
                offsets,
                class_sizes,
                choose,
                uniforms,
                keys,
                table_keys,
                table_stamp,
                capacity,
            )
        )
        if written != total:
            raise RuntimeError(
                f"sampler kernel wrote {written} keys, expected {total}"
            )
    # Keys within a class are distinct and classes are disjoint, so one
    # global sort yields canonical edge arrays directly: the key
    # (u << k) | v with u < v orders exactly like the lexicographic (u, v)
    # pair, which lets the trusted constructor skip re-canonicalization.
    keys = np.sort(keys)
    u = (keys >> np.int64(k)).astype(np.int64)
    v = (keys & np.int64(n - 1)).astype(np.int64)
    return Graph._from_canonical(n, u, v)


def _reference_select(
    k: int,
    z_arr: np.ndarray,
    x_arr: np.ndarray,
    counts: np.ndarray,
    offsets: np.ndarray,
    class_sizes: np.ndarray,
    choose: np.ndarray,
    uniforms: np.ndarray,
) -> np.ndarray:
    """The numpy reference engine: Floyd selection + unranking per class.

    The same selection and unranking contracts as the fused kernels
    (:mod:`repro.native.sampling`), with a Python ``set`` as the
    membership structure — the emitted index sequence, and hence every
    key, is identical.
    """
    keys = np.zeros(uniforms.shape[0], dtype=np.int64)
    for c in range(counts.shape[0]):
        count = int(counts[c])
        z = int(z_arr[c])
        x = int(x_arr[c])
        size = int(class_sizes[c])
        base = int(offsets[c])
        seen: set[int] = set()
        emitted = 0
        for t in range(size - count, size):
            u = float(uniforms[base + emitted])
            r = int(u * (t + 1.0))
            if r > t:
                r = t
            if r in seen:
                idx = t
            else:
                idx = r
            seen.add(idx)
            keys[base + emitted] = _unrank_pair_key(k, z, x, idx, choose)
            emitted += 1
    return keys


def _unrank_pair_key(
    k: int, z: int, x: int, idx: int, choose: np.ndarray
) -> int:
    """Pair key ``(u << k) | v`` of class index ``idx`` in class (z, x).

    The unranking contract of :mod:`repro.native.sampling`: ``idx``
    decomposes into the both-0 level combination, the differing-level
    combination of the remaining levels, and the orientation word; the
    most significant differing level is fixed ``u=0 / v=1`` so ``u < v``.
    """
    kp1 = k + 1
    n_orient = 1 << (x - 1)
    c2 = int(choose[(k - z) * kp1 + x])
    a = idx // (c2 * n_orient)
    rem = idx % (c2 * n_orient)
    b = rem // n_orient
    w = rem % n_orient
    zero_mask = 0
    slots = z
    aa = a
    for level in range(k):
        if slots == 0:
            break
        cnt = int(choose[(k - 1 - level) * kp1 + (slots - 1)])
        if aa < cnt:
            zero_mask |= 1 << (k - 1 - level)
            slots -= 1
        else:
            aa -= cnt
    differ_mask = 0
    m = k - z
    pos = 0
    bb = b
    slots = x
    for level in range(k):
        if slots == 0:
            break
        bit = 1 << (k - 1 - level)
        if zero_mask & bit:
            continue
        cnt = int(choose[(m - 1 - pos) * kp1 + (slots - 1)])
        if bb < cnt:
            differ_mask |= bit
            slots -= 1
        else:
            bb -= cnt
        pos += 1
    one_mask = ((1 << k) - 1) & ~zero_mask & ~differ_mask
    u_val = one_mask
    v_val = one_mask
    first = True
    tw = 0
    for level in range(k):
        bit = 1 << (k - 1 - level)
        if not (differ_mask & bit):
            continue
        if first:
            v_val |= bit
            first = False
        else:
            if (w >> tw) & 1:
                u_val |= bit
            else:
                v_val |= bit
            tw += 1
    return (u_val << k) | v_val


def sample_skg_naive(initiator, k: int, seed: SeedLike = None) -> Graph:
    """Reference O(N²) sampler: Bernoulli per upper-triangle entry of Θ^{⊗k}.

    Builds each row of P as a Kronecker product of k two-vectors, so it
    never materialises the full matrix, but still touches all N²/2 pairs —
    keep ``k`` ≤ 12.
    """
    theta = as_initiator(initiator)
    k = check_integer(k, "k", minimum=1)
    if k > _NAIVE_LIMIT_K:
        raise ValidationError(
            f"naive sampler is O(4^k); k={k} exceeds limit {_NAIVE_LIMIT_K} "
            "— use sample_skg instead"
        )
    rng = as_generator(seed)
    n = 2**k
    matrix = theta.matrix()
    u_list: list[np.ndarray] = []
    v_list: list[np.ndarray] = []
    for u in range(n - 1):
        row = _probability_row(matrix, u, k)
        tail = row[u + 1 :]
        hits = np.flatnonzero(rng.random(tail.size) < tail) + u + 1
        if hits.size:
            u_list.append(np.full(hits.size, u, dtype=np.int64))
            v_list.append(hits.astype(np.int64))
    if not u_list:
        return Graph(n)
    # The row loop emits u ascending with sorted hits v > u per row, so the
    # concatenated arrays are already canonical.
    return Graph._from_canonical(n, np.concatenate(u_list), np.concatenate(v_list))


def _probability_row(matrix: np.ndarray, u: int, k: int) -> np.ndarray:
    """Row ``u`` of Θ^{⊗k}: the Kronecker product of the k selected rows."""
    row = np.ones(1, dtype=np.float64)
    for level in range(k - 1, -1, -1):
        bit = (u >> level) & 1
        row = np.kron(row, matrix[bit])
    return row
