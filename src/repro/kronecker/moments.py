"""Gleich–Owen closed-form expected counts under the SKG model (paper Eq. 1).

For Θ = [[a, b], [b, c]] and P = Θ^{⊗k} with the paper's undirected
semantics (zero diagonal, each unordered pair an independent edge), the
expected counts of edges E, hairpins H (2-stars), triangles Δ and tripins
T (3-stars) admit closed forms: every term is ``(polynomial in a, b, c)^k``
because sums over node bit-patterns factor across the k Kronecker levels.

The expressions below follow Eq. (1) of the paper (equivalently Gleich &
Owen §4); tests validate every formula against
:func:`repro.kronecker.kronpower.brute_force_expected_counts` on dense
Kronecker powers for k ≤ 4 and against Monte-Carlo sampling.

All functions are vectorised in ``(a, b, c)`` via numpy broadcasting, which
the moment-matching grid search relies on.
"""

from __future__ import annotations

import numpy as np

from repro.kronecker.initiator import as_initiator
from repro.stats.counts import MatchingStatistics
from repro.utils.validation import check_integer

__all__ = [
    "expected_edges",
    "expected_hairpins",
    "expected_triangles",
    "expected_tripins",
    "expected_statistics",
    "expected_feature_vector",
]


def expected_edges(a, b, c, k: int):
    """E[E] = ½[(a + 2b + c)^k − (a + c)^k]."""
    k = check_integer(k, "k", minimum=1)
    a, b, c = np.asarray(a, float), np.asarray(b, float), np.asarray(c, float)
    return 0.5 * ((a + 2 * b + c) ** k - (a + c) ** k)


def expected_hairpins(a, b, c, k: int):
    """E[H] = ½[((a+b)² + (b+c)²)^k − 2(a(a+b) + c(b+c))^k
    − (a² + 2b² + c²)^k + 2(a² + c²)^k]."""
    k = check_integer(k, "k", minimum=1)
    a, b, c = np.asarray(a, float), np.asarray(b, float), np.asarray(c, float)
    term_pairs = ((a + b) ** 2 + (b + c) ** 2) ** k
    term_center = (a * (a + b) + c * (b + c)) ** k
    term_square = (a**2 + 2 * b**2 + c**2) ** k
    term_diag = (a**2 + c**2) ** k
    return 0.5 * (term_pairs - 2 * term_center - term_square + 2 * term_diag)


def expected_triangles(a, b, c, k: int):
    """E[Δ] = ⅙[(a³ + 3b²(a+c) + c³)^k − 3(a(a²+b²) + c(b²+c²))^k
    + 2(a³ + c³)^k]."""
    k = check_integer(k, "k", minimum=1)
    a, b, c = np.asarray(a, float), np.asarray(b, float), np.asarray(c, float)
    closed = (a**3 + 3 * b**2 * (a + c) + c**3) ** k
    one_repeat = (a * (a**2 + b**2) + c * (b**2 + c**2)) ** k
    all_equal = (a**3 + c**3) ** k
    return (closed - 3 * one_repeat + 2 * all_equal) / 6.0


def expected_tripins(a, b, c, k: int):
    """E[T] = ⅙[((a+b)³ + (b+c)³)^k − 3(a(a+b)² + c(b+c)²)^k
    − 3(a³ + c³ + b(a²+c²) + b²(a+c) + 2b³)^k + 2(a³ + 2b³ + c³)^k
    + 3(a³ + c³ + b²(a+c))^k + 6(a³ + c³ + b(a²+c²))^k − 6(a³ + c³)^k].

    Derivation: E[T] = Σ_v e₃(row v) with
    ``e₃ = (s₁³ − 3 s₁ s₂ + 2 s₃)/6`` and ``s_m(v) = r_m(v) − D(v)^m``,
    where ``r_m(v) = Σ_u P_uv^m`` (full row) and ``D(v) = P_vv``.  Each of
    the seven resulting sums over v factors across the k Kronecker levels
    into a ``(polynomial)^k`` term.  Note: the coefficient pattern printed
    in the paper's Eq. (1) (… + 5(…)^k + 4(…)^k …) is OCR-corrupted; the
    coefficients below (+3 and +6 on those terms) are the ones that agree
    with brute-force expectations — see tests/kronecker/test_moments.py.
    """
    k = check_integer(k, "k", minimum=1)
    a, b, c = np.asarray(a, float), np.asarray(b, float), np.asarray(c, float)
    cube_rows = ((a + b) ** 3 + (b + c) ** 3) ** k  # Σ r₁³
    center_hit = (a * (a + b) ** 2 + c * (b + c) ** 2) ** k  # Σ r₁² D
    pair_mixed = (a**3 + c**3 + b * (a**2 + c**2) + b**2 * (a + c) + 2 * b**3) ** k  # Σ r₁ r₂
    all_three = (a**3 + 2 * b**3 + c**3) ** k  # Σ r₃
    two_match_sq = (a**3 + c**3 + b**2 * (a + c)) ** k  # Σ D r₂
    two_match_lin = (a**3 + c**3 + b * (a**2 + c**2)) ** k  # Σ r₁ D²
    diag_only = (a**3 + c**3) ** k  # Σ D³
    return (
        cube_rows
        - 3 * center_hit
        - 3 * pair_mixed
        + 2 * all_three
        + 3 * two_match_sq
        + 6 * two_match_lin
        - 6 * diag_only
    ) / 6.0


def expected_statistics(initiator, k: int) -> MatchingStatistics:
    """All four expected matching features of Θ^{⊗k} as a named tuple."""
    theta = as_initiator(initiator)
    return MatchingStatistics(
        edges=float(expected_edges(theta.a, theta.b, theta.c, k)),
        hairpins=float(expected_hairpins(theta.a, theta.b, theta.c, k)),
        tripins=float(expected_tripins(theta.a, theta.b, theta.c, k)),
        triangles=float(expected_triangles(theta.a, theta.b, theta.c, k)),
    )


_FEATURE_FUNCTIONS = {
    "edges": expected_edges,
    "hairpins": expected_hairpins,
    "tripins": expected_tripins,
    "triangles": expected_triangles,
}


def expected_feature_vector(a, b, c, k: int, features: tuple[str, ...]):
    """Stack of expected feature values (broadcast over a, b, c).

    ``features`` names a subset of ``{"edges", "hairpins", "tripins",
    "triangles"}``; the result has shape ``(len(features),) + broadcast``.
    """
    rows = []
    for name in features:
        try:
            function = _FEATURE_FUNCTIONS[name]
        except KeyError:
            known = ", ".join(_FEATURE_FUNCTIONS)
            raise ValueError(f"unknown feature {name!r}; known features: {known}") from None
        rows.append(np.asarray(function(a, b, c, k), dtype=np.float64))
    if len(rows) > 1:
        rows = np.broadcast_arrays(*rows)
    return np.stack(rows)
