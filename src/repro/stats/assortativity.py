"""Degree-correlation statistics: assortativity, k_nn, joint degrees.

These are the "dK-2" family of statistics that structure-based DP
synthesizers (Sala et al., the paper's closest related work) preserve by
construction, and that a parametric SKG release preserves only as far as
the model allows.  The baseline-comparison bench uses them to quantify
that difference; they are also independently useful graph descriptors.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph

__all__ = [
    "degree_assortativity",
    "average_neighbor_degree_by_degree",
    "joint_degree_counts",
]


def degree_assortativity(graph: Graph) -> float:
    """Pearson correlation of endpoint degrees over edges (Newman's r).

    Both orientations of each undirected edge enter the correlation, as in
    the standard definition.  Returns NaN for graphs where the correlation
    is undefined (fewer than 2 edges, or constant degrees).
    """
    if graph.n_edges < 2:
        return float("nan")
    u, v = graph.edge_arrays
    degrees = graph.degrees.astype(np.float64)
    left = np.concatenate([degrees[u], degrees[v]])
    right = np.concatenate([degrees[v], degrees[u]])
    left_std = left.std()
    right_std = right.std()
    if left_std == 0.0 or right_std == 0.0:
        return float("nan")
    covariance = ((left - left.mean()) * (right - right.mean())).mean()
    return float(covariance / (left_std * right_std))


def average_neighbor_degree_by_degree(graph: Graph) -> tuple[np.ndarray, np.ndarray]:
    """The k_nn(k) curve: mean neighbour degree of degree-k nodes.

    Returns ``(degrees, knn)`` over degree values >= 1 present in the
    graph.  Rising k_nn(k) = assortative mixing; falling = disassortative
    (the typical shape for both AS topologies and SKG samples).
    """
    degrees = graph.degrees.astype(np.float64)
    if graph.n_edges == 0:
        return np.empty(0, np.int64), np.empty(0, np.float64)
    u, v = graph.edge_arrays
    neighbor_degree_sum = np.zeros(graph.n_nodes, dtype=np.float64)
    np.add.at(neighbor_degree_sum, u, degrees[v])
    np.add.at(neighbor_degree_sum, v, degrees[u])
    eligible = graph.degrees >= 1
    mean_neighbor = np.zeros(graph.n_nodes, dtype=np.float64)
    mean_neighbor[eligible] = neighbor_degree_sum[eligible] / degrees[eligible]
    values = np.unique(graph.degrees[eligible])
    knn = np.array(
        [mean_neighbor[graph.degrees == value].mean() for value in values]
    )
    return values.astype(np.int64), knn


def joint_degree_counts(graph: Graph) -> dict[tuple[int, int], int]:
    """The joint degree matrix (dK-2 series): counts of edges by the
    (sorted) degree pair of their endpoints.

    >>> from repro.graphs import Graph
    >>> joint_degree_counts(Graph(3, [(0, 1), (1, 2)]))
    {(1, 2): 2}
    """
    u, v = graph.edge_arrays
    degrees = graph.degrees
    low = np.minimum(degrees[u], degrees[v])
    high = np.maximum(degrees[u], degrees[v])
    counts: dict[tuple[int, int], int] = {}
    pairs, pair_counts = np.unique(
        low * np.int64(graph.n_nodes) + high, return_counts=True
    )
    for key, count in zip(pairs, pair_counts):
        counts[(int(key // graph.n_nodes), int(key % graph.n_nodes))] = int(count)
    return counts
