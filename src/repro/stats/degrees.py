"""Degree-based statistics: sequences, distributions, CCDFs.

The sorted degree sequence is the object Hay et al.'s DP release operates
on; the degree distribution (count of nodes per degree value) is the
paper's Figure (b) series.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph

__all__ = [
    "degree_sequence",
    "sorted_degree_sequence",
    "degree_distribution",
    "degree_ccdf",
]


def degree_sequence(graph: Graph) -> np.ndarray:
    """Degrees indexed by node id (copy; callers may mutate)."""
    return graph.degrees.copy()


def sorted_degree_sequence(graph: Graph) -> np.ndarray:
    """Degrees sorted ascending — ``d_S`` in the paper's Section 4."""
    return np.sort(graph.degrees)


def degree_distribution(
    degrees_or_graph: Graph | np.ndarray,
    *,
    include_zero: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(values, counts)``: how many nodes have each degree.

    Accepts either a graph or a precomputed (integer) degree vector.  Only
    degrees with non-zero counts are returned; ``include_zero`` keeps the
    degree-0 bucket, which log-log plots drop.
    """
    degrees = _as_degree_vector(degrees_or_graph)
    values, counts = np.unique(degrees, return_counts=True)
    if not include_zero:
        keep = values > 0
        values, counts = values[keep], counts[keep]
    return values.astype(np.int64), counts.astype(np.int64)


def degree_ccdf(degrees_or_graph: Graph | np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Complementary CDF of the degree distribution: P(D >= d) per value d."""
    degrees = _as_degree_vector(degrees_or_graph)
    if degrees.size == 0:
        return np.empty(0, np.int64), np.empty(0, np.float64)
    values, counts = np.unique(degrees, return_counts=True)
    tail = np.cumsum(counts[::-1])[::-1] / degrees.size
    return values.astype(np.int64), tail


def _as_degree_vector(degrees_or_graph: Graph | np.ndarray) -> np.ndarray:
    if isinstance(degrees_or_graph, Graph):
        return degrees_or_graph.degrees
    return np.asarray(degrees_or_graph, dtype=np.int64)
