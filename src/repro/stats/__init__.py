"""Graph statistics: the counts the estimator matches and the figure metrics.

Two groups of functionality:

* **Matching statistics** (:mod:`repro.stats.counts`): exact counts of
  edges, hairpins (2-stars/wedges), tripins (3-stars) and triangles — the
  four features F = {E, H, T, Δ} that Gleich–Owen moment matching equates
  with their closed-form expectations.
* **Figure statistics** (:mod:`repro.stats.degrees`, ``hopplot``,
  ``spectral``, ``clustering``): the five per-graph plots of the paper's
  Figures 1–4 (degree distribution, hop plot, scree plot, network values,
  clustering coefficient by degree).

Everything derived from the sparse product ``A @ A`` is computed by the
blocked kernels in :mod:`repro.stats.kernels` and memoized per graph in a
:class:`~repro.stats.kernels.StatsContext`, so the whole per-trial
pipeline (counts, sensitivity, clustering, spectra) runs one A² pass and
one truncated SVD per graph.  The ``REPRO_BLOCK_SIZE`` environment knob
bounds the pass's peak memory; ``REPRO_KERNEL_BACKEND`` selects the
execution engine (``auto`` | ``scipy`` | ``numba`` | ``cext`` — all
bit-identical, the fused kernels just run faster).
"""

from repro.stats.kernels import (
    StatsContext,
    stats_context,
    triangle_pass,
    kernel_pass_count,
    float64_conversion_count,
    resolve_kernel_backend,
    available_kernel_backends,
)
from repro.stats.counts import (
    count_edges,
    count_wedges,
    count_tripins,
    count_triangles,
    triangles_per_node,
    max_common_neighbors,
    matching_statistics,
    degree_moment_statistics,
)
from repro.stats.degrees import (
    degree_sequence,
    sorted_degree_sequence,
    degree_distribution,
    degree_ccdf,
)
from repro.stats.hopplot import hop_plot, effective_diameter
from repro.stats.spectral import singular_values, network_values
from repro.stats.assortativity import (
    degree_assortativity,
    average_neighbor_degree_by_degree,
    joint_degree_counts,
)
from repro.stats.clustering import (
    local_clustering,
    average_clustering,
    clustering_by_degree,
)
from repro.stats.summary import GraphSummary, summarize
from repro.stats.comparison import (
    relative_error,
    parameter_error,
    ks_distance,
    median_relative_error,
    log_series_distance,
)

__all__ = [
    "StatsContext",
    "stats_context",
    "triangle_pass",
    "kernel_pass_count",
    "float64_conversion_count",
    "resolve_kernel_backend",
    "available_kernel_backends",
    "count_edges",
    "count_wedges",
    "count_tripins",
    "count_triangles",
    "triangles_per_node",
    "max_common_neighbors",
    "matching_statistics",
    "degree_moment_statistics",
    "degree_sequence",
    "sorted_degree_sequence",
    "degree_distribution",
    "degree_ccdf",
    "hop_plot",
    "effective_diameter",
    "singular_values",
    "network_values",
    "degree_assortativity",
    "average_neighbor_degree_by_degree",
    "joint_degree_counts",
    "local_clustering",
    "average_clustering",
    "clustering_by_degree",
    "GraphSummary",
    "summarize",
    "relative_error",
    "parameter_error",
    "ks_distance",
    "median_relative_error",
    "log_series_distance",
]
