"""Blocked sparse counting kernels and the per-graph statistics cache.

Every statistic the pipeline derives from the sparse product ``A @ A`` —
the triangle total Δ, the per-node triangle vector, the off-diagonal
maximum common-neighbour count that drives LS_Δ, and the local clustering
numerators — used to materialize the *full* product independently.  Its
size is the wedge count, which for the paper's power-law graphs is orders
of magnitude larger than the edge count, and the pipeline recomputed it up
to three times per trial (Δ, LS_Δ, clustering).

This module fixes both costs:

* :func:`triangle_pass` computes ``A @ A`` in **row blocks** and streams
  every reduction out of each block in a single pass, so peak memory is
  O(block wedges) instead of O(total wedges) and each entry of the product
  is produced exactly once.  The block size comes from the
  ``REPRO_BLOCK_SIZE`` environment knob; the auto-tuned default packs rows
  until a block's predicted product size reaches a fixed entry budget, so
  small graphs run as one block (no overhead) and large graphs stay within
  a bounded footprint.
* :class:`StatsContext` memoizes the pass (plus a few cheap derived
  quantities and dtype conversions) per :class:`~repro.graphs.graph.Graph`
  instance, so ``matching_statistics``, the smooth-sensitivity release,
  and the figure-series clustering all share **one** A² pass per graph.

The pre-blocking implementations are kept below as reference oracles
(:func:`reference_count_triangles` and friends): the equivalence tests
assert the blocked kernels bit-match them, and ``benchmarks/bench_stats.py``
measures the speedup against them.
"""

from __future__ import annotations

import os
from typing import NamedTuple

import numpy as np
import scipy.sparse as sp

from repro.errors import ValidationError
from repro.graphs.graph import Graph

__all__ = [
    "TrianglePassResult",
    "triangle_pass",
    "StatsContext",
    "stats_context",
    "kernel_pass_count",
    "resolve_block_size",
    "row_blocks",
    "reference_count_triangles",
    "reference_triangles_per_node",
    "reference_max_common_neighbors",
]

BLOCK_SIZE_ENV = "REPRO_BLOCK_SIZE"

# Auto-tuning budget: target number of stored entries in one row-block of
# A @ A.  At int64 data plus index arrays this is roughly 64 MiB per block
# — small enough to stay cache-friendly on any modern machine, large
# enough that graphs below ~4M wedges run as a single block.
AUTO_ENTRY_BUDGET = 1 << 22

# Process-wide count of executed A² passes.  Tests and benches use this to
# assert the memoization contract: one pass per graph, no matter how many
# consumers (Δ, LS_Δ, clustering, ...) ask for its reductions.
_pass_count = 0


def kernel_pass_count() -> int:
    """Number of blocked A² passes executed so far in this process."""
    return _pass_count


class TrianglePassResult(NamedTuple):
    """Every reduction of ``A @ A`` the pipeline consumes, from one pass.

    Attributes
    ----------
    triangles:
        The triangle total Δ.
    per_node:
        Triangles through each node (read-only int64, length ``n_nodes``).
    max_common_neighbors:
        ``max_{i ≠ j} |N(i) ∩ N(j)|`` over *all* node pairs — the local
        sensitivity LS_Δ of the triangle count.
    n_blocks:
        How many row blocks the pass used (1 = unblocked equivalent).
    """

    triangles: int
    per_node: np.ndarray
    max_common_neighbors: int
    n_blocks: int


def resolve_block_size(block_size: int | None = None) -> int:
    """The effective block-size knob: explicit argument, else environment.

    Returns 0 for "auto" (the default): rows are packed into blocks by the
    predicted product size, see :func:`row_blocks`.
    """
    if block_size is None:
        raw = os.environ.get(BLOCK_SIZE_ENV)
        if raw is None:
            return 0
        try:
            block_size = int(raw)
        except ValueError:
            raise ValidationError(
                f"environment variable {BLOCK_SIZE_ENV} must be an integer, got {raw!r}"
            )
    if isinstance(block_size, bool) or not isinstance(block_size, (int, np.integer)):
        raise ValidationError(f"block size must be an integer, got {block_size!r}")
    if block_size < 0:
        raise ValidationError(f"block size must be non-negative, got {block_size}")
    return int(block_size)


def row_blocks(graph: Graph, block_size: int = 0) -> list[tuple[int, int]]:
    """Partition ``range(n_nodes)`` into the row blocks of the A² pass.

    With ``block_size > 0`` the blocks are fixed-size row ranges.  With
    ``block_size == 0`` (auto) rows are packed greedily until the block's
    predicted number of product entries — the exact per-row path-2 count
    ``(A @ d)_r = Σ_{j ∈ N(r)} d_j``, an upper bound on the block's stored
    entries — reaches :data:`AUTO_ENTRY_BUDGET`.  Rows whose own bound
    exceeds the budget get a singleton block.
    """
    n = graph.n_nodes
    if n == 0:
        return []
    if block_size > 0:
        return [(r, min(r + block_size, n)) for r in range(0, n, block_size)]
    degrees = graph.degrees
    # Total path-2 count Σ_j d_j² bounds the whole product; when it fits
    # the budget the common case — one block — needs no per-row analysis.
    if int((degrees * degrees).sum()) <= AUTO_ENTRY_BUDGET:
        return [(0, n)]
    # Per-row path-2 counts; the int8 @ int64 SpMV upcasts to int64.
    path2 = graph.adjacency @ degrees
    cumulative = np.cumsum(path2)
    blocks: list[tuple[int, int]] = []
    start = 0
    consumed = 0
    while start < n:
        end = int(np.searchsorted(cumulative, consumed + AUTO_ENTRY_BUDGET, side="right"))
        end = max(end, start + 1)  # always make progress, even past-budget rows
        end = min(end, n)
        blocks.append((start, end))
        consumed = int(cumulative[end - 1])
        start = end
    return blocks


def _product_dtype(max_degree: int) -> np.dtype:
    """Smallest signed integer dtype that holds every entry of ``A @ A``.

    Each product entry is ``|N(i) ∩ N(j)|`` (or a degree on the diagonal),
    both bounded by the maximum degree, so the per-entry arithmetic is
    exact in any dtype whose range covers it; the narrow dtype roughly
    halves the product's memory traffic and runtime versus int64.
    Reductions that can exceed the bound (row sums, the triangle total)
    are cast to int64 before accumulating.
    """
    for candidate in (np.int8, np.int16, np.int32):
        if max_degree <= np.iinfo(candidate).max:
            return np.dtype(candidate)
    return np.dtype(np.int64)


def _working_adjacency(graph: Graph) -> sp.csr_array:
    """The adjacency recast for the pass: narrow values, narrow indices.

    Values go to the smallest dtype that holds every product entry
    (:func:`_product_dtype`); index arrays drop to int32 when the node and
    edge counts allow, which scipy then propagates through the product —
    halving the index traffic of the product, the edge restriction, and
    the off-diagonal reduction.  Pure representation changes: the
    arithmetic is unchanged.
    """
    dtype = _product_dtype(int(graph.degrees.max()))
    adjacency = graph.adjacency
    int32_max = np.iinfo(np.int32).max
    if (
        adjacency.indices.dtype != np.int32
        and graph.n_nodes <= int32_max
        and adjacency.nnz <= int32_max
    ):
        return sp.csr_array(
            (
                adjacency.data.astype(dtype, copy=False),
                adjacency.indices.astype(np.int32),
                adjacency.indptr.astype(np.int32),
            ),
            shape=adjacency.shape,
        )
    if adjacency.dtype != dtype:
        adjacency = adjacency.astype(dtype)
    return adjacency


def triangle_pass(graph: Graph, block_size: int | None = None) -> TrianglePassResult:
    """One blocked pass over ``A @ A``, streaming every consumer reduction.

    For each row block ``A[r0:r1]`` the sparse product ``A[r0:r1] @ A`` is
    materialized once; from it the pass extracts

    * per-node triangles for the block's rows (the product restricted to
      edge positions, halved),
    * the running off-diagonal maximum (the LS_Δ ingredient),

    then drops the block.  The triangle total is ``Σ_v t_v / 3``.  The
    product runs in the smallest integer dtype that holds its entries
    (see :func:`_product_dtype`) and every accumulating reduction is
    int64, so results bit-match the unblocked int64 reference
    implementations for every block size.
    """
    n = graph.n_nodes
    per_node = np.zeros(n, dtype=np.int64)
    if graph.n_edges == 0:
        per_node.setflags(write=False)
        return TrianglePassResult(0, per_node, 0, 0)

    global _pass_count
    _pass_count += 1

    adjacency = _working_adjacency(graph)
    blocks = row_blocks(graph, resolve_block_size(block_size))
    max_common = 0
    for r0, r1 in blocks:
        rows = adjacency if (r0, r1) == (0, n) else adjacency[r0:r1]
        product = rows @ adjacency
        if product.nnz == 0:
            continue
        on_edges = product.multiply(rows).astype(np.int64)
        per_node[r0:r1] = np.asarray(on_edges.sum(axis=1)).ravel() // 2
        # Off-diagonal max straight off the CSR buffers: expand the row
        # pointer and reduce with a mask — no COO object, no index copy.
        # Matching the stored index dtype keeps the comparison allocation-free.
        row = np.repeat(
            np.arange(r0, r1, dtype=product.indices.dtype), np.diff(product.indptr)
        )
        max_common = max(
            max_common,
            int(np.max(product.data, initial=0, where=(product.indices != row))),
        )
    per_node.setflags(write=False)
    return TrianglePassResult(
        int(per_node.sum()) // 3, per_node, max_common, len(blocks)
    )


class StatsContext:
    """Memoized per-graph statistics sharing one blocked A² pass.

    Obtained through :func:`stats_context`, which caches one context on
    each :class:`Graph` instance (alongside the graph's lazy adjacency and
    degrees), so every consumer in a trial — ``matching_statistics``, the
    smooth-sensitivity triangle release, the clustering figure series, the
    hop plot's BFS — shares one computation per graph.

    All cached arrays are read-only; callers that need to mutate must copy.
    """

    __slots__ = ("_graph", "_block_size", "_pass", "_local_clustering", "_adjacency_float")

    def __init__(self, graph: Graph, block_size: int | None = None) -> None:
        self._graph = graph
        self._block_size = block_size
        self._pass: TrianglePassResult | None = None
        self._local_clustering: np.ndarray | None = None
        self._adjacency_float: sp.csr_array | None = None

    @property
    def graph(self) -> Graph:
        """The graph this context memoizes."""
        return self._graph

    def triangle_pass_result(self) -> TrianglePassResult:
        """The (cached) result of the blocked A² pass."""
        if self._pass is None:
            self._pass = triangle_pass(self._graph, self._block_size)
        return self._pass

    @property
    def triangle_count(self) -> int:
        """The triangle total Δ."""
        return self.triangle_pass_result().triangles

    @property
    def triangles_per_node(self) -> np.ndarray:
        """Triangles through each node (read-only int64)."""
        return self.triangle_pass_result().per_node

    @property
    def max_common_neighbors(self) -> int:
        """``max_{i ≠ j} |N(i) ∩ N(j)|`` — the local sensitivity LS_Δ."""
        return self.triangle_pass_result().max_common_neighbors

    # -- degree-moment pieces (functions of the cached degree sequence) ----

    @property
    def edge_count(self) -> int:
        """Number of undirected edges E."""
        return self._graph.n_edges

    @property
    def wedge_count(self) -> int:
        """Number of hairpins H = Σ_v C(d_v, 2)."""
        d = self._graph.degrees
        return int((d * (d - 1) // 2).sum())

    @property
    def tripin_count(self) -> int:
        """Number of tripins T = Σ_v C(d_v, 3)."""
        d = self._graph.degrees
        return int((d * (d - 1) * (d - 2) // 6).sum())

    # -- derived caches ----------------------------------------------------

    @property
    def local_clustering(self) -> np.ndarray:
        """Local clustering coefficient per node (read-only float64).

        ``c_v = 2 t_v / (d_v (d_v − 1))`` with degree-<2 nodes at 0; the
        numerators come from the shared A² pass.
        """
        if self._local_clustering is None:
            degrees = self._graph.degrees.astype(np.float64)
            triangles = self.triangles_per_node.astype(np.float64)
            possible = degrees * (degrees - 1.0) / 2.0
            coefficients = np.zeros(self._graph.n_nodes, dtype=np.float64)
            eligible = possible > 0
            coefficients[eligible] = triangles[eligible] / possible[eligible]
            coefficients.setflags(write=False)
            self._local_clustering = coefficients
        return self._local_clustering

    @property
    def adjacency_float64(self) -> sp.csr_array:
        """The adjacency matrix as a float64 CSR (cached conversion).

        BFS (:mod:`repro.stats.hopplot`) needs a float matrix; converting
        the int8 adjacency costs O(E) and used to be repaid on every call.
        """
        if self._adjacency_float is None:
            self._adjacency_float = self._graph.adjacency.astype(np.float64).tocsr()
        return self._adjacency_float


def stats_context(graph: Graph) -> StatsContext:
    """The memoized :class:`StatsContext` of ``graph`` (created on demand).

    The context rides on the graph instance itself (graphs are immutable
    value objects, so the cache can never go stale) and is dropped with it.
    """
    context = graph._stats
    if context is None:
        context = StatsContext(graph)
        graph._stats = context
    return context


# ---------------------------------------------------------------------------
# Reference oracles: the pre-blocking implementations, one full A @ A
# product each.  Kept verbatim so the equivalence tests can assert the
# blocked kernels bit-match them and the bench can measure the speedup.
# ---------------------------------------------------------------------------


def reference_count_triangles(graph: Graph) -> int:
    """Pre-blocking Δ: ``((A @ A) ∘ A).sum() = 6Δ`` on the full product."""
    if graph.n_edges == 0:
        return 0
    adjacency = graph.adjacency.astype(np.int64)
    paths2 = adjacency @ adjacency
    on_edges = paths2.multiply(adjacency)
    return int(on_edges.sum() // 6)


def reference_triangles_per_node(graph: Graph) -> np.ndarray:
    """Pre-blocking per-node triangle vector, full product."""
    if graph.n_edges == 0:
        return np.zeros(graph.n_nodes, dtype=np.int64)
    adjacency = graph.adjacency.astype(np.int64)
    paths2 = adjacency @ adjacency
    on_edges = paths2.multiply(adjacency)
    per_node = np.asarray(on_edges.sum(axis=1)).ravel() // 2
    return per_node.astype(np.int64)


def reference_max_common_neighbors(graph: Graph) -> int:
    """Pre-blocking LS_Δ: off-diagonal max of the full product."""
    if graph.n_nodes < 2:
        return 0
    if graph.n_edges == 0:
        return 0
    adjacency = graph.adjacency.astype(np.int64).tocsr()
    paths2 = (adjacency @ adjacency).tocoo()
    off_diagonal = paths2.row != paths2.col
    if not np.any(off_diagonal):
        return 0
    return int(paths2.data[off_diagonal].max())
