"""Counting kernels (blocked scipy + fused backends) and the per-graph cache.

Every statistic the pipeline derives from the sparse product ``A @ A`` —
the triangle total Δ, the per-node triangle vector, the off-diagonal
maximum common-neighbour count that drives LS_Δ, and the local clustering
numerators — used to materialize the *full* product independently.  Its
size is the wedge count, which for the paper's power-law graphs is orders
of magnitude larger than the edge count, and the pipeline recomputed it up
to three times per trial (Δ, LS_Δ, clustering).

This module fixes both costs:

* :func:`triangle_pass` computes every reduction of ``A @ A`` in **row
  blocks**, streaming the results out of each block in a single pass, so
  peak memory is bounded and each path-2 contribution is produced exactly
  once.  The block size comes from the ``REPRO_BLOCK_SIZE`` environment
  knob; the auto-tuned default packs rows until a block's predicted
  product size reaches a fixed entry budget, so small graphs run as one
  block (no overhead) and large graphs stay within a bounded footprint.
* Three interchangeable **backends** execute the pass, selected by the
  ``REPRO_KERNEL_BACKEND`` knob (``auto`` | ``scipy`` | ``numba`` |
  ``cext``): the blocked scipy SpGEMM, and two *fused* kernels
  (:mod:`repro.native.counting`) that walk the CSR rows directly with a
  dense accumulator and never materialize a product entry — a
  numba-jitted loop nest when numba is installed, and the same loop nest
  compiled from C through the system compiler.  ``auto`` (the default)
  prefers the fused kernels and silently falls back to scipy; naming an
  unavailable backend fails loudly with a :class:`ValidationError`.  All
  arithmetic is integer-exact, so every backend returns **bit-identical**
  results for every block size (enforced by
  ``tests/stats/test_backend_equivalence.py``).
* For large graphs the row blocks are embarrassingly parallel:
  ``triangle_pass(..., n_jobs=4)`` fans contiguous block groups across
  the :mod:`repro.runtime` process pool with a deterministic positional
  reduction, so results are bit-identical at any worker count.
* :class:`StatsContext` memoizes the pass (plus derived quantities,
  dtype conversions, and truncated-SVD triplets) per
  :class:`~repro.graphs.graph.Graph` instance, so ``matching_statistics``,
  the smooth-sensitivity release, the figure-series clustering, and the
  spectral statistics all share **one** computation of everything.

The pre-blocking implementations are kept below as reference oracles
(:func:`reference_count_triangles` and friends): the equivalence tests
assert every backend bit-matches them, and ``benchmarks/bench_stats.py``
measures the speedups against them.
"""

from __future__ import annotations

import os
from typing import NamedTuple

import numpy as np
import scipy.sparse as sp

from repro.errors import ValidationError
from repro.graphs.graph import Graph
from repro.native import counting as _native_counting
from repro.native import registry as _native_registry
from repro.utils.validation import check_integer

__all__ = [
    "TrianglePassResult",
    "triangle_pass",
    "StatsContext",
    "stats_context",
    "kernel_pass_count",
    "float64_conversion_count",
    "resolve_block_size",
    "resolve_kernel_backend",
    "available_kernel_backends",
    "row_blocks",
    "reference_count_triangles",
    "reference_triangles_per_node",
    "reference_max_common_neighbors",
    "BLOCK_SIZE_ENV",
    "KERNEL_BACKEND_ENV",
    "KERNEL_BACKENDS",
    "KERNEL_BACKEND_CHOICES",
]

BLOCK_SIZE_ENV = "REPRO_BLOCK_SIZE"
KERNEL_BACKEND_ENV = _native_registry.KERNEL_BACKEND_ENV

# Canonical values of the backend knob.  "auto" resolves to the first
# available entry of the native counting backends, else "scipy".
KERNEL_BACKENDS = ("auto", "scipy") + _native_counting.FUSED_BACKENDS

# Everything the knob accepts: the chain kernels call their pure-Python
# reference "numpy", so each kernel family aliases the other's reference
# name — one REPRO_KERNEL_BACKEND value is valid everywhere.
KERNEL_BACKEND_CHOICES = ("auto", "scipy", "numpy") + _native_counting.FUSED_BACKENDS

# Auto-tuning budget: target number of stored entries in one row-block of
# A @ A.  At int64 data plus index arrays this is roughly 64 MiB per block
# — small enough to stay cache-friendly on any modern machine, large
# enough that graphs below ~4M wedges run as a single block.
AUTO_ENTRY_BUDGET = 1 << 22

# Process-wide count of executed A² passes.  Tests and benches use this to
# assert the memoization contract: one pass per graph, no matter how many
# consumers (Δ, LS_Δ, clustering, ...) ask for its reductions.
_pass_count = 0

# Process-wide count of int8→float64 adjacency conversions (and the CSC
# re-layout for ARPACK).  The spectral/hop-plot memoization contract —
# repeated figure calls trigger zero extra conversions — is asserted
# against this counter.
_float64_conversions = 0


def kernel_pass_count() -> int:
    """Number of blocked A² passes executed so far in this process."""
    return _pass_count


def float64_conversion_count() -> int:
    """Number of float64 adjacency materializations so far in this process."""
    return _float64_conversions


class TrianglePassResult(NamedTuple):
    """Every reduction of ``A @ A`` the pipeline consumes, from one pass.

    Attributes
    ----------
    triangles:
        The triangle total Δ.
    per_node:
        Triangles through each node (read-only int64, length ``n_nodes``).
    max_common_neighbors:
        ``max_{i ≠ j} |N(i) ∩ N(j)|`` over *all* node pairs — the local
        sensitivity LS_Δ of the triangle count.
    n_blocks:
        How many row blocks the pass used (1 = unblocked equivalent).
    wedges:
        Number of hairpins H = Σ_v C(d_v, 2).
    tripins:
        Number of tripins T = Σ_v C(d_v, 3).
    """

    triangles: int
    per_node: np.ndarray
    max_common_neighbors: int
    n_blocks: int
    wedges: int
    tripins: int


def resolve_block_size(block_size: int | None = None) -> int:
    """The effective block-size knob: explicit argument, else environment.

    Returns 0 for "auto" (the default): rows are packed into blocks by the
    predicted product size, see :func:`row_blocks`.
    """
    if block_size is None:
        raw = os.environ.get(BLOCK_SIZE_ENV)
        if raw is None:
            return 0
        try:
            block_size = int(raw)
        except ValueError as exc:
            raise ValidationError(
                f"environment variable {BLOCK_SIZE_ENV} must be an integer, got {raw!r}"
            ) from exc
    if isinstance(block_size, bool) or not isinstance(block_size, (int, np.integer)):
        raise ValidationError(f"block size must be an integer, got {block_size!r}")
    if block_size < 0:
        raise ValidationError(f"block size must be non-negative, got {block_size}")
    return int(block_size)


def resolve_kernel_backend(backend: str | None = None) -> str:
    """The concrete backend the pass will run: argument, else environment.

    ``auto`` (the default) resolves to the first available fused backend —
    ``numba``, then the compiled-C ``cext`` — and silently falls back to
    ``scipy`` when neither can run on this host.  Explicitly requesting an
    unavailable backend raises a :class:`ValidationError` naming the
    reason, so a pipeline that *expects* the fused kernels fails loudly
    instead of quietly running slower.  Every backend returns bit-identical
    statistics; the knob only selects the execution engine.  (The shared
    resolution contract lives in :mod:`repro.native.registry`; the same
    ``REPRO_KERNEL_BACKEND`` knob also drives the KronFit chain kernels.)
    """
    return _native_registry.resolve_backend(
        _native_counting.COUNTING_KERNEL,
        backend,
        accepted=KERNEL_BACKEND_CHOICES,
        reference="scipy",
        aliases=("numpy",),
    )


def available_kernel_backends() -> tuple[str, ...]:
    """The concrete backends that can run on this host (scipy always can)."""
    return _native_registry.available_backends(
        _native_counting.COUNTING_KERNEL, "scipy"
    )


def row_blocks(graph: Graph, block_size: int = 0) -> list[tuple[int, int]]:
    """Partition ``range(n_nodes)`` into the row blocks of the A² pass.

    With ``block_size > 0`` the blocks are fixed-size row ranges.  With
    ``block_size == 0`` (auto) rows are packed greedily until the block's
    predicted number of product entries — the exact per-row path-2 count
    ``(A @ d)_r = Σ_{j ∈ N(r)} d_j``, an upper bound on the block's stored
    entries — reaches :data:`AUTO_ENTRY_BUDGET`.  Rows whose own bound
    exceeds the budget get a singleton block.
    """
    n = graph.n_nodes
    if n == 0:
        return []
    if block_size > 0:
        return [(r, min(r + block_size, n)) for r in range(0, n, block_size)]
    degrees = graph.degrees
    # Total path-2 count Σ_j d_j² bounds the whole product; when it fits
    # the budget the common case — one block — needs no per-row analysis.
    if int((degrees * degrees).sum()) <= AUTO_ENTRY_BUDGET:
        return [(0, n)]
    # Per-row path-2 counts; the int8 @ int64 SpMV upcasts to int64.
    path2 = graph.adjacency @ degrees
    cumulative = np.cumsum(path2)
    blocks: list[tuple[int, int]] = []
    start = 0
    consumed = 0
    while start < n:
        end = int(np.searchsorted(cumulative, consumed + AUTO_ENTRY_BUDGET, side="right"))
        end = max(end, start + 1)  # always make progress, even past-budget rows
        end = min(end, n)
        blocks.append((start, end))
        consumed = int(cumulative[end - 1])
        start = end
    return blocks


def _product_dtype(max_degree: int) -> np.dtype:
    """Smallest signed integer dtype that holds every entry of ``A @ A``.

    Each product entry is ``|N(i) ∩ N(j)|`` (or a degree on the diagonal),
    both bounded by the maximum degree, so the per-entry arithmetic is
    exact in any dtype whose range covers it; the narrow dtype roughly
    halves the product's memory traffic and runtime versus int64.
    Reductions that can exceed the bound (row sums, the triangle total)
    are cast to int64 before accumulating.
    """
    for candidate in (np.int8, np.int16, np.int32):
        if max_degree <= np.iinfo(candidate).max:
            return np.dtype(candidate)
    return np.dtype(np.int64)


def _working_adjacency(graph: Graph) -> sp.csr_array:
    """The adjacency recast for the scipy pass: narrow values and indices.

    Values go to the smallest dtype that holds every product entry
    (:func:`_product_dtype`); index arrays drop to int32 when the node and
    edge counts allow, which scipy then propagates through the product —
    halving the index traffic of the product, the edge restriction, and
    the off-diagonal reduction.  Pure representation changes: the
    arithmetic is unchanged.
    """
    dtype = _product_dtype(int(graph.degrees.max()))
    adjacency = graph.adjacency
    int32_max = np.iinfo(np.int32).max
    if (
        adjacency.indices.dtype != np.int32
        and graph.n_nodes <= int32_max
        and adjacency.nnz <= int32_max
    ):
        return sp.csr_array(
            (
                adjacency.data.astype(dtype, copy=False),
                adjacency.indices.astype(np.int32),
                adjacency.indptr.astype(np.int32),
            ),
            shape=adjacency.shape,
        )
    if adjacency.dtype != dtype:
        adjacency = adjacency.astype(dtype)
    return adjacency


def _fused_csr_arrays(graph: Graph) -> tuple[np.ndarray, np.ndarray]:
    """The int32 CSR structure the fused kernels walk (values are implied 1)."""
    adjacency = graph.adjacency
    indptr = np.ascontiguousarray(adjacency.indptr, dtype=np.int32)
    indices = np.ascontiguousarray(adjacency.indices, dtype=np.int32)
    return indptr, indices


def _int32_indexable(graph: Graph) -> bool:
    """Whether the fused kernels' int32 CSR structure can address the graph."""
    limit = np.iinfo(np.int32).max
    return graph.n_nodes < limit and 2 * graph.n_edges < limit


def triangle_pass(
    graph: Graph,
    block_size: int | None = None,
    backend: str | None = None,
    n_jobs: int = 1,
) -> TrianglePassResult:
    """One blocked pass over ``A @ A``, streaming every consumer reduction.

    For each row block ``A[r0:r1]`` the selected backend produces

    * per-node triangles for the block's rows (the product restricted to
      edge positions, halved),
    * the running off-diagonal maximum (the LS_Δ ingredient),

    then drops the block; the wedge and tripin totals are folded in from
    the degree sequence so the result carries every matching statistic.
    The triangle total is ``Σ_v t_v / 3``.  Every accumulating reduction
    is int64 and the per-entry arithmetic is exact in every backend, so
    results bit-match the unblocked int64 reference implementations for
    every block size, backend, and ``n_jobs``.

    ``n_jobs > 1`` fans contiguous groups of row blocks across the
    :mod:`repro.runtime` process pool (``n_jobs <= 0`` = all cores); the
    reduction is positional, so the result is identical at any worker
    count.  The default is serial — deliberately *not* ``REPRO_N_JOBS``,
    because passes frequently run inside trial-engine workers and must not
    nest process pools.  Parallelism pays off only for graphs large enough
    to split into many blocks (forcing a small ``block_size`` on a small
    graph just buys the pool overhead).
    """
    n = graph.n_nodes
    # Validate every knob before the edgeless early return, so a
    # misconfigured pipeline (bad backend name, unavailable numba, broken
    # n_jobs) fails loudly even when its first graph happens to be empty.
    requested = backend if backend is not None else os.environ.get(KERNEL_BACKEND_ENV)
    backend = resolve_kernel_backend(backend)
    n_jobs = _resolve_pass_jobs(n_jobs)
    wedges, tripins = _degree_moments(graph.degrees)
    per_node = np.zeros(n, dtype=np.int64)
    if graph.n_edges == 0:
        per_node.setflags(write=False)
        return TrianglePassResult(0, per_node, 0, 0, wedges, tripins)

    global _pass_count
    _pass_count += 1

    if backend != "scipy" and not _int32_indexable(graph):
        # Beyond int32 indexing only scipy's int64 path fits.  `auto`
        # degrades silently; an explicitly named fused backend keeps the
        # fail-loudly contract instead of quietly running scipy.
        if requested in _native_counting.FUSED_BACKENDS:
            raise ValidationError(
                f"kernel backend {requested!r} cannot address this graph: its "
                f"CSR structure exceeds int32 indexing; use the scipy backend"
            )
        backend = "scipy"
    blocks = row_blocks(graph, resolve_block_size(block_size))
    if n_jobs > 1 and len(blocks) > 1:
        max_common = _parallel_blocks(graph, backend, blocks, per_node, n_jobs)
    else:
        max_common = _run_blocks(graph, backend, blocks, per_node, 0)
    per_node.setflags(write=False)
    return TrianglePassResult(
        int(per_node.sum()) // 3, per_node, max_common, len(blocks), wedges, tripins
    )


def _degree_moments(degrees: np.ndarray) -> tuple[int, int]:
    """Exact (wedges, tripins) = (Σ C(d, 2), Σ C(d, 3)) of a degree sequence."""
    wedges = int((degrees * (degrees - 1) // 2).sum())
    tripins = int((degrees * (degrees - 1) * (degrees - 2) // 6).sum())
    return wedges, tripins


def _resolve_pass_jobs(n_jobs: int) -> int:
    """The pass's worker count: the trial engine's rule, minus its env knob.

    ``check_integer`` runs first so ``None`` can never fall through to
    :func:`repro.runtime.resolve_n_jobs`'s ``REPRO_N_JOBS`` branch —
    passes frequently execute inside trial-engine workers and must not
    inherit a worker count that would nest process pools.
    """
    from repro.runtime.engine import resolve_n_jobs

    return resolve_n_jobs(check_integer(n_jobs, "n_jobs"))


def _run_blocks(
    graph: Graph,
    backend: str,
    blocks: list[tuple[int, int]],
    per_node: np.ndarray,
    offset: int,
) -> int:
    """Execute ``blocks`` with ``backend``, writing per-node triangles into
    ``per_node`` (whose index 0 corresponds to row ``offset``); returns the
    off-diagonal maximum over the blocks.  Runs in workers too.
    """
    if backend == "scipy":
        return _run_blocks_scipy(graph, blocks, per_node, offset)
    kernel = _native_counting.backend_kernel(backend)
    indptr, indices = _fused_csr_arrays(graph)
    n = graph.n_nodes
    workspace = np.zeros(n, dtype=np.int64)
    touched = np.empty(n, dtype=np.int32)
    max_common = 0
    for r0, r1 in blocks:
        block_max = kernel(
            indptr, indices, r0, r1, per_node[r0 - offset : r1 - offset],
            workspace, touched,
        )
        max_common = max(max_common, int(block_max))
    return max_common


def _run_blocks_scipy(
    graph: Graph,
    blocks: list[tuple[int, int]],
    per_node: np.ndarray,
    offset: int,
) -> int:
    n = graph.n_nodes
    adjacency = _working_adjacency(graph)
    max_common = 0
    for r0, r1 in blocks:
        rows = adjacency if (r0, r1) == (0, n) else adjacency[r0:r1]
        product = rows @ adjacency
        if product.nnz == 0:
            continue
        on_edges = product.multiply(rows).astype(np.int64)
        per_node[r0 - offset : r1 - offset] = np.asarray(on_edges.sum(axis=1)).ravel() // 2
        # Off-diagonal max straight off the CSR buffers: expand the row
        # pointer and reduce with a mask — no COO object, no index copy.
        # Matching the stored index dtype keeps the comparison allocation-free.
        row = np.repeat(
            np.arange(r0, r1, dtype=product.indices.dtype), np.diff(product.indptr)
        )
        max_common = max(
            max_common,
            int(np.max(product.data, initial=0, where=(product.indices != row))),
        )
    return max_common


def _parallel_blocks(
    graph: Graph,
    backend: str,
    blocks: list[tuple[int, int]],
    per_node: np.ndarray,
    n_jobs: int,
) -> int:
    """Fan contiguous block groups across the :mod:`repro.runtime` pool.

    Each worker gets one contiguous run of blocks (one graph pickle per
    worker, not per block) and returns its slice of the per-node vector
    plus its local off-diagonal maximum.  The reduction is positional —
    slices are written back by row range, the maxima folded in group
    order — so the result is bit-identical to the serial pass at any
    worker count.
    """
    from repro.runtime import TrialSpec, run_trials

    groups = _block_groups(blocks, n_jobs)
    specs = [
        TrialSpec(
            fn=_block_group_task,
            params={"graph": graph, "rows": tuple(group), "backend": backend},
            index=position,
        )
        for position, group in enumerate(groups)
    ]
    report = run_trials(specs, seed=0, n_jobs=n_jobs, cache=None, label="triangle-pass")
    max_common = 0
    for group, (group_per_node, group_max) in zip(groups, report.results):
        per_node[group[0][0] : group[-1][1]] = group_per_node
        max_common = max(max_common, int(group_max))
    return max_common


def _block_groups(
    blocks: list[tuple[int, int]], n_groups: int
) -> list[list[tuple[int, int]]]:
    """Split the block list into ≤ ``n_groups`` contiguous, non-empty runs."""
    n_groups = min(n_groups, len(blocks))
    bounds = np.linspace(0, len(blocks), n_groups + 1).astype(int)
    return [
        list(blocks[start:end])
        for start, end in zip(bounds, bounds[1:])
        if end > start
    ]


def _block_group_task(_rng, *, graph: Graph, rows, backend: str):
    """One worker's contiguous run of row blocks (module-level for pickling).

    The trial-engine ``rng`` is unused: the pass is deterministic.
    """
    start = rows[0][0]
    per_node = np.zeros(rows[-1][1] - start, dtype=np.int64)
    max_common = _run_blocks(graph, backend, list(rows), per_node, start)
    return per_node, max_common


class StatsContext:
    """Memoized per-graph statistics sharing one blocked A² pass.

    Obtained through :func:`stats_context`, which caches one context on
    each :class:`Graph` instance (alongside the graph's lazy adjacency and
    degrees), so every consumer in a trial — ``matching_statistics``, the
    smooth-sensitivity triangle release, the clustering figure series, the
    hop plot's BFS, the scree/network-value spectra — shares one
    computation per graph.

    All cached arrays are read-only; callers that need to mutate must copy.
    """

    __slots__ = (
        "_graph",
        "_block_size",
        "_backend",
        "_n_jobs",
        "_pass",
        "_local_clustering",
        "_adjacency_float",
        "_svd_operand",
        "_svd_cache",
    )

    def __init__(
        self,
        graph: Graph,
        block_size: int | None = None,
        backend: str | None = None,
        n_jobs: int = 1,
    ) -> None:
        self._graph = graph
        self._block_size = block_size
        self._backend = backend
        self._n_jobs = n_jobs
        self._pass: TrianglePassResult | None = None
        self._local_clustering: np.ndarray | None = None
        self._adjacency_float: sp.csr_array | None = None
        self._svd_operand: sp.csc_array | None = None
        self._svd_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    @property
    def graph(self) -> Graph:
        """The graph this context memoizes."""
        return self._graph

    def triangle_pass_result(self) -> TrianglePassResult:
        """The (cached) result of the blocked A² pass."""
        if self._pass is None:
            self._pass = triangle_pass(
                self._graph, self._block_size, self._backend, self._n_jobs
            )
        return self._pass

    @property
    def triangle_count(self) -> int:
        """The triangle total Δ."""
        return self.triangle_pass_result().triangles

    @property
    def triangles_per_node(self) -> np.ndarray:
        """Triangles through each node (read-only int64)."""
        return self.triangle_pass_result().per_node

    @property
    def max_common_neighbors(self) -> int:
        """``max_{i ≠ j} |N(i) ∩ N(j)|`` — the local sensitivity LS_Δ."""
        return self.triangle_pass_result().max_common_neighbors

    # -- degree-moment pieces (functions of the cached degree sequence) ----

    @property
    def edge_count(self) -> int:
        """Number of undirected edges E."""
        return self._graph.n_edges

    @property
    def wedge_count(self) -> int:
        """Number of hairpins H = Σ_v C(d_v, 2).

        Degree-only, so it never triggers an A² pass (the pass result
        carries the same value for one-stop consumers).
        """
        return _degree_moments(self._graph.degrees)[0]

    @property
    def tripin_count(self) -> int:
        """Number of tripins T = Σ_v C(d_v, 3).  Degree-only, like wedges."""
        return _degree_moments(self._graph.degrees)[1]

    # -- derived caches ----------------------------------------------------

    @property
    def local_clustering(self) -> np.ndarray:
        """Local clustering coefficient per node (read-only float64).

        ``c_v = 2 t_v / (d_v (d_v − 1))`` with degree-<2 nodes at 0; the
        numerators come from the shared A² pass.
        """
        if self._local_clustering is None:
            degrees = self._graph.degrees.astype(np.float64)
            triangles = self.triangles_per_node.astype(np.float64)
            possible = degrees * (degrees - 1.0) / 2.0
            coefficients = np.zeros(self._graph.n_nodes, dtype=np.float64)
            eligible = possible > 0
            coefficients[eligible] = triangles[eligible] / possible[eligible]
            coefficients.setflags(write=False)
            self._local_clustering = coefficients
        return self._local_clustering

    @property
    def adjacency_float64(self) -> sp.csr_array:
        """The adjacency matrix as a float64 CSR (cached conversion).

        BFS (:mod:`repro.stats.hopplot`) needs a float matrix; converting
        the int8 adjacency costs O(E) and used to be repaid on every call.
        """
        if self._adjacency_float is None:
            global _float64_conversions
            _float64_conversions += 1
            self._adjacency_float = self._graph.adjacency.astype(np.float64).tocsr()
        return self._adjacency_float

    @property
    def svd_operand(self) -> sp.csc_array:
        """The float64 CSC adjacency ARPACK factorizes (cached conversion).

        Builds on :attr:`adjacency_float64`, so the spectral statistics
        and the hop plot share one int8→float64 conversion per graph.
        """
        if self._svd_operand is None:
            global _float64_conversions
            _float64_conversions += 1
            self._svd_operand = self.adjacency_float64.tocsc()
        return self._svd_operand

    @property
    def svd_cache(self) -> dict[int, tuple[np.ndarray, np.ndarray]]:
        """Truncated-SVD triplets keyed by requested rank ``k``.

        Populated by :mod:`repro.stats.spectral`: each entry is the
        read-only ``(singular values, principal right-singular vector)``
        pair for one ``k``, so the scree plot and the network values of a
        figure column cost one solver run between them.
        """
        return self._svd_cache


def stats_context(graph: Graph) -> StatsContext:
    """The memoized :class:`StatsContext` of ``graph`` (created on demand).

    The context rides on the graph instance itself (graphs are immutable
    value objects, so the cache can never go stale) and is dropped with it.
    """
    context = graph._stats
    if context is None:
        context = StatsContext(graph)
        graph._stats = context
    return context


# ---------------------------------------------------------------------------
# Reference oracles: the pre-blocking implementations, one full A @ A
# product each.  Kept verbatim so the equivalence tests can assert the
# blocked kernels bit-match them and the bench can measure the speedup.
# ---------------------------------------------------------------------------


def reference_count_triangles(graph: Graph) -> int:
    """Pre-blocking Δ: ``((A @ A) ∘ A).sum() = 6Δ`` on the full product."""
    if graph.n_edges == 0:
        return 0
    adjacency = graph.adjacency.astype(np.int64)
    paths2 = adjacency @ adjacency
    on_edges = paths2.multiply(adjacency)
    return int(on_edges.sum() // 6)


def reference_triangles_per_node(graph: Graph) -> np.ndarray:
    """Pre-blocking per-node triangle vector, full product."""
    if graph.n_edges == 0:
        return np.zeros(graph.n_nodes, dtype=np.int64)
    adjacency = graph.adjacency.astype(np.int64)
    paths2 = adjacency @ adjacency
    on_edges = paths2.multiply(adjacency)
    per_node = np.asarray(on_edges.sum(axis=1)).ravel() // 2
    return per_node.astype(np.int64)


def reference_max_common_neighbors(graph: Graph) -> int:
    """Pre-blocking LS_Δ: off-diagonal max of the full product."""
    if graph.n_nodes < 2:
        return 0
    if graph.n_edges == 0:
        return 0
    adjacency = graph.adjacency.astype(np.int64).tocsr()
    paths2 = (adjacency @ adjacency).tocoo()
    off_diagonal = paths2.row != paths2.col
    if not np.any(off_diagonal):
        return 0
    return int(paths2.data[off_diagonal].max())
