"""Clustering coefficients, including the by-degree profile of Figure (e).

The local clustering coefficient of node v is
``c_v = 2 t_v / (d_v (d_v - 1))`` where ``t_v`` is the number of triangles
through v; nodes of degree < 2 have ``c_v = 0`` by convention (and are
excluded from by-degree averages, matching Leskovec et al.'s plots).

The triangle numerators come from the graph's memoized blocked A² pass
(:mod:`repro.stats.kernels`), so clustering shares its one heavy
computation with the triangle counts and the sensitivity release.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.stats.kernels import stats_context

__all__ = ["local_clustering", "average_clustering", "clustering_by_degree"]


def local_clustering(graph: Graph) -> np.ndarray:
    """Local clustering coefficient for every node (0 for degree < 2).

    Returns the graph's cached coefficient vector, marked read-only; copy
    before mutating.
    """
    return stats_context(graph).local_clustering


def average_clustering(graph: Graph, *, count_low_degree: bool = True) -> float:
    """Mean local clustering coefficient.

    ``count_low_degree`` includes degree-<2 nodes as zeros (the networkx
    convention); with ``False`` the mean runs over eligible nodes only.
    """
    if graph.n_nodes == 0:
        return 0.0
    coefficients = local_clustering(graph)
    if count_low_degree:
        return float(coefficients.mean())
    eligible = graph.degrees >= 2
    if not np.any(eligible):
        return 0.0
    return float(coefficients[eligible].mean())


def clustering_by_degree(graph: Graph) -> tuple[np.ndarray, np.ndarray]:
    """Average clustering coefficient per degree value — Figure (e).

    Returns ``(degrees, mean_coefficient)`` over degree values >= 2 that
    occur in the graph.
    """
    degrees = graph.degrees
    coefficients = local_clustering(graph)
    eligible = degrees >= 2
    if not np.any(eligible):
        return np.empty(0, np.int64), np.empty(0, np.float64)
    values = np.unique(degrees[eligible])
    means = np.empty(values.size, dtype=np.float64)
    for index, value in enumerate(values):
        means[index] = coefficients[degrees == value].mean()
    return values.astype(np.int64), means
