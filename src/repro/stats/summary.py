"""One-call structural summary of a graph.

:func:`summarize` gathers the counts and headline statistics that the
examples and the evaluation harness report, in a single frozen dataclass
that renders nicely.  The triangle count and the clustering coefficient
both derive from the graph's memoized A² pass
(:mod:`repro.stats.kernels`), so one summary costs one blocked pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.graph import Graph
from repro.stats.clustering import average_clustering
from repro.stats.counts import (
    count_triangles,
    count_tripins,
    count_wedges,
)

__all__ = ["GraphSummary", "summarize"]


@dataclass(frozen=True)
class GraphSummary:
    """Headline statistics of one graph (see :func:`summarize`)."""

    n_nodes: int
    n_edges: int
    hairpins: int
    tripins: int
    triangles: int
    max_degree: int
    mean_degree: float
    average_clustering: float

    def render(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"nodes               {self.n_nodes}",
            f"edges               {self.n_edges}",
            f"hairpins (2-stars)  {self.hairpins}",
            f"tripins (3-stars)   {self.tripins}",
            f"triangles           {self.triangles}",
            f"max degree          {self.max_degree}",
            f"mean degree         {self.mean_degree:.3f}",
            f"avg clustering      {self.average_clustering:.4f}",
        ]
        return "\n".join(lines)


def summarize(graph: Graph) -> GraphSummary:
    """Compute a :class:`GraphSummary` for ``graph``."""
    degrees = graph.degrees
    return GraphSummary(
        n_nodes=graph.n_nodes,
        n_edges=graph.n_edges,
        hairpins=count_wedges(graph),
        tripins=count_tripins(graph),
        triangles=count_triangles(graph),
        max_degree=int(degrees.max()) if graph.n_nodes else 0,
        mean_degree=float(degrees.mean()) if graph.n_nodes else 0.0,
        average_clustering=average_clustering(graph),
    )
