"""Hop plot: reachable node pairs as a function of hop count.

Following Leskovec et al.'s convention (the paper's Figure (a) series),
``P(h)`` is the number of *ordered* pairs ``(u, v)`` — including ``u = v``
— at shortest-path distance at most ``h``, so ``P(0) = n`` and ``P(h)``
saturates at ``n + Σ_c |c|(|c|−1)`` over connected components ``c``.

BFS distances come from :func:`scipy.sparse.csgraph.shortest_path`
(unweighted Dijkstra, C speed).  For large graphs an unbiased sampled
estimate over a uniform source subset is available; the estimator scales
per-source reach counts by ``n / |sources|``, which is unbiased for every
``h`` because sources are chosen uniformly.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse.csgraph as csgraph

from repro.errors import ValidationError
from repro.graphs.graph import Graph
from repro.stats.kernels import stats_context
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer

__all__ = ["hop_plot", "effective_diameter"]

_BATCH = 512


def hop_plot(
    graph: Graph,
    *,
    n_sources: int | None = None,
    max_hops: int | None = None,
    seed: SeedLike = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(hops, pairs)`` where ``pairs[h]`` estimates P(hops[h]).

    Parameters
    ----------
    n_sources:
        If given (and smaller than ``n_nodes``), BFS runs from that many
        uniformly sampled sources and counts are scaled by ``n/|S|``;
        otherwise the plot is exact.
    max_hops:
        Truncate the horizontal axis; by default runs to the largest finite
        distance found.
    seed:
        Source-sampling seed (ignored in exact mode).
    """
    n = graph.n_nodes
    if n == 0:
        return np.zeros(1, dtype=np.int64), np.zeros(1, dtype=np.float64)
    if max_hops is not None:
        max_hops = check_integer(max_hops, "max_hops", minimum=0)
    if n_sources is not None:
        n_sources = check_integer(n_sources, "n_sources", minimum=1)

    if n_sources is None or n_sources >= n:
        sources = np.arange(n, dtype=np.int64)
        scale = 1.0
    else:
        rng = as_generator(seed)
        sources = rng.choice(n, size=n_sources, replace=False)
        scale = n / n_sources

    histogram = _distance_histogram(graph, sources)
    if max_hops is not None:
        histogram = histogram[: max_hops + 1]
    hops = np.arange(histogram.size, dtype=np.int64)
    pairs = np.cumsum(histogram) * scale
    return hops, pairs


def _distance_histogram(graph: Graph, sources: np.ndarray) -> np.ndarray:
    """Histogram of finite BFS distances from ``sources`` (bin 0 = self pairs).

    ``shortest_path`` needs a float matrix; the O(E) int8 → float64
    conversion is memoized on the graph's stats context so repeated calls
    (``hop_plot`` then ``effective_diameter``, or figure reruns on the same
    graph) convert once instead of per call.
    """
    adjacency = stats_context(graph).adjacency_float64
    counts = np.zeros(1, dtype=np.float64)
    for start in range(0, sources.size, _BATCH):
        batch = sources[start : start + _BATCH]
        distances = csgraph.shortest_path(
            adjacency, method="D", directed=False, unweighted=True, indices=batch
        )
        finite = distances[np.isfinite(distances)].astype(np.int64)
        if finite.size == 0:
            continue
        batch_hist = np.bincount(finite)
        if batch_hist.size > counts.size:
            counts = np.pad(counts, (0, batch_hist.size - counts.size))
        counts[: batch_hist.size] += batch_hist
    return counts


def effective_diameter(
    graph: Graph,
    *,
    quantile: float = 0.9,
    n_sources: int | None = None,
    seed: SeedLike = None,
) -> float:
    """The ``quantile``-effective diameter (interpolated hop count).

    The standard small-world summary (Leskovec et al.): the interpolated
    number of hops within which ``quantile`` of all connected ordered pairs
    lie.  Exposed for the examples and extension benches.
    """
    if not 0.0 < quantile < 1.0:
        raise ValidationError(f"quantile must be in (0, 1), got {quantile}")
    hops, pairs = hop_plot(graph, n_sources=n_sources, seed=seed)
    if pairs[-1] <= 0:
        return 0.0
    target = quantile * pairs[-1]
    index = int(np.searchsorted(pairs, target))
    if index == 0:
        return 0.0
    if index >= hops.size:
        return float(hops[-1])
    lower, upper = pairs[index - 1], pairs[index]
    if upper == lower:
        return float(hops[index])
    fraction = (target - lower) / (upper - lower)
    return float(hops[index - 1]) + float(fraction)
