"""Spectral statistics: scree plot and network values.

The paper's Figure (c) plots the top singular values of the adjacency
matrix against rank ("scree plot"); Figure (d) plots the sorted absolute
components of the right singular vector belonging to the largest singular
value ("network value").  Both come from a truncated sparse SVD; tiny
graphs fall back to a dense SVD so the functions work across the whole
test matrix.

Both statistics are served from the graph's
:class:`~repro.stats.kernels.StatsContext`: the float64 CSC operand ARPACK
factorizes is converted once per graph (shared with the hop plot's float64
CSR, so figure pipelines stop re-converting the adjacency per call), and
the solved ``(singular values, principal vector)`` triplets are memoized
per requested rank ``k`` — a figure column's scree plot and network values
cost one solver run between them.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse.linalg

from repro.errors import ValidationError
from repro.graphs.graph import Graph
from repro.stats.kernels import StatsContext, stats_context
from repro.utils.validation import check_integer

__all__ = ["singular_values", "network_values"]

# svds requires k < min(shape); below this size use dense SVD instead.
_DENSE_SVD_LIMIT = 64


def singular_values(graph: Graph, k: int = 50) -> np.ndarray:
    """Top ``k`` singular values of the adjacency matrix, descending.

    Returns fewer than ``k`` values when the graph is smaller than ``k``.
    Since the adjacency matrix is symmetric, these are the absolute values
    of its leading eigenvalues.
    """
    values, _vector = _truncated_svd(graph, k)
    return values.copy()  # the cached triplet is read-only; callers may mutate


def network_values(graph: Graph, k: int = 50) -> np.ndarray:
    """Sorted (descending) absolute components of the principal right
    singular vector — the paper's "network value" distribution.

    ``k`` only controls how many singular triplets the underlying solver
    extracts; the returned vector always has ``n_nodes`` components.
    """
    _values, vector = _truncated_svd(graph, k)
    components = np.abs(vector)
    return np.sort(components)[::-1]


def _truncated_svd(graph: Graph, k: int) -> tuple[np.ndarray, np.ndarray]:
    """The memoized ``(singular values, principal vector)`` triplet at ``k``."""
    k = check_integer(k, "k", minimum=1)
    if graph.n_nodes == 0:
        raise ValidationError("spectral statistics are undefined on an empty graph")
    context = stats_context(graph)
    cached = context.svd_cache.get(k)
    if cached is None:
        values, vector = _solve_truncated_svd(graph, context, k)
        values.setflags(write=False)
        vector.setflags(write=False)
        cached = (values, vector)
        context.svd_cache[k] = cached
    return cached


def _solve_truncated_svd(
    graph: Graph, context: StatsContext, k: int
) -> tuple[np.ndarray, np.ndarray]:
    n = graph.n_nodes
    if graph.n_edges == 0:
        return np.zeros(min(k, n), dtype=np.float64), np.zeros(n, dtype=np.float64)
    if n <= _DENSE_SVD_LIMIT or k >= n - 1:
        dense = graph.adjacency.toarray().astype(np.float64)
        _u, sigma, v_transpose = np.linalg.svd(dense)
        keep = min(k, sigma.size)
        # .copy(), not a view: the triplet lives in the per-graph cache,
        # and a row/prefix view would pin the whole factor matrix with it.
        return sigma[:keep].copy(), v_transpose[0, :].copy()
    # Fixed ARPACK start vector: the default draws from process-global
    # random state, which breaks bit-identical results across worker
    # processes (repro.runtime's determinism guarantee).  The adjacency
    # matrix is nonnegative, so the uniform vector is never orthogonal to
    # the principal subspace.
    v0 = np.full(n, 1.0 / np.sqrt(n))
    _u, sigma, v_transpose = scipy.sparse.linalg.svds(
        context.svd_operand, k=min(k, n - 2), v0=v0
    )
    order = np.argsort(sigma)[::-1]
    sigma = sigma[order]  # fancy indexing: already a fresh array
    return sigma, v_transpose[order[0], :].copy()  # .copy(): see dense path
