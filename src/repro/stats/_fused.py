"""DEPRECATED back-compat shim: the fused kernels live in ``repro.native``.

PR 3 introduced the fused counting backends here; PR 4 promoted the
backend machinery (probing, compile caching, resolution) into the shared
native-kernel layer so the KronFit chain kernels could reuse it, keeping
this module as a re-export shim.  Nothing in the repository imports it
any more — the tier-1 suite and the benches consult the live registry
(:data:`repro.native.counting.COUNTING_KERNEL`) directly — so importing
it now emits a :class:`DeprecationWarning`.

**Removal horizon: the shim will be deleted two PRs after PR 5** (i.e.
with PR 7); migrate any external imports to :mod:`repro.native.counting`:

* :data:`FUSED_BACKENDS`, :func:`backend_available`,
  :func:`backend_error`, :func:`backend_kernel`, :func:`fused_block` —
  straight re-exports of :mod:`repro.native.counting`;
* :data:`_STATES` — an alias of the counting kernel's live state dict
  (``repro.native.counting.COUNTING_KERNEL.states``): monkeypatch the
  registry's ``states`` mapping instead.

Backend selection still goes through
:func:`repro.stats.kernels.resolve_kernel_backend`.
"""

from __future__ import annotations

import warnings

from repro.native.counting import (
    COUNTING_KERNEL,
    FUSED_BACKENDS,
    backend_available,
    backend_error,
    backend_kernel,
    fused_block,
)

__all__ = [
    "FUSED_BACKENDS",
    "backend_available",
    "backend_error",
    "backend_kernel",
    "fused_block",
]

# The counting kernel's live backend states ("numba"/"cext" ->
# (kernel or None, error or None)).  The *same dict object* the registry
# consults, so monkeypatching entries here changes resolution everywhere.
_STATES = COUNTING_KERNEL.states

warnings.warn(
    "repro.stats._fused is a deprecated shim and will be removed in PR 7; "
    "import the fused counting kernels from repro.native.counting instead",
    DeprecationWarning,
    stacklevel=2,
)
