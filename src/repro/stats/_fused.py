"""Fused counting kernels: one CSR walk per row block, no product matrix.

The scipy backend of :func:`repro.stats.kernels.triangle_pass` is bound by
the sparse product ``A[r0:r1] @ A``: scipy's SpGEMM materializes (and
sorts the column indices of) every path-2 entry before the pass reduces
them.  The fused kernels here never build the product.  They walk the CSR
rows directly with Gustavson's dense accumulator —

* scatter the multiplicities of every 2-path out of row ``u`` into an
  O(n) workspace,
* read the edge-restricted sum straight back through ``N(u)`` (twice the
  row's triangle count),
* fold the off-diagonal maximum (the LS_Δ ingredient) while zeroing the
  touched workspace slots for the next row —

so each path-2 contribution costs one increment instead of an SpGEMM
entry, and peak extra memory is two length-n scratch arrays.

Two interchangeable implementations of the same block kernel:

* ``numba`` — the Python loop nest :func:`fused_block` jitted by numba.
  Optional dependency: when numba is not importable the backend reports
  itself unavailable with the import error as the reason.
* ``cext`` — the identical loop nest as a ~40-line C function, compiled
  on first use with the system C compiler into a cached shared library
  and called through :mod:`ctypes`.  Needs only a working ``cc``; it is
  the fused fallback on hosts without numba.

Both are integer-exact (the arithmetic is increments and comparisons on
int64 accumulators), so their results are bit-identical to the scipy
backend and to the pre-blocking reference oracles — the cross-backend
equivalence suite (``tests/stats/test_backend_equivalence.py``) enforces
this for every block size and graph family.

Availability is probed lazily and memoized in :data:`_STATES`; the tests
monkeypatch that dict to simulate a host without numba.  This module is
private: backend selection goes through
:func:`repro.stats.kernels.resolve_kernel_backend`.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Callable

import numpy as np

__all__ = [
    "FUSED_BACKENDS",
    "backend_available",
    "backend_error",
    "backend_kernel",
    "fused_block",
]

# Fused backend names, in the preference order `auto` resolution uses.
FUSED_BACKENDS = ("numba", "cext")

# Lazily probed backend states: name -> (kernel or None, error or None).
# Exactly one of the two is None.  Tests monkeypatch entries to simulate
# unavailable backends.
_STATES: dict[str, tuple[Callable | None, str | None]] = {}


def fused_block(indptr, indices, r0, r1, per_node, workspace, touched):
    """One fused row block of the A² pass (jitted by the numba backend).

    Parameters are the int32 CSR structure of the symmetric adjacency,
    the block's row range ``[r0, r1)``, the block's slice of the per-node
    triangle vector (int64, written in place), and two zeroed/garbage
    scratch arrays of length ``n_nodes`` (int64 counts, int32 touched
    columns).  Returns the block's off-diagonal maximum common-neighbour
    count.  The workspace must arrive all-zero and is left all-zero.
    """
    max_common = np.int64(0)
    for u in range(r0, r1):
        row_start = indptr[u]
        row_end = indptr[u + 1]
        n_touched = 0
        for idx in range(row_start, row_end):
            w = indices[idx]
            for jdx in range(indptr[w], indptr[w + 1]):
                v = indices[jdx]
                if workspace[v] == 0:
                    touched[n_touched] = v
                    n_touched += 1
                workspace[v] += 1
        on_edges = np.int64(0)
        for idx in range(row_start, row_end):
            on_edges += workspace[indices[idx]]
        per_node[u - r0] = on_edges // 2
        for t in range(n_touched):
            v = touched[t]
            count = workspace[v]
            workspace[v] = 0
            if v != u and count > max_common:
                max_common = count
    return max_common


# The cext backend: fused_block transliterated to C.  Kept in lockstep
# with the Python loop nest above — the equivalence suite cross-checks
# every backend against the reference oracles on every run.
_C_SOURCE = """\
#include <stdint.h>

int64_t repro_fused_block(
    const int32_t *indptr,
    const int32_t *indices,
    int64_t r0,
    int64_t r1,
    int64_t *per_node,
    int64_t *workspace,
    int32_t *touched)
{
    int64_t max_common = 0;
    for (int64_t u = r0; u < r1; u++) {
        int32_t row_start = indptr[u];
        int32_t row_end = indptr[u + 1];
        int64_t n_touched = 0;
        for (int32_t idx = row_start; idx < row_end; idx++) {
            int32_t w = indices[idx];
            for (int32_t jdx = indptr[w]; jdx < indptr[w + 1]; jdx++) {
                int32_t v = indices[jdx];
                if (workspace[v] == 0) {
                    touched[n_touched++] = v;
                }
                workspace[v] += 1;
            }
        }
        int64_t on_edges = 0;
        for (int32_t idx = row_start; idx < row_end; idx++) {
            on_edges += workspace[indices[idx]];
        }
        per_node[u - r0] = on_edges / 2;
        for (int64_t t = 0; t < n_touched; t++) {
            int32_t v = touched[t];
            int64_t count = workspace[v];
            workspace[v] = 0;
            if (v != (int32_t)u && count > max_common) {
                max_common = count;
            }
        }
    }
    return max_common;
}
"""


def backend_available(name: str) -> bool:
    """Whether the fused backend ``name`` can run on this host."""
    return _state(name)[0] is not None


def backend_error(name: str) -> str | None:
    """Why ``name`` is unavailable (None when it is available)."""
    return _state(name)[1]


def backend_kernel(name: str) -> Callable:
    """The block kernel of an *available* fused backend.

    The callable has the :func:`fused_block` signature and contract.
    Raises ``RuntimeError`` if the backend is unavailable — callers are
    expected to have gone through
    :func:`repro.stats.kernels.resolve_kernel_backend` first, which turns
    unavailability into a user-facing ``ValidationError``.
    """
    kernel, error = _state(name)
    if kernel is None:
        raise RuntimeError(f"fused backend {name!r} is unavailable: {error}")
    return kernel


def _state(name: str) -> tuple[Callable | None, str | None]:
    if name not in FUSED_BACKENDS:
        raise KeyError(f"unknown fused backend {name!r}")
    state = _STATES.get(name)
    if state is None:
        probe = _probe_numba if name == "numba" else _probe_cext
        try:
            state = (probe(), None)
        except Exception as error:  # unavailable, remember why
            state = (None, str(error))
        _STATES[name] = state
    return state


def _probe_numba() -> Callable:
    """Jit :func:`fused_block` and warm it on a tiny instance."""
    try:
        import numba
    except ImportError:
        raise RuntimeError(
            "numba is not installed (pip install numba, or the "
            "'accel' extra of this package)"
        )
    # cache=True persists the compiled kernel next to this module, so new
    # processes (CLI runs, pool workers under spawn) skip the multi-second
    # JIT; an unwritable cache location degrades to a NumbaWarning plus an
    # in-process compile, never an error.
    kernel = numba.njit(fused_block, cache=True, nogil=True)
    _smoke_test(kernel)
    return kernel


def _probe_cext() -> Callable:
    """Compile the C kernel into a cached shared library and load it."""
    compiler = os.environ.get("CC") or shutil.which("cc") or shutil.which("gcc")
    if compiler is None:
        raise RuntimeError("no C compiler found (install cc/gcc or set CC)")
    library = _compiled_library_path(compiler)
    raw = ctypes.CDLL(str(library)).repro_fused_block
    int32_arg = np.ctypeslib.ndpointer(np.int32, flags="C_CONTIGUOUS")
    int64_arg = np.ctypeslib.ndpointer(np.int64, flags="C_CONTIGUOUS")
    raw.restype = ctypes.c_int64
    raw.argtypes = [
        int32_arg,  # indptr
        int32_arg,  # indices
        ctypes.c_int64,  # r0
        ctypes.c_int64,  # r1
        int64_arg,  # per_node (block slice)
        int64_arg,  # workspace
        int32_arg,  # touched
    ]

    def kernel(indptr, indices, r0, r1, per_node, workspace, touched):
        return raw(indptr, indices, r0, r1, per_node, workspace, touched)

    _smoke_test(kernel)
    return kernel


def _compiled_library_path(compiler: str) -> Path:
    """Compile (once per source revision) and return the library path.

    The library is keyed by a hash of the C source in a per-user cache
    directory; concurrent processes may race to build it, so each builds
    to a private temporary file and installs it with an atomic rename.
    """
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    cache_root = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    cache_dir = Path(cache_root) / "repro-kernels"
    library = cache_dir / f"fused-{digest}.so"
    if library.exists():
        return library
    cache_dir.mkdir(parents=True, exist_ok=True)
    # Both the source and the library are built under private temporary
    # names and installed with atomic renames: concurrent first-time
    # probes (e.g. pool workers on a fresh host) must never compile from
    # — or dlopen — another process's half-written file.
    source = cache_dir / f"fused-{digest}.c"
    source_fd, source_scratch = tempfile.mkstemp(suffix=".c", dir=cache_dir)
    with os.fdopen(source_fd, "w", encoding="utf-8") as handle:
        handle.write(_C_SOURCE)
    library_fd, library_scratch = tempfile.mkstemp(suffix=".so", dir=cache_dir)
    os.close(library_fd)
    try:
        completed = subprocess.run(
            [compiler, "-O3", "-shared", "-fPIC", "-o", library_scratch, source_scratch],
            capture_output=True,
            text=True,
        )
        if completed.returncode != 0:
            raise RuntimeError(
                f"C kernel compilation failed ({compiler}): "
                f"{completed.stderr.strip() or completed.stdout.strip()}"
            )
        os.replace(source_scratch, source)  # keep the source for debugging
        os.replace(library_scratch, library)
    finally:
        for scratch in (source_scratch, library_scratch):
            if os.path.exists(scratch):
                os.unlink(scratch)
    return library


def _smoke_test(kernel: Callable) -> None:
    """Run the kernel on a hand-checked diamond graph.

    Catches a miscompiled or ABI-mismatched kernel at probe time (turning
    it into "backend unavailable") instead of corrupting statistics later.
    Also serves as the numba warm-up compile.
    """
    # The diamond: triangles {0,1,2} and {1,2,3}; nodes 0 and 3 (and the
    # adjacent pair 1, 2) share two common neighbours.
    indptr = np.array([0, 2, 5, 8, 10], dtype=np.int32)
    indices = np.array([1, 2, 0, 2, 3, 0, 1, 3, 1, 2], dtype=np.int32)
    per_node = np.zeros(4, dtype=np.int64)
    workspace = np.zeros(4, dtype=np.int64)
    touched = np.empty(4, dtype=np.int32)
    max_common = int(kernel(indptr, indices, 0, 4, per_node, workspace, touched))
    if per_node.tolist() != [1, 2, 2, 1] or max_common != 2:
        raise RuntimeError(
            f"fused kernel self-check failed: per_node={per_node.tolist()}, "
            f"max_common={max_common}"
        )
    if workspace.any():
        raise RuntimeError("fused kernel self-check failed: workspace not zeroed")
