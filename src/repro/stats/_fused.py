"""Back-compat shim: the fused counting kernels now live in ``repro.native``.

PR 3 introduced the fused counting backends here; PR 4 promoted the
backend machinery (probing, compile caching, resolution) into the shared
native-kernel layer so the KronFit chain kernels could reuse it.  This
module re-exports the counting surface under its historical names so
``from repro.stats import _fused`` keeps working:

* :data:`FUSED_BACKENDS`, :func:`backend_available`,
  :func:`backend_error`, :func:`backend_kernel`, :func:`fused_block` —
  straight re-exports of :mod:`repro.native.counting`;
* :data:`_STATES` — an alias of the counting kernel's live state dict
  (``repro.native.counting.COUNTING_KERNEL.states``), kept because tests
  monkeypatch its entries to simulate hosts without numba or a compiler.

Backend selection still goes through
:func:`repro.stats.kernels.resolve_kernel_backend`.
"""

from __future__ import annotations

from repro.native.counting import (
    COUNTING_KERNEL,
    FUSED_BACKENDS,
    backend_available,
    backend_error,
    backend_kernel,
    fused_block,
)

__all__ = [
    "FUSED_BACKENDS",
    "backend_available",
    "backend_error",
    "backend_kernel",
    "fused_block",
]

# The counting kernel's live backend states ("numba"/"cext" ->
# (kernel or None, error or None)).  The *same dict object* the registry
# consults, so monkeypatching entries here changes resolution everywhere.
_STATES = COUNTING_KERNEL.states
