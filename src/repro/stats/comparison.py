"""Metrics for comparing estimates, statistics, and figure series.

EXPERIMENTS.md quantifies "the private estimator performs almost similarly
to the non-private estimators" with the metrics here: parameter errors,
relative errors on counts, a Kolmogorov–Smirnov distance between degree
distributions, and a log-scale series distance for the figure plots
(hop/scree/network-value/clustering curves are compared in the paper on
log axes, so log-space distance is the faithful notion of "close").
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "relative_error",
    "median_relative_error",
    "statistics_relative_errors",
    "parameter_error",
    "ks_distance",
    "log_series_distance",
]


def relative_error(estimate: float, truth: float) -> float:
    """|estimate − truth| / max(|truth|, 1): bounded at zero truth values."""
    return abs(float(estimate) - float(truth)) / max(abs(float(truth)), 1.0)


def statistics_relative_errors(estimate, truth) -> dict[str, float]:
    """Per-feature relative errors of two matching-statistics quadruples.

    Accepts anything unpackable to four floats in (E, H, T, Δ) order —
    in particular two :class:`~repro.stats.counts.MatchingStatistics` —
    and returns the field-keyed relative errors the benches and examples
    report.
    """
    estimate = tuple(estimate)
    truth = tuple(truth)
    if len(estimate) != 4 or len(truth) != 4:
        raise ValidationError(
            "statistics_relative_errors expects (E, H, T, Δ) quadruples"
        )
    names = ("edges", "hairpins", "tripins", "triangles")
    return {
        name: relative_error(e, t) for name, e, t in zip(names, estimate, truth)
    }


def median_relative_error(estimates: np.ndarray, truths: np.ndarray) -> float:
    """Median of element-wise relative errors of two equal-length vectors."""
    estimates = np.asarray(estimates, dtype=np.float64)
    truths = np.asarray(truths, dtype=np.float64)
    if estimates.shape != truths.shape:
        raise ValidationError(
            f"shape mismatch: {estimates.shape} vs {truths.shape}"
        )
    if estimates.size == 0:
        return 0.0
    denominator = np.maximum(np.abs(truths), 1.0)
    return float(np.median(np.abs(estimates - truths) / denominator))


def parameter_error(theta_a, theta_b) -> float:
    """Max-abs difference of two (a, b, c) parameter triples.

    Accepts anything unpackable to three floats, including
    :class:`repro.kronecker.Initiator` (which iterates as (a, b, c)).
    """
    a = np.asarray(tuple(theta_a), dtype=np.float64)
    b = np.asarray(tuple(theta_b), dtype=np.float64)
    if a.shape != (3,) or b.shape != (3,):
        raise ValidationError("parameter_error expects (a, b, c) triples")
    return float(np.abs(a - b).max())


def ks_distance(samples_a: np.ndarray, samples_b: np.ndarray) -> float:
    """Two-sample Kolmogorov–Smirnov statistic (no p-value, just distance).

    Used to compare degree sequences of original vs synthetic graphs;
    implemented directly (sorted merge) so it stays exact for the integer
    ties that degree data is full of.
    """
    a = np.sort(np.asarray(samples_a, dtype=np.float64))
    b = np.sort(np.asarray(samples_b, dtype=np.float64))
    if a.size == 0 or b.size == 0:
        raise ValidationError("ks_distance requires non-empty samples")
    grid = np.unique(np.concatenate([a, b]))
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())


def log_series_distance(
    xs_a: np.ndarray,
    ys_a: np.ndarray,
    xs_b: np.ndarray,
    ys_b: np.ndarray,
    *,
    n_grid: int = 50,
) -> float:
    """Mean |log10 yₐ − log10 y_b| after interpolating both series onto a
    shared log-x grid spanning the overlap of their supports.

    Series points with non-positive coordinates are dropped (they do not
    appear on the paper's log-log plots either).  Returns NaN when the
    supports do not overlap.
    """
    xa, ya = _positive(xs_a, ys_a)
    xb, yb = _positive(xs_b, ys_b)
    if xa.size < 2 or xb.size < 2:
        return float("nan")
    low = max(xa.min(), xb.min())
    high = min(xa.max(), xb.max())
    if not low < high:
        return float("nan")
    grid = np.logspace(np.log10(low), np.log10(high), n_grid)
    log_ya = np.interp(np.log10(grid), np.log10(xa), np.log10(ya))
    log_yb = np.interp(np.log10(grid), np.log10(xb), np.log10(yb))
    return float(np.mean(np.abs(log_ya - log_yb)))


def _positive(xs: np.ndarray, ys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if xs.shape != ys.shape:
        raise ValidationError(f"series shape mismatch: {xs.shape} vs {ys.shape}")
    keep = (xs > 0) & (ys > 0)
    xs, ys = xs[keep], ys[keep]
    order = np.argsort(xs)
    return xs[order], ys[order]
