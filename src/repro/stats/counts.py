"""Exact subgraph counts: edges, hairpins, tripins, triangles.

Terminology follows Gleich & Owen (and the paper):

* **hairpin** — a 2-star / wedge / path of length 2 (unordered),
* **tripin** — a 3-star: a centre node with three distinct neighbours,
* **triangle** — three mutually adjacent nodes.

Hairpins and tripins are functions of the degree sequence alone
(:func:`degree_moment_statistics`), which is precisely why the paper can
derive their DP approximations from a DP degree sequence.  Triangles are
not, which is why the paper spends the second half of its privacy budget on
a smooth-sensitivity triangle release.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.graphs.graph import Graph

__all__ = [
    "MatchingStatistics",
    "count_edges",
    "count_wedges",
    "count_tripins",
    "count_triangles",
    "triangles_per_node",
    "max_common_neighbors",
    "matching_statistics",
    "degree_moment_statistics",
]


class MatchingStatistics(NamedTuple):
    """The four features F = {E, H, T, Δ} used for moment matching.

    Fields are floats so the same container carries exact integer counts
    and noisy DP approximations.
    """

    edges: float
    hairpins: float
    tripins: float
    triangles: float


def count_edges(graph: Graph) -> int:
    """Number of undirected edges E."""
    return graph.n_edges


def count_wedges(graph: Graph) -> int:
    """Number of hairpins H = Σ_v C(d_v, 2)."""
    d = graph.degrees.astype(np.int64)
    return int((d * (d - 1) // 2).sum())


def count_tripins(graph: Graph) -> int:
    """Number of tripins T = Σ_v C(d_v, 3)."""
    d = graph.degrees.astype(np.int64)
    return int((d * (d - 1) * (d - 2) // 6).sum())


def count_triangles(graph: Graph) -> int:
    """Number of triangles Δ, via Σ_edges |N(u) ∩ N(v)| / 3.

    Computed with one sparse matrix product restricted to edge positions:
    ``((A @ A) ∘ A).sum() = 6Δ``.
    """
    if graph.n_edges == 0:
        return 0
    adjacency = graph.adjacency.astype(np.int64)
    paths2 = adjacency @ adjacency
    on_edges = paths2.multiply(adjacency)
    return int(on_edges.sum() // 6)


def triangles_per_node(graph: Graph) -> np.ndarray:
    """Number of triangles through each node (length ``n_nodes``)."""
    if graph.n_edges == 0:
        return np.zeros(graph.n_nodes, dtype=np.int64)
    adjacency = graph.adjacency.astype(np.int64)
    paths2 = adjacency @ adjacency
    on_edges = paths2.multiply(adjacency)
    per_node = np.asarray(on_edges.sum(axis=1)).ravel() // 2
    return per_node.astype(np.int64)


def max_common_neighbors(graph: Graph) -> int:
    """max over node pairs i ≠ j of |N(i) ∩ N(j)|.

    This is the quantity driving the local sensitivity of the triangle
    count: flipping edge {i, j} changes Δ by exactly |N(i) ∩ N(j)|.  The
    maximum runs over *all* pairs, adjacent or not, because the edge
    neighbourhood of G includes both additions and deletions.
    """
    if graph.n_nodes < 2:
        return 0
    if graph.n_edges == 0:
        return 0
    adjacency = graph.adjacency.astype(np.int64).tocsr()
    paths2 = (adjacency @ adjacency).tocoo()
    off_diagonal = paths2.row != paths2.col
    if not np.any(off_diagonal):
        return 0
    return int(paths2.data[off_diagonal].max())


def matching_statistics(graph: Graph) -> MatchingStatistics:
    """Exact values of the four matching features of ``graph``."""
    return MatchingStatistics(
        edges=float(count_edges(graph)),
        hairpins=float(count_wedges(graph)),
        tripins=float(count_tripins(graph)),
        triangles=float(count_triangles(graph)),
    )


def degree_moment_statistics(degrees: np.ndarray) -> tuple[float, float, float]:
    """(E, H, T) computed from a (possibly noisy, real-valued) degree vector.

    This is the paper's step 3: ``Ẽ = ½Σd̃ᵢ``, ``H̃ = ½Σd̃ᵢ(d̃ᵢ−1)``,
    ``T̃ = ⅙Σd̃ᵢ(d̃ᵢ−1)(d̃ᵢ−2)``.  On an integer degree sequence these equal
    the exact counts; on a DP degree sequence they are the DP approximations
    of Fact 4.6.
    """
    d = np.asarray(degrees, dtype=np.float64)
    edges = 0.5 * d.sum()
    hairpins = 0.5 * (d * (d - 1.0)).sum()
    tripins = (d * (d - 1.0) * (d - 2.0)).sum() / 6.0
    return float(edges), float(hairpins), float(tripins)
