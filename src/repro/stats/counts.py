"""Exact subgraph counts: edges, hairpins, tripins, triangles.

Terminology follows Gleich & Owen (and the paper):

* **hairpin** — a 2-star / wedge / path of length 2 (unordered),
* **tripin** — a 3-star: a centre node with three distinct neighbours,
* **triangle** — three mutually adjacent nodes.

Hairpins and tripins are functions of the degree sequence alone
(:func:`degree_moment_statistics`), which is precisely why the paper can
derive their DP approximations from a DP degree sequence.  Triangles are
not, which is why the paper spends the second half of its privacy budget on
a smooth-sensitivity triangle release.

Everything that consumes the sparse product ``A @ A`` (triangles, per-node
triangles, the max common-neighbour count) is served by the blocked
kernels in :mod:`repro.stats.kernels` through a per-graph
:class:`~repro.stats.kernels.StatsContext`, so repeated calls — and the
other A² consumers in the privacy and figure layers — share a single
blocked pass per graph.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.graphs.graph import Graph
from repro.stats.kernels import stats_context

__all__ = [
    "MatchingStatistics",
    "count_edges",
    "count_wedges",
    "count_tripins",
    "count_triangles",
    "triangles_per_node",
    "max_common_neighbors",
    "matching_statistics",
    "degree_moment_statistics",
]


class MatchingStatistics(NamedTuple):
    """The four features F = {E, H, T, Δ} used for moment matching.

    Fields are floats so the same container carries exact integer counts
    and noisy DP approximations.
    """

    edges: float
    hairpins: float
    tripins: float
    triangles: float


def count_edges(graph: Graph) -> int:
    """Number of undirected edges E."""
    return graph.n_edges


def count_wedges(graph: Graph) -> int:
    """Number of hairpins H = Σ_v C(d_v, 2)."""
    return stats_context(graph).wedge_count


def count_tripins(graph: Graph) -> int:
    """Number of tripins T = Σ_v C(d_v, 3)."""
    return stats_context(graph).tripin_count


def count_triangles(graph: Graph) -> int:
    """Number of triangles Δ, via Σ_edges |N(u) ∩ N(v)| / 3.

    Served from the graph's memoized A² pass (:mod:`repro.stats.kernels`),
    which computes the product restricted to edge positions —
    ``((A @ A) ∘ A).sum() = 6Δ`` — block by block.
    """
    return stats_context(graph).triangle_count


def triangles_per_node(graph: Graph) -> np.ndarray:
    """Number of triangles through each node (length ``n_nodes``).

    Returns the graph's cached per-node vector, marked read-only; copy
    before mutating.
    """
    return stats_context(graph).triangles_per_node


def max_common_neighbors(graph: Graph) -> int:
    """max over node pairs i ≠ j of |N(i) ∩ N(j)|.

    This is the quantity driving the local sensitivity of the triangle
    count: flipping edge {i, j} changes Δ by exactly |N(i) ∩ N(j)|.  The
    maximum runs over *all* pairs, adjacent or not, because the edge
    neighbourhood of G includes both additions and deletions.  Served from
    the same memoized A² pass as the triangle counts.
    """
    return stats_context(graph).max_common_neighbors


def matching_statistics(graph: Graph) -> MatchingStatistics:
    """Exact values of the four matching features of ``graph``.

    One call touches every statistic the per-trial pipeline needs, but the
    underlying A² pass still runs at most once per graph: the counts share
    the graph's :class:`~repro.stats.kernels.StatsContext`.
    """
    context = stats_context(graph)
    return MatchingStatistics(
        edges=float(context.edge_count),
        hairpins=float(context.wedge_count),
        tripins=float(context.tripin_count),
        triangles=float(context.triangle_count),
    )


def degree_moment_statistics(degrees: np.ndarray) -> tuple[float, float, float]:
    """(E, H, T) computed from a (possibly noisy, real-valued) degree vector.

    This is the paper's step 3: ``Ẽ = ½Σd̃ᵢ``, ``H̃ = ½Σd̃ᵢ(d̃ᵢ−1)``,
    ``T̃ = ⅙Σd̃ᵢ(d̃ᵢ−1)(d̃ᵢ−2)``.  On an integer degree sequence these equal
    the exact counts; on a DP degree sequence they are the DP approximations
    of Fact 4.6.
    """
    d = np.asarray(degrees, dtype=np.float64)
    edges = 0.5 * d.sum()
    hairpins = 0.5 * (d * (d - 1.0)).sum()
    tripins = (d * (d - 1.0) * (d - 2.0)).sum() / 6.0
    return float(edges), float(hairpins), float(tripins)
