"""DP release of the sorted degree sequence (Hay–Li–Miklau–Jensen).

The paper's step 2: the sorted degree sequence ``d_S`` has L1 global
sensitivity 2 under single-edge change (one edge flip moves two degrees by
one each, and sorting cannot increase the L1 distance), so

    d̂ = d_S + ⟨Lap(2/ε)⟩^n

is (ε, 0)-DP (Theorem 4.5).  Hay et al.'s *constrained inference* then
exploits the public fact that the true vector is sorted: the released
estimate is the L2 projection of d̂ onto non-decreasing sequences
(:func:`repro.privacy.isotonic.isotonic_regression`), which provably never
hurts and empirically removes most of the noise on the long flat runs of
real degree sequences.  Post-processing is privacy-free.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph
from repro.privacy.isotonic import isotonic_regression
from repro.privacy.mechanisms import laplace_noise
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive

__all__ = ["DegreeRelease", "release_sorted_degrees", "DEGREE_SENSITIVITY"]

# L1 global sensitivity of the sorted degree sequence under edge change.
DEGREE_SENSITIVITY = 2.0


@dataclass(frozen=True)
class DegreeRelease:
    """Result of a DP degree-sequence release.

    Attributes
    ----------
    degrees:
        The (ε, 0)-DP non-decreasing degree estimate (float-valued).
    noisy:
        The pre-inference noisy sequence d̂ (kept for diagnostics; equally
        private, since constrained inference is post-processing).
    epsilon:
        Budget consumed.
    clip_negative:
        Whether the final estimate was clipped at zero.
    """

    degrees: np.ndarray
    noisy: np.ndarray
    epsilon: float
    clip_negative: bool

    def l2_error(self, true_sorted_degrees: np.ndarray) -> float:
        """RMSE against the true sorted sequence (evaluation helper)."""
        truth = np.asarray(true_sorted_degrees, dtype=np.float64)
        return float(np.sqrt(np.mean((self.degrees - truth) ** 2)))


def release_sorted_degrees(
    graph: Graph,
    epsilon: float,
    *,
    constrained_inference: bool = True,
    clip_negative: bool = True,
    seed: SeedLike = None,
) -> DegreeRelease:
    """(ε, 0)-DP estimate of the sorted degree sequence of ``graph``.

    Parameters
    ----------
    epsilon:
        Privacy parameter of this sub-release (Algorithm 1 passes ε/2).
    constrained_inference:
        Apply Hay et al.'s isotonic post-processing (on by default; off
        reproduces the plain Laplace baseline for the ablation bench).
    clip_negative:
        Clip the final estimate at zero — degrees are publicly known to be
        non-negative, and clipping is also privacy-free post-processing.
    """
    epsilon = check_positive(epsilon, "epsilon")
    rng = as_generator(seed)
    sorted_degrees = np.sort(graph.degrees).astype(np.float64)
    noisy = sorted_degrees + laplace_noise(
        DEGREE_SENSITIVITY / epsilon, sorted_degrees.size or 1, rng
    )[: sorted_degrees.size]
    estimate = isotonic_regression(noisy) if constrained_inference else noisy.copy()
    if clip_negative:
        estimate = np.maximum(estimate, 0.0)
    return DegreeRelease(
        degrees=estimate,
        noisy=noisy,
        epsilon=epsilon,
        clip_negative=clip_negative,
    )
