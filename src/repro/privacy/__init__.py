"""Differential-privacy substrate: mechanisms, sensitivity, graph releases.

Implements everything Algorithm 1 of the paper needs:

* :mod:`repro.privacy.mechanisms` — Laplace (and geometric) mechanisms
  calibrated to global sensitivity (Dwork et al., Theorem 4.5 in the paper),
* :mod:`repro.privacy.accountant` — sequential-composition budget tracking
  (Theorem 4.9),
* :mod:`repro.privacy.isotonic` — pool-adjacent-violators regression,
* :mod:`repro.privacy.degree_release` — Hay et al.'s DP sorted degree
  sequence (Laplace noise + constrained inference),
* :mod:`repro.privacy.sensitivity` — local/smooth sensitivity framework
  (Nissim–Raskhodnikova–Smith),
* :mod:`repro.privacy.triangles` — (ε, δ)-DP triangle count via the smooth
  sensitivity of Δ,
* :mod:`repro.privacy.stats_release` — the combined release of the four
  matching statistics {Ẽ, H̃, T̃, Δ̃} used by the private estimator.
"""

from repro.privacy.mechanisms import (
    laplace_mechanism,
    laplace_noise,
    geometric_mechanism,
)
from repro.privacy.accountant import PrivacyAccountant, PrivacySpend
from repro.privacy.isotonic import isotonic_regression
from repro.privacy.degree_release import release_sorted_degrees, DegreeRelease
from repro.privacy.sensitivity import (
    local_sensitivity_triangles,
    local_sensitivity_at_distance,
    smooth_sensitivity_triangles,
    smooth_sensitivity_from_distance_bounds,
    triangle_smooth_beta,
)
from repro.privacy.triangles import release_triangle_count, TriangleRelease
from repro.privacy.stats_release import release_matching_statistics, StatisticsRelease
from repro.privacy.k_edge import (
    KEdgeGuarantee,
    k_edge_guarantee,
    per_edge_budget_for_group,
)

__all__ = [
    "laplace_mechanism",
    "laplace_noise",
    "geometric_mechanism",
    "PrivacyAccountant",
    "PrivacySpend",
    "isotonic_regression",
    "release_sorted_degrees",
    "DegreeRelease",
    "local_sensitivity_triangles",
    "local_sensitivity_at_distance",
    "smooth_sensitivity_triangles",
    "smooth_sensitivity_from_distance_bounds",
    "triangle_smooth_beta",
    "release_triangle_count",
    "TriangleRelease",
    "release_matching_statistics",
    "StatisticsRelease",
    "KEdgeGuarantee",
    "k_edge_guarantee",
    "per_edge_budget_for_group",
]
