"""Combined DP release of the four matching statistics {Ẽ, H̃, T̃, Δ̃}.

This module is steps 1-5 of the paper's Algorithm 1 in one call:

1-2. release the sorted degree sequence at ε/2 (Hay et al.),
3.   derive Ẽ, H̃, T̃ from the released degrees (Fact 4.6 — privacy-free
     post-processing of an already-DP vector),
4-5. release the triangle count at (ε/2, δ) via smooth sensitivity.

By sequential composition (Theorem 4.9) the bundle is (ε, δ)-DP; the
:class:`~repro.privacy.accountant.PrivacyAccountant` attached to the
result records exactly that ledger.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.graph import Graph
from repro.privacy.accountant import PrivacyAccountant
from repro.privacy.degree_release import DegreeRelease, release_sorted_degrees
from repro.privacy.triangles import TriangleRelease, release_triangle_count
from repro.stats.counts import MatchingStatistics, degree_moment_statistics
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_in_unit_interval, check_positive

__all__ = ["StatisticsRelease", "release_matching_statistics"]


@dataclass(frozen=True)
class StatisticsRelease:
    """The DP matching statistics plus full provenance.

    Attributes
    ----------
    statistics:
        The noisy feature tuple fed to moment matching.
    degree_release, triangle_release:
        The two underlying sub-releases with their own diagnostics.
    accountant:
        Ledger showing the (ε, δ) composition.
    """

    statistics: MatchingStatistics
    degree_release: DegreeRelease
    triangle_release: TriangleRelease
    accountant: PrivacyAccountant

    @property
    def epsilon(self) -> float:
        """Total ε consumed."""
        return self.accountant.spent[0]

    @property
    def delta(self) -> float:
        """Total δ consumed."""
        return self.accountant.spent[1]


def release_matching_statistics(
    graph: Graph,
    epsilon: float,
    delta: float,
    *,
    degree_share: float = 0.5,
    constrained_inference: bool = True,
    seed: SeedLike = None,
) -> StatisticsRelease:
    """(ε, δ)-DP release of the four matching statistics of ``graph``.

    Parameters
    ----------
    epsilon, delta:
        Total privacy budget of the bundle (the paper uses ε = 0.2,
        δ = 0.01).
    degree_share:
        Fraction of ε given to the degree release; the remainder goes to
        the triangle release (the paper splits evenly).  All of δ goes to
        the triangle release — the degree mechanism is pure ε-DP.
    constrained_inference:
        Forwarded to :func:`release_sorted_degrees` (ablation knob).
    """
    epsilon = check_positive(epsilon, "epsilon")
    delta = check_in_unit_interval(delta, "delta")
    degree_share = check_in_unit_interval(degree_share, "degree_share")
    if degree_share in (0.0, 1.0):
        raise ValueError("degree_share must be strictly between 0 and 1")
    rng = as_generator(seed)
    accountant = PrivacyAccountant(epsilon=epsilon, delta=delta)

    epsilon_degrees = degree_share * epsilon
    epsilon_triangles = epsilon - epsilon_degrees

    degree_release = release_sorted_degrees(
        graph,
        epsilon_degrees,
        constrained_inference=constrained_inference,
        seed=rng,
    )
    accountant.charge("sorted-degree sequence (Hay et al.)", epsilon_degrees, 0.0)

    triangle_release = release_triangle_count(graph, epsilon_triangles, delta, seed=rng)
    accountant.charge(
        "triangle count (NRS smooth sensitivity)", epsilon_triangles, delta
    )

    edges, hairpins, tripins = degree_moment_statistics(degree_release.degrees)
    statistics = MatchingStatistics(
        edges=edges,
        hairpins=hairpins,
        tripins=tripins,
        triangles=triangle_release.value,
    )
    return StatisticsRelease(
        statistics=statistics,
        degree_release=degree_release,
        triangle_release=triangle_release,
        accountant=accountant,
    )
