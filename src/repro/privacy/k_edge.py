"""k-edge differential privacy (Hay et al., discussed in the paper's §4.1).

Two graphs are *k-edge neighbours* when |V ⊕ V′| + |E ⊕ E′| ≤ k, i.e. they
differ in up to k edges (and/or isolated-node insertions).  The paper
notes that any mechanism with (ε, δ) guarantees for 1-edge neighbours is
(kε, kδ)-DP for k-edge neighbours by the composition argument — which also
yields a *weak form of node privacy*: a degree-d node's entire
neighbourhood is covered by taking k = d + 1.

These helpers make that arithmetic explicit, including its inverse: how
much per-edge budget to request so that a *group* guarantee holds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_integer, check_nonnegative

__all__ = ["KEdgeGuarantee", "k_edge_guarantee", "per_edge_budget_for_group"]


@dataclass(frozen=True)
class KEdgeGuarantee:
    """An (ε, δ) guarantee at a given neighbourhood granularity.

    Attributes
    ----------
    k:
        Neighbourhood size: guarantees hold between graphs differing in up
        to ``k`` edges.
    epsilon, delta:
        The privacy parameters at that granularity.
    """

    k: int
    epsilon: float
    delta: float

    def describe(self) -> str:
        """One-line rendering, e.g. for release documentation."""
        return (
            f"({self.epsilon:g}, {self.delta:g})-differential privacy for "
            f"groups of up to {self.k} edge(s)"
        )


def k_edge_guarantee(epsilon: float, delta: float, k: int) -> KEdgeGuarantee:
    """The k-edge guarantee implied by a 1-edge (ε, δ) guarantee.

    >>> k_edge_guarantee(0.2, 0.01, 5).describe()
    '(1, 0.05)-differential privacy for groups of up to 5 edge(s)'
    """
    epsilon = check_nonnegative(epsilon, "epsilon")
    delta = check_nonnegative(delta, "delta")
    k = check_integer(k, "k", minimum=1)
    return KEdgeGuarantee(k=k, epsilon=k * epsilon, delta=k * delta)


def per_edge_budget_for_group(
    target_epsilon: float, target_delta: float, k: int
) -> tuple[float, float]:
    """Per-edge (ε, δ) to request so a k-edge target guarantee holds.

    Useful when a curator wants node-level cover for nodes of degree up to
    ``k - 1``: run the estimator with the returned (stricter) parameters
    and publish the ``target`` guarantee for k-edge groups.

    >>> per_edge_budget_for_group(1.0, 0.05, 5)
    (0.2, 0.01)
    """
    target_epsilon = check_nonnegative(target_epsilon, "target_epsilon")
    target_delta = check_nonnegative(target_delta, "target_delta")
    k = check_integer(k, "k", minimum=1)
    return target_epsilon / k, target_delta / k
