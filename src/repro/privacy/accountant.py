"""Privacy-budget accounting under sequential composition.

The paper composes two sub-mechanisms (degree release at ε/2, triangle
release at (ε/2, δ)) and invokes the composition theorem (Theorem 4.9:
ℓ mechanisms at (ε, δ) compose to (ℓε, ℓδ)).  :class:`PrivacyAccountant`
makes that bookkeeping explicit and auditable: mechanisms *charge* the
accountant, the accountant refuses spends beyond the budget, and the final
ledger is attached to every released artifact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PrivacyBudgetError
from repro.utils.validation import check_nonnegative

__all__ = ["PrivacySpend", "PrivacyAccountant"]


@dataclass(frozen=True)
class PrivacySpend:
    """One ledger entry: a mechanism that consumed (epsilon, delta)."""

    label: str
    epsilon: float
    delta: float


class PrivacyAccountant:
    """Tracks (ε, δ) consumption under sequential composition.

    Parameters
    ----------
    epsilon, delta:
        Total budget.  Attempted spends that would exceed either component
        raise :class:`~repro.errors.PrivacyBudgetError` *before* any noise
        is drawn, so a failed request cannot leak.

    Examples
    --------
    >>> accountant = PrivacyAccountant(epsilon=0.2, delta=0.01)
    >>> accountant.charge("degrees", epsilon=0.1, delta=0.0)
    >>> accountant.spent
    (0.1, 0.0)
    >>> accountant.remaining
    (0.1, 0.01)
    """

    # Tolerance for floating-point accumulation when checking the budget.
    _SLACK = 1e-12

    def __init__(self, epsilon: float, delta: float = 0.0) -> None:
        self.epsilon = check_nonnegative(epsilon, "epsilon")
        self.delta = check_nonnegative(delta, "delta")
        self._ledger: list[PrivacySpend] = []

    @property
    def ledger(self) -> tuple[PrivacySpend, ...]:
        """All spends so far, in order."""
        return tuple(self._ledger)

    @property
    def spent(self) -> tuple[float, float]:
        """Total (epsilon, delta) consumed (sequential composition)."""
        total_epsilon = sum(entry.epsilon for entry in self._ledger)
        total_delta = sum(entry.delta for entry in self._ledger)
        return total_epsilon, total_delta

    @property
    def remaining(self) -> tuple[float, float]:
        """Budget left, floored at zero."""
        spent_epsilon, spent_delta = self.spent
        return max(self.epsilon - spent_epsilon, 0.0), max(self.delta - spent_delta, 0.0)

    def charge(self, label: str, epsilon: float, delta: float = 0.0) -> None:
        """Record a spend, or raise if it would exceed the budget."""
        epsilon = check_nonnegative(epsilon, "epsilon")
        delta = check_nonnegative(delta, "delta")
        spent_epsilon, spent_delta = self.spent
        if spent_epsilon + epsilon > self.epsilon + self._SLACK:
            raise PrivacyBudgetError(
                f"charge {label!r} of epsilon={epsilon} exceeds remaining "
                f"epsilon budget {self.epsilon - spent_epsilon:.6g}"
            )
        if spent_delta + delta > self.delta + self._SLACK:
            raise PrivacyBudgetError(
                f"charge {label!r} of delta={delta} exceeds remaining "
                f"delta budget {self.delta - spent_delta:.6g}"
            )
        self._ledger.append(PrivacySpend(label=label, epsilon=epsilon, delta=delta))

    def describe(self) -> str:
        """Human-readable ledger summary."""
        spent_epsilon, spent_delta = self.spent
        lines = [
            f"privacy budget: epsilon={self.epsilon:g}, delta={self.delta:g}",
            f"spent:          epsilon={spent_epsilon:g}, delta={spent_delta:g}",
        ]
        for entry in self._ledger:
            lines.append(
                f"  - {entry.label}: epsilon={entry.epsilon:g}, delta={entry.delta:g}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        spent_epsilon, spent_delta = self.spent
        return (
            f"PrivacyAccountant(epsilon={self.epsilon:g}, delta={self.delta:g}, "
            f"spent=({spent_epsilon:g}, {spent_delta:g}), entries={len(self._ledger)})"
        )
