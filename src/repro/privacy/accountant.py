"""Privacy-budget accounting under sequential composition.

The paper composes two sub-mechanisms (degree release at ε/2, triangle
release at (ε/2, δ)) and invokes the composition theorem (Theorem 4.9:
ℓ mechanisms at (ε, δ) compose to (ℓε, ℓδ)).  :class:`PrivacyAccountant`
makes that bookkeeping explicit and auditable: mechanisms *charge* the
accountant, the accountant refuses spends beyond the budget, and the final
ledger is attached to every released artifact.

The accountant is **concurrency-safe**: :meth:`~PrivacyAccountant.charge`
is one atomic check-and-spend under an internal lock, so concurrent
callers drawing on one budget (the ``repro serve`` request handlers) can
never jointly overspend — an over-budget request is refused *before* any
noise is drawn, under arbitrary interleaving.  The ledger round-trips
through JSON (:meth:`~PrivacyAccountant.to_json` /
:meth:`~PrivacyAccountant.from_json`), so a long-running service can
flush its spend record to disk and restore it across restarts, and the
whole object stays picklable (the lock is recreated, never shipped).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import PrivacyBudgetError, ValidationError
from repro.utils.validation import check_nonnegative

__all__ = ["PrivacySpend", "PrivacyAccountant"]


@dataclass(frozen=True)
class PrivacySpend:
    """One ledger entry: a mechanism that consumed (epsilon, delta)."""

    label: str
    epsilon: float
    delta: float


class PrivacyAccountant:
    """Tracks (ε, δ) consumption under sequential composition.

    Parameters
    ----------
    epsilon, delta:
        Total budget.  Attempted spends that would exceed either component
        raise :class:`~repro.errors.PrivacyBudgetError` *before* any noise
        is drawn, so a failed request cannot leak.

    Examples
    --------
    >>> accountant = PrivacyAccountant(epsilon=0.2, delta=0.01)
    >>> accountant.charge("degrees", epsilon=0.1, delta=0.0)
    >>> accountant.spent
    (0.1, 0.0)
    >>> accountant.remaining
    (0.1, 0.01)
    """

    # Tolerance for floating-point accumulation when checking the budget.
    _SLACK = 1e-12

    def __init__(self, epsilon: float, delta: float = 0.0) -> None:
        self.epsilon = check_nonnegative(epsilon, "epsilon")
        self.delta = check_nonnegative(delta, "delta")
        self._ledger: list[PrivacySpend] = []
        self._lock = threading.RLock()

    @property
    def ledger(self) -> tuple[PrivacySpend, ...]:
        """All spends so far, in order."""
        with self._lock:
            return tuple(self._ledger)

    @property
    def spent(self) -> tuple[float, float]:
        """Total (epsilon, delta) consumed (sequential composition)."""
        with self._lock:
            total_epsilon = sum(entry.epsilon for entry in self._ledger)
            total_delta = sum(entry.delta for entry in self._ledger)
        return total_epsilon, total_delta

    @property
    def remaining(self) -> tuple[float, float]:
        """Budget left, floored at zero."""
        spent_epsilon, spent_delta = self.spent
        return max(self.epsilon - spent_epsilon, 0.0), max(self.delta - spent_delta, 0.0)

    def charge(self, label: str, epsilon: float, delta: float = 0.0) -> None:
        """Record a spend, or raise if it would exceed the budget.

        Check-and-spend is **atomic**: the budget check and the ledger
        append happen under one lock acquisition, so concurrent charges
        serialize and the total recorded spend can never exceed the
        budget — the losing request is refused before any noise is drawn.
        """
        epsilon = check_nonnegative(epsilon, "epsilon")
        delta = check_nonnegative(delta, "delta")
        with self._lock:
            spent_epsilon = sum(entry.epsilon for entry in self._ledger)
            spent_delta = sum(entry.delta for entry in self._ledger)
            if spent_epsilon + epsilon > self.epsilon + self._SLACK:
                raise PrivacyBudgetError(
                    f"charge {label!r} of epsilon={epsilon} exceeds remaining "
                    f"epsilon budget {self.epsilon - spent_epsilon:.6g}"
                )
            if spent_delta + delta > self.delta + self._SLACK:
                raise PrivacyBudgetError(
                    f"charge {label!r} of delta={delta} exceeds remaining "
                    f"delta budget {self.delta - spent_delta:.6g}"
                )
            self._ledger.append(PrivacySpend(label=label, epsilon=epsilon, delta=delta))

    def to_json(self) -> dict[str, Any]:
        """The budget and ledger as a JSON-serializable dict.

        A consistent snapshot: taken under the lock, so a concurrent
        charge is either fully included or fully absent.
        """
        with self._lock:
            return {
                "epsilon": self.epsilon,
                "delta": self.delta,
                "ledger": [
                    {
                        "label": entry.label,
                        "epsilon": entry.epsilon,
                        "delta": entry.delta,
                    }
                    for entry in self._ledger
                ],
            }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "PrivacyAccountant":
        """Restore an accountant from :meth:`to_json` output.

        The ledger is restored **verbatim, without re-checking** against
        the budget: the record of what was already spent is historical
        fact.  If the configured budget shrank below the restored spend,
        ``remaining`` floors at zero and every further charge is refused —
        the safe behaviour for a service rereading its ledger after a
        config change.
        """
        try:
            epsilon = payload["epsilon"]
            delta = payload["delta"]
            entries = payload["ledger"]
        except (KeyError, TypeError) as exc:
            raise ValidationError(
                f"accountant JSON needs epsilon, delta and ledger keys; got "
                f"{sorted(payload) if isinstance(payload, Mapping) else type(payload).__name__}"
            ) from exc
        accountant = cls(epsilon, delta)
        for entry in entries:
            try:
                spend = PrivacySpend(
                    label=str(entry["label"]),
                    epsilon=check_nonnegative(entry["epsilon"], "ledger epsilon"),
                    delta=check_nonnegative(entry["delta"], "ledger delta"),
                )
            except (KeyError, TypeError) as exc:
                raise ValidationError(
                    f"malformed accountant ledger entry: {entry!r}"
                ) from exc
            accountant._ledger.append(spend)
        return accountant

    def __getstate__(self) -> dict[str, Any]:
        # The lock is process-local and unpicklable; ship a consistent
        # snapshot of everything else (fitted models carrying their
        # accountant cross process boundaries via the worker pool).
        with self._lock:
            return {
                "epsilon": self.epsilon,
                "delta": self.delta,
                "_ledger": list(self._ledger),
            }

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.epsilon = state["epsilon"]
        self.delta = state["delta"]
        self._ledger = list(state["_ledger"])
        self._lock = threading.RLock()

    def describe(self) -> str:
        """Human-readable ledger summary."""
        entries = self.ledger
        spent_epsilon, spent_delta = self.spent
        lines = [
            f"privacy budget: epsilon={self.epsilon:g}, delta={self.delta:g}",
            f"spent:          epsilon={spent_epsilon:g}, delta={spent_delta:g}",
        ]
        for entry in entries:
            lines.append(
                f"  - {entry.label}: epsilon={entry.epsilon:g}, delta={entry.delta:g}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        spent_epsilon, spent_delta = self.spent
        return (
            f"PrivacyAccountant(epsilon={self.epsilon:g}, delta={self.delta:g}, "
            f"spent=({spent_epsilon:g}, {spent_delta:g}), entries={len(self.ledger)})"
        )
