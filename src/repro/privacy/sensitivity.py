"""Local and smooth sensitivity of the triangle count (NRS framework).

Flipping one edge {i, j} changes the triangle count by exactly
``c_ij = |N(i) ∩ N(j)|``, so the local sensitivity of Δ is

    LS_Δ(G) = max_{i ≠ j} c_ij(G),

with the maximum over *all* pairs (the neighbourhood includes edge
additions).  A single edge edit changes any fixed ``c_ij`` by at most one,
hence

    A^(s)(G) = min(LS_Δ(G) + s, n − 2)

upper-bounds the local sensitivity anywhere within edit distance ``s``,
and is tight whenever the graph has room to add the improving edges.  The
β-smooth sensitivity (Definition 4.7 of the paper) is then

    SS_β(G) = max_{s ≥ 0} e^{−βs} A^(s)(G),

a one-dimensional maximisation solved in closed form below.  Any smooth
*upper bound* of the local sensitivity preserves the NRS guarantee, so the
release built on this quantity is differentially private regardless of
tightness (DESIGN.md §5).
"""

from __future__ import annotations

import math

from repro.errors import ValidationError
from repro.graphs.graph import Graph
from repro.stats.kernels import stats_context
from repro.utils.validation import check_in_unit_interval, check_positive

__all__ = [
    "local_sensitivity_triangles",
    "local_sensitivity_at_distance",
    "smooth_sensitivity_from_distance_bounds",
    "smooth_sensitivity_triangles",
    "triangle_smooth_beta",
]


def local_sensitivity_triangles(graph: Graph) -> int:
    """LS_Δ(G): the largest number of common neighbours over node pairs.

    Served from the graph's memoized A² pass (:mod:`repro.stats.kernels`),
    so a release that needs both Δ and LS_Δ pays for the product once.
    """
    return stats_context(graph).max_common_neighbors


def local_sensitivity_at_distance(graph: Graph, s: int) -> int:
    """A^(s)(G) = min(LS_Δ(G) + s, n − 2): the distance-s sensitivity bound."""
    if s < 0:
        raise ValidationError(f"distance s must be non-negative, got {s}")
    n = graph.n_nodes
    if n < 3:
        return 0
    return int(min(local_sensitivity_triangles(graph) + s, n - 2))


def smooth_sensitivity_from_distance_bounds(
    base_sensitivity: float, beta: float, cap: float
) -> float:
    """max over integer s ≥ 0 of ``e^{−βs} · min(base + s, cap)``.

    The uncapped objective ``e^{−βs}(base + s)`` is unimodal with
    continuous maximiser ``s* = 1/β − base``; the discrete optimum is at
    ``floor(s*)`` or ``ceil(s*)`` (or s = 0 when s* ≤ 0).  The cap only
    binds when ``base + s`` reaches ``cap`` before the exponential decay
    wins, which the candidate ``s = cap − base`` covers.
    """
    beta = check_positive(beta, "beta")
    if cap <= 0:
        return 0.0
    base = max(float(base_sensitivity), 0.0)
    if base >= cap:
        return float(cap)

    def value(s: float) -> float:
        return math.exp(-beta * s) * min(base + s, cap)

    candidates = [0.0, float(cap - base)]
    s_star = 1.0 / beta - base
    if s_star > 0:
        candidates.extend([math.floor(s_star), math.ceil(s_star)])
    candidates = [min(max(s, 0.0), cap - base) for s in candidates]
    return max(value(s) for s in candidates)


def smooth_sensitivity_triangles(graph: Graph, beta: float) -> float:
    """SS_β of the triangle count of ``graph`` (closed-form maximisation)."""
    n = graph.n_nodes
    if n < 3:
        return 0.0
    return smooth_sensitivity_from_distance_bounds(
        base_sensitivity=local_sensitivity_triangles(graph),
        beta=beta,
        cap=n - 2,
    )


def triangle_smooth_beta(epsilon: float, delta: float) -> float:
    """The paper's β = ε / (2 ln(2/δ)) from Theorem 4.8 (requires δ ∈ (0, 1))."""
    epsilon = check_positive(epsilon, "epsilon")
    delta = check_in_unit_interval(delta, "delta")
    if delta == 0.0 or delta == 1.0:
        raise ValidationError(
            f"smooth-sensitivity calibration needs delta in (0, 1), got {delta}"
        )
    return epsilon / (2.0 * math.log(2.0 / delta))
