"""(ε, δ)-DP triangle count via smooth sensitivity (the paper's step 4-5).

Following Theorem 4.8 (Nissim–Raskhodnikova–Smith): with
β ≤ ε / (2 ln(2/δ)) and SS_β the β-smooth sensitivity of Δ,

    Δ̃ = Δ + (2 · SS_β / ε) · η,   η ~ Lap(1)

is (ε, δ)-differentially private.  The smooth sensitivity itself comes
from :mod:`repro.privacy.sensitivity`.

Both ingredients of the release — the exact count Δ and the smooth
sensitivity (via LS_Δ) — are reductions of the same sparse product
``A @ A``; they are served from the graph's memoized blocked A² pass
(:mod:`repro.stats.kernels`), so one release costs one pass, shared with
any other statistics computed on the same graph in the trial.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.graph import Graph
from repro.privacy.sensitivity import (
    smooth_sensitivity_triangles,
    triangle_smooth_beta,
)
from repro.stats.counts import count_triangles
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_in_unit_interval, check_positive

__all__ = ["TriangleRelease", "release_triangle_count"]


@dataclass(frozen=True)
class TriangleRelease:
    """Result of a DP triangle-count release.

    Attributes
    ----------
    value:
        The noisy count Δ̃ (real-valued; may be negative for small ε).
    smooth_sensitivity:
        SS_β(G) used to scale the noise.
    beta:
        The smoothing parameter β = ε / (2 ln(2/δ)).
    epsilon, delta:
        The (ε, δ) guarantee of this release.
    noise_scale:
        The Laplace scale actually applied: 2 · SS_β / ε.
    """

    value: float
    smooth_sensitivity: float
    beta: float
    epsilon: float
    delta: float
    noise_scale: float


def release_triangle_count(
    graph: Graph,
    epsilon: float,
    delta: float,
    seed: SeedLike = None,
) -> TriangleRelease:
    """Release an (ε, δ)-DP approximation of the triangle count of ``graph``."""
    epsilon = check_positive(epsilon, "epsilon")
    delta = check_in_unit_interval(delta, "delta")
    rng = as_generator(seed)
    beta = triangle_smooth_beta(epsilon, delta)
    smooth = smooth_sensitivity_triangles(graph, beta)
    scale = 2.0 * smooth / epsilon
    triangles = float(count_triangles(graph))
    noise = float(rng.laplace(0.0, scale)) if scale > 0 else 0.0
    return TriangleRelease(
        value=triangles + noise,
        smooth_sensitivity=float(smooth),
        beta=float(beta),
        epsilon=epsilon,
        delta=delta,
        noise_scale=float(scale),
    )
