"""Noise mechanisms calibrated to global sensitivity.

:func:`laplace_mechanism` is the classic Dwork–McSherry–Nissim–Smith
mechanism (the paper's Theorem 4.5): adding ``Lap(GS_Q / ε)`` noise to each
coordinate of a query with L1 global sensitivity ``GS_Q`` gives
(ε, 0)-differential privacy.  :func:`geometric_mechanism` is its discrete
counterpart for integer-valued counts (used by the extension benches).

Randomness policy: see :mod:`repro.utils.rng` — numpy's PCG64, adequate for
the paper's experimental study but not a hardened CSPRNG.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive

__all__ = ["laplace_noise", "laplace_mechanism", "geometric_mechanism"]


def laplace_noise(scale: float, size: int | tuple[int, ...], seed: SeedLike = None) -> np.ndarray:
    """Vector of independent Laplace(0, ``scale``) samples — ⟨Lap(σ)⟩^N."""
    scale = check_positive(scale, "scale")
    rng = as_generator(seed)
    return rng.laplace(loc=0.0, scale=scale, size=size)


def laplace_mechanism(
    value: float | np.ndarray,
    sensitivity: float,
    epsilon: float,
    seed: SeedLike = None,
) -> np.ndarray | float:
    """(ε, 0)-DP release of ``value`` with L1 global sensitivity ``sensitivity``.

    Scalars return scalars; arrays return arrays of the same shape with
    independent per-coordinate noise (the sensitivity argument must then be
    the L1 sensitivity of the whole vector query, as in Theorem 4.5).
    """
    sensitivity = check_positive(sensitivity, "sensitivity")
    epsilon = check_positive(epsilon, "epsilon")
    array = np.asarray(value, dtype=np.float64)
    noisy = array + laplace_noise(sensitivity / epsilon, array.shape or 1, seed)
    if array.shape == ():
        return float(noisy[0] if noisy.shape else noisy)
    return noisy


def geometric_mechanism(
    value: int | np.ndarray,
    sensitivity: int,
    epsilon: float,
    seed: SeedLike = None,
) -> np.ndarray | int:
    """(ε, 0)-DP release of integer counts via the two-sided geometric
    mechanism (Ghosh–Roughgarden–Sundararajan).

    Noise is ``X − Y`` with X, Y iid Geometric(1 − α), α = exp(−ε/GS); the
    output stays integral, which matters when a release must remain a
    plausible count.
    """
    if sensitivity < 1:
        raise ValueError(f"sensitivity must be a positive integer, got {sensitivity}")
    epsilon = check_positive(epsilon, "epsilon")
    rng = as_generator(seed)
    alpha = float(np.exp(-epsilon / sensitivity))
    array = np.asarray(value, dtype=np.int64)
    shape = array.shape or (1,)
    # rng.geometric counts trials to first success (support {1, 2, ...});
    # subtracting two iid copies gives the symmetric two-sided distribution.
    positive = rng.geometric(1.0 - alpha, size=shape)
    negative = rng.geometric(1.0 - alpha, size=shape)
    noisy = array + (positive - negative)
    if array.shape == ():
        return int(noisy[0])
    return noisy
