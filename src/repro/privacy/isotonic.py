"""Isotonic (monotone) least-squares regression by pool-adjacent-violators.

Hay et al.'s constrained inference step projects the noisy sorted degree
sequence onto the cone of non-decreasing sequences in L2.  The minimiser
is the classic PAV solution

    d̄_i = min_{j ≥ i} max_{h ≤ j} mean(d̂[h..j]),

computed here with the stack-based pool-adjacent-violators algorithm in
O(n).  Implemented from scratch (no sklearn dependency); tests check the
KKT conditions and compare against a brute-force QP on small inputs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = ["isotonic_regression"]


def isotonic_regression(values: np.ndarray, weights: np.ndarray | None = None) -> np.ndarray:
    """L2 projection of ``values`` onto non-decreasing sequences.

    Parameters
    ----------
    values:
        1-D array to regress.
    weights:
        Optional positive weights for a weighted projection (uniform by
        default — the degree-release use case).

    Returns
    -------
    The unique non-decreasing array minimising
    ``Σ weights * (result − values)²``.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValidationError(f"values must be 1-D, got shape {values.shape}")
    n = values.size
    if n == 0:
        return values.copy()
    if weights is None:
        weights = np.ones(n, dtype=np.float64)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != values.shape:
            raise ValidationError("weights must match values in shape")
        if np.any(weights <= 0):
            raise ValidationError("weights must be positive")

    # Each stack block is (mean, weight, count); adjacent blocks violating
    # monotonicity are merged (weighted average) as values stream in.
    block_mean = np.empty(n, dtype=np.float64)
    block_weight = np.empty(n, dtype=np.float64)
    block_count = np.empty(n, dtype=np.int64)
    top = -1
    for i in range(n):
        top += 1
        block_mean[top] = values[i]
        block_weight[top] = weights[i]
        block_count[top] = 1
        while top > 0 and block_mean[top - 1] >= block_mean[top]:
            merged_weight = block_weight[top - 1] + block_weight[top]
            block_mean[top - 1] = (
                block_weight[top - 1] * block_mean[top - 1]
                + block_weight[top] * block_mean[top]
            ) / merged_weight
            block_weight[top - 1] = merged_weight
            block_count[top - 1] += block_count[top]
            top -= 1
    return np.repeat(block_mean[: top + 1], block_count[: top + 1])
