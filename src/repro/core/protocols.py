"""The common estimator protocol behind the scenario grid.

Every synthesizer the reproduction compares — the KronFit and KronMom
baselines, the paper's private Algorithm 1, and the structure-based DP
degree-sequence baseline — follows one shape: construct with
hyper-parameters, ``fit`` a graph, receive a *model* that can ``sample``
synthetic graphs and states the privacy budget it consumed.  This module
names that shape (:class:`Estimator` / :class:`FittedModel`) and keeps a
registry of the concrete methods, so :mod:`repro.scenarios` can treat
"which estimator" as a plain grid axis next to "which dataset" and
"which ε".

The registry also carries per-method capability flags: which methods
consume randomness (``accepts_seed``) and which consume the scenario's
privacy budget (``accepts_epsilon`` / ``accepts_delta``).  The scenario
engine uses them to inject the trial RNG stream and the budget axis
without the specs having to repeat them per method.

:class:`FixedInitiatorEstimator` is the degenerate member of the family:
its "fit" ignores the data and returns the initiator it was constructed
with.  It is what makes pure sampling workloads — the figures' "Expected"
ensembles, ``repro run-ensemble``-style grids — expressible as scenarios
over the same axes as the real estimators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Protocol, runtime_checkable

from repro.core.baseline import DPDegreeSequenceSynthesizer
from repro.errors import ValidationError
from repro.graphs.graph import Graph
from repro.kronecker.initiator import Initiator, as_initiator
from repro.utils.rng import SeedLike
from repro.utils.validation import check_integer

__all__ = [
    "FittedModel",
    "Estimator",
    "EstimatorMethod",
    "ESTIMATOR_METHODS",
    "estimator_method",
    "available_estimator_methods",
    "build_estimator",
    "FixedInitiatorEstimator",
    "FixedInitiatorModel",
    "NON_PRIVATE_EPSILON",
]

# The ε a non-private fit reports: no privacy guarantee at all.
NON_PRIVATE_EPSILON = math.inf


@runtime_checkable
class FittedModel(Protocol):
    """What every fitted synthesizer exposes to the evaluation layer."""

    @property
    def epsilon(self) -> float:
        """Privacy budget consumed producing the model (inf = non-private)."""
        ...

    def sample_graph(self, seed: SeedLike = None) -> Graph:
        """One synthetic graph from the fitted model."""
        ...


@runtime_checkable
class Estimator(Protocol):
    """Anything that fits a graph into a :class:`FittedModel`."""

    def fit(self, graph: Graph) -> FittedModel:
        ...


@dataclass(frozen=True)
class FixedInitiatorModel:
    """A known SKG distribution Θ^{⊗k} posing as a fitted model."""

    initiator: Initiator
    k: int

    @property
    def epsilon(self) -> float:
        return NON_PRIVATE_EPSILON

    def sample_graph(self, seed: SeedLike = None) -> Graph:
        return self.initiator.sample(self.k, seed=seed)


class FixedInitiatorEstimator:
    """The degenerate estimator: "fitting" returns a fixed initiator.

    Lets pure-sampling workloads (ensemble statistics, the figures'
    "Expected" curves) run on the same scenario axes as the real
    estimators — the workload graph, if any, is ignored.

    Examples
    --------
    >>> model = FixedInitiatorEstimator(a=0.9, b=0.5, c=0.2, k=4).fit(None)
    >>> model.sample_graph(seed=0).n_nodes
    16
    """

    def __init__(self, *, a: float, b: float, c: float, k: int) -> None:
        self.initiator = as_initiator((a, b, c))
        self.k = check_integer(k, "k", minimum=1)

    def fit(self, graph: Graph | None = None) -> FixedInitiatorModel:
        return FixedInitiatorModel(initiator=self.initiator, k=self.k)


class _FunctionEstimator:
    """Adapter: a ``fit_*`` front-door function bound to its kwargs."""

    def __init__(self, fn: Callable[..., Any], kwargs: Mapping[str, Any]) -> None:
        self._fn = fn
        self._kwargs = dict(kwargs)

    def fit(self, graph: Graph) -> FittedModel:
        return self._fn(graph, **self._kwargs)


@dataclass(frozen=True)
class EstimatorMethod:
    """One registered estimator family (a value of the scenario axis).

    Attributes
    ----------
    name:
        Registry key ("KronFit", "KronMom", "Private", "DPDegree",
        "Fixed").
    factory:
        ``factory(**params) -> Estimator``.
    accepts_seed:
        The method consumes randomness; the scenario engine passes the
        trial's RNG stream as ``seed`` unless the spec pins one.
    accepts_epsilon, accepts_delta:
        The method consumes the scenario's privacy budget; the engine
        injects ``epsilon`` / ``delta`` from the scenario spec.
    code_target:
        ``"module:attr"`` path of the front-door callable/class the
        factory dispatches to.  The scenario trial cache fingerprints
        its *source* (not the thin factory wrapper's), so editing the
        estimator front door invalidates cached scenario trials.
    """

    name: str
    factory: Callable[..., Estimator]
    accepts_seed: bool = False
    accepts_epsilon: bool = False
    accepts_delta: bool = False
    code_target: str = ""

    def resolve_code_target(self) -> Callable[..., Any]:
        """The front-door callable named by :attr:`code_target`."""
        if not self.code_target:
            return self.factory
        module_name, _, attribute = self.code_target.partition(":")
        import importlib

        return getattr(importlib.import_module(module_name), attribute)


def _kronfit_factory(**params: Any) -> Estimator:
    from repro.core.nonprivate import fit_kronfit

    return _FunctionEstimator(fit_kronfit, params)


def _kronmom_factory(**params: Any) -> Estimator:
    from repro.core.nonprivate import fit_kronmom

    return _FunctionEstimator(fit_kronmom, params)


def _private_factory(**params: Any) -> Estimator:
    from repro.core.nonprivate import fit_private

    return _FunctionEstimator(fit_private, params)


ESTIMATOR_METHODS: dict[str, EstimatorMethod] = {
    "KronFit": EstimatorMethod(
        name="KronFit",
        factory=_kronfit_factory,
        accepts_seed=True,
        code_target="repro.kronecker.kronfit:KronFitEstimator",
    ),
    "KronMom": EstimatorMethod(
        name="KronMom",
        factory=_kronmom_factory,
        code_target="repro.kronecker.kronmom:KronMomEstimator",
    ),
    "Private": EstimatorMethod(
        name="Private",
        factory=_private_factory,
        accepts_seed=True,
        accepts_epsilon=True,
        accepts_delta=True,
        code_target="repro.core.estimator:PrivateKroneckerEstimator",
    ),
    "DPDegree": EstimatorMethod(
        name="DPDegree",
        factory=lambda **params: DPDegreeSequenceSynthesizer(**params),
        accepts_seed=True,
        accepts_epsilon=True,
        code_target="repro.core.baseline:DPDegreeSequenceSynthesizer",
    ),
    "Fixed": EstimatorMethod(
        name="Fixed",
        factory=lambda **params: FixedInitiatorEstimator(**params),
        code_target="repro.core.protocols:FixedInitiatorEstimator",
    ),
}


def estimator_method(name: str) -> EstimatorMethod:
    """Look a method up, failing with the valid axis values."""
    try:
        return ESTIMATOR_METHODS[name]
    except KeyError:
        raise ValidationError(
            f"unknown estimator method {name!r}; registered methods: "
            f"{', '.join(available_estimator_methods())}"
        ) from None


def available_estimator_methods() -> tuple[str, ...]:
    """The registered values of the estimator axis."""
    return tuple(ESTIMATOR_METHODS)


def build_estimator(
    method: str,
    params: Mapping[str, Any] | tuple[tuple[str, Any], ...] = (),
    *,
    epsilon: float | None = None,
    delta: float | None = None,
    seed: SeedLike = None,
) -> Estimator:
    """Instantiate a registered method with scenario-axis injection.

    ``params`` always win; the budget (``epsilon`` / ``delta``) and the
    randomness (``seed``, usually the trial's RNG stream) are injected
    only where the method's capability flags say they are meaningful and
    the spec did not pin an explicit value.
    """
    descriptor = estimator_method(method)
    kwargs = dict(params)
    if descriptor.accepts_epsilon and epsilon is not None:
        kwargs.setdefault("epsilon", epsilon)
    if descriptor.accepts_delta and delta is not None:
        kwargs.setdefault("delta", delta)
    if descriptor.accepts_seed and seed is not None:
        kwargs.setdefault("seed", seed)
    return descriptor.factory(**kwargs)
