"""The paper's contribution: differentially private SKG estimation.

* :mod:`repro.core.estimator` — :class:`PrivateKroneckerEstimator`,
  Algorithm 1 of the paper,
* :mod:`repro.core.release` — the publishable result object (estimate +
  privacy ledger + sampling),
* :mod:`repro.core.nonprivate` — uniform wrappers over the KronMom and
  KronFit baselines so experiments can swap estimators,
* :mod:`repro.core.protocols` — the :class:`Estimator` / ``FittedModel``
  protocol and the method registry the scenario grid draws its estimator
  axis from,
* :mod:`repro.core.synthesis` — synthetic-graph ensembles from an estimate.
"""

from repro.core.estimator import PrivateKroneckerEstimator
from repro.core.release import PrivateEstimate
from repro.core.nonprivate import (
    EstimatorResult,
    fit_kronmom,
    fit_kronfit,
    fit_private,
)
from repro.core.protocols import (
    ESTIMATOR_METHODS,
    Estimator,
    EstimatorMethod,
    FittedModel,
    FixedInitiatorEstimator,
    FixedInitiatorModel,
    available_estimator_methods,
    build_estimator,
    estimator_method,
)
from repro.core.synthesis import sample_ensemble, ensemble_matching_statistics
from repro.core.baseline import DPDegreeSequenceSynthesizer, DegreeSequenceModel

__all__ = [
    "PrivateKroneckerEstimator",
    "PrivateEstimate",
    "EstimatorResult",
    "fit_kronmom",
    "fit_kronfit",
    "fit_private",
    "Estimator",
    "FittedModel",
    "EstimatorMethod",
    "ESTIMATOR_METHODS",
    "estimator_method",
    "available_estimator_methods",
    "build_estimator",
    "FixedInitiatorEstimator",
    "FixedInitiatorModel",
    "sample_ensemble",
    "ensemble_matching_statistics",
    "DPDegreeSequenceSynthesizer",
    "DegreeSequenceModel",
]
