"""Algorithm 1: differentially private estimation of the SKG initiator.

The pipeline (numbering as in the paper):

1.   compute the degree vector of G,
2.   release an (ε/2)-DP sorted degree sequence (Hay et al.),
3.   derive Ẽ, H̃, T̃ from the released degrees,
4-5. release an (ε/2, δ)-DP triangle count Δ̃ (NRS smooth sensitivity),
6.   run Gleich–Owen moment matching on {Ẽ, H̃, T̃, Δ̃}.

Steps 1-5 live in :mod:`repro.privacy.stats_release`; step 6 reuses the
non-private :class:`~repro.kronecker.kronmom.KronMomEstimator` verbatim —
the only difference between "KronMom" and "Private" in the experiments is
which statistics enter the objective.  By sequential composition the
returned estimate is (ε, δ)-differentially private (Corollary 4.11), and
everything derived from it afterwards is post-processing.
"""

from __future__ import annotations

from repro.errors import EstimationError
from repro.graphs.graph import Graph
from repro.graphs.operations import next_power_of_two_exponent
from repro.kronecker.kronmom import DEFAULT_FEATURES, KronMomEstimator
from repro.core.release import PrivateEstimate
from repro.privacy.stats_release import release_matching_statistics
from repro.stats.counts import MatchingStatistics
from repro.utils.rng import SeedLike
from repro.utils.validation import check_in_unit_interval, check_positive

__all__ = ["PrivateKroneckerEstimator"]


class PrivateKroneckerEstimator:
    """(ε, δ)-differentially private SKG initiator estimation (Algorithm 1).

    Parameters
    ----------
    epsilon, delta:
        Total privacy budget (paper default: ε = 0.2, δ = 0.01).
    degree_share:
        Fraction of ε spent on the degree release (paper: 0.5).
    constrained_inference:
        Apply Hay et al.'s isotonic post-processing to the noisy degrees.
    distance, normalization, features, grid_points, n_refinements:
        Forwarded to the underlying moment matcher (see
        :class:`~repro.kronecker.kronmom.KronMomEstimator`).
    triangle_floor:
        Policy for stabilising the noisy triangle count before matching.
        The Laplace scale ``2·SS_β/ε`` of the triangle release is public,
        so flooring Δ̃ at it is privacy-free post-processing.  Without a
        floor, a noise draw can leave Δ̃ near (or below) zero, and the
        ``1/Δ̃²`` weight of the default normalisation then blows up and
        drags the fit to a degenerate triangle-free initiator.  Options:
        ``"noise_scale"`` (default; empirically the most robust — see the
        policy ablation in benchmarks/bench_ablation_epsilon.py),
        ``"one"`` (floor at 1), ``"none"`` (no adjustment beyond the
        matcher's internal floor).
    seed:
        Randomness for the noise draws (see the RNG caveat in
        :mod:`repro.utils.rng`).

    Examples
    --------
    >>> from repro.kronecker import Initiator
    >>> graph = Initiator(0.99, 0.45, 0.25).sample(10, seed=3)
    >>> estimate = PrivateKroneckerEstimator(epsilon=1.0, delta=0.01,
    ...                                      seed=0).fit(graph)
    >>> estimate.epsilon
    1.0
    """

    def __init__(
        self,
        epsilon: float = 0.2,
        delta: float = 0.01,
        *,
        degree_share: float = 0.5,
        constrained_inference: bool = True,
        distance: str = "squared",
        normalization: str = "observed_squared",
        features: tuple[str, ...] = DEFAULT_FEATURES,
        grid_points: int = 21,
        n_refinements: int = 5,
        triangle_floor: str = "noise_scale",
        seed: SeedLike = None,
    ) -> None:
        self.epsilon = check_positive(epsilon, "epsilon")
        self.delta = check_in_unit_interval(delta, "delta")
        self.degree_share = degree_share
        self.constrained_inference = constrained_inference
        if triangle_floor not in ("noise_scale", "one", "none"):
            raise ValueError(
                f"triangle_floor must be 'noise_scale', 'one' or 'none', "
                f"got {triangle_floor!r}"
            )
        self.triangle_floor = triangle_floor
        self.seed = seed
        self._matcher = KronMomEstimator(
            distance=distance,
            normalization=normalization,
            features=features,
            grid_points=grid_points,
            n_refinements=n_refinements,
        )

    def fit(self, graph: Graph) -> PrivateEstimate:
        """Run Algorithm 1 on ``graph`` and return the private estimate."""
        if graph.n_nodes < 2:
            raise EstimationError("graph too small for private estimation")
        k = next_power_of_two_exponent(graph.n_nodes)
        release = release_matching_statistics(
            graph,
            self.epsilon,
            self.delta,
            degree_share=self.degree_share,
            constrained_inference=self.constrained_inference,
            seed=self.seed,
        )
        statistics = self._apply_triangle_floor(release)
        moment_result = self._matcher.fit_statistics(statistics, k)
        return PrivateEstimate(
            initiator=moment_result.initiator,
            k=k,
            release=release,
            moment_result=moment_result,
        )

    def _apply_triangle_floor(self, release) -> "MatchingStatistics":
        """Stabilise the triangle statistic (privacy-free post-processing)."""
        statistics = release.statistics
        if self.triangle_floor == "none":
            return statistics
        floor = 1.0
        if self.triangle_floor == "noise_scale":
            floor = max(1.0, release.triangle_release.noise_scale)
        if statistics.triangles >= floor:
            return statistics
        return MatchingStatistics(
            edges=statistics.edges,
            hairpins=statistics.hairpins,
            tripins=statistics.tripins,
            triangles=floor,
        )
