"""A structure-based DP synthesizer baseline (the paper's §5 comparison).

The paper's closest related work (Sala et al., IMC 2011) releases
*structural statistics* under DP and generates synthetic graphs from them
directly, instead of fitting a parametric model.  The paper lists a
comparison against that family as future work; this module provides the
natural member of the family that our substrate supports end to end:

1. release the sorted degree sequence with Hay et al.'s mechanism
   ((ε, 0)-DP — the same sub-release Algorithm 1 uses),
2. round it to a graphical-ish integer sequence (non-negative, even sum,
   capped at n − 1),
3. generate synthetic graphs with the erased configuration model.

Relative to the SKG release, this baseline spends its entire budget on
degrees: it reproduces the degree distribution *better*, but carries no
information about triadic closure or community structure — exactly the
trade-off `benchmarks/bench_baseline_comparison.py` quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EstimationError
from repro.graphs.generators import configuration_model_graph
from repro.graphs.graph import Graph
from repro.privacy.accountant import PrivacyAccountant
from repro.privacy.degree_release import DegreeRelease, release_sorted_degrees
from repro.utils.rng import SeedLike, as_generator, spawn_generators
from repro.utils.validation import check_positive

__all__ = ["DPDegreeSequenceSynthesizer", "DegreeSequenceModel"]


@dataclass(frozen=True)
class DegreeSequenceModel:
    """The publishable output of the baseline synthesizer.

    Attributes
    ----------
    degrees:
        The DP integer degree sequence (sorted ascending) that synthetic
        graphs are generated from.
    degree_release:
        The underlying Hay et al. release with its diagnostics.
    accountant:
        The privacy ledger (a single ε charge; the mechanism is pure DP).
    """

    degrees: np.ndarray
    degree_release: DegreeRelease
    accountant: PrivacyAccountant

    @property
    def epsilon(self) -> float:
        """Total ε consumed."""
        return self.accountant.spent[0]

    def sample_graph(self, seed: SeedLike = None) -> Graph:
        """One synthetic graph via the erased configuration model."""
        return configuration_model_graph(self.degrees, seed=seed)

    def sample_graphs(self, count: int, seed: SeedLike = None) -> list[Graph]:
        """``count`` independent synthetic graphs."""
        return [
            configuration_model_graph(self.degrees, seed=rng)
            for rng in spawn_generators(seed, count)
        ]


class DPDegreeSequenceSynthesizer:
    """Degree-sequence-only DP synthetic graph generation.

    Parameters
    ----------
    epsilon:
        Privacy budget (pure ε-DP; no δ is consumed).
    constrained_inference:
        Apply Hay et al.'s isotonic post-processing (on by default).
    seed:
        Noise randomness.

    Examples
    --------
    >>> from repro.graphs.generators import barabasi_albert_graph
    >>> graph = barabasi_albert_graph(200, 3, seed=0)
    >>> model = DPDegreeSequenceSynthesizer(epsilon=2.0, seed=0).fit(graph)
    >>> synthetic = model.sample_graph(seed=1)
    >>> abs(synthetic.n_edges - graph.n_edges) < 0.2 * graph.n_edges
    True
    """

    def __init__(
        self,
        epsilon: float = 0.2,
        *,
        constrained_inference: bool = True,
        seed: SeedLike = None,
    ) -> None:
        self.epsilon = check_positive(epsilon, "epsilon")
        self.constrained_inference = constrained_inference
        self.seed = seed

    def fit(self, graph: Graph) -> DegreeSequenceModel:
        """Release the DP degree sequence of ``graph`` and wrap it."""
        if graph.n_nodes < 2:
            raise EstimationError("graph too small for degree-sequence synthesis")
        rng = as_generator(self.seed)
        accountant = PrivacyAccountant(epsilon=self.epsilon, delta=0.0)
        release = release_sorted_degrees(
            graph,
            self.epsilon,
            constrained_inference=self.constrained_inference,
            seed=rng,
        )
        accountant.charge("sorted-degree sequence (Hay et al.)", self.epsilon, 0.0)
        degrees = _round_to_graphical(release.degrees, graph.n_nodes)
        return DegreeSequenceModel(
            degrees=degrees, degree_release=release, accountant=accountant
        )


def _round_to_graphical(noisy_degrees: np.ndarray, n_nodes: int) -> np.ndarray:
    """Round a real degree estimate to a usable integer sequence.

    Clips into [0, n − 1], rounds to nearest integer, and fixes parity by
    nudging the largest degree (the configuration model needs an even stub
    count).  This is deterministic post-processing of DP output.
    """
    degrees = np.clip(np.round(noisy_degrees), 0, max(n_nodes - 1, 0)).astype(np.int64)
    if degrees.sum() % 2 != 0:
        target = int(np.argmax(degrees))
        if degrees[target] > 0 and (degrees[target] == n_nodes - 1):
            degrees[target] -= 1
        else:
            degrees[target] += 1
    return np.sort(degrees)
