"""The publishable private estimate.

Differential privacy is closed under post-processing, so once
:class:`PrivateEstimate` is computed it can be shared freely: the fitted
initiator defines a distribution over graphs, and anyone can sample
synthetic graphs or evaluate expected statistics from it without touching
the sensitive input again.  The object therefore carries everything a
downstream researcher needs — the parameter, the Kronecker order, the
privacy ledger, and sampling helpers — and nothing derived from the raw
graph except through the DP release.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.graph import Graph
from repro.kronecker.initiator import Initiator
from repro.kronecker.kronmom import MomentMatchResult
from repro.kronecker.moments import expected_statistics
from repro.privacy.stats_release import StatisticsRelease
from repro.stats.counts import MatchingStatistics
from repro.utils.rng import SeedLike, spawn_generators

__all__ = ["PrivateEstimate"]


@dataclass(frozen=True)
class PrivateEstimate:
    """A differentially private SKG parameter estimate Θ̃.

    Attributes
    ----------
    initiator:
        The private estimate (canonical a >= c).
    k:
        Kronecker order: synthetic graphs have ``2^k`` nodes.
    release:
        The DP statistics bundle the fit consumed (with its accountant).
    moment_result:
        Diagnostics of the moment-matching solve.
    """

    initiator: Initiator
    k: int
    release: StatisticsRelease
    moment_result: MomentMatchResult

    @property
    def epsilon(self) -> float:
        """Total ε consumed producing this estimate."""
        return self.release.epsilon

    @property
    def delta(self) -> float:
        """Total δ consumed producing this estimate."""
        return self.release.delta

    def sample_graph(self, seed: SeedLike = None) -> Graph:
        """One synthetic graph from the estimated distribution."""
        return self.initiator.sample(self.k, seed=seed)

    def sample_graphs(self, count: int, seed: SeedLike = None) -> list[Graph]:
        """``count`` independent synthetic graphs (reproducible from seed)."""
        return [
            self.initiator.sample(self.k, seed=rng)
            for rng in spawn_generators(seed, count)
        ]

    def expected_statistics(self) -> MatchingStatistics:
        """Closed-form expected {E, H, T, Δ} under the estimate."""
        return expected_statistics(self.initiator, self.k)

    def describe(self) -> str:
        """Multi-line report: parameter, fit diagnostics, privacy ledger."""
        theta = self.initiator
        lines = [
            f"private SKG estimate: a={theta.a:.4f} b={theta.b:.4f} c={theta.c:.4f}",
            f"kronecker order k={self.k} ({2 ** self.k} nodes)",
            f"moment objective: {self.moment_result.objective:.6g} "
            f"over features {', '.join(self.moment_result.features)}",
            self.release.accountant.describe(),
        ]
        return "\n".join(lines)
