"""Synthetic-graph ensembles from a fitted initiator.

The paper's figures average statistics over 100 synthetic realizations
("Expected kron-fit", "Expected private", ...).  These helpers produce
reproducible ensembles and their aggregate matching statistics; the
figure-series averaging itself lives in :mod:`repro.evaluation.figures`.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.kronecker.initiator import as_initiator
from repro.kronecker.sampling import sample_skg
from repro.stats.counts import MatchingStatistics, matching_statistics
from repro.utils.rng import SeedLike, spawn_generators
from repro.utils.validation import check_integer

__all__ = ["sample_ensemble", "ensemble_matching_statistics"]


def sample_ensemble(initiator, k: int, count: int, seed: SeedLike = None) -> list[Graph]:
    """``count`` independent SKG realizations of Θ^{⊗k} (seed-reproducible)."""
    theta = as_initiator(initiator)
    k = check_integer(k, "k", minimum=1)
    count = check_integer(count, "count", minimum=0)
    return [sample_skg(theta, k, seed=rng) for rng in spawn_generators(seed, count)]


def _graph_statistics_trial(
    rng: np.random.Generator, *, graph: Graph
) -> MatchingStatistics:
    """Count one ensemble member (deterministic; ``rng`` is unused)."""
    return matching_statistics(graph)


def ensemble_matching_statistics(
    graphs: list[Graph], *, n_jobs: int | None = None
) -> MatchingStatistics:
    """Mean {E, H, T, Δ} over an ensemble (Monte-Carlo expected statistics).

    The per-graph counting passes are independent, so they run through
    :func:`repro.runtime.run_trials`: ``n_jobs`` (default: the
    ``REPRO_N_JOBS`` knob) fans them across the persistent worker pool,
    and — the counts being deterministic — the means are bit-identical
    for any worker count.
    """
    if not graphs:
        raise ValueError("ensemble must contain at least one graph")
    from repro.runtime import TrialSpec, run_trials

    report = run_trials(
        [
            TrialSpec(fn=_graph_statistics_trial, params={"graph": graph}, index=index)
            for index, graph in enumerate(graphs)
        ],
        seed=0,
        n_jobs=n_jobs,
        label="ensemble-statistics",
    )
    rows = np.array([tuple(stats) for stats in report.results], dtype=np.float64)
    means = rows.mean(axis=0)
    return MatchingStatistics(
        edges=float(means[0]),
        hairpins=float(means[1]),
        tripins=float(means[2]),
        triangles=float(means[3]),
    )
