"""Uniform front door over the three estimators the paper compares.

Table 1 and every figure put "KronFit", "KronMom" and "Private" side by
side.  The underlying estimators return different result types with
different diagnostics; :class:`EstimatorResult` is the common denominator
the evaluation harness consumes, and the ``fit_*`` helpers produce it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.graphs.graph import Graph
from repro.graphs.operations import next_power_of_two_exponent
from repro.kronecker.initiator import Initiator
from repro.kronecker.kronfit import KronFitEstimator
from repro.kronecker.kronmom import KronMomEstimator
from repro.core.estimator import PrivateKroneckerEstimator
from repro.utils.rng import SeedLike

__all__ = ["EstimatorResult", "fit_kronmom", "fit_kronfit", "fit_private"]


@dataclass(frozen=True)
class EstimatorResult:
    """What the experiment harness needs from any estimator.

    Attributes
    ----------
    method:
        Display name ("KronFit" / "KronMom" / "Private").
    initiator:
        The fitted initiator (canonical).
    k:
        Kronecker order for synthetic sampling.
    details:
        The estimator-specific result object, for diagnostics.
    """

    method: str
    initiator: Initiator
    k: int
    details: Any

    @property
    def epsilon(self) -> float:
        """Privacy budget the fit consumed (inf for non-private baselines).

        Makes every estimator result satisfy the
        :class:`repro.core.protocols.FittedModel` protocol, so the
        scenario grid can treat private and non-private methods as
        interchangeable axis values.
        """
        consumed = getattr(self.details, "epsilon", None)
        return float(consumed) if consumed is not None else math.inf

    def sample_graph(self, seed: SeedLike = None) -> Graph:
        """One synthetic graph from the fitted model."""
        return self.initiator.sample(self.k, seed=seed)


def fit_kronmom(graph: Graph, **kwargs) -> EstimatorResult:
    """Non-private Gleich–Owen moment matching on exact statistics."""
    result = KronMomEstimator(**kwargs).fit(graph)
    return EstimatorResult(
        method="KronMom", initiator=result.initiator, k=result.k, details=result
    )


def fit_kronfit(graph: Graph, **kwargs) -> EstimatorResult:
    """Leskovec–Faloutsos approximate MLE."""
    result = KronFitEstimator(**kwargs).fit(graph)
    return EstimatorResult(
        method="KronFit", initiator=result.initiator, k=result.k, details=result
    )


def fit_private(
    graph: Graph,
    epsilon: float = 0.2,
    delta: float = 0.01,
    **kwargs,
) -> EstimatorResult:
    """The paper's Algorithm 1 (differentially private moment matching)."""
    estimate = PrivateKroneckerEstimator(epsilon, delta, **kwargs).fit(graph)
    return EstimatorResult(
        method="Private",
        initiator=estimate.initiator,
        k=estimate.k,
        details=estimate,
    )


def kronecker_order(graph: Graph) -> int:
    """The order k every estimator uses for ``graph`` (pad-to-2^k rule)."""
    return next_power_of_two_exponent(graph.n_nodes)
