"""Atomic on-disk run directories and the loader/query API.

Layout (one directory per tracked run)::

    runs/
      20260808T120000__grid__1a2b3c4d/
        run.json                      # config, seeds, env, attribution
        metrics/
          000__as20-kronmom.json      # per-scenario per-trial metric rows
          001__as20-dpdegree.json

The directory name is ``<timestamp>__<preset>__<shorthash>``: the UTC
creation time, the preset (or ``grid``) slug, and a short stable hash of
the run's config + scenario seeds, so same-configuration runs sort
adjacently and re-runs never collide (a same-second collision gets a
``-2`` suffix).

Writes are atomic at the directory level: everything is staged in a
hidden tempdir inside the runs directory (``run.json`` written *last*)
and renamed into place in one step, so a crashed or failed run can never
leave a directory containing a partial ``run.json`` — and the loader
ignores hidden directories and directories without a ``run.json``.

The runs directory resolves argument → ``REPRO_RUNS_DIR`` → ``runs``.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import tempfile
from pathlib import Path

from repro.errors import ValidationError
from repro.runtime.hashing import stable_hash
from repro.tracking.record import SCHEMA_VERSION, RunRecord

__all__ = [
    "RUNS_DIR_ENV",
    "resolve_runs_dir",
    "write_run",
    "load_run",
    "list_runs",
    "find_run",
]

RUNS_DIR_ENV = "REPRO_RUNS_DIR"
DEFAULT_RUNS_DIR = "runs"

RUN_FILE = "run.json"
METRICS_DIR = "metrics"


def resolve_runs_dir(runs_dir: str | os.PathLike | None = None) -> Path:
    """Resolve the runs directory: argument, then ``REPRO_RUNS_DIR``,
    then ``runs/`` under the working directory."""
    if runs_dir is not None:
        return Path(runs_dir)
    return Path(os.environ.get(RUNS_DIR_ENV) or DEFAULT_RUNS_DIR)


def _slug(token: str) -> str:
    """Filesystem-safe lowercase slug of a preset/scenario name."""
    cleaned = re.sub(r"[^A-Za-z0-9]+", "-", token.lower()).strip("-")
    return cleaned or "run"


def _short_hash(record: RunRecord) -> str:
    """Stable 8-hex fingerprint of the run's config + scenario seeds.

    Deliberately excludes the timestamp and the metrics: a cold run and
    its cache-resumed re-run share the fingerprint (same configuration,
    same seeds), which is exactly the pair ``repro compare`` is for.
    """
    payload = {
        "config": record.config,
        "scenarios": [
            {"name": entry["name"], "seeds": entry["seeds"]}
            for entry in record.scenarios
        ],
    }
    return stable_hash(payload)[:8]


def _run_name(record: RunRecord) -> str:
    compact = re.sub(r"[^0-9TZ]", "", record.created)
    return f"{compact}__{_slug(record.preset or record.label)}__{_short_hash(record)}"


def _write_json(path: Path, payload: dict) -> None:
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def write_run(record: RunRecord, runs_dir: str | os.PathLike | None = None) -> Path:
    """Persist ``record`` as a new run directory; returns its path.

    Atomic: the directory is staged under a hidden temp name and renamed
    into place only after ``run.json`` (written last) is complete.  On
    any failure the staging directory is removed and nothing appears in
    the runs directory.
    """
    base = resolve_runs_dir(runs_dir)
    base.mkdir(parents=True, exist_ok=True)
    name = _run_name(record)
    staging = Path(tempfile.mkdtemp(prefix=f".staging-{name}-", dir=base))
    try:
        payload = {
            "schema_version": record.schema_version,
            "created": record.created,
            "label": record.label,
            "preset": record.preset,
            "config": record.config,
            "environment": record.environment,
            "timing": record.timing,
            "scenarios": [],
        }
        metrics_dir = staging / METRICS_DIR
        metrics_dir.mkdir()
        for index, entry in enumerate(record.scenarios):
            entry = dict(entry)
            rows = entry.pop("metrics")
            table = f"{METRICS_DIR}/{index:03d}__{_slug(entry['name'])}.json"
            _write_json(
                staging / table,
                {"scenario": entry["name"], "rows": rows},
            )
            entry["metrics_file"] = table
            payload["scenarios"].append(entry)
        _write_json(staging / RUN_FILE, payload)
        final = base / name
        suffix = 2
        while final.exists():
            final = base / f"{name}-{suffix}"
            suffix += 1
        os.rename(staging, final)
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    return final


def load_run(path: str | os.PathLike) -> RunRecord:
    """Load one run directory back into a :class:`RunRecord`.

    The loaded record compares equal to the record that was written
    (the schema round-trip guarantee); a missing ``run.json`` or a
    record written under a different :data:`SCHEMA_VERSION` fails
    loudly instead of being misread.
    """
    directory = Path(path)
    run_file = directory / RUN_FILE
    if not run_file.is_file():
        raise ValidationError(
            f"{directory} is not a run directory (no {RUN_FILE}); "
            f"see `repro runs list`"
        )
    payload = json.loads(run_file.read_text(encoding="utf-8"))
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValidationError(
            f"{run_file} has run-record schema version {version!r}; this "
            f"build reads version {SCHEMA_VERSION} — regenerate the run "
            f"with `repro run-scenario --track`"
        )
    scenarios = []
    for entry in payload["scenarios"]:
        entry = dict(entry)
        table = entry.pop("metrics_file")
        rows = json.loads((directory / table).read_text(encoding="utf-8"))
        entry["metrics"] = rows["rows"]
        scenarios.append(entry)
    return RunRecord(
        schema_version=version,
        created=payload["created"],
        label=payload["label"],
        preset=payload["preset"],
        config=payload["config"],
        environment=payload["environment"],
        timing=payload["timing"],
        scenarios=scenarios,
    )


def list_runs(runs_dir: str | os.PathLike | None = None) -> list[Path]:
    """Run-directory paths under ``runs_dir``, oldest first.

    Ordered by the write time of each run's ``run.json`` (its
    nanosecond mtime — the file is the last thing written before the
    staging rename, so it marks when the run was persisted), with the
    timestamp-first name as the tie-break: the name alone only resolves
    to the second, and two runs persisted within the same second would
    otherwise order by config hash.  Hidden entries (staging leftovers)
    and directories without a ``run.json`` are skipped.
    """
    base = resolve_runs_dir(runs_dir)
    if not base.is_dir():
        return []
    candidates = (
        path
        for path in base.iterdir()
        if path.is_dir()
        and not path.name.startswith(".")
        and (path / RUN_FILE).is_file()
    )
    return sorted(
        candidates,
        key=lambda path: ((path / RUN_FILE).stat().st_mtime_ns, path.name),
    )


def find_run(token: str, runs_dir: str | os.PathLike | None = None) -> Path:
    """Resolve a CLI run token: a run-directory path, or a name under
    the runs directory."""
    direct = Path(token)
    if (direct / RUN_FILE).is_file():
        return direct
    named = resolve_runs_dir(runs_dir) / token
    if (named / RUN_FILE).is_file():
        return named
    known = ", ".join(path.name for path in list_runs(runs_dir)) or "(none)"
    raise ValidationError(
        f"{token!r} is neither a run directory nor a run name under "
        f"{resolve_runs_dir(runs_dir)}; tracked runs: {known}"
    )
