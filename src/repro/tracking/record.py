"""The run record: one executed scenario batch as plain, frozen data.

:class:`RunRecord` is deliberately *data*, not behaviour: every field is
built from JSON-representable values (dicts, lists, strings, numbers,
booleans, ``None``), so a record written to disk and loaded back
compares equal to the original (the schema round-trip guarantee the
tracking tests pin).  :func:`build_run_record` converts live
:class:`~repro.scenarios.engine.ScenarioReport` objects into that form:

* the frozen scenario specs plus the resolved
  :class:`~repro.evaluation.experiments.ExperimentConfig`,
* the **eagerly materialized per-trial seeds** the engine actually used
  (carried on the report by :func:`repro.scenarios.engine.run_scenarios`,
  serialized by :func:`seed_token` — spawn policies record the exact
  child :class:`~numpy.random.SeedSequence` streams),
* per-trial metric tables (:func:`repro.tracking.metrics.trial_metrics`),
* wall-clock and executed/cached attribution from
  :attr:`~repro.runtime.spec.TrialRunReport.cached_indices`,
* an environment fingerprint: python/numpy/scipy versions, the resolved
  counting and chain kernel backends, the pool mode, and the CPU count.

Everything sits under a ``schema_version`` so loaders can refuse records
written by an incompatible layout instead of misreading them.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Any, Iterable, Mapping

import numpy as np

from repro.errors import ValidationError
from repro.tracking.metrics import trial_metrics

__all__ = [
    "SCHEMA_VERSION",
    "RunRecord",
    "build_run_record",
    "environment_fingerprint",
    "seed_token",
]

# Bump when the run.json layout changes; repro.tracking.store refuses to
# load records written under a different version.
# v2: failure observability — per-scenario failed/retried attribution,
# batch-level failed/retried/pool_restarts timing, and the fault/retry
# knobs in the environment fingerprint.
SCHEMA_VERSION = 2


@dataclass(frozen=True)
class RunRecord:
    """One tracked run, as plain JSON-representable data.

    Attributes
    ----------
    schema_version:
        Layout version of the record (see :data:`SCHEMA_VERSION`).
    created:
        UTC timestamp (``YYYY-MM-DDTHH:MM:SSZ``) the record was built.
    label:
        Short run label: the preset name, or ``"grid"`` for ad-hoc grids.
    preset:
        The registered preset the run executed, or ``None`` for grids.
    config:
        The resolved experiment configuration (every knob, post
        environment overrides) as a field → value mapping.
    environment:
        The host fingerprint (:func:`environment_fingerprint`).
    timing:
        Batch-level telemetry: wall-clock seconds, executed/cached trial
        totals, the resolved worker count, and the failure attribution
        (``failed``/``retried`` trial totals, ``pool_restarts``).
    scenarios:
        One entry per scenario: the frozen spec payload, the materialized
        per-trial seed tokens, the per-trial ``metrics`` rows, and the
        scenario's executed/cached and failed/retried attribution.
    """

    schema_version: int
    created: str
    label: str
    preset: str | None
    config: dict[str, Any]
    environment: dict[str, Any]
    timing: dict[str, Any]
    scenarios: list = field(repr=False)


def seed_token(seed: Any) -> dict[str, Any]:
    """A JSON-representable token of an engine seed.

    Round-trips the two per-trial seed forms the engine hands out —
    plain integers and spawned :class:`numpy.random.SeedSequence`
    children (entropy + spawn key) — so a record states the *exact*
    stream every trial consumed.
    """
    if isinstance(seed, np.random.SeedSequence):
        entropy = seed.entropy
        if isinstance(entropy, (list, tuple)):
            entropy = [int(word) for word in entropy]
        elif entropy is not None:
            entropy = int(entropy)
        return {
            "kind": "seedsequence",
            "entropy": entropy,
            "spawn_key": [int(key) for key in seed.spawn_key],
        }
    if seed is None:
        return {"kind": "none"}
    return {"kind": "int", "value": int(seed)}


def environment_fingerprint() -> dict[str, Any]:
    """The host/runtime fingerprint stamped into every record.

    Captures what the comparison layer needs to explain a drift that is
    *not* in the config: interpreter and library versions, the resolved
    backend of both native-kernel families, the pool mode, and the
    machine's core count.
    """
    import platform

    import scipy

    from repro.native.chain import resolve_chain_backend
    from repro.runtime import (
        FAULT_INJECT_ENV,
        resolve_n_jobs,
        resolve_pool_mode,
        resolve_trial_retries,
        resolve_trial_timeout,
    )
    from repro.stats.kernels import resolve_kernel_backend

    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scipy": scipy.__version__,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        "counting_backend": resolve_kernel_backend(),
        "chain_backend": resolve_chain_backend(),
        "pool_mode": resolve_pool_mode(),
        "n_jobs": resolve_n_jobs(),
        "trial_retries": resolve_trial_retries(),
        "trial_timeout": resolve_trial_timeout(),
        "fault_inject": os.environ.get(FAULT_INJECT_ENV) or None,
    }


def build_run_record(
    reports: Iterable,
    *,
    config=None,
    label: str = "scenarios",
    preset: str | None = None,
    created: str | None = None,
) -> RunRecord:
    """Build the record of one executed scenario batch.

    ``reports`` are the :class:`~repro.scenarios.engine.ScenarioReport`
    objects a :func:`repro.scenarios.run_scenarios` call returned — they
    carry the materialized per-trial seeds the engine actually used, so
    the record never has to re-derive (and possibly mis-derive)
    randomness after the fact.
    """
    if config is None:
        from repro.evaluation.experiments import default_config

        config = default_config()
    reports = list(reports)
    if created is None:
        created = datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
    scenarios = [_scenario_entry(report) for report in reports]
    executed = sum(entry["executed"] for entry in scenarios)
    cached = sum(entry["cached"] for entry in scenarios)
    failed = sum(entry["failed"] for entry in scenarios)
    retried = sum(entry["retried"] for entry in scenarios)
    elapsed = max((report.report.elapsed for report in reports), default=0.0)
    n_jobs = max((report.report.n_jobs for report in reports), default=1)
    # Batched scenarios share one engine call, so every sub-report carries
    # the same batch-wide restart count — max, not sum.
    pool_restarts = max(
        (report.report.pool_restarts for report in reports), default=0
    )
    return RunRecord(
        schema_version=SCHEMA_VERSION,
        created=created,
        label=str(label),
        preset=preset,
        config=_jsonify(dataclasses.asdict(config)),
        environment=_jsonify(environment_fingerprint()),
        timing={
            "elapsed_seconds": float(elapsed),
            "executed": int(executed),
            "cached": int(cached),
            "n_jobs": int(n_jobs),
            "failed": int(failed),
            "retried": int(retried),
            "pool_restarts": int(pool_restarts),
        },
        scenarios=scenarios,
    )


def _scenario_entry(report) -> dict[str, Any]:
    """One scenario's record entry: spec + seeds + metrics + attribution."""
    scenario = report.scenario
    run = report.report
    seeds = list(report.seeds)
    if len(seeds) != scenario.ensemble_size:
        raise ValidationError(
            f"scenario {scenario.name!r}: report carries {len(seeds)} "
            f"materialized seeds for {scenario.ensemble_size} trials; "
            f"was it produced by repro.scenarios.run_scenarios?"
        )
    policy = scenario.seed_policy
    return {
        "name": scenario.name,
        "workload": scenario.workload,
        "estimator": {
            "method": scenario.estimator.method,
            "params": _jsonify(scenario.estimator.params),
        },
        "epsilon": scenario.epsilon,
        "delta": scenario.delta,
        "ensemble_size": int(scenario.ensemble_size),
        "seed_policy": {
            "kind": policy.kind,
            "entropy": [int(word) for word in policy.entropy],
            "seeds": [seed_token(seed) for seed in policy.seeds],
        },
        "measure": scenario.measure,
        "measure_params": _jsonify(scenario.measure_params),
        "seeds": [seed_token(seed) for seed in seeds],
        "metrics": [_jsonify(trial_metrics(result)) for result in report.results],
        "executed": int(run.executed),
        "cached": int(run.cached),
        "cached_indices": [int(index) for index in run.cached_indices],
        "failed": int(run.failed),
        "retried": int(run.retried),
        "failed_indices": [int(index) for index in run.failed_indices],
        "retried_indices": [int(index) for index in run.retried_indices],
    }


def _jsonify(value: Any) -> Any:
    """Canonicalize to the JSON value vocabulary (tuples → lists, numpy
    scalars → python numbers); unsupported types fail loudly."""
    if value is None or isinstance(value, (str, bool)):
        return value
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, np.random.SeedSequence):
        return seed_token(value)
    if isinstance(value, np.ndarray):
        return [_jsonify(item) for item in value.tolist()]
    raise ValidationError(
        f"run records must be JSON-representable; cannot serialize "
        f"{type(value).__qualname__}"
    )
