"""Per-trial metric extraction: scenario results as flat numeric rows.

A tracked run stores, for every trial, a flat ``{metric name: number}``
row — the queryable, diffable form of whatever the scenario's
measurement returned.  Extraction is type-driven like the scenario
renderer (:mod:`repro.scenarios.report`): initiators become parameter
triples, matching statistics become their four counts, graphs their
sizes, figure-statistic bundles per-series summaries, and mappings of
scalars pass through as-is (the ``graph_comparison`` measurement family
already returns metric rows).

Values keep their numeric type (ints stay ints, floats stay floats) so
"bit-identical metrics" survives the JSON round trip exactly; an
unsupported result type raises :class:`~repro.errors.ValidationError`
instead of silently dropping data from the record.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.errors import ValidationError
from repro.graphs.graph import Graph
from repro.kronecker.initiator import Initiator
from repro.runtime import TrialFailure
from repro.stats.counts import MatchingStatistics

__all__ = ["trial_metrics"]


def _number(value: Any):
    """Coerce to a plain int or float (JSON-stable, type-preserving)."""
    if isinstance(value, (bool, np.bool_)):
        return int(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    raise ValidationError(
        f"metric values must be numbers, got {type(value).__qualname__}"
    )


def trial_metrics(result: Any) -> dict[str, Any]:
    """The flat metric row of one trial result.

    Supported result types (the values of the scenario ``measure`` axis):

    * mappings of scalars — passed through, keys sorted (the
      ``graph_comparison`` family),
    * :class:`~repro.kronecker.initiator.Initiator` — ``a``/``b``/``c``,
    * :class:`~repro.stats.counts.MatchingStatistics` — the four counts,
    * :class:`~repro.graphs.graph.Graph` — ``n_nodes``/``n_edges``,
    * figure-statistics bundles (anything exposing a ``series`` mapping
      of label → (xs, ys) curves, i.e.
      :class:`~repro.evaluation.figures.GraphStatistics`) — per-series
      point count, sum, and mean (deterministic float64 reductions, so
      two bit-identical runs produce bit-identical tables),
    * plain numbers — a single ``value`` metric,
    * fitted results exposing an ``initiator`` — the triple (plus
      ``log_likelihood`` where present),
    * :class:`~repro.runtime.TrialFailure` (a permanently failed trial
      under the ``collect`` policy) — an empty row; the failure itself
      is attributed through the scenario entry's ``failed_indices``, and
      the comparison layer skips the position on both sides.
    """
    if isinstance(result, TrialFailure):
        return {}
    if isinstance(result, Mapping):
        return {str(key): _number(result[key]) for key in sorted(result)}
    if isinstance(result, Initiator):
        return {"a": float(result.a), "b": float(result.b), "c": float(result.c)}
    if isinstance(result, MatchingStatistics):
        edges, hairpins, tripins, triangles = tuple(result)
        return {
            "edges": _number(edges),
            "hairpins": _number(hairpins),
            "tripins": _number(tripins),
            "triangles": _number(triangles),
        }
    if isinstance(result, Graph):
        return {"n_nodes": int(result.n_nodes), "n_edges": int(result.n_edges)}
    if isinstance(result, (bool, int, float, np.integer, np.floating, np.bool_)):
        return {"value": _number(result)}
    series = getattr(result, "series", None)
    if isinstance(series, Mapping):
        metrics: dict[str, Any] = {}
        for name in sorted(series):
            ys = np.asarray(series[name].ys, dtype=np.float64)
            metrics[f"{name}.points"] = int(ys.size)
            metrics[f"{name}.y_sum"] = float(ys.sum()) if ys.size else 0.0
            metrics[f"{name}.y_mean"] = float(ys.mean()) if ys.size else 0.0
        return metrics
    initiator = getattr(result, "initiator", None)
    if isinstance(initiator, Initiator):
        metrics = trial_metrics(initiator)
        log_likelihood = getattr(result, "log_likelihood", None)
        if isinstance(log_likelihood, (int, float, np.integer, np.floating)):
            metrics["log_likelihood"] = float(log_likelihood)
        return metrics
    raise ValidationError(
        f"no metric extraction registered for trial results of type "
        f"{type(result).__qualname__}; return a mapping of scalars from the "
        f"measurement, or extend repro.tracking.metrics.trial_metrics"
    )
