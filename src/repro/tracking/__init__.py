"""repro.tracking — tracked run directories for scenario executions.

Scenario runs used to emit transient reports: once a CI job or a local
run finished, its configuration, seeds, metrics, and timings were gone,
and cross-PR performance claims lived only as prose.  This subsystem
makes every run a queryable, diffable artifact:

* :class:`RunRecord` (:mod:`repro.tracking.record`) — one executed
  scenario batch as plain schema-versioned data: the frozen scenario
  specs with resolved config, eagerly materialized per-trial seeds,
  per-trial metric tables, executed/cached attribution, and an
  environment fingerprint (python/numpy/scipy versions, resolved kernel
  backends, pool mode, CPU count);
* the atomic on-disk layout (:mod:`repro.tracking.store`) —
  ``runs/<timestamp>__<preset>__<shorthash>/run.json`` plus per-scenario
  metric tables under ``metrics/``, written tempdir-then-rename so a
  failed run never leaves a partial ``run.json``, with a loader/query
  API (:func:`load_run`, :func:`list_runs`, :func:`find_run`);
* run diffing (:mod:`repro.tracking.compare`) — config deltas,
  per-scenario per-metric drift with tolerance flags, and cache-hit
  attribution, behind the ``repro compare`` subcommand.

The CLI front doors are ``repro run-scenario --track [--runs-dir]``,
``repro compare RUN_A RUN_B``, and ``repro runs list/show``; the runs
directory defaults to ``runs/`` and honours ``REPRO_RUNS_DIR``.
"""

from repro.tracking.compare import (
    RunComparison,
    compare_runs,
    render_comparison,
)
from repro.tracking.metrics import trial_metrics
from repro.tracking.record import (
    SCHEMA_VERSION,
    RunRecord,
    build_run_record,
    environment_fingerprint,
    seed_token,
)
from repro.tracking.store import (
    RUNS_DIR_ENV,
    find_run,
    list_runs,
    load_run,
    resolve_runs_dir,
    write_run,
)

__all__ = [
    "SCHEMA_VERSION",
    "RUNS_DIR_ENV",
    "RunRecord",
    "RunComparison",
    "build_run_record",
    "compare_runs",
    "environment_fingerprint",
    "find_run",
    "list_runs",
    "load_run",
    "render_comparison",
    "resolve_runs_dir",
    "seed_token",
    "trial_metrics",
    "write_run",
]
