"""Diffing two tracked runs: config deltas, metric drift, cache credit.

:func:`compare_runs` lines two :class:`~repro.tracking.record.RunRecord`
objects up scenario-by-scenario and metric-by-metric:

* **config / environment deltas** — knobs and host facts that differ
  (informational: a different backend *explains* a timing difference,
  it is not itself drift);
* **metric drift** — per (scenario, metric), the maximum absolute
  difference across trials, flagged against a tolerance (default 0.0 =
  bit-identical, the CI contract for a cold run vs its cache-resumed
  re-run).  ``NaN`` on both sides compares equal; ``NaN`` on one side is
  unconditional drift;
* **structure mismatches** — scenarios present in only one run, trial
  counts that differ, metric keys that differ: always drift (the runs
  measured different things);
* **cache attribution** — each run's executed/cached split, so the
  comparison states which numbers were recomputed and which were served
  from the trial cache;
* **failure attribution** — each run's failed/retried trial totals and
  pool restarts (schema v2 records).  Positions where *either* run's
  trial permanently failed are excluded from metric drift — a failed
  trial has no metrics to compare — and reported as informational notes
  instead, so "bit-identical on surviving metrics" is exactly what the
  verdict states.  A chaos run whose faults were all healed (retries,
  pool restarts) carries no failed trials and is compared in full.

Comparison is deterministic: the same two records always produce the
same :class:`RunComparison` and the same rendered report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.tracking.record import RunRecord
from repro.utils.tables import TextTable

__all__ = ["MetricDrift", "RunComparison", "compare_runs", "render_comparison"]


@dataclass(frozen=True)
class MetricDrift:
    """Drift of one metric of one scenario across the two runs."""

    scenario: str
    metric: str
    max_abs_diff: float
    within: bool


@dataclass(frozen=True)
class RunComparison:
    """The full diff of two tracked runs (see module docstring)."""

    name_a: str
    name_b: str
    tolerance: float
    config_delta: dict[str, tuple[Any, Any]]
    environment_delta: dict[str, tuple[Any, Any]]
    drifts: list[MetricDrift] = field(repr=False)
    structure_mismatches: list[str] = field(default_factory=list)
    cache: dict[str, dict[str, int]] = field(default_factory=dict)
    failures: dict[str, dict[str, int]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    @property
    def drifted(self) -> list[MetricDrift]:
        """Metrics outside tolerance."""
        return [drift for drift in self.drifts if not drift.within]

    @property
    def has_drift(self) -> bool:
        """True when the runs disagree beyond tolerance (or in shape)."""
        return bool(self.drifted) or bool(self.structure_mismatches)


def _metric_diff(a: Any, b: Any) -> float:
    """Absolute difference of two metric values; NaN==NaN, NaN!=number."""
    a = float(a)
    b = float(b)
    if math.isnan(a) and math.isnan(b):
        return 0.0
    if math.isnan(a) or math.isnan(b):
        return float("inf")
    return abs(a - b)


def compare_runs(
    record_a: RunRecord,
    record_b: RunRecord,
    *,
    tolerance: float = 0.0,
    name_a: str = "A",
    name_b: str = "B",
) -> RunComparison:
    """Diff two run records (see module docstring for semantics)."""
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance}")
    config_delta = _mapping_delta(record_a.config, record_b.config)
    environment_delta = _mapping_delta(record_a.environment, record_b.environment)

    by_name_a = {entry["name"]: entry for entry in record_a.scenarios}
    by_name_b = {entry["name"]: entry for entry in record_b.scenarios}
    mismatches: list[str] = []
    for name in by_name_a:
        if name not in by_name_b:
            mismatches.append(f"scenario {name!r} only in {name_a}")
    for name in by_name_b:
        if name not in by_name_a:
            mismatches.append(f"scenario {name!r} only in {name_b}")

    drifts: list[MetricDrift] = []
    notes: list[str] = []
    for name, entry_a in by_name_a.items():
        entry_b = by_name_b.get(name)
        if entry_b is None:
            continue
        rows_a = entry_a["metrics"]
        rows_b = entry_b["metrics"]
        if len(rows_a) != len(rows_b):
            mismatches.append(
                f"scenario {name!r}: {len(rows_a)} trials in {name_a} vs "
                f"{len(rows_b)} in {name_b}"
            )
            continue
        # A permanently failed trial (collect policy) has no metrics, so
        # its position cannot drift — exclude it on both sides and say so.
        # Records written before schema v2 carry no failed_indices.
        skip = set(entry_a.get("failed_indices", ())) | set(
            entry_b.get("failed_indices", ())
        )
        if skip:
            notes.append(
                f"scenario {name!r}: trial position(s) "
                f"{', '.join(str(p) for p in sorted(skip))} failed in at "
                f"least one run; excluded from drift (comparing the "
                f"{len(rows_a) - len(skip)} surviving trial(s))"
            )
            rows_a = [row for p, row in enumerate(rows_a) if p not in skip]
            rows_b = [row for p, row in enumerate(rows_b) if p not in skip]
        keys_a = {key for row in rows_a for key in row}
        keys_b = {key for row in rows_b for key in row}
        if keys_a != keys_b:
            only = sorted(keys_a.symmetric_difference(keys_b))
            mismatches.append(
                f"scenario {name!r}: metric keys differ ({', '.join(only)})"
            )
            continue
        for metric in sorted(keys_a):
            diff = max(
                (
                    _metric_diff(row_a.get(metric, float("nan")),
                                 row_b.get(metric, float("nan")))
                    for row_a, row_b in zip(rows_a, rows_b)
                ),
                default=0.0,
            )
            drifts.append(
                MetricDrift(
                    scenario=name,
                    metric=metric,
                    max_abs_diff=diff,
                    within=diff <= tolerance,
                )
            )

    cache = {
        name_a: _cache_split(record_a),
        name_b: _cache_split(record_b),
    }
    failures = {
        name_a: _failure_split(record_a),
        name_b: _failure_split(record_b),
    }
    return RunComparison(
        name_a=name_a,
        name_b=name_b,
        tolerance=tolerance,
        config_delta=config_delta,
        environment_delta=environment_delta,
        drifts=drifts,
        structure_mismatches=mismatches,
        cache=cache,
        failures=failures,
        notes=notes,
    )


def _mapping_delta(a: dict, b: dict) -> dict[str, tuple[Any, Any]]:
    delta: dict[str, tuple[Any, Any]] = {}
    for key in sorted(set(a) | set(b)):
        value_a = a.get(key)
        value_b = b.get(key)
        if value_a != value_b:
            delta[key] = (value_a, value_b)
    return delta


def _cache_split(record: RunRecord) -> dict[str, int]:
    return {
        "executed": int(record.timing["executed"]),
        "cached": int(record.timing["cached"]),
    }


def _failure_split(record: RunRecord) -> dict[str, int]:
    # .get defaults keep pre-v2 (and minimal test-built) records readable.
    return {
        "failed": int(record.timing.get("failed", 0)),
        "retried": int(record.timing.get("retried", 0)),
        "pool_restarts": int(record.timing.get("pool_restarts", 0)),
    }


def render_comparison(comparison: RunComparison) -> str:
    """The plain-text comparison report behind ``repro compare``."""
    lines: list[str] = []
    lines.append(
        f"Run comparison — {comparison.name_a} vs {comparison.name_b} "
        f"(tolerance {comparison.tolerance:g})"
    )
    if comparison.config_delta:
        lines.append("config delta:")
        for key, (value_a, value_b) in comparison.config_delta.items():
            lines.append(f"  {key}: {value_a!r} -> {value_b!r}")
    else:
        lines.append("config delta: (none)")
    if comparison.environment_delta:
        lines.append("environment delta:")
        for key, (value_a, value_b) in comparison.environment_delta.items():
            lines.append(f"  {key}: {value_a!r} -> {value_b!r}")
    else:
        lines.append("environment delta: (none)")
    for name in (comparison.name_a, comparison.name_b):
        split = comparison.cache.get(name, {})
        lines.append(
            f"cache attribution: {name} {split.get('executed', 0)} executed / "
            f"{split.get('cached', 0)} cached"
        )
    for name in (comparison.name_a, comparison.name_b):
        split = comparison.failures.get(name, {})
        if any(split.get(key, 0) for key in ("failed", "retried", "pool_restarts")):
            lines.append(
                f"failure attribution: {name} {split.get('failed', 0)} failed / "
                f"{split.get('retried', 0)} retried / "
                f"{split.get('pool_restarts', 0)} pool restart(s)"
            )
    for note in comparison.notes:
        lines.append(f"note: {note}")
    for mismatch in comparison.structure_mismatches:
        lines.append(f"structure mismatch: {mismatch}")

    by_scenario: dict[str, list[MetricDrift]] = {}
    for drift in comparison.drifts:
        by_scenario.setdefault(drift.scenario, []).append(drift)
    if by_scenario:
        table = TextTable(
            ["scenario", "metrics", "max |delta|", "outside tolerance"],
            title="Per-scenario metric drift",
        )
        for name, drifts in by_scenario.items():
            worst = max((drift.max_abs_diff for drift in drifts), default=0.0)
            outside = [drift for drift in drifts if not drift.within]
            detail = (
                ", ".join(
                    f"{drift.metric} ({drift.max_abs_diff:.3g})"
                    for drift in outside[:4]
                )
                + ("…" if len(outside) > 4 else "")
                if outside
                else "-"
            )
            table.add_row([name, len(drifts), f"{worst:.6g}", detail])
        lines.append(table.render())
    if comparison.has_drift:
        drifted = len(comparison.drifted)
        lines.append(
            f"verdict: DRIFT — {drifted} metric(s) outside tolerance, "
            f"{len(comparison.structure_mismatches)} structure mismatch(es)"
        )
    else:
        lines.append(
            f"verdict: metrics identical within tolerance "
            f"{comparison.tolerance:g} ({len(comparison.drifts)} metric(s) "
            f"compared)"
        )
    return "\n".join(lines)
