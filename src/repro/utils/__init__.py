"""Shared low-level utilities: RNG policy, validation, tables, logging."""

from repro.utils.rng import as_generator, spawn_generators
from repro.utils.validation import (
    check_in_unit_interval,
    check_positive,
    check_nonnegative,
    check_probability_matrix,
    check_integer,
)
from repro.utils.tables import TextTable, format_float

__all__ = [
    "as_generator",
    "spawn_generators",
    "check_in_unit_interval",
    "check_positive",
    "check_nonnegative",
    "check_probability_matrix",
    "check_integer",
    "TextTable",
    "format_float",
]
