"""Random-number-generator policy.

All randomness in the library flows through :class:`numpy.random.Generator`
objects.  Public functions accept a ``seed`` argument that may be ``None``
(fresh OS entropy), an integer, a :class:`numpy.random.SeedSequence`, or an
existing ``Generator``; :func:`as_generator` normalises all of these.

Privacy note: the Laplace noise used by the DP mechanisms is drawn from the
same ``Generator`` machinery.  numpy's PCG64 is *not* a cryptographically
secure source; a production deployment of a DP release would substitute a
CSPRNG.  This matches the experimental setting of the paper, which is about
the estimator's calibration, not about hardened randomness.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["as_generator", "spawn_generators", "SeedLike"]

SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Passing an existing ``Generator`` returns it unchanged (no copy), so
    stateful sequential use by the caller behaves as expected.

    >>> g = as_generator(42)
    >>> as_generator(g) is g
    True
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from one seed.

    Used by ensemble routines (e.g. sampling 100 synthetic graphs) so that
    each replicate has an independent stream while the whole ensemble stays
    reproducible from a single seed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children by drawing fresh entropy from the parent stream.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]
