"""Argument-validation helpers.

These raise :class:`repro.errors.ValidationError` with messages that name
the offending argument, so failures surface at API boundaries rather than
deep inside numerical code.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "check_in_unit_interval",
    "check_positive",
    "check_nonnegative",
    "check_integer",
    "check_probability_matrix",
]


def check_in_unit_interval(value: float, name: str) -> float:
    """Validate that ``value`` is a finite float in [0, 1] and return it."""
    value = _as_finite_float(value, name)
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is a finite float > 0 and return it."""
    value = _as_finite_float(value, name)
    if value <= 0.0:
        raise ValidationError(f"{name} must be positive, got {value!r}")
    return value


def check_nonnegative(value: float, name: str) -> float:
    """Validate that ``value`` is a finite float >= 0 and return it."""
    value = _as_finite_float(value, name)
    if value < 0.0:
        raise ValidationError(f"{name} must be non-negative, got {value!r}")
    return value


def check_integer(value: Any, name: str, *, minimum: int | None = None) -> int:
    """Validate that ``value`` is integral (optionally >= ``minimum``)."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if minimum is not None and value < minimum:
        raise ValidationError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_probability_matrix(matrix: np.ndarray, name: str) -> np.ndarray:
    """Validate a square matrix with entries in [0, 1]; return as float64."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValidationError(f"{name} must be a square matrix, got shape {matrix.shape}")
    if not np.all(np.isfinite(matrix)):
        raise ValidationError(f"{name} must contain only finite entries")
    if matrix.min() < 0.0 or matrix.max() > 1.0:
        raise ValidationError(f"{name} entries must lie in [0, 1]")
    return matrix


def _as_finite_float(value: Any, name: str) -> float:
    if isinstance(value, bool):
        raise ValidationError(f"{name} must be a real number, got {value!r}")
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a real number, got {value!r}") from exc
    if not math.isfinite(value):
        raise ValidationError(f"{name} must be finite, got {value!r}")
    return value
