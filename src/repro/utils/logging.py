"""Library logging configuration.

:mod:`repro` logs progress of long-running routines (KronFit iterations,
ensemble generation) through the standard :mod:`logging` module under the
``"repro"`` namespace and never configures the root logger — applications
stay in control of handlers and levels.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger"]


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    ``name`` is usually ``__name__`` of the calling module; a leading
    ``repro.`` prefix is added if missing so that ad-hoc names nest
    correctly under the library namespace.
    """
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)
