"""Plain-text table rendering for the evaluation harness and benches.

The paper reports results as tables (Table 1) and log-log plot series
(Figures 1-4).  With no plotting stack available we render both as aligned
monospace text, which is also what lands in ``benchmarks/out/`` and
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["TextTable", "format_float", "format_series"]


def format_float(value: float, digits: int = 4) -> str:
    """Format a float compactly: fixed-point when sane, scientific otherwise."""
    if value != value:  # NaN
        return "nan"
    if value == 0:
        return "0"
    magnitude = abs(value)
    if 1e-4 <= magnitude < 1e7:
        text = f"{value:.{digits}f}"
        if "." in text:
            text = text.rstrip("0").rstrip(".")
        return text
    return f"{value:.{digits}e}"


class TextTable:
    """Accumulate rows and render an aligned monospace table.

    >>> table = TextTable(["network", "a", "b", "c"])
    >>> table.add_row(["CA-GrQC", 1.0, 0.4674, 0.279])
    >>> print(table.render())
    network | a | b      | c
    --------+---+--------+------
    CA-GrQC | 1 | 0.4674 | 0.279
    """

    def __init__(self, headers: Sequence[str], *, title: str | None = None) -> None:
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, cells: Iterable[object]) -> None:
        """Append one row; floats are formatted, everything else is str()ed."""
        formatted = []
        for cell in cells:
            if isinstance(cell, bool):
                formatted.append(str(cell))
            elif isinstance(cell, float):
                formatted.append(format_float(cell))
            else:
                formatted.append(str(cell))
        if len(formatted) != len(self.headers):
            raise ValueError(
                f"row has {len(formatted)} cells but table has {len(self.headers)} columns"
            )
        self.rows.append(formatted)

    def render(self) -> str:
        """Render the table (plus optional title) as a string."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
            lines.append("=" * len(self.title))
        header = " | ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header.rstrip())
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            line = " | ".join(cell.ljust(w) for cell, w in zip(row, widths))
            lines.append(line.rstrip())
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience alias
        return self.render()


def format_series(xs: Sequence[float], ys: Sequence[float], *, name: str, digits: int = 4) -> str:
    """Render one plot series as ``name: (x, y) (x, y) ...`` pairs."""
    pairs = " ".join(
        f"({format_float(float(x), digits)}, {format_float(float(y), digits)})"
        for x, y in zip(xs, ys)
    )
    return f"{name}: {pairs}"
