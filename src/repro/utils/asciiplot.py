"""ASCII scatter plots for log-scale figure series.

The paper's figures are log-log (or semi-log, for hop plots) gnuplot
overlays.  With no raster plotting stack available, this module renders
the same overlays as monospace scatter plots: one marker per series,
log-spaced tick labels, and a legend.  The bench artifacts in
``benchmarks/out/`` embed these, so "the hop plots coincide" is visible at
a glance rather than inferred from number rows.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.errors import ValidationError

__all__ = ["ascii_scatter", "MARKERS"]

MARKERS = "o+x*#@%&"


def ascii_scatter(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    *,
    width: int = 68,
    height: int = 18,
    log_x: bool = True,
    log_y: bool = True,
    title: str | None = None,
) -> str:
    """Render labelled (x, y) series as an ASCII scatter plot.

    Parameters
    ----------
    series:
        Mapping from label to ``(xs, ys)`` arrays.  With a log axis,
        non-positive values on that axis are dropped (matching what a
        log-log plot can show).
    width, height:
        Plot-area size in characters (excluding axes and labels).
    log_x, log_y:
        Per-axis log scaling; hop plots use ``log_x=False``.
    title:
        Optional heading line.

    Returns
    -------
    The plot as a multi-line string; empty-series input degrades to a
    note rather than raising.
    """
    if width < 16 or height < 6:
        raise ValidationError("plot area must be at least 16x6 characters")
    cleaned = {}
    for label, (xs, ys) in series.items():
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if xs.shape != ys.shape:
            raise ValidationError(f"series {label!r}: x/y shape mismatch")
        keep = np.isfinite(xs) & np.isfinite(ys)
        if log_x:
            keep &= xs > 0
        if log_y:
            keep &= ys > 0
        if keep.any():
            cleaned[label] = (xs[keep], ys[keep])
    lines: list[str] = []
    if title:
        lines.append(title)
    if not cleaned:
        lines.append("(no positive data to plot)")
        return "\n".join(lines)

    all_x = np.concatenate([xs for xs, _ in cleaned.values()])
    all_y = np.concatenate([ys for _, ys in cleaned.values()])
    x_lo, x_hi = _axis_range(all_x, log_x)
    y_lo, y_hi = _axis_range(all_y, log_y)

    grid = [[" "] * width for _ in range(height)]
    for index, (label, (xs, ys)) in enumerate(cleaned.items()):
        marker = MARKERS[index % len(MARKERS)]
        columns = _to_cells(xs, x_lo, x_hi, width, log_x)
        rows = _to_cells(ys, y_lo, y_hi, height, log_y)
        for column, row in zip(columns, rows):
            cell = grid[height - 1 - row][column]
            # Overlap: keep the first marker, flag multi-series collisions.
            if cell == " ":
                grid[height - 1 - row][column] = marker
            elif cell != marker:
                grid[height - 1 - row][column] = "."

    y_labels = _tick_labels(y_lo, y_hi, height, log_y)
    label_width = max(len(label) for label in y_labels.values())
    for row in range(height):
        label = y_labels.get(row, "").rjust(label_width)
        lines.append(f"{label} |{''.join(grid[row])}")
    lines.append(" " * label_width + " +" + "-" * width)
    x_axis = _x_axis_line(x_lo, x_hi, width, log_x)
    lines.append(" " * label_width + "  " + x_axis)
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {label}" for i, label in enumerate(cleaned)
    )
    lines.append(f"{' ' * label_width}  [{legend}]   ('.' = overlap)")
    return "\n".join(lines)


def _axis_range(values: np.ndarray, log: bool) -> tuple[float, float]:
    lo, hi = float(values.min()), float(values.max())
    if log:
        lo, hi = math.log10(lo), math.log10(hi)
    if hi - lo < 1e-12:
        lo, hi = lo - 0.5, hi + 0.5
    return lo, hi


def _to_cells(
    values: np.ndarray, lo: float, hi: float, cells: int, log: bool
) -> np.ndarray:
    transformed = np.log10(values) if log else values
    fraction = (transformed - lo) / (hi - lo)
    return np.clip((fraction * (cells - 1)).round().astype(int), 0, cells - 1)


def _format_tick(value: float, log: bool) -> str:
    actual = 10**value if log else value
    if actual != 0 and (abs(actual) >= 1e5 or abs(actual) < 1e-3):
        return f"{actual:.1e}"
    if actual == int(actual):
        return str(int(actual))
    return f"{actual:.3g}"


def _tick_labels(lo: float, hi: float, height: int, log: bool) -> dict[int, str]:
    ticks = {}
    for row, fraction in ((0, 1.0), (height // 2, 0.5), (height - 1, 0.0)):
        ticks[row] = _format_tick(lo + fraction * (hi - lo), log)
    return ticks


def _x_axis_line(lo: float, hi: float, width: int, log: bool) -> str:
    left = _format_tick(lo, log)
    middle = _format_tick(lo + 0.5 * (hi - lo), log)
    right = _format_tick(hi, log)
    gap = width - len(left) - len(middle) - len(right)
    pad = max(gap // 2, 1)
    return left + " " * pad + middle + " " * max(gap - pad, 1) + right
