"""Graph substrate: immutable undirected simple graphs plus IO and generators.

This package is the foundation everything else builds on.  The central type
is :class:`repro.graphs.Graph`, a CSR-backed undirected simple graph.  The
submodules provide:

* :mod:`repro.graphs.io` — SNAP-style edge-list reading and writing,
* :mod:`repro.graphs.generators` — classic random-graph models used for the
  stand-in datasets and for tests,
* :mod:`repro.graphs.datasets` — the named dataset registry used by the
  experiments (see DESIGN.md for the SNAP substitutions),
* :mod:`repro.graphs.operations` — structural operations (components,
  induced subgraphs, node padding).
"""

from repro.graphs.graph import Graph
from repro.graphs.io import read_edge_list, write_edge_list, parse_edge_list
from repro.graphs.generators import (
    erdos_renyi_graph,
    barabasi_albert_graph,
    powerlaw_cluster_graph,
    configuration_model_graph,
    star_graph,
    complete_graph,
    cycle_graph,
    path_graph,
    empty_graph,
)
from repro.graphs.datasets import available_datasets, load_dataset, dataset_info
from repro.graphs.operations import (
    largest_connected_component,
    connected_components,
    induced_subgraph,
    pad_to_power_of_two,
    relabel_random,
)

__all__ = [
    "Graph",
    "read_edge_list",
    "write_edge_list",
    "parse_edge_list",
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "powerlaw_cluster_graph",
    "configuration_model_graph",
    "star_graph",
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "empty_graph",
    "available_datasets",
    "load_dataset",
    "dataset_info",
    "largest_connected_component",
    "connected_components",
    "induced_subgraph",
    "pad_to_power_of_two",
    "relabel_random",
]
