"""The :class:`Graph` type: an immutable, undirected, simple graph.

Design notes
------------
* Nodes are the integers ``0 .. n_nodes - 1``.  Callers with arbitrary node
  labels relabel at the IO boundary (:func:`repro.graphs.io.parse_edge_list`
  does this automatically).
* The edge set is stored once, canonically, as two parallel int64 arrays
  ``(u, v)`` with ``u < v`` sorted lexicographically.  The CSR adjacency
  matrix is derived lazily and cached; so are degrees.
* Instances are value objects: hashable by content, comparable, and safe to
  share between estimators — no method mutates a constructed graph.

The class deliberately supports exactly the operations the paper's pipeline
needs (degrees, neighbour queries, sparse adjacency for counting and
spectra) instead of aspiring to be a general graph library.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np
import scipy.sparse as sp

from repro.errors import GraphFormatError, ValidationError

__all__ = ["Graph"]


class Graph:
    """An undirected simple graph on nodes ``0 .. n_nodes - 1``.

    Parameters
    ----------
    n_nodes:
        Number of nodes.  Isolated nodes are allowed (and matter: the
        Kronecker estimators pad graphs to a power-of-two node count).
    edges:
        Iterable of ``(u, v)`` pairs.  Self-loops are rejected; duplicate
        and mirrored pairs collapse to a single undirected edge.

    Examples
    --------
    >>> g = Graph(4, [(0, 1), (1, 0), (1, 2)])
    >>> g.n_edges
    2
    >>> g.neighbors(1).tolist()
    [0, 2]
    """

    __slots__ = (
        "_n_nodes",
        "_edge_u",
        "_edge_v",
        "_adjacency",
        "_degrees",
        "_hash",
        "_stats",
        "_shm",
    )

    def __init__(self, n_nodes: int, edges: Iterable[tuple[int, int]] = ()) -> None:
        if isinstance(n_nodes, bool) or not isinstance(n_nodes, (int, np.integer)):
            raise ValidationError(f"n_nodes must be an integer, got {n_nodes!r}")
        if n_nodes < 0:
            raise ValidationError(f"n_nodes must be non-negative, got {n_nodes}")
        self._n_nodes = int(n_nodes)
        edge_array = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
        if edge_array.size == 0:
            u = np.empty(0, dtype=np.int64)
            v = np.empty(0, dtype=np.int64)
        else:
            if edge_array.ndim != 2 or edge_array.shape[1] != 2:
                raise GraphFormatError(
                    f"edges must be pairs, got array of shape {edge_array.shape}"
                )
            if not np.issubdtype(edge_array.dtype, np.integer):
                converted = edge_array.astype(np.int64)
                if not np.array_equal(converted, edge_array):
                    raise GraphFormatError("edge endpoints must be integers")
                edge_array = converted
            u, v = _canonicalize_edges(edge_array.astype(np.int64), self._n_nodes)
        self._edge_u = u
        self._edge_v = v
        self._edge_u.setflags(write=False)
        self._edge_v.setflags(write=False)
        self._adjacency: sp.csr_array | None = None
        self._degrees: np.ndarray | None = None
        self._hash: int | None = None
        self._stats = None  # lazy StatsContext (see repro.stats.kernels)
        self._shm = None  # active share token (see repro.runtime.shm)

    # ------------------------------------------------------------------
    # Alternate constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_edge_arrays(cls, n_nodes: int, u: np.ndarray, v: np.ndarray) -> "Graph":
        """Build from two parallel endpoint arrays (validated and canonicalized)."""
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        if u.shape != v.shape or u.ndim != 1:
            raise GraphFormatError("endpoint arrays must be 1-D and the same length")
        return cls(n_nodes, np.column_stack([u, v]) if u.size else np.empty((0, 2), np.int64))

    @classmethod
    def _from_canonical(cls, n_nodes: int, u: np.ndarray, v: np.ndarray) -> "Graph":
        """Trusted constructor: endpoint arrays already in canonical form.

        The caller guarantees ``u``/``v`` are parallel int64 arrays with
        ``u < v`` element-wise, lexicographically sorted, deduplicated, and
        within ``[0, n_nodes)`` — exactly what :func:`_canonicalize_edges`
        produces.  Internal hot paths that construct edges canonically by
        design (the SKG samplers, :meth:`with_edge_flipped`) use this to
        skip the re-canonicalization round trip; everything else goes
        through the validating constructors.  The arrays are frozen in
        place, so callers must hand over ownership.
        """
        graph = object.__new__(cls)
        graph._n_nodes = int(n_nodes)
        graph._edge_u = np.ascontiguousarray(u, dtype=np.int64)
        graph._edge_v = np.ascontiguousarray(v, dtype=np.int64)
        graph._edge_u.setflags(write=False)
        graph._edge_v.setflags(write=False)
        graph._adjacency = None
        graph._degrees = None
        graph._hash = None
        graph._stats = None
        graph._shm = None
        return graph

    @classmethod
    def from_dense(cls, matrix: np.ndarray) -> "Graph":
        """Build from a dense 0/1 adjacency matrix (symmetrized, loops dropped)."""
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise GraphFormatError(f"adjacency must be square, got shape {matrix.shape}")
        upper = np.triu(matrix != 0, k=1) | np.triu((matrix != 0).T, k=1)
        rows, cols = np.nonzero(upper)
        return cls.from_edge_arrays(matrix.shape[0], rows, cols)

    @classmethod
    def from_sparse(cls, matrix: sp.spmatrix | sp.sparray) -> "Graph":
        """Build from any scipy sparse adjacency (symmetrized, loops dropped)."""
        coo = sp.coo_array(matrix)
        if coo.shape[0] != coo.shape[1]:
            raise GraphFormatError(f"adjacency must be square, got shape {coo.shape}")
        mask = coo.data != 0
        return cls.from_edge_arrays(coo.shape[0], coo.row[mask], coo.col[mask])

    @classmethod
    def from_networkx(cls, nx_graph) -> "Graph":
        """Build from a ``networkx.Graph`` (nodes relabelled to 0..n-1)."""
        nodes = list(nx_graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        edges = [(index[a], index[b]) for a, b in nx_graph.edges() if a != b]
        return cls(len(nodes), edges)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Number of nodes (isolated nodes included)."""
        return self._n_nodes

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return int(self._edge_u.size)

    @property
    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The canonical endpoint arrays ``(u, v)`` with ``u < v`` (read-only)."""
        return self._edge_u, self._edge_v

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over edges as ``(u, v)`` tuples with ``u < v``."""
        for a, b in zip(self._edge_u, self._edge_v):
            yield int(a), int(b)

    @property
    def degrees(self) -> np.ndarray:
        """Degree of every node, as a read-only int64 array of length n_nodes."""
        if self._degrees is None:
            counts = np.bincount(self._edge_u, minlength=self._n_nodes)
            counts += np.bincount(self._edge_v, minlength=self._n_nodes)
            self._degrees = counts.astype(np.int64)
            self._degrees.setflags(write=False)
        return self._degrees

    def degree(self, node: int) -> int:
        """Degree of a single node."""
        self._check_node(node)
        return int(self.degrees[node])

    @property
    def adjacency(self) -> sp.csr_array:
        """Symmetric CSR adjacency matrix with int8 entries (cached)."""
        if self._adjacency is None:
            n = self._n_nodes
            rows = np.concatenate([self._edge_u, self._edge_v])
            cols = np.concatenate([self._edge_v, self._edge_u])
            data = np.ones(rows.size, dtype=np.int8)
            self._adjacency = sp.csr_array((data, (rows, cols)), shape=(n, n))
        return self._adjacency

    def neighbors(self, node: int) -> np.ndarray:
        """Sorted array of neighbours of ``node``."""
        self._check_node(node)
        adjacency = self.adjacency
        return adjacency.indices[adjacency.indptr[node] : adjacency.indptr[node + 1]].copy()

    def has_edge(self, a: int, b: int) -> bool:
        """Whether the undirected edge ``{a, b}`` is present."""
        self._check_node(a)
        self._check_node(b)
        if a == b:
            return False
        if a > b:
            a, b = b, a
        lo = np.searchsorted(self._edge_u, a, side="left")
        hi = np.searchsorted(self._edge_u, a, side="right")
        return bool(np.any(self._edge_v[lo:hi] == b))

    @property
    def density(self) -> float:
        """Fraction of possible edges present; 0 for graphs with < 2 nodes."""
        n = self._n_nodes
        if n < 2:
            return 0.0
        return self.n_edges / (n * (n - 1) / 2)

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------

    def edge_set(self) -> set[tuple[int, int]]:
        """The edge set as python tuples — convenient for small-graph tests."""
        return {(int(a), int(b)) for a, b in zip(self._edge_u, self._edge_v)}

    def to_dense(self) -> np.ndarray:
        """Dense int8 adjacency matrix (only sensible for small graphs)."""
        return self.adjacency.toarray()

    def to_networkx(self):
        """Convert to a ``networkx.Graph`` (imports networkx lazily)."""
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(range(self._n_nodes))
        nx_graph.add_edges_from(self.edges())
        return nx_graph

    def with_edge_flipped(self, a: int, b: int) -> "Graph":
        """Return a copy with edge ``{a, b}`` toggled (the DP edge neighbour).

        This is exactly the "edge neighbourhood" of Definition 4.1 in the
        paper: graphs at symmetric-difference distance one.  The flip is a
        binary search plus one ``np.insert``/``np.delete`` on the canonical
        arrays — O(E) numpy rather than a Python ``edge_set`` round trip —
        because it sits inside sensitivity sweeps that flip every pair.
        """
        self._check_node(a)
        self._check_node(b)
        if a == b:
            raise ValidationError("cannot flip a self-loop in a simple graph")
        if a > b:
            a, b = b, a
        u, v = self._edge_u, self._edge_v
        lo = int(np.searchsorted(u, a, side="left"))
        hi = int(np.searchsorted(u, a, side="right"))
        position = lo + int(np.searchsorted(v[lo:hi], b, side="left"))
        present = position < hi and v[position] == b
        if present:
            new_u = np.delete(u, position)
            new_v = np.delete(v, position)
        else:
            new_u = np.insert(u, position, a)
            new_v = np.insert(v, position, b)
        return Graph._from_canonical(self._n_nodes, new_u, new_v)

    # ------------------------------------------------------------------
    # Value-object protocol
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._n_nodes == other._n_nodes
            and self._edge_u.size == other._edge_u.size
            and bool(np.array_equal(self._edge_u, other._edge_u))
            and bool(np.array_equal(self._edge_v, other._edge_v))
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (self._n_nodes, self._edge_u.tobytes(), self._edge_v.tobytes())
            )
        return self._hash

    def __reduce__(self):
        # While the trial engine has this instance published to a shared
        # segment (repro.runtime.shm stamps the token for the duration of
        # a pool session), pickle to the ~100-byte attach token instead of
        # the arrays: pool workers rebuild the graph over zero-copy views
        # of the segment.  The token is instance- and session-scoped, so
        # anything pickled outside the session (cache entries, results,
        # fresh instances) takes the by-value path below.
        if self._shm is not None:
            from repro.runtime.shm import _attach_graph

            return (_attach_graph, (self._shm,))
        # Pickle only the canonical arrays: the derived caches (adjacency,
        # degrees, stats context) are cheap to rebuild relative to shipping
        # them across process boundaries, and the trial engine pickles
        # graphs when results cross worker processes or the on-disk cache.
        return (_rebuild_canonical, (self._n_nodes, self._edge_u, self._edge_v))

    def __repr__(self) -> str:
        return f"Graph(n_nodes={self._n_nodes}, n_edges={self.n_edges})"

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _check_node(self, node: int) -> None:
        if isinstance(node, bool) or not isinstance(node, (int, np.integer)):
            raise ValidationError(f"node must be an integer, got {node!r}")
        if not 0 <= node < self._n_nodes:
            raise ValidationError(
                f"node {node} out of range for graph with {self._n_nodes} nodes"
            )


def _rebuild_canonical(n_nodes: int, u: np.ndarray, v: np.ndarray) -> Graph:
    """Unpickling hook for :meth:`Graph.__reduce__` (module-level for pickle)."""
    return Graph._from_canonical(n_nodes, u, v)


def _canonicalize_edges(edges: np.ndarray, n_nodes: int) -> tuple[np.ndarray, np.ndarray]:
    """Sort endpoints within pairs, drop loops, dedupe, lexicographically sort."""
    if edges.size and (edges.min() < 0 or edges.max() >= n_nodes):
        raise GraphFormatError(
            f"edge endpoint out of range [0, {n_nodes}): "
            f"min={edges.min()}, max={edges.max()}"
        )
    u = np.minimum(edges[:, 0], edges[:, 1])
    v = np.maximum(edges[:, 0], edges[:, 1])
    keep = u != v  # drop self-loops
    u, v = u[keep], v[keep]
    if u.size == 0:
        return u.astype(np.int64), v.astype(np.int64)
    # Dedupe and sort in one shot via the scalar key u * n + v; ascending key
    # order equals lexicographic (u, v) order.  The int64 key overflows only
    # beyond ~3e9 nodes, far past anything this library targets.
    key = np.unique(u * np.int64(n_nodes) + v)
    u = key // np.int64(n_nodes)
    v = key % np.int64(n_nodes)
    return np.ascontiguousarray(u), np.ascontiguousarray(v)
