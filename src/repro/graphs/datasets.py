"""Named dataset registry for the paper's experiments.

The paper evaluates on three SNAP graphs (CA-GrQC, CA-HepTh, AS20) and one
synthetic stochastic Kronecker graph.  This environment has no network
access, so the registry serves *stand-ins* built by our own generators with
the same node and edge counts and the same qualitative structure
(DESIGN.md §4 explains why each substitution preserves the behaviour the
experiments measure).  If the real SNAP edge lists are available locally,
point ``REPRO_DATA_DIR`` at a directory containing ``<name>.txt`` or
``<name>.txt.gz`` files and they will be used instead.

All stand-ins are deterministically seeded: ``load_dataset`` called twice
with default arguments returns equal graphs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Callable

import numpy as np

from repro.errors import DatasetError
from repro.graphs.graph import Graph
from repro.graphs.generators import barabasi_albert_graph, powerlaw_cluster_graph
from repro.graphs.io import read_edge_list
from repro.utils.rng import SeedLike, as_generator

__all__ = ["DatasetSpec", "available_datasets", "load_dataset", "dataset_info"]

_DATA_DIR_ENV = "REPRO_DATA_DIR"


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one experiment dataset.

    Attributes
    ----------
    name:
        Registry key (lower-case, as used by :func:`load_dataset`).
    paper_nodes, paper_edges:
        The size the paper reports for the original SNAP graph; stand-ins
        match both exactly.
    description:
        Human-readable provenance, including the substitution note.
    kind:
        ``"standin"`` or ``"synthetic"`` — the synthetic Kronecker graph is
        not a substitution, it is exactly the paper's construction.
    default_seed:
        Seed used when the caller does not supply one, so the default
        experiment graphs are stable across runs.
    """

    name: str
    paper_nodes: int
    paper_edges: int
    description: str
    kind: str
    default_seed: int
    builder: Callable[[np.random.Generator], Graph] = field(repr=False)


def _build_ca_grqc(rng: np.random.Generator) -> Graph:
    # Triad-formation probability near 1 pushes the stand-in's average
    # clustering towards the real CA-GrQC's unusually high value.
    graph = powerlaw_cluster_graph(5242, 6, 1.0, rng)
    return _trim_to_edge_count(graph, 28980, rng)


def _build_ca_hepth(rng: np.random.Generator) -> Graph:
    graph = powerlaw_cluster_graph(9877, 6, 0.9, rng)
    return _trim_to_edge_count(graph, 51971, rng)


def _build_as20(rng: np.random.Generator) -> Graph:
    graph = barabasi_albert_graph(6474, 5, rng)
    return _trim_to_edge_count(graph, 26467, rng)


def _build_synthetic_kronecker(rng: np.random.Generator) -> Graph:
    # Imported here to keep repro.graphs free of a hard dependency on the
    # Kronecker package at import time (the layering is graphs <- kronecker).
    from repro.kronecker.initiator import Initiator
    from repro.kronecker.sampling import sample_skg

    initiator = Initiator(0.99, 0.45, 0.25)
    return sample_skg(initiator, 14, seed=rng)


def _build_skg_at(k: int) -> Callable[[np.random.Generator], Graph]:
    # The large-k scale axis (ROADMAP open item 1): the paper's initiator
    # at k far beyond the paper's 2^14 nodes.  The grass-hopping sampler
    # is O(E + k²), so even k=20 (10⁶ nodes, ~2·10⁶ edges) builds in
    # seconds with the fused kernels.
    def build(rng: np.random.Generator) -> Graph:
        from repro.kronecker.initiator import Initiator
        from repro.kronecker.sampling import sample_skg

        return sample_skg(Initiator(0.99, 0.45, 0.25), k, seed=rng)

    return build


def _large_k_spec(k: int, default_seed: int) -> DatasetSpec:
    return DatasetSpec(
        name=f"skg-k{k}",
        paper_nodes=2**k,
        paper_edges=-1,  # a random quantity, as with synthetic-kronecker
        description=(
            f"Large-scale stochastic Kronecker graph: the paper's initiator "
            f"[[0.99, 0.45], [0.45, 0.25]] at k = {k} ({2**k} nodes) — the "
            "beyond-paper scale axis for estimator cross-checks."
        ),
        kind="synthetic",
        default_seed=default_seed,
        builder=_build_skg_at(k),
    )


_REGISTRY: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            name="ca-grqc",
            paper_nodes=5242,
            paper_edges=28980,
            description=(
                "Stand-in for SNAP CA-GrQC (arXiv General Relativity "
                "co-authorship). Holme-Kim powerlaw-cluster graph: heavy-tailed "
                "degrees plus high clustering, trimmed to the paper's edge count."
            ),
            kind="standin",
            default_seed=1202,
            builder=_build_ca_grqc,
        ),
        DatasetSpec(
            name="ca-hepth",
            paper_nodes=9877,
            paper_edges=51971,
            description=(
                "Stand-in for SNAP CA-HepTh (arXiv High Energy Physics Theory "
                "co-authorship). Holme-Kim powerlaw-cluster graph, trimmed to "
                "the paper's edge count."
            ),
            kind="standin",
            default_seed=1203,
            builder=_build_ca_hepth,
        ),
        DatasetSpec(
            name="as20",
            paper_nodes=6474,
            paper_edges=26467,
            description=(
                "Stand-in for SNAP as20000102 (autonomous-systems router "
                "topology). Barabasi-Albert preferential attachment: "
                "hub-dominated core-periphery, low clustering, trimmed to the "
                "paper's edge count."
            ),
            kind="standin",
            default_seed=1204,
            builder=_build_as20,
        ),
        DatasetSpec(
            name="synthetic-kronecker",
            paper_nodes=2**14,
            paper_edges=-1,  # a random quantity in the paper as well
            description=(
                "The paper's synthetic test: a stochastic Kronecker graph "
                "sampled from initiator [[0.99, 0.45], [0.45, 0.25]] with "
                "k = 14 (16384 nodes). No substitution needed."
            ),
            kind="synthetic",
            default_seed=1205,
            builder=_build_synthetic_kronecker,
        ),
        _large_k_spec(16, default_seed=1216),
        _large_k_spec(18, default_seed=1218),
        _large_k_spec(20, default_seed=1220),
    ]
}


def available_datasets() -> list[str]:
    """Names accepted by :func:`load_dataset`, in experiment order."""
    return list(_REGISTRY)


def dataset_info(name: str) -> DatasetSpec:
    """The :class:`DatasetSpec` for ``name`` (raises DatasetError if unknown)."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(_REGISTRY)
        raise DatasetError(f"unknown dataset {name!r}; known datasets: {known}") from None


def load_dataset(name: str, seed: SeedLike = None) -> Graph:
    """Load (or deterministically generate) a named experiment graph.

    If ``REPRO_DATA_DIR`` contains a real SNAP edge list for ``name`` it is
    read from disk; otherwise the registered stand-in builder runs with
    ``seed`` (default: the spec's fixed seed, for run-to-run stability).
    """
    spec = dataset_info(name)
    if seed is None:
        # The common default-seed path is memoized: Graph is immutable and
        # the trial engine (repro.runtime) loads datasets once per trial,
        # which would otherwise rebuild the same graph repeatedly.  The
        # data directory is part of the key so REPRO_DATA_DIR changes
        # (tests monkeypatch it) are never served stale.
        return _load_default(spec.name, os.environ.get(_DATA_DIR_ENV))
    from_disk = _try_load_from_disk(spec.name)
    if from_disk is not None:
        return from_disk
    return spec.builder(as_generator(seed))


@lru_cache(maxsize=None)
def _load_default(name: str, _data_dir: str | None) -> Graph:
    from_disk = _try_load_from_disk(name)
    if from_disk is not None:
        return from_disk
    spec = dataset_info(name)
    return spec.builder(as_generator(spec.default_seed))


def _try_load_from_disk(name: str) -> Graph | None:
    data_dir = os.environ.get(_DATA_DIR_ENV)
    if not data_dir:
        return None
    for suffix in (".txt", ".txt.gz"):
        path = Path(data_dir) / f"{name}{suffix}"
        if path.exists():
            graph, _labels = read_edge_list(path)
            return graph
    return None


def _trim_to_edge_count(graph: Graph, target_edges: int, rng: np.random.Generator) -> Graph:
    """Delete uniform random edges until exactly ``target_edges`` remain.

    The generators' edge counts are set by their integer attachment
    parameter, so they land a few percent above the paper's counts; uniform
    deletion preserves the degree-distribution shape while matching the
    reported sizes exactly.
    """
    if graph.n_edges < target_edges:
        raise DatasetError(
            f"generator produced {graph.n_edges} edges, below target {target_edges}; "
            "the registry parameters must overshoot so trimming can hit the target"
        )
    if graph.n_edges == target_edges:
        return graph
    u, v = graph.edge_arrays
    keep = rng.choice(graph.n_edges, size=target_edges, replace=False)
    return Graph.from_edge_arrays(graph.n_nodes, u[keep], v[keep])
