"""Random and deterministic graph generators.

These serve two roles in the reproduction:

* **Stand-in datasets.**  With no network access to SNAP, the experiment
  harness builds structurally similar graphs (DESIGN.md §4): Holme–Kim
  powerlaw-cluster graphs for the co-authorship networks and a
  Barabási–Albert graph for the AS router topology.
* **Test workloads.**  Property-based tests drive the statistics and
  privacy modules with Erdős–Rényi and configuration-model graphs whose
  expected statistics are known analytically.

All generators take an explicit ``seed`` (see :mod:`repro.utils.rng`) and
return :class:`repro.graphs.Graph` values.  Implementations are our own —
networkx appears only in tests, as an oracle.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_in_unit_interval, check_integer

__all__ = [
    "erdos_renyi_graph",
    "gnm_random_graph",
    "barabasi_albert_graph",
    "powerlaw_cluster_graph",
    "configuration_model_graph",
    "star_graph",
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "empty_graph",
]

# Above this node count, G(n, p) switches from materialising the full upper
# triangle to sampling a binomial edge count + uniform distinct pairs.
_DENSE_GNP_LIMIT = 3000


def erdos_renyi_graph(n: int, p: float, seed: SeedLike = None) -> Graph:
    """Sample G(n, p): every unordered pair is an edge independently w.p. ``p``.

    Exact for all ``n``: small graphs enumerate all pairs; large graphs draw
    ``m ~ Binomial(C(n,2), p)`` and then ``m`` distinct uniform pairs, which
    yields the identical distribution.
    """
    n = check_integer(n, "n", minimum=0)
    p = check_in_unit_interval(p, "p")
    rng = as_generator(seed)
    if n < 2 or p == 0.0:
        return Graph(n)
    total_pairs = n * (n - 1) // 2
    if p == 1.0:
        return complete_graph(n)
    if n <= _DENSE_GNP_LIMIT:
        rows, cols = np.triu_indices(n, k=1)
        mask = rng.random(rows.size) < p
        return Graph.from_edge_arrays(n, rows[mask], cols[mask])
    m = int(rng.binomial(total_pairs, p))
    return gnm_random_graph(n, m, rng)


def gnm_random_graph(n: int, m: int, seed: SeedLike = None) -> Graph:
    """Sample G(n, m): ``m`` distinct edges uniformly among all pairs."""
    n = check_integer(n, "n", minimum=0)
    m = check_integer(m, "m", minimum=0)
    total_pairs = n * (n - 1) // 2
    if m > total_pairs:
        raise ValidationError(f"m={m} exceeds the {total_pairs} possible edges")
    rng = as_generator(seed)
    if m == 0:
        return Graph(n)
    if m > total_pairs // 2 or total_pairs <= 4 * m:
        # Dense regime: shuffle the full pair list.
        rows, cols = np.triu_indices(n, k=1)
        chosen = rng.choice(total_pairs, size=m, replace=False)
        return Graph.from_edge_arrays(n, rows[chosen], cols[chosen])
    # Sparse regime: rejection-sample distinct pair keys.  Collect at least m
    # distinct keys, then keep a uniform m-subset — by symmetry over pairs
    # this realises the uniform distribution over m-edge graphs.
    keys: np.ndarray = np.empty(0, dtype=np.int64)
    while keys.size < m:
        need = m - keys.size
        u = rng.integers(0, n, size=2 * need + 8, dtype=np.int64)
        v = rng.integers(0, n, size=2 * need + 8, dtype=np.int64)
        lo, hi = np.minimum(u, v), np.maximum(u, v)
        fresh = lo[lo != hi] * np.int64(n) + hi[lo != hi]
        keys = np.unique(np.concatenate([keys, fresh]))
    if keys.size > m:
        keys = rng.choice(keys, size=m, replace=False)
    return Graph.from_edge_arrays(n, keys // n, keys % n)


def barabasi_albert_graph(n: int, m: int, seed: SeedLike = None) -> Graph:
    """Barabási–Albert preferential attachment with ``m`` edges per new node.

    Starts from a star on ``m + 1`` nodes; each arriving node attaches to
    ``m`` distinct existing nodes chosen proportionally to degree (the
    classic repeated-endpoints implementation).  Produces the hub-dominated,
    low-clustering topology used as the AS20 stand-in.
    """
    n = check_integer(n, "n", minimum=1)
    m = check_integer(m, "m", minimum=1)
    if m >= n:
        raise ValidationError(f"m={m} must be < n={n}")
    rng = as_generator(seed)
    edges: list[tuple[int, int]] = [(i, m) for i in range(m)]
    # Endpoint multiset: each edge contributes both endpoints, giving
    # degree-proportional sampling by uniform choice from the list.
    repeated: list[int] = [node for edge in edges for node in edge]
    for new_node in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            pick = repeated[int(rng.integers(0, len(repeated)))]
            targets.add(pick)
        for target in targets:
            edges.append((new_node, target))
            repeated.append(new_node)
            repeated.append(target)
    return Graph(n, edges)


def powerlaw_cluster_graph(n: int, m: int, p: float, seed: SeedLike = None) -> Graph:
    """Holme–Kim powerlaw-cluster graph: BA growth plus triad formation.

    Each arriving node makes ``m`` links; after the first (preferential)
    link, each subsequent link is, with probability ``p``, a *triad
    formation* step (attach to a random neighbour of the previous target,
    closing a triangle) and otherwise another preferential link.  This
    yields heavy-tailed degrees *and* high clustering — the structure of
    co-authorship networks, hence the CA-GrQC/CA-HepTh stand-in.
    """
    n = check_integer(n, "n", minimum=1)
    m = check_integer(m, "m", minimum=1)
    p = check_in_unit_interval(p, "p")
    if m >= n:
        raise ValidationError(f"m={m} must be < n={n}")
    rng = as_generator(seed)
    neighbor_sets: list[set[int]] = [set() for _ in range(n)]
    repeated: list[int] = []

    def add_edge(a: int, b: int) -> None:
        neighbor_sets[a].add(b)
        neighbor_sets[b].add(a)
        repeated.append(a)
        repeated.append(b)

    for i in range(m):
        add_edge(i, m)
    for new_node in range(m + 1, n):
        first = repeated[int(rng.integers(0, len(repeated)))]
        while first == new_node:
            first = repeated[int(rng.integers(0, len(repeated)))]
        new_links = {first}
        previous = first
        while len(new_links) < m:
            if rng.random() < p:
                candidates = [
                    w for w in neighbor_sets[previous] if w != new_node and w not in new_links
                ]
                if candidates:
                    choice = candidates[int(rng.integers(0, len(candidates)))]
                    new_links.add(choice)
                    previous = choice
                    continue
            pick = repeated[int(rng.integers(0, len(repeated)))]
            if pick != new_node and pick not in new_links:
                new_links.add(pick)
                previous = pick
        for target in new_links:
            add_edge(new_node, target)
    edges = [(a, b) for a in range(n) for b in neighbor_sets[a] if a < b]
    return Graph(n, edges)


def configuration_model_graph(degrees: np.ndarray, seed: SeedLike = None) -> Graph:
    """Erased configuration model for a target degree sequence.

    Stubs are shuffled and paired; self-loops and parallel edges are then
    erased, so realised degrees can fall slightly below the targets for
    heavy-tailed sequences.  The degree sum must be even.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    if degrees.ndim != 1:
        raise ValidationError("degrees must be a 1-D sequence")
    if degrees.size and degrees.min() < 0:
        raise ValidationError("degrees must be non-negative")
    total = int(degrees.sum())
    if total % 2 != 0:
        raise ValidationError(f"degree sum must be even, got {total}")
    rng = as_generator(seed)
    stubs = np.repeat(np.arange(degrees.size, dtype=np.int64), degrees)
    rng.shuffle(stubs)
    u = stubs[0::2]
    v = stubs[1::2]
    if u.size == 0:
        return Graph(int(degrees.size))
    return Graph.from_edge_arrays(int(degrees.size), u, v)


def star_graph(n: int) -> Graph:
    """Star on ``n`` nodes: node 0 joined to all others."""
    n = check_integer(n, "n", minimum=1)
    return Graph(n, [(0, i) for i in range(1, n)])


def complete_graph(n: int) -> Graph:
    """Complete graph on ``n`` nodes."""
    n = check_integer(n, "n", minimum=0)
    if n < 2:
        return Graph(n)
    rows, cols = np.triu_indices(n, k=1)
    return Graph.from_edge_arrays(n, rows, cols)


def cycle_graph(n: int) -> Graph:
    """Cycle on ``n`` nodes (n >= 3)."""
    n = check_integer(n, "n", minimum=3)
    return Graph(n, [(i, (i + 1) % n) for i in range(n)])


def path_graph(n: int) -> Graph:
    """Path on ``n`` nodes."""
    n = check_integer(n, "n", minimum=1)
    return Graph(n, [(i, i + 1) for i in range(n - 1)])


def empty_graph(n: int) -> Graph:
    """Graph with ``n`` nodes and no edges."""
    n = check_integer(n, "n", minimum=0)
    return Graph(n)
