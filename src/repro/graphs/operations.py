"""Structural graph operations used by the estimation pipeline.

The Kronecker estimators require the node count to be a power of the
initiator size (``2^k`` here); real graphs are padded with isolated nodes,
exactly as Leskovec et al. and Gleich & Owen do.  The figure harness works
on the largest connected component for hop plots, and tests exercise the
remaining helpers.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse.csgraph as csgraph

from repro.errors import ValidationError
from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "connected_components",
    "largest_connected_component",
    "induced_subgraph",
    "pad_to_power_of_two",
    "next_power_of_two_exponent",
    "relabel_random",
]


def connected_components(graph: Graph) -> list[np.ndarray]:
    """Connected components as arrays of node ids, largest first."""
    if graph.n_nodes == 0:
        return []
    count, labels = csgraph.connected_components(graph.adjacency, directed=False)
    components = [np.flatnonzero(labels == c) for c in range(count)]
    components.sort(key=len, reverse=True)
    return components


def largest_connected_component(graph: Graph) -> Graph:
    """The induced subgraph on the largest connected component."""
    components = connected_components(graph)
    if not components:
        return Graph(0)
    return induced_subgraph(graph, components[0])


def induced_subgraph(graph: Graph, nodes: np.ndarray) -> Graph:
    """Induced subgraph on ``nodes``, relabelled to ``0 .. len(nodes)-1``.

    ``nodes`` must not contain duplicates; order determines the new labels.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    if nodes.size != np.unique(nodes).size:
        raise ValidationError("nodes for induced_subgraph must be unique")
    if nodes.size and (nodes.min() < 0 or nodes.max() >= graph.n_nodes):
        raise ValidationError("nodes for induced_subgraph out of range")
    position = np.full(graph.n_nodes, -1, dtype=np.int64)
    position[nodes] = np.arange(nodes.size)
    u, v = graph.edge_arrays
    keep = (position[u] >= 0) & (position[v] >= 0)
    return Graph.from_edge_arrays(int(nodes.size), position[u[keep]], position[v[keep]])


def next_power_of_two_exponent(n: int) -> int:
    """Smallest ``k`` with ``2**k >= n`` (and ``k >= 1``)."""
    if n < 1:
        raise ValidationError(f"n must be >= 1, got {n}")
    k = max(1, int(np.ceil(np.log2(n))))
    # Guard against floating-point log2 edge cases around exact powers.
    while 2**k < n:
        k += 1
    while k > 1 and 2 ** (k - 1) >= n:
        k -= 1
    return k

def pad_to_power_of_two(graph: Graph) -> tuple[Graph, int]:
    """Pad with isolated nodes so that ``n_nodes`` is ``2**k``; return (graph, k).

    Isolated nodes leave every statistic the estimators match (edges,
    wedges, tripins, triangles, degree multiset of non-isolated nodes)
    unchanged, so padding does not bias the fit — it only fixes the
    Kronecker order ``k``.
    """
    if graph.n_nodes == 0:
        raise ValidationError("cannot pad an empty graph")
    k = next_power_of_two_exponent(graph.n_nodes)
    target = 2**k
    if target == graph.n_nodes:
        return graph, k
    u, v = graph.edge_arrays
    return Graph.from_edge_arrays(target, u, v), k


def relabel_random(graph: Graph, seed: SeedLike = None) -> Graph:
    """Apply a uniform random node relabelling (used in sampler tests)."""
    rng = as_generator(seed)
    permutation = rng.permutation(graph.n_nodes)
    u, v = graph.edge_arrays
    return Graph.from_edge_arrays(graph.n_nodes, permutation[u], permutation[v])
