"""Edge-list IO in the SNAP text format.

The SNAP datasets the paper uses ship as whitespace-separated edge lists
with ``#`` comment lines.  :func:`read_edge_list` accepts exactly that
format (plain or gzipped), relabels arbitrary integer node ids to the dense
range ``0 .. n-1``, and returns a :class:`repro.graphs.Graph` together with
the label mapping.  :func:`write_edge_list` is its inverse, so released
synthetic graphs can be saved in the same format researchers already
consume.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import TextIO

import numpy as np

from repro.errors import GraphFormatError
from repro.graphs.graph import Graph

__all__ = ["parse_edge_list", "read_edge_list", "write_edge_list"]


def parse_edge_list(text: str) -> tuple[Graph, dict[int, int]]:
    """Parse SNAP-format edge-list text into a graph.

    Returns ``(graph, labels)`` where ``labels`` maps the graph's dense node
    index back to the original id found in the file.  Lines starting with
    ``#`` (after optional whitespace) and blank lines are ignored; each data
    line must contain exactly two integer tokens.

    >>> g, labels = parse_edge_list("# a comment\\n10 20\\n20 30\\n")
    >>> g.n_nodes, g.n_edges
    (3, 2)
    >>> labels[0]
    10
    """
    sources: list[int] = []
    targets: list[int] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        tokens = line.split()
        if len(tokens) != 2:
            raise GraphFormatError(
                f"line {line_number}: expected 2 tokens, got {len(tokens)}: {line!r}"
            )
        try:
            sources.append(int(tokens[0]))
            targets.append(int(tokens[1]))
        except ValueError as exc:
            raise GraphFormatError(
                f"line {line_number}: non-integer endpoint in {line!r}"
            ) from exc
    if not sources:
        return Graph(0), {}
    all_ids = np.unique(np.concatenate([sources, targets]))
    index_of = {int(original): dense for dense, original in enumerate(all_ids)}
    edges = [(index_of[s], index_of[t]) for s, t in zip(sources, targets)]
    labels = {dense: int(original) for dense, original in enumerate(all_ids)}
    return Graph(len(all_ids), edges), labels


def read_edge_list(path: str | Path) -> tuple[Graph, dict[int, int]]:
    """Read a SNAP-format edge list from ``path`` (``.gz`` handled)."""
    path = Path(path)
    if path.suffix == ".gz":
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = path.read_text(encoding="utf-8")
    return parse_edge_list(text)


def write_edge_list(
    graph: Graph,
    path_or_handle: str | Path | TextIO,
    *,
    header: str | None = None,
) -> None:
    """Write ``graph`` as a SNAP-format edge list.

    ``header`` (if given) is emitted as ``#``-prefixed comment lines.  Nodes
    are written with their dense 0-based ids; isolated nodes do not appear
    (matching the SNAP convention), so a reader must be told ``n_nodes``
    out of band if isolated nodes matter — the default header records it.
    """
    if isinstance(path_or_handle, (str, Path)):
        with open(path_or_handle, "w", encoding="utf-8") as handle:
            write_edge_list(graph, handle, header=header)
        return
    handle = path_or_handle
    if header is None:
        header = f"Nodes: {graph.n_nodes} Edges: {graph.n_edges}"
    for line in header.splitlines():
        handle.write(f"# {line}\n")
    for u, v in graph.edges():
        handle.write(f"{u} {v}\n")


def edge_list_string(graph: Graph, *, header: str | None = None) -> str:
    """Return the edge-list text for ``graph`` as a string."""
    buffer = io.StringIO()
    write_edge_list(graph, buffer, header=header)
    return buffer.getvalue()
