"""Serve-layer configuration: one frozen object, env-knob resolvers.

Every robustness behaviour of ``repro serve`` is a knob with the same
resolution order as the rest of the runtime (explicit argument, then a
``REPRO_SERVE_*`` environment variable, then a safe default), validated
eagerly with the same clear errors:

* ``REPRO_SERVE_QUEUE`` — admission capacity: how many work requests may
  be in flight at once before the server answers 429 + ``Retry-After``.
* ``REPRO_SERVE_TIMEOUT`` — per-request deadline in seconds; a request
  that exceeds it is answered 504 (the watchdog is the trial engine's).
* ``REPRO_SERVE_DRAIN`` — graceful-drain deadline in seconds: how long
  SIGTERM/SIGINT waits for in-flight requests before abandoning them.
* ``REPRO_SERVE_BREAKER`` — circuit-breaker threshold: consecutive
  pool-breakage events before the server trips (work answers 503 and
  ``/readyz`` probes until recovery).
* ``REPRO_SERVE_BUDGET_EPSILON`` / ``REPRO_SERVE_BUDGET_DELTA`` — the
  per-dataset (ε, δ) privacy budget every private request draws on.
* ``REPRO_SERVE_LEDGER_DIR`` — where per-dataset accountant ledgers are
  persisted (unset = in-memory only; spends do not survive restarts).
* ``REPRO_SERVE_MAX_SAMPLES`` — per-request cap on synthetic graphs a
  single sample request may ask for; a request above it is answered
  ``400`` with a structured message naming the limit.

The privacy defaults a request omits (``REPRO_EPSILON`` /
``REPRO_DELTA``) and the execution knobs (``REPRO_N_JOBS``,
``REPRO_CACHE_DIR``, ``REPRO_POOL_RESTARTS``,
``REPRO_SERVE_FAULT_INJECT``) are shared with the evaluation harness and
trial engine, so a serve process and a batch run read one configuration
surface.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.runtime.engine import resolve_n_jobs, resolve_pool_restarts
from repro.runtime.faults import ServeFaultPlan, resolve_serve_fault_plan
from repro.utils.validation import check_integer, check_nonnegative

__all__ = [
    "ServeConfig",
    "SERVE_QUEUE_ENV",
    "SERVE_TIMEOUT_ENV",
    "SERVE_DRAIN_ENV",
    "SERVE_BREAKER_ENV",
    "SERVE_BUDGET_EPSILON_ENV",
    "SERVE_BUDGET_DELTA_ENV",
    "SERVE_LEDGER_DIR_ENV",
    "SERVE_MAX_SAMPLES_ENV",
    "resolve_serve_queue",
    "resolve_serve_timeout",
    "resolve_serve_drain",
    "resolve_serve_breaker",
    "resolve_serve_budget_epsilon",
    "resolve_serve_budget_delta",
    "resolve_serve_max_samples",
]

SERVE_QUEUE_ENV = "REPRO_SERVE_QUEUE"
SERVE_TIMEOUT_ENV = "REPRO_SERVE_TIMEOUT"
SERVE_DRAIN_ENV = "REPRO_SERVE_DRAIN"
SERVE_BREAKER_ENV = "REPRO_SERVE_BREAKER"
SERVE_BUDGET_EPSILON_ENV = "REPRO_SERVE_BUDGET_EPSILON"
SERVE_BUDGET_DELTA_ENV = "REPRO_SERVE_BUDGET_DELTA"
SERVE_LEDGER_DIR_ENV = "REPRO_SERVE_LEDGER_DIR"
SERVE_MAX_SAMPLES_ENV = "REPRO_SERVE_MAX_SAMPLES"

DEFAULT_QUEUE = 8
DEFAULT_TIMEOUT = 30.0
DEFAULT_DRAIN = 10.0
DEFAULT_BREAKER = 3
DEFAULT_BUDGET_EPSILON = 1.0
DEFAULT_BUDGET_DELTA = 0.1

# Per-request cap on synthetic graphs: purely protective (a request
# asking for thousands would hold its admission slot for minutes).
# Tunable via REPRO_SERVE_MAX_SAMPLES; kept under its historical name
# for callers that import the constant.
DEFAULT_MAX_SAMPLES = 64
MAX_SAMPLES_PER_REQUEST = DEFAULT_MAX_SAMPLES


def _env_int(name: str, fallback: int, *, minimum: int) -> int:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return fallback
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValidationError(
            f"environment variable {name} must be an integer, got {raw!r}"
        ) from exc
    return check_integer(value, name, minimum=minimum)


def _env_float(name: str, fallback: float, *, positive: bool) -> float:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return fallback
    try:
        value = float(raw)
    except ValueError as exc:
        raise ValidationError(
            f"environment variable {name} must be a number, got {raw!r}"
        ) from exc
    if positive and not value > 0:
        raise ValidationError(f"{name} must be positive, got {value}")
    if not positive:
        check_nonnegative(value, name)
    return value


def resolve_serve_queue(queue: int | None = None) -> int:
    """Admission capacity: argument, then ``REPRO_SERVE_QUEUE``, then
    {default}.  At least 1 — a server that admits nothing serves
    nothing."""
    if queue is None:
        return _env_int(SERVE_QUEUE_ENV, DEFAULT_QUEUE, minimum=1)
    return check_integer(queue, "serve queue", minimum=1)


def resolve_serve_timeout(timeout: float | None = None) -> float:
    """Per-request deadline in seconds: argument, then
    ``REPRO_SERVE_TIMEOUT``, then {default}s."""
    if timeout is None:
        return _env_float(SERVE_TIMEOUT_ENV, DEFAULT_TIMEOUT, positive=True)
    timeout = float(timeout)
    if not timeout > 0:
        raise ValidationError(f"serve timeout must be positive, got {timeout}")
    return timeout


def resolve_serve_drain(drain: float | None = None) -> float:
    """Graceful-drain deadline in seconds: argument, then
    ``REPRO_SERVE_DRAIN``, then {default}s."""
    if drain is None:
        return _env_float(SERVE_DRAIN_ENV, DEFAULT_DRAIN, positive=True)
    drain = float(drain)
    if not drain > 0:
        raise ValidationError(f"drain deadline must be positive, got {drain}")
    return drain


def resolve_serve_breaker(threshold: int | None = None) -> int:
    """Circuit-breaker trip threshold (consecutive pool breakages):
    argument, then ``REPRO_SERVE_BREAKER``, then {default}."""
    if threshold is None:
        return _env_int(SERVE_BREAKER_ENV, DEFAULT_BREAKER, minimum=1)
    return check_integer(threshold, "breaker threshold", minimum=1)


def resolve_serve_budget_epsilon(epsilon: float | None = None) -> float:
    """Per-dataset ε budget: argument, then
    ``REPRO_SERVE_BUDGET_EPSILON``, then {default}."""
    if epsilon is None:
        return _env_float(
            SERVE_BUDGET_EPSILON_ENV, DEFAULT_BUDGET_EPSILON, positive=False
        )
    return check_nonnegative(float(epsilon), "budget epsilon")


def resolve_serve_budget_delta(delta: float | None = None) -> float:
    """Per-dataset δ budget: argument, then ``REPRO_SERVE_BUDGET_DELTA``,
    then {default}."""
    if delta is None:
        return _env_float(SERVE_BUDGET_DELTA_ENV, DEFAULT_BUDGET_DELTA, positive=False)
    return check_nonnegative(float(delta), "budget delta")


def resolve_serve_max_samples(max_samples: int | None = None) -> int:
    """Per-request synthetic-graph cap: argument, then
    ``REPRO_SERVE_MAX_SAMPLES``, then {default}.  At least 1 — a cap of
    zero would reject every sample request."""
    if max_samples is None:
        return _env_int(SERVE_MAX_SAMPLES_ENV, DEFAULT_MAX_SAMPLES, minimum=1)
    return check_integer(max_samples, "max samples per request", minimum=1)


resolve_serve_queue.__doc__ = resolve_serve_queue.__doc__.format(default=DEFAULT_QUEUE)
resolve_serve_timeout.__doc__ = resolve_serve_timeout.__doc__.format(
    default=DEFAULT_TIMEOUT
)
resolve_serve_drain.__doc__ = resolve_serve_drain.__doc__.format(default=DEFAULT_DRAIN)
resolve_serve_breaker.__doc__ = resolve_serve_breaker.__doc__.format(
    default=DEFAULT_BREAKER
)
resolve_serve_budget_epsilon.__doc__ = resolve_serve_budget_epsilon.__doc__.format(
    default=DEFAULT_BUDGET_EPSILON
)
resolve_serve_budget_delta.__doc__ = resolve_serve_budget_delta.__doc__.format(
    default=DEFAULT_BUDGET_DELTA
)
resolve_serve_max_samples.__doc__ = resolve_serve_max_samples.__doc__.format(
    default=DEFAULT_MAX_SAMPLES
)


@dataclass(frozen=True)
class ServeConfig:
    """Resolved, validated configuration of one serve process."""

    host: str = "127.0.0.1"
    port: int = 8377
    queue_limit: int = DEFAULT_QUEUE
    timeout: float = DEFAULT_TIMEOUT
    drain_deadline: float = DEFAULT_DRAIN
    breaker_threshold: int = DEFAULT_BREAKER
    budget_epsilon: float = DEFAULT_BUDGET_EPSILON
    budget_delta: float = DEFAULT_BUDGET_DELTA
    default_epsilon: float = 0.2
    default_delta: float = 0.01
    n_jobs: int = 1
    pool_restarts: int = 2
    cache_dir: str | None = None
    ledger_dir: str | None = None
    max_samples: int = DEFAULT_MAX_SAMPLES
    faults: ServeFaultPlan = field(default_factory=ServeFaultPlan)

    @classmethod
    def resolve(
        cls,
        *,
        host: str | None = None,
        port: int | None = None,
        queue: int | None = None,
        timeout: float | None = None,
        drain: float | None = None,
        breaker: int | None = None,
        budget_epsilon: float | None = None,
        budget_delta: float | None = None,
        n_jobs: int | None = None,
        pool_restarts: int | None = None,
        cache_dir: str | None = None,
        ledger_dir: str | None = None,
        max_samples: int | None = None,
        faults: "str | ServeFaultPlan | None" = None,
    ) -> "ServeConfig":
        """Build a config with the standard knob-resolution order.

        Every ``None`` falls through to its ``REPRO_SERVE_*`` (or shared
        ``REPRO_*``) environment variable, then the default.  Validation
        happens here, eagerly — a serve process must refuse to boot with
        a bad knob, not fail on its first request.
        """
        return cls(
            host=host if host is not None else "127.0.0.1",
            port=check_integer(port if port is not None else 8377, "port", minimum=0),
            queue_limit=resolve_serve_queue(queue),
            timeout=resolve_serve_timeout(timeout),
            drain_deadline=resolve_serve_drain(drain),
            breaker_threshold=resolve_serve_breaker(breaker),
            budget_epsilon=resolve_serve_budget_epsilon(budget_epsilon),
            budget_delta=resolve_serve_budget_delta(budget_delta),
            default_epsilon=_env_float("REPRO_EPSILON", 0.2, positive=True),
            default_delta=_env_float("REPRO_DELTA", 0.01, positive=True),
            n_jobs=resolve_n_jobs(n_jobs),
            pool_restarts=resolve_pool_restarts(pool_restarts),
            cache_dir=(
                cache_dir
                if cache_dir is not None
                else os.environ.get("REPRO_CACHE_DIR") or None
            ),
            ledger_dir=(
                ledger_dir
                if ledger_dir is not None
                else os.environ.get(SERVE_LEDGER_DIR_ENV) or None
            ),
            max_samples=resolve_serve_max_samples(max_samples),
            faults=resolve_serve_fault_plan(faults),
        )
