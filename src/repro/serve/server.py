"""The HTTP shell around :class:`~repro.serve.service.SynthesisService`.

Stdlib-only transport: a :class:`ThreadingHTTPServer` whose handler does
exactly three things — parse the JSON body, call ``service.handle``,
write the structured response with an explicit ``Content-Length``.  All
policy lives in the service; all lifecycle lives in
:class:`ServeRuntime`:

* ``start()`` binds and serves on a background thread (port 0 works and
  reports the ephemeral port, which is how tests and the benchmark boot
  throwaway servers).
* ``install_signal_handlers()`` + SIGTERM/SIGINT → **graceful drain**:
  mark draining (work answers 503, ``/readyz`` flips), stop accepting,
  wait up to ``REPRO_SERVE_DRAIN`` seconds for in-flight requests,
  flush every privacy ledger to disk, tear down the worker pool.  The
  signal handler itself only sets a flag and hands off to a thread —
  nothing blocking, nothing reentrant.
* ``stop()`` is the same path, callable directly (idempotent, so a
  signal racing an explicit shutdown is harmless).
"""

from __future__ import annotations

import json
import os
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.runtime.engine import shutdown_pool
from repro.serve.config import ServeConfig
from repro.serve.service import ServeResponse, SynthesisService
from repro.utils.logging import get_logger

__all__ = ["ServeRuntime"]

_logger = get_logger(__name__)


class _ServeHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    # socketserver's default listen backlog is 5; under a burst of
    # concurrent clients a full accept queue makes the kernel drop the
    # handshake's final ACK and RST the client's first write.  The
    # admission gate is the real concurrency limit — the backlog just
    # has to absorb connection churn without resets.
    request_queue_size = 128
    service: SynthesisService


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # http.server logs to stderr by default; route through our logger at
    # debug so test and CI output stays readable.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        _logger.debug("http: " + format, *args)

    def do_GET(self) -> None:  # noqa: N802
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def _dispatch(self, verb: str) -> None:
        payload = None
        if verb == "POST":
            try:
                length = int(self.headers.get("Content-Length") or 0)
            except ValueError:
                length = 0
            raw = self.rfile.read(length) if length > 0 else b""
            if raw:
                try:
                    payload = json.loads(raw)
                except json.JSONDecodeError as exc:
                    self._respond(
                        ServeResponse(
                            400,
                            {
                                "error": {
                                    "code": "bad-json",
                                    "message": f"request body is not JSON: {exc}",
                                    "status": 400,
                                }
                            },
                        )
                    )
                    return
        path = self.path.split("?", 1)[0]
        response = self.server.service.handle(verb, path, payload)
        self._respond(response)

    def _respond(self, response: ServeResponse) -> None:
        # sort_keys is load-bearing: cold and cached responses must be
        # byte-for-byte identical on the wire.
        body = (json.dumps(response.body, sort_keys=True) + "\n").encode("utf-8")
        try:
            self.send_response(response.status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in response.headers.items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            # The client hung up first; its admission slot was already
            # released by the service layer.
            _logger.debug("client disconnected before response was written")


class ServeRuntime:
    """Boot, serve, and gracefully drain one ``repro serve`` process."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.service = SynthesisService(config)
        self._server = _ServeHTTPServer((config.host, config.port), _Handler)
        self._server.service = self.service
        self._thread: threading.Thread | None = None
        self._stop_lock = threading.Lock()
        self._stopping = False
        self._owner_pid = os.getpid()
        self.stopped = threading.Event()

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — authoritative when port 0 was asked."""
        host, port = self._server.server_address[:2]
        return (str(host), int(port))

    @property
    def base_url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> None:
        """Serve on a background thread; returns once accepting."""
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-serve-accept",
            daemon=True,
        )
        self._thread.start()
        _logger.info(
            "repro serve listening on %s (queue=%d timeout=%gs n_jobs=%d)",
            self.base_url,
            self.config.queue_limit,
            self.config.timeout,
            self.config.n_jobs,
        )

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain (flag + handoff thread only)."""
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, self._handle_signal)

    def _handle_signal(self, signum, frame) -> None:
        # Forked pool workers inherit this handler; a worker being
        # terminated must just die, not start a drain of its copied
        # runtime state (shared sockets, the same ledger files).
        if os.getpid() != self._owner_pid:
            signal.signal(signum, signal.SIG_DFL)
            os.kill(os.getpid(), signum)
            return
        # Flip the drain flag synchronously (readyz answers 503 from this
        # instant); everything blocking runs on a dedicated thread, since
        # a signal handler must never wait on locks held by the thread it
        # interrupted.
        self.service.begin_drain()
        _logger.info("received %s; draining", signal.Signals(signum).name)
        threading.Thread(target=self.stop, name="repro-serve-drain", daemon=True).start()

    def stop(self) -> bool:
        """Drain and shut down; idempotent.  True = drained cleanly."""
        with self._stop_lock:
            if self._stopping:
                self.stopped.wait()
                return True
            self._stopping = True
        self.service.begin_drain()
        self._server.shutdown()
        drained = self.service.drain(self.config.drain_deadline)
        self._server.server_close()
        shutdown_pool()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self.stopped.set()
        _logger.info("repro serve stopped (%s)", "drained" if drained else "abandoned stragglers")
        return drained

    def run(self) -> None:
        """Blocking entry point used by the CLI: serve until signalled."""
        self.install_signal_handlers()
        self.start()
        self.stopped.wait()
