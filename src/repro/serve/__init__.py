"""Synthesis-as-a-service: the fault-tolerant ``repro serve`` layer.

A small stdlib-only JSON API over the estimator stack — fit once per
(dataset, estimator, budget), sample many, with the robustness knobs a
long-running process needs: bounded admission with backpressure,
per-request deadlines, a circuit breaker over pool breakage, graceful
drain on SIGTERM/SIGINT, and a concurrency-safe per-dataset privacy
accountant whose refusals happen *before* any noise is drawn.

Layering (each importable and testable without the ones above it)::

    config.py      knobs      -> ServeConfig (REPRO_SERVE_* resolution)
    admission.py   primitives -> AdmissionGate, CircuitBreaker, KeyedLocks
    accounting.py  privacy    -> AccountantRegistry (atomic charge+persist)
    registry.py    models     -> ModelSpec, ModelRegistry, execute_work
    service.py     policy     -> SynthesisService.handle(verb, path, body)
    server.py      transport  -> ServeRuntime (HTTP + signals + drain)
"""

from repro.serve.accounting import AccountantRegistry
from repro.serve.admission import AdmissionGate, CircuitBreaker, KeyedLocks
from repro.serve.config import ServeConfig
from repro.serve.registry import ModelRegistry, ModelSpec, execute_work
from repro.serve.server import ServeRuntime
from repro.serve.service import ServeResponse, SynthesisService

__all__ = [
    "AccountantRegistry",
    "AdmissionGate",
    "CircuitBreaker",
    "KeyedLocks",
    "ModelRegistry",
    "ModelSpec",
    "ServeConfig",
    "ServeResponse",
    "ServeRuntime",
    "SynthesisService",
    "execute_work",
]
