"""Concurrency primitives of the serve layer.

Three small, self-contained pieces, each guarding one robustness
promise:

* :class:`AdmissionGate` — bounded admission with explicit backpressure.
  At most ``capacity`` work requests are in flight; an arrival beyond
  that is **rejected immediately** (the HTTP layer answers 429 +
  ``Retry-After``) instead of queueing unboundedly — under overload the
  server stays responsive and callers get an honest signal to back off.
  The gate also tracks in-flight counts for ``/stats`` and lets the
  drain path wait (bounded) for the last request to finish.
* :class:`CircuitBreaker` — trips open after N *consecutive*
  pool-breakage events.  While open, work requests fail fast with 503
  (no queue time wasted on a broken pool) and ``/readyz`` drives a
  single-flight recovery probe; a successful probe closes the breaker.
* :class:`KeyedLocks` — per-key single-flight locks (model fits,
  response computation): concurrent identical requests serialize so the
  work — and for private fits, the **budget charge** — happens once,
  with the waiters served from cache.  Lock objects are refcounted and
  dropped when idle, so the table stays bounded by live concurrency,
  not by the key universe.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.utils.validation import check_integer

__all__ = ["AdmissionGate", "CircuitBreaker", "KeyedLocks"]


class AdmissionGate:
    """Bounded in-flight work admission with rejection, not queueing."""

    def __init__(self, capacity: int) -> None:
        self.capacity = check_integer(capacity, "capacity", minimum=1)
        self._condition = threading.Condition()
        self._in_flight = 0
        self._peak = 0
        self._rejected = 0

    def try_enter(self) -> bool:
        """Claim an admission slot; ``False`` (count it) when full."""
        with self._condition:
            if self._in_flight >= self.capacity:
                self._rejected += 1
                return False
            self._in_flight += 1
            self._peak = max(self._peak, self._in_flight)
            return True

    def leave(self) -> None:
        """Release a slot claimed by :meth:`try_enter`."""
        with self._condition:
            if self._in_flight <= 0:
                raise RuntimeError("AdmissionGate.leave() without a matching enter")
            self._in_flight -= 1
            if self._in_flight == 0:
                self._condition.notify_all()

    def wait_idle(self, timeout: float) -> bool:
        """Block until no request is in flight (drain); ``False`` on
        expiry with work still running."""
        deadline = time.monotonic() + timeout
        with self._condition:
            while self._in_flight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._condition.wait(remaining)
            return True

    @property
    def in_flight(self) -> int:
        with self._condition:
            return self._in_flight

    def snapshot(self) -> dict:
        """Counters for ``/stats``."""
        with self._condition:
            return {
                "limit": self.capacity,
                "in_flight": self._in_flight,
                "peak_in_flight": self._peak,
                "rejected": self._rejected,
            }


class CircuitBreaker:
    """Trips after ``threshold`` consecutive pool breakages; a probe
    (driven by ``/readyz``) closes it again.

    ``record_breakage`` / ``record_success`` are called from the work
    path; ``begin_probe`` / ``end_probe`` bracket the single-flight
    recovery attempt — only one probe runs at a time, and while it runs
    other ``/readyz`` calls keep answering 503 without piling on.
    """

    def __init__(self, threshold: int) -> None:
        self.threshold = check_integer(threshold, "threshold", minimum=1)
        self._lock = threading.Lock()
        self._consecutive = 0
        self._breakages = 0
        self._trips = 0
        self._probes = 0
        self._open = False
        self._probing = False

    def record_breakage(self) -> None:
        """One pool-breakage event; trips the breaker at the threshold."""
        with self._lock:
            self._breakages += 1
            self._consecutive += 1
            if not self._open and self._consecutive >= self.threshold:
                self._open = True
                self._trips += 1

    def record_success(self) -> None:
        """A work item completed on the pool; resets the streak."""
        with self._lock:
            self._consecutive = 0

    @property
    def is_open(self) -> bool:
        with self._lock:
            return self._open

    @property
    def state(self) -> str:
        with self._lock:
            if not self._open:
                return "closed"
            return "probing" if self._probing else "open"

    def begin_probe(self) -> bool:
        """Claim the single probe slot; ``False`` if closed or one is
        already running."""
        with self._lock:
            if not self._open or self._probing:
                return False
            self._probing = True
            self._probes += 1
            return True

    def end_probe(self, success: bool) -> None:
        """Finish the probe; success closes the breaker."""
        with self._lock:
            self._probing = False
            if success:
                self._open = False
                self._consecutive = 0

    def snapshot(self) -> dict:
        """Counters for ``/stats``."""
        with self._lock:
            return {
                "state": "closed" if not self._open else (
                    "probing" if self._probing else "open"
                ),
                "threshold": self.threshold,
                "consecutive_breakages": self._consecutive,
                "pool_breakages": self._breakages,
                "trips": self._trips,
                "probes": self._probes,
            }


class KeyedLocks:
    """Refcounted per-key mutual exclusion (single-flight execution)."""

    def __init__(self) -> None:
        self._master = threading.Lock()
        self._locks: dict[str, tuple[threading.Lock, int]] = {}

    @contextmanager
    def lock(self, key: str) -> Iterator[None]:
        with self._master:
            entry, holders = self._locks.get(key, (None, 0))
            if entry is None:
                entry = threading.Lock()
            self._locks[key] = (entry, holders + 1)
        try:
            with entry:
                yield
        finally:
            with self._master:
                entry, holders = self._locks[key]
                if holders <= 1:
                    del self._locks[key]
                else:
                    self._locks[key] = (entry, holders - 1)

    def __len__(self) -> int:
        with self._master:
            return len(self._locks)
