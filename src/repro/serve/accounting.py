"""Per-dataset privacy accounting for the serve layer.

Every dataset a serve process touches gets its own
:class:`~repro.privacy.accountant.PrivacyAccountant` with the configured
(ε, δ) budget.  Concurrent request handlers all charge through the
accountant's atomic check-and-spend, so the budget can never be jointly
overspent — the losing request is refused with
:class:`~repro.errors.PrivacyBudgetError` (the HTTP layer answers 403)
*before* any noise is drawn.

With a ledger directory configured, each successful charge is persisted
immediately (atomic write-then-rename of ``<dataset>.json``, the
:meth:`~repro.privacy.accountant.PrivacyAccountant.to_json` payload) and
reloaded on boot, so a restarted server remembers what was already spent
— the conservative behaviour for DP: a crash can forget a *failed*
request, never a recorded spend.  The graceful-drain path calls
:meth:`AccountantRegistry.flush` as its final act.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from pathlib import Path

from repro.privacy.accountant import PrivacyAccountant
from repro.utils.logging import get_logger

__all__ = ["AccountantRegistry"]

_logger = get_logger(__name__)


class AccountantRegistry:
    """Lazily-created per-dataset accountants sharing one budget shape."""

    def __init__(
        self,
        *,
        epsilon: float,
        delta: float,
        ledger_dir: str | os.PathLike | None = None,
    ) -> None:
        self.epsilon = epsilon
        self.delta = delta
        self.ledger_dir = Path(ledger_dir) if ledger_dir is not None else None
        if self.ledger_dir is not None:
            self.ledger_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._accountants: dict[str, PrivacyAccountant] = {}

    def ledger_path(self, dataset: str) -> Path | None:
        """Where ``dataset``'s ledger persists (``None`` = in-memory)."""
        if self.ledger_dir is None:
            return None
        return self.ledger_dir / f"{dataset}.json"

    def for_dataset(self, dataset: str) -> PrivacyAccountant:
        """The dataset's accountant, restoring a persisted ledger once."""
        with self._lock:
            accountant = self._accountants.get(dataset)
            if accountant is None:
                accountant = self._load(dataset)
                self._accountants[dataset] = accountant
            return accountant

    def charge(self, dataset: str, label: str, epsilon: float, delta: float) -> None:
        """Atomically charge the dataset's budget, then persist.

        Raises :class:`~repro.errors.PrivacyBudgetError` (and persists
        nothing) when the spend would exceed the budget.  A persistence
        failure after a successful charge is logged, not raised: the
        spend is recorded in memory and the drain-time flush retries.
        """
        accountant = self.for_dataset(dataset)
        accountant.charge(label, epsilon, delta)
        self._persist(dataset, accountant)

    def flush(self) -> int:
        """Persist every accountant; returns how many were written."""
        if self.ledger_dir is None:
            return 0
        with self._lock:
            accountants = dict(self._accountants)
        written = 0
        for dataset, accountant in accountants.items():
            if self._persist(dataset, accountant):
                written += 1
        return written

    def snapshot(self) -> dict:
        """Per-dataset budget state for ``/stats``."""
        with self._lock:
            accountants = dict(self._accountants)
        report = {}
        for dataset in sorted(accountants):
            accountant = accountants[dataset]
            spent_epsilon, spent_delta = accountant.spent
            remaining_epsilon, remaining_delta = accountant.remaining
            report[dataset] = {
                "budget": {"epsilon": accountant.epsilon, "delta": accountant.delta},
                "spent": {"epsilon": spent_epsilon, "delta": spent_delta},
                "remaining": {"epsilon": remaining_epsilon, "delta": remaining_delta},
                "entries": len(accountant.ledger),
            }
        return report

    def _load(self, dataset: str) -> PrivacyAccountant:
        path = self.ledger_path(dataset)
        if path is not None and path.exists():
            payload = json.loads(path.read_text(encoding="utf-8"))
            restored = PrivacyAccountant.from_json(payload)
            # The configured budget wins over the persisted one (a config
            # change must take effect), but the recorded spends are
            # historical fact and come along verbatim.
            accountant = PrivacyAccountant(self.epsilon, self.delta)
            accountant._ledger.extend(restored.ledger)
            spent_epsilon, spent_delta = accountant.spent
            _logger.info(
                "restored privacy ledger for %s: %d spend(s), "
                "epsilon=%.6g delta=%.6g already consumed",
                dataset, len(accountant.ledger), spent_epsilon, spent_delta,
            )
            return accountant
        return PrivacyAccountant(self.epsilon, self.delta)

    def _persist(self, dataset: str, accountant: PrivacyAccountant) -> bool:
        path = self.ledger_path(dataset)
        if path is None:
            return False
        payload = json.dumps(accountant.to_json(), indent=2, sort_keys=True) + "\n"
        try:
            descriptor, temp_name = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                    handle.write(payload)
                os.replace(temp_name, path)
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise
        except OSError as exc:
            _logger.warning(
                "could not persist privacy ledger for %s to %s: %s",
                dataset, path, exc,
            )
            return False
        return True
