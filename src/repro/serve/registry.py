"""The pre-fitted model registry and the serve layer's work executor.

**Fit once, sample many** is the serving contract — and for private
estimators it is also the privacy win: one (ε, δ) charge buys a fitted
model whose samples are free post-processing.  :class:`ModelRegistry`
memoizes fitted models by a stable content hash of (dataset, method,
budget, seed, params):

* in memory for the process lifetime (the hot path),
* through the content-addressed :class:`~repro.runtime.cache.TrialCache`
  on disk, so a restarted server reuses earlier fits **without charging
  the budget again** (the matching spend is in the restored ledger);
* single-flight per key: concurrent identical requests serialize on a
  keyed lock, so the fit — and its budget charge — happens exactly once
  while the losers wait and read the winner's result.

The budget charge happens *before* the fit executes (before any noise is
drawn), through the accountant's atomic check-and-spend; an over-budget
request dies with :class:`~repro.errors.PrivacyBudgetError` having
perturbed nothing.

:func:`execute_work` is how fits (and sample batches) run: in-process
when the server is serial, else on the trial engine's persistent worker
pool with the same self-healing contract as ``run_trials`` — a
:class:`~concurrent.futures.process.BrokenProcessPool` rebuilds the pool
and resubmits within the ``REPRO_POOL_RESTARTS`` budget, reporting each
breakage to the circuit breaker.  Injected ``pool_breakage`` faults
(:mod:`repro.runtime.faults`) arm per-submission worker crashes exactly
like the engine's ``worker_crash`` clauses.
"""

from __future__ import annotations

import math
import os
import threading
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.core.protocols import FittedModel, build_estimator, estimator_method
from repro.graphs.datasets import load_dataset
from repro.runtime.cache import TrialCache
from repro.runtime.engine import persistent_executor, shutdown_pool
from repro.runtime.faults import CRASH_EXIT_CODE
from repro.runtime.hashing import stable_hash
from repro.serve.admission import KeyedLocks
from repro.utils.logging import get_logger

__all__ = ["ModelSpec", "ModelRegistry", "execute_work"]

_logger = get_logger(__name__)

# Version tag folded into every registry cache key: bump to invalidate
# persisted fitted models when their layout changes incompatibly.
_MODEL_KEY_VERSION = 1


def _pool_call(fn: Callable[..., Any], kwargs: dict, crash: bool) -> Any:
    """The payload a pool worker runs: optional injected crash, then fn."""
    if crash:
        # Simulated worker death (OOM killer / segfault), same contract
        # as the trial engine's worker_crash clauses.
        os._exit(CRASH_EXIT_CODE)
    return fn(**kwargs)


def execute_work(
    fn: Callable[..., Any],
    kwargs: dict,
    *,
    n_jobs: int,
    pool_restarts: int,
    crash_submissions: int = 0,
    on_breakage: Callable[[], None] | None = None,
    on_success: Callable[[], None] | None = None,
) -> Any:
    """Run one work item, self-healing pool breakage.

    Serial servers (``n_jobs <= 1``) run the work in the handler thread
    (injected crashes are inert, mirroring the trial engine's serial
    path).  Parallel servers submit to the persistent pool; each
    breakage shuts the broken pool down (the next submission recreates
    it), reports to ``on_breakage`` (the circuit breaker), and retries
    until the restart budget is exhausted, at which point the
    :class:`BrokenProcessPool` surfaces to the handler.
    """
    if n_jobs <= 1:
        return fn(**kwargs)
    submissions = 0
    restarts = 0
    while True:
        submissions += 1
        crash = submissions <= crash_submissions
        executor = persistent_executor(n_jobs)
        try:
            future = executor.submit(_pool_call, fn, kwargs, crash)
        except RuntimeError:
            # The pool was shut down between acquire and submit (another
            # handler healing a breakage); take a fresh one.  Bounded by
            # the same restart budget so racing threads cannot spin.
            restarts += 1
            if restarts > pool_restarts:
                raise
            continue
        try:
            result = future.result()
        except BrokenProcessPool:
            shutdown_pool()
            restarts += 1
            if on_breakage is not None:
                on_breakage()
            if restarts > pool_restarts:
                _logger.error(
                    "serve work broke the pool %d time(s), exceeding the "
                    "restart budget of %d", restarts, pool_restarts,
                )
                raise
            _logger.warning(
                "serve work broke the pool (worker died); rebuilt and "
                "resubmitting (restart %d of at most %d)", restarts, pool_restarts,
            )
            continue
        if on_success is not None:
            on_success()
        return result


def _fit_work(
    *,
    dataset: str,
    method: str,
    epsilon: float | None,
    delta: float | None,
    seed: int,
    params: tuple,
) -> FittedModel:
    """Fit one model (module-level: ships to pool workers by name)."""
    graph = load_dataset(dataset)
    estimator = build_estimator(
        method, dict(params), epsilon=epsilon, delta=delta, seed=seed
    )
    return estimator.fit(graph)


def _sample_work(*, model: FittedModel, count: int, entropy: int) -> list[dict]:
    """Sample ``count`` synthetic graphs and summarize each.

    Seeds are spawned from ``entropy`` by index, so a batch of N samples
    is a prefix of a batch of M > N — and the whole body is a pure
    function of (model, count, entropy), which is what makes the cached
    response bit-identical to a cold one.
    """
    from repro.stats.counts import matching_statistics

    children = np.random.SeedSequence(entropy).spawn(count)
    rows = []
    for child in children:
        graph = model.sample_graph(seed=child)
        stats = matching_statistics(graph)
        rows.append(
            {
                "n_nodes": int(graph.n_nodes),
                "n_edges": int(graph.n_edges),
                "edges": float(stats.edges),
                "hairpins": float(stats.hairpins),
                "tripins": float(stats.tripins),
                "triangles": float(stats.triangles),
            }
        )
    return rows


def _probe_work() -> int:
    """A trivial work item proving the executor path is healthy."""
    return os.getpid()


@dataclass(frozen=True)
class ModelSpec:
    """The identity of one fitted model: the registry's cache key.

    ``epsilon`` / ``delta`` are ``None`` for methods that do not consume
    them (so ``kronmom`` at "ε=0.2" and "ε=0.3" share one model), and
    ``params`` is a sorted tuple of extra estimator kwargs.
    """

    dataset: str
    method: str
    epsilon: float | None
    delta: float | None
    seed: int
    params: tuple = ()

    @property
    def charges_budget(self) -> bool:
        """Does fitting this model consume privacy budget?"""
        return estimator_method(self.method).accepts_epsilon

    @property
    def charge(self) -> tuple[float, float]:
        """The (ε, δ) one fit of this spec spends."""
        if not self.charges_budget:
            return (0.0, 0.0)
        descriptor = estimator_method(self.method)
        epsilon = float(self.epsilon or 0.0)
        delta = float(self.delta or 0.0) if descriptor.accepts_delta else 0.0
        return (epsilon, delta)

    def token(self) -> str:
        """Stable content hash: the memory/disk registry key."""
        return stable_hash(
            (
                "serve-model",
                _MODEL_KEY_VERSION,
                self.dataset,
                self.method,
                self.epsilon,
                self.delta,
                self.seed,
                self.params,
            )
        )

    def label(self) -> str:
        """The ledger label a fit of this spec charges under."""
        epsilon, delta = self.charge
        return (
            f"serve {self.method} fit of {self.dataset} "
            f"(epsilon={epsilon:g}, delta={delta:g}, seed={self.seed})"
        )


class ModelRegistry:
    """Fit-once-per-key model store backing ``/fit``/``/sample``/``/release``."""

    def __init__(
        self,
        *,
        accountants,
        executor: Callable[..., Any],
        cache: TrialCache | None = None,
    ) -> None:
        self._accountants = accountants
        self._executor = executor
        self._cache = cache
        self._models: dict[str, FittedModel] = {}
        self._lock = threading.Lock()
        self._locks = KeyedLocks()
        self._fitted = 0
        self._restored = 0

    def get_or_fit(
        self, spec: ModelSpec, *, crash_submissions: int = 0
    ) -> tuple[FittedModel, str]:
        """The model for ``spec``, fitting (and charging) at most once.

        Returns ``(model, source)`` with source one of ``memory`` /
        ``cache`` / ``fitted``.  Single-flight per key: under concurrent
        identical requests exactly one caller fits (charging the budget
        exactly once for private methods); the rest block on the keyed
        lock and then hit memory.
        """
        token = spec.token()
        with self._lock:
            model = self._models.get(token)
        if model is not None:
            return model, "memory"
        with self._locks.lock(token):
            with self._lock:
                model = self._models.get(token)
            if model is not None:
                return model, "memory"
            if self._cache is not None:
                hit, value = self._cache.load(token)
                if hit:
                    # A persisted fit: its budget charge is in the
                    # restored ledger, so reusing it is free.
                    with self._lock:
                        self._models[token] = value
                        self._restored += 1
                    return value, "cache"
            epsilon, delta = spec.charge
            if spec.charges_budget:
                # Atomic check-and-spend BEFORE the fit runs: an
                # over-budget request is refused here, before any noise
                # is drawn.
                self._accountants.charge(spec.dataset, spec.label(), epsilon, delta)
            model = self._executor(
                _fit_work,
                {
                    "dataset": spec.dataset,
                    "method": spec.method,
                    "epsilon": spec.epsilon,
                    "delta": spec.delta,
                    "seed": spec.seed,
                    "params": spec.params,
                },
                crash_submissions=crash_submissions,
            )
            if self._cache is not None:
                self._cache.store(token, model)
            with self._lock:
                self._models[token] = model
                self._fitted += 1
            return model, "fitted"

    def summarize_model(self, model: FittedModel) -> dict:
        """The JSON-safe released view of a fitted model."""
        epsilon = model.epsilon
        summary: dict[str, Any] = {
            "epsilon": None if math.isinf(epsilon) else float(epsilon),
        }
        initiator = getattr(model, "initiator", None)
        if initiator is not None:
            summary["initiator"] = {
                "a": float(initiator.a),
                "b": float(initiator.b),
                "c": float(initiator.c),
            }
            summary["k"] = int(model.k)
        method = getattr(model, "method", None)
        if method is not None:
            summary["method"] = str(method)
        return summary

    def snapshot(self) -> dict:
        """Counters for ``/stats``."""
        with self._lock:
            return {
                "loaded": len(self._models),
                "fitted": self._fitted,
                "restored": self._restored,
            }
