"""Transport-independent request handling for ``repro serve``.

:class:`SynthesisService` is the whole API surface as a plain object:
``handle(verb, path, payload)`` → :class:`ServeResponse`.  The HTTP
layer (:mod:`repro.serve.server`) only moves bytes; every behaviour the
acceptance tests care about — admission, deadlines, budget refusal,
caching, circuit breaking, drain — lives here, where it can be driven
by ordinary threads in tests without a socket in sight.

Status contract (the only statuses a work endpoint ever answers):

====  =========================================================
200   success (body bit-identical whether computed or cached)
400   malformed request (unknown dataset/method, bad JSON shape)
403   privacy budget exhausted — refused *before* noise is drawn
429   admission queue full — ``Retry-After`` header set
503   draining, circuit breaker open, or work failed
504   per-request deadline exceeded (``REPRO_SERVE_TIMEOUT``)
====  =========================================================

Every response body is a JSON object; errors carry
``{"error": {"code", "message", "status"}}`` — never a hung or
half-written socket.

Request flow on ``/fit`` / ``/sample`` / ``/release``::

    drain? -> 503 | breaker open? -> 503 | gate full? -> 429
      -> assign work sequence number (fault-injection target)
      -> under the deadline watchdog:
           canonicalize -> injected faults -> response-cache probe
           -> single-flight lock -> re-probe -> model fit
              (atomic budget charge BEFORE the fit) -> samples
           -> store response

Determinism: a request that omits ``seed`` gets one derived from the
stable hash of its canonical parameters, so retrying the same request —
against a cold cache, a warm cache, or a restarted server — returns a
bit-identical body.  Cache attribution never leaks into the body; it
rides the ``X-Repro-Cache`` header and ``/stats``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.core.protocols import estimator_method
from repro.errors import DatasetError, PrivacyBudgetError, ValidationError
from repro.graphs.datasets import available_datasets
from repro.runtime.cache import TrialCache
from repro.runtime.engine import TrialTimeoutError, call_with_timeout
from repro.runtime.faults import InjectedFault, RequestFaults
from repro.runtime.hashing import stable_hash
from repro.serve.accounting import AccountantRegistry
from repro.serve.admission import AdmissionGate, CircuitBreaker, KeyedLocks
from repro.serve.config import SERVE_MAX_SAMPLES_ENV, ServeConfig
from repro.serve.registry import (
    ModelRegistry,
    ModelSpec,
    _probe_work,
    _sample_work,
    execute_work,
)
from repro.utils.logging import get_logger

__all__ = ["ServeResponse", "SynthesisService"]

_logger = get_logger(__name__)

# Version tag in every response-cache key: bump when body layout changes.
_RESPONSE_KEY_VERSION = 1

# Lowercase request tokens -> estimator registry names.  ``Fixed`` is
# deliberately not servable: it ignores the dataset, so it has no place
# behind a per-dataset budget.
_SERVE_METHODS = {
    "kronfit": "KronFit",
    "kronmom": "KronMom",
    "private": "Private",
    "dpdegree": "DPDegree",
}

_WORK_ENDPOINTS = ("/fit", "/sample", "/release")


@dataclass(frozen=True)
class ServeResponse:
    """One fully-formed response: status, JSON body, extra headers."""

    status: int
    body: dict
    headers: Mapping[str, str] = field(default_factory=dict)


def _error(status: int, code: str, message: str, headers: Mapping[str, str] | None = None):
    body = {"error": {"code": code, "message": message, "status": status}}
    return ServeResponse(status, body, headers or {})


class SynthesisService:
    """The serve layer's brain: routing, robustness, and the registry."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.gate = AdmissionGate(config.queue_limit)
        self.breaker = CircuitBreaker(config.breaker_threshold)
        self.accountants = AccountantRegistry(
            epsilon=config.budget_epsilon,
            delta=config.budget_delta,
            ledger_dir=config.ledger_dir,
        )
        cache = TrialCache(config.cache_dir) if config.cache_dir else None
        self.models = ModelRegistry(
            accountants=self.accountants, executor=self._run_work, cache=cache
        )
        self._response_cache = cache
        self._response_memory: dict[str, dict] = {}
        self._response_locks = KeyedLocks()
        self._lock = threading.Lock()
        self._work_sequence = 0
        self._requests = 0
        self._by_status: dict[int, int] = {}
        self._cache_hits = 0
        self._cache_misses = 0
        self._draining = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def begin_drain(self) -> None:
        """Stop admitting work; ``/readyz`` starts answering 503."""
        with self._lock:
            self._draining = True

    def drain(self, deadline: float | None = None) -> bool:
        """Wait for in-flight work, then flush ledgers to disk.

        Returns ``True`` when every in-flight request finished within the
        deadline.  The ledger flush happens either way — recorded spends
        must reach disk even when a straggler is abandoned.
        """
        self.begin_drain()
        if deadline is None:
            deadline = self.config.drain_deadline
        drained = self.gate.wait_idle(deadline)
        flushed = self.accountants.flush()
        _logger.info(
            "drain %s: %d ledger(s) flushed, %d request(s) still in flight",
            "complete" if drained else "deadline expired",
            flushed,
            self.gate.in_flight,
        )
        return drained

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def handle(self, verb: str, path: str, payload: Any = None) -> ServeResponse:
        """Serve one request; never raises, always a structured response."""
        try:
            response = self._route(verb, path, payload)
        except Exception as exc:  # the never-a-hung-socket backstop
            _logger.exception("unhandled error serving %s %s", verb, path)
            response = _error(503, "internal", f"{type(exc).__name__}: {exc}")
        with self._lock:
            self._requests += 1
            self._by_status[response.status] = self._by_status.get(response.status, 0) + 1
        return response

    def _route(self, verb: str, path: str, payload: Any) -> ServeResponse:
        if path == "/healthz":
            if verb != "GET":
                return _error(405, "method-not-allowed", f"{path} expects GET")
            return ServeResponse(200, {"status": "ok"})
        if path == "/readyz":
            if verb != "GET":
                return _error(405, "method-not-allowed", f"{path} expects GET")
            return self._readyz()
        if path == "/stats":
            if verb != "GET":
                return _error(405, "method-not-allowed", f"{path} expects GET")
            return ServeResponse(200, self.stats())
        if path in _WORK_ENDPOINTS:
            if verb != "POST":
                return _error(405, "method-not-allowed", f"{path} expects POST")
            return self._handle_work(path, payload)
        return _error(404, "not-found", f"unknown path {path!r}")

    def _readyz(self) -> ServeResponse:
        if self.draining:
            return _error(503, "draining", "server is draining")
        if self.breaker.is_open:
            self._probe_breaker()
            if self.breaker.is_open:
                return _error(
                    503, "breaker-open",
                    "circuit breaker is open after repeated pool breakage",
                )
        return ServeResponse(200, {"status": "ready"})

    def _probe_breaker(self) -> None:
        """Single-flight recovery probe: one trivial pool round-trip."""
        if not self.breaker.begin_probe():
            return
        success = False
        try:
            self._run_work(_probe_work, {})
            success = True
        except Exception as exc:
            _logger.warning("breaker recovery probe failed: %s", exc)
        finally:
            self.breaker.end_probe(success)

    # ------------------------------------------------------------------
    # Work endpoints
    # ------------------------------------------------------------------

    def _handle_work(self, endpoint: str, payload: Any) -> ServeResponse:
        if self.draining:
            return _error(503, "draining", "server is draining; not accepting work")
        if self.breaker.is_open:
            return _error(
                503, "breaker-open",
                "circuit breaker is open; poll /readyz for recovery",
            )
        if not self.gate.try_enter():
            retry_after = str(max(1, int(self.config.timeout)))
            return _error(
                429, "queue-full",
                f"admission queue is full ({self.config.queue_limit} in flight); "
                "retry later",
                headers={"Retry-After": retry_after},
            )
        try:
            with self._lock:
                self._work_sequence += 1
                nth = self._work_sequence
            faults = self.config.faults.for_request(nth)
            try:
                body, cached = call_with_timeout(
                    lambda: self._execute(endpoint, payload, faults),
                    self.config.timeout,
                    nth,
                )
            except TrialTimeoutError:
                return _error(
                    504, "deadline",
                    f"request exceeded the {self.config.timeout:g}s deadline",
                )
            except PrivacyBudgetError as exc:
                return _error(403, "budget-exhausted", str(exc))
            except (ValidationError, DatasetError) as exc:
                # DatasetError is a KeyError: str() would wrap the
                # message in repr quotes.
                message = exc.args[0] if exc.args else str(exc)
                return _error(400, "bad-request", str(message))
            except Exception as exc:
                _logger.warning("%s failed: %s: %s", endpoint, type(exc).__name__, exc)
                return _error(503, "work-failed", f"{type(exc).__name__}: {exc}")
            with self._lock:
                if cached:
                    self._cache_hits += 1
                else:
                    self._cache_misses += 1
            return ServeResponse(
                200, body, {"X-Repro-Cache": "hit" if cached else "miss"}
            )
        finally:
            self.gate.leave()

    def _execute(self, endpoint: str, payload: Any, faults: RequestFaults):
        """Canonicalize, apply injected faults, compute-or-cache."""
        canonical = self._canonicalize(endpoint, payload)
        if faults.slow_seconds > 0:
            # Injected latency sits inside the watchdog so a slow enough
            # clause drives the 504 path end to end.
            time.sleep(faults.slow_seconds)
        if faults.error:
            raise InjectedFault("injected handler error")
        key = stable_hash(("serve", _RESPONSE_KEY_VERSION, endpoint, canonical))
        body = self._probe_response(key)
        if body is not None:
            return body, True
        with self._response_locks.lock(key):
            body = self._probe_response(key)
            if body is not None:
                return body, True
            body = self._compute(endpoint, canonical, faults)
            self._store_response(key, body)
            return body, False

    def _probe_response(self, key: str) -> dict | None:
        with self._lock:
            body = self._response_memory.get(key)
        if body is not None:
            return body
        if self._response_cache is not None:
            hit, value = self._response_cache.load(key)
            if hit:
                with self._lock:
                    self._response_memory[key] = value
                return value
        return None

    def _store_response(self, key: str, body: dict) -> None:
        with self._lock:
            self._response_memory[key] = body
        if self._response_cache is not None:
            self._response_cache.store(key, body)

    def _compute(self, endpoint: str, canonical: tuple, faults: RequestFaults) -> dict:
        request = dict(canonical)
        spec = ModelSpec(
            dataset=request["dataset"],
            method=request["method"],
            epsilon=request["epsilon"],
            delta=request["delta"],
            seed=request["seed"],
            params=request["params"],
        )
        model, _source = self.models.get_or_fit(
            spec, crash_submissions=faults.crash_submissions
        )
        epsilon, delta = spec.charge
        body: dict[str, Any] = {
            "dataset": spec.dataset,
            "method": spec.method,
            "seed": spec.seed,
            "model": self.models.summarize_model(model),
            "charged": (
                {"epsilon": epsilon, "delta": delta} if spec.charges_budget else None
            ),
        }
        if endpoint in ("/sample", "/release"):
            count = request["count"]
            entropy = int(
                stable_hash(("serve-entropy", spec.token(), count))[:16], 16
            )
            body["count"] = count
            body["samples"] = _sample_work(model=model, count=count, entropy=entropy)
        return body

    # ------------------------------------------------------------------
    # Canonicalization
    # ------------------------------------------------------------------

    def _canonicalize(self, endpoint: str, payload: Any) -> tuple:
        """A strict, sorted, hashable view of one work request.

        Raises :class:`ValidationError` / :class:`DatasetError` on any
        malformed field — crucially *before* any budget is charged, so a
        typo'd dataset name cannot leak spend.
        """
        if payload is None:
            payload = {}
        if not isinstance(payload, dict):
            raise ValidationError(
                f"request body must be a JSON object, got {type(payload).__name__}"
            )
        allowed = {"dataset", "method", "epsilon", "delta", "seed", "params"}
        if endpoint in ("/sample", "/release"):
            allowed.add("count")
        unknown = sorted(set(payload) - allowed)
        if unknown:
            raise ValidationError(
                f"unknown request field(s) {', '.join(map(repr, unknown))}; "
                f"allowed: {', '.join(sorted(allowed))}"
            )

        dataset = payload.get("dataset")
        if not isinstance(dataset, str) or not dataset:
            raise ValidationError("request field 'dataset' must be a non-empty string")
        dataset = dataset.lower()
        if dataset not in available_datasets():
            raise DatasetError(
                f"unknown dataset {dataset!r}; available: "
                f"{', '.join(available_datasets())}"
            )

        default_method = "private" if endpoint == "/release" else "kronmom"
        method_token = payload.get("method", default_method)
        if not isinstance(method_token, str):
            raise ValidationError("request field 'method' must be a string")
        method = _SERVE_METHODS.get(method_token.lower())
        if method is None:
            raise ValidationError(
                f"unknown method {method_token!r}; servable methods: "
                f"{', '.join(sorted(_SERVE_METHODS))}"
            )
        descriptor = estimator_method(method)
        if endpoint == "/release" and not descriptor.accepts_epsilon:
            raise ValidationError(
                f"/release requires a private method; {method_token!r} consumes "
                "no privacy budget (use /fit or /sample for it)"
            )

        epsilon = self._field_number(payload, "epsilon", self.config.default_epsilon)
        delta = self._field_number(payload, "delta", self.config.default_delta)
        if not descriptor.accepts_epsilon:
            if "epsilon" in payload or "delta" in payload:
                raise ValidationError(
                    f"method {method_token!r} consumes no privacy budget; "
                    "do not send 'epsilon'/'delta'"
                )
            epsilon = None
            delta = None
        else:
            if not epsilon > 0:
                raise ValidationError(f"epsilon must be positive, got {epsilon}")
            if descriptor.accepts_delta:
                if not delta > 0:
                    raise ValidationError(f"delta must be positive, got {delta}")
            else:
                if "delta" in payload:
                    raise ValidationError(
                        f"method {method_token!r} does not use 'delta'"
                    )
                delta = None

        params_raw = payload.get("params", {})
        if not isinstance(params_raw, dict):
            raise ValidationError("request field 'params' must be a JSON object")
        for name, value in params_raw.items():
            if not isinstance(value, (int, float, str, bool)):
                raise ValidationError(
                    f"estimator param {name!r} must be a scalar, "
                    f"got {type(value).__name__}"
                )
        params = tuple(sorted(params_raw.items()))

        seed = payload.get("seed")
        if seed is None:
            # Deterministic default: identical requests (any process, any
            # time) resolve to the same model, hence bit-identical bodies.
            seed = int(
                stable_hash(("serve-seed", dataset, method, epsilon, delta, params))[:8],
                16,
            )
        elif not isinstance(seed, int) or isinstance(seed, bool) or seed < 0:
            raise ValidationError("request field 'seed' must be a non-negative integer")

        canonical: dict[str, Any] = {
            "dataset": dataset,
            "method": method,
            "epsilon": epsilon,
            "delta": delta,
            "seed": seed,
            "params": params,
        }
        if endpoint in ("/sample", "/release"):
            count = payload.get("count", 1)
            if not isinstance(count, int) or isinstance(count, bool) or count < 1:
                raise ValidationError(
                    "request field 'count' must be a positive integer"
                )
            if count > self.config.max_samples:
                raise ValidationError(
                    f"count {count} exceeds the per-request cap of "
                    f"{self.config.max_samples} (raise it with "
                    f"{SERVE_MAX_SAMPLES_ENV})"
                )
            canonical["count"] = count
        return tuple(sorted(canonical.items()))

    @staticmethod
    def _field_number(payload: dict, name: str, fallback: float) -> float:
        value = payload.get(name, fallback)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValidationError(f"request field {name!r} must be a number")
        return float(value)

    # ------------------------------------------------------------------
    # Work execution & stats
    # ------------------------------------------------------------------

    def _run_work(
        self,
        fn: Callable[..., Any],
        kwargs: dict,
        *,
        crash_submissions: int = 0,
    ) -> Any:
        return execute_work(
            fn,
            kwargs,
            n_jobs=self.config.n_jobs,
            pool_restarts=self.config.pool_restarts,
            crash_submissions=crash_submissions,
            on_breakage=self.breaker.record_breakage,
            on_success=self.breaker.record_success,
        )

    def stats(self) -> dict:
        with self._lock:
            counters = {
                "total": self._requests,
                "by_status": {str(k): v for k, v in sorted(self._by_status.items())},
            }
            responses = {
                "hits": self._cache_hits,
                "misses": self._cache_misses,
                "cached": len(self._response_memory),
            }
        return {
            "status": "draining" if self.draining else "ok",
            "requests": counters,
            "responses": responses,
            "admission": self.gate.snapshot(),
            "breaker": self.breaker.snapshot(),
            "models": self.models.snapshot(),
            "budget": self.accountants.snapshot(),
        }
