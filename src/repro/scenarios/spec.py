"""Declarative scenario descriptions.

A *scenario* names one cell of the paper's evidence grid: a workload
(dataset), an estimator, a privacy budget, an ensemble size, a seed
policy, and what to measure per trial.  Scenarios are plain frozen
dataclasses — declarative data, not behaviour — compiled into
:class:`~repro.runtime.spec.TrialSpec` lists by
:mod:`repro.scenarios.engine` and executed by :func:`repro.runtime.run_trials`
(persistent pool, trial cache, bit-identical at any ``n_jobs``).

Parameter payloads (:attr:`EstimatorSpec.params`,
:attr:`ScenarioSpec.measure_params`) are stored as sorted
``(name, value)`` tuples so specs stay hashable and their trial cache
keys are order-independent; build them with :meth:`EstimatorSpec.create`
/ :func:`as_params` and read them back with :func:`params_dict`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import check_integer

__all__ = [
    "EstimatorSpec",
    "SeedPolicy",
    "ScenarioSpec",
    "as_params",
    "params_dict",
    "spawn_seeds",
    "fixed_seeds",
]

Params = tuple[tuple[str, Any], ...]


def as_params(params: Mapping[str, Any] | Params | None = None, **extra: Any) -> Params:
    """Normalize keyword payloads into the canonical sorted-tuple form."""
    merged = dict(params or {})
    merged.update(extra)
    return tuple(sorted(merged.items()))


def params_dict(params: Params) -> dict[str, Any]:
    """The mapping view of a canonical parameter payload."""
    return dict(params)


@dataclass(frozen=True)
class EstimatorSpec:
    """One value of the estimator axis: a registered method plus kwargs.

    ``method`` must name an entry of
    :data:`repro.core.protocols.ESTIMATOR_METHODS`; ``params`` are the
    construction kwargs the spec pins explicitly (the scenario's budget
    and the trial's RNG stream are injected by the engine where the
    method accepts them and the spec does not pin them).
    """

    method: str
    params: Params = ()

    @classmethod
    def create(cls, method: str, **params: Any) -> "EstimatorSpec":
        return cls(method=method, params=as_params(params))

    def with_params(self, **params: Any) -> "EstimatorSpec":
        return replace(self, params=as_params(params_dict(self.params), **params))


@dataclass(frozen=True)
class SeedPolicy:
    """How a scenario's trials receive their randomness.

    ``spawn`` (the default) lets the engine derive per-trial streams from
    a root :class:`numpy.random.SeedSequence` built from ``entropy`` —
    the bit-identical-at-any-``n_jobs`` policy every new scenario should
    use.  ``fixed`` pins an explicit seed per trial (``seeds`` must match
    the ensemble size) — the policy for historical grids whose exact
    noise draws are part of the recorded outputs.
    """

    kind: str = "spawn"
    entropy: tuple[int, ...] = ()
    seeds: tuple[Any, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("spawn", "fixed"):
            raise ValidationError(
                f"seed policy kind must be 'spawn' or 'fixed', got {self.kind!r}"
            )

    def root_seed(self) -> np.random.SeedSequence | None:
        """The engine's root seed (``None`` for fully pinned policies)."""
        if self.kind == "fixed":
            return None
        return np.random.SeedSequence(list(self.entropy)) if self.entropy else None

    def trial_seed(self, index: int):
        """The explicit per-trial seed, or ``None`` to let the engine spawn."""
        if self.kind == "fixed":
            return self.seeds[index]
        return None


def spawn_seeds(*entropy: int) -> SeedPolicy:
    """A ``spawn`` policy rooted at ``SeedSequence([*entropy])``."""
    return SeedPolicy(kind="spawn", entropy=tuple(int(word) for word in entropy))


def fixed_seeds(*seeds: Any) -> SeedPolicy:
    """A ``fixed`` policy pinning one explicit seed per trial."""
    return SeedPolicy(kind="fixed", seeds=tuple(seeds))


@dataclass(frozen=True)
class ScenarioSpec:
    """One cell of the evidence grid.

    Attributes
    ----------
    name:
        Human-readable identifier (used in logs, reports, and trial
        labels).
    workload:
        Registered dataset name the estimator fits, or ``None`` for
        pure-sampling scenarios (e.g. the ``Fixed`` estimator) that never
        touch a dataset.
    estimator:
        The estimator axis value.
    epsilon, delta:
        The privacy budget axis; injected into budget-consuming methods
        (``None`` leaves the method's own default).
    ensemble_size:
        Trials in the scenario (independent noise/realization draws).
    seed_policy:
        How trials receive randomness (see :class:`SeedPolicy`).
    measure:
        Registered per-trial measurement
        (:data:`repro.scenarios.measures.MEASURES`) applied to the fitted
        model.
    measure_params:
        Extra keyword payload of the measurement.
    """

    name: str
    workload: str | None
    estimator: EstimatorSpec
    epsilon: float | None = None
    delta: float | None = None
    ensemble_size: int = 1
    seed_policy: SeedPolicy = field(default_factory=SeedPolicy)
    measure: str = "initiator"
    measure_params: Params = ()

    def __post_init__(self) -> None:
        check_integer(self.ensemble_size, "ensemble_size", minimum=1)
        if self.seed_policy.kind == "fixed" and (
            len(self.seed_policy.seeds) != self.ensemble_size
        ):
            raise ValidationError(
                f"scenario {self.name!r}: fixed seed policy pins "
                f"{len(self.seed_policy.seeds)} seeds for "
                f"{self.ensemble_size} trials"
            )
