"""The paper's evidence grid, declared as scenarios.

This module is the single place the (dataset × estimator × budget ×
ensemble × seeds) cells behind the paper artifacts are written down; the
evaluation harness and the benches consume these builders instead of
hand-rolling their own trial lists.  Historical grids (Table 1, the
ε-ablation, the baseline comparison) keep their exact recorded seed
schemes via ``fixed`` seed policies, so routing them through the
scenario engine reproduces the pre-scenario outputs bit for bit.

Builders taking only a config are registered as named presets
(``table1``, ``baseline-comparison``); parametric builders (the
ε-ablation needs a fitted reference, the figures' "Expected" ensembles a
fitted initiator) are plain functions.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Sequence

import numpy as np

from repro.core.protocols import available_estimator_methods
from repro.scenarios.registry import register_scenarios
from repro.scenarios.spec import (
    EstimatorSpec,
    ScenarioSpec,
    as_params,
    fixed_seeds,
    spawn_seeds,
)

__all__ = [
    "TABLE1_DATASETS",
    "TABLE1_METHODS",
    "available_estimator_axis_values",
    "estimator_axis",
    "table1_scenarios",
    "epsilon_ablation_scenarios",
    "baseline_comparison_scenarios",
    "baseline_scoring_scenarios",
    "figure_scenarios",
    "expected_ensemble_scenario",
    "large_k_scenarios",
    "scenario_grid",
]

TABLE1_DATASETS = ("ca-grqc", "ca-hepth", "as20", "synthetic-kronecker")
TABLE1_METHODS = ("KronFit", "KronMom", "Private")

# The §5 baseline comparison's historical operating point (the paper's
# ε/δ) — the defaults when no config supplies a budget.
BASELINE_COMPARISON_DATASET = "ca-grqc"
BASELINE_COMPARISON_EPSILON = 0.2
BASELINE_COMPARISON_DELTA = 0.01


def available_estimator_axis_values() -> tuple[str, ...]:
    """Estimator methods that fit a workload (everything except Fixed)."""
    return tuple(
        method for method in available_estimator_methods() if method != "Fixed"
    )


def estimator_axis(method: str, config, *, n_starts: int | None = None) -> EstimatorSpec:
    """The configured estimator axis value for ``method``.

    Threads the config knobs each method consumes (KronFit's iteration
    budget, chain backend, multi-start count, and multichain kernel
    threads) into the spec so they are part of every trial's cache key.
    Multi-start fits advance all their chains in one batched native call
    per proposal batch (``KronFitEstimator``'s default ``multi_start``
    strategy), sharded across ``config.kernel_threads`` threads — results
    are bit-identical to the fanned-out per-start trials.
    """
    if method == "KronFit":
        effective_starts = config.n_starts if n_starts is None else n_starts
        params = dict(
            n_iterations=config.kronfit_iterations,
            backend=config.kernel_backend,
            n_starts=effective_starts,
        )
        # kernel_threads only matters to multi-start fits; leaving it out
        # of single-start specs keeps their historical cache keys.
        if effective_starts > 1 and getattr(config, "kernel_threads", 1) != 1:
            params["kernel_threads"] = config.kernel_threads
        return EstimatorSpec.create("KronFit", **params)
    return EstimatorSpec.create(method)


def table1_scenarios(
    config,
    datasets: Sequence[str] = TABLE1_DATASETS,
    methods: Sequence[str] = TABLE1_METHODS,
) -> tuple[ScenarioSpec, ...]:
    """Table 1's grid: one single-fit scenario per (dataset, method).

    Each cell keeps the historical per-(dataset, method) seed — the
    spawned children of ``SeedSequence(config.seed + 100 +
    dataset_index)`` — so the table is bit-identical to the pre-scenario
    harness for any worker count.
    """
    scenarios: list[ScenarioSpec] = []
    for dataset_index, dataset in enumerate(datasets):
        seeds = np.random.SeedSequence(config.seed + 100 + dataset_index).spawn(
            len(methods)
        )
        for method, seed in zip(methods, seeds):
            scenarios.append(
                ScenarioSpec(
                    name=f"table1:{dataset}:{method}",
                    workload=dataset,
                    estimator=estimator_axis(method, config),
                    epsilon=config.epsilon,
                    delta=config.delta,
                    ensemble_size=1,
                    seed_policy=fixed_seeds(seed),
                    measure="initiator",
                )
            )
    return tuple(scenarios)


def epsilon_ablation_scenarios(
    dataset: str,
    grid: Iterable[tuple[float, str]],
    seeds: Sequence[int],
    *,
    delta: float,
    reference: tuple[float, float, float],
) -> tuple[ScenarioSpec, ...]:
    """The ε-sweep / triangle-floor ablation grid for one dataset.

    One scenario per (ε, floor policy) point, with one trial per
    historical integer noise seed and the distance to the non-private
    reference as the measurement.
    """
    return tuple(
        ScenarioSpec(
            name=f"ablation:{dataset}:eps{epsilon}:{triangle_floor}",
            workload=dataset,
            estimator=EstimatorSpec.create("Private", triangle_floor=triangle_floor),
            epsilon=epsilon,
            delta=delta,
            ensemble_size=len(seeds),
            seed_policy=fixed_seeds(*seeds),
            measure="initiator_distance",
            measure_params=as_params(reference=tuple(reference)),
        )
        for epsilon, triangle_floor in grid
    )


def baseline_comparison_scenarios(config=None) -> tuple[ScenarioSpec, ...]:
    """The §5 comparison: Algorithm 1 vs the DP degree-sequence baseline.

    Both synthesizers fit with the historical pinned seed 0 and sample
    their one synthetic graph with seed 1, at the same total budget.
    The budget honours the config (``REPRO_EPSILON`` / ``REPRO_DELTA``,
    ``repro run-scenario --epsilon``) and defaults to the paper's
    operating point, so a requested ε is never a silent no-op.
    """
    epsilon = BASELINE_COMPARISON_EPSILON if config is None else config.epsilon
    delta = BASELINE_COMPARISON_DELTA if config is None else config.delta
    common = dict(
        workload=BASELINE_COMPARISON_DATASET,
        epsilon=epsilon,
        ensemble_size=1,
        seed_policy=fixed_seeds(0),
        measure="sample_graph",
        measure_params=as_params(sample_seed=1),
    )
    return (
        ScenarioSpec(
            name="baseline-comparison:skg-private",
            estimator=EstimatorSpec.create("Private", seed=0),
            delta=delta,
            **common,
        ),
        ScenarioSpec(
            name="baseline-comparison:dp-degree",
            estimator=EstimatorSpec.create("DPDegree", seed=0),
            **common,
        ),
    )


def baseline_scoring_scenarios(config=None) -> tuple[ScenarioSpec, ...]:
    """The §5 comparison with declarative scoring against the original.

    The same two synthesizer cells as ``baseline-comparison`` (identical
    fit/sample seeds, identical budget handling) but measured with the
    ``graph_comparison`` family: each trial returns the flat metric row
    (degree KS, matching-statistic relative errors, clustering,
    assortativity) the baseline bench used to compute by hand — so a
    tracked run (``repro run-scenario --preset baseline-scoring
    --track``) lands the scoring tables in ``run.json`` like every other
    measurement.  The sampled graphs are bit-identical to the
    ``baseline-comparison`` preset's, so the metrics equal the bench's
    historical hand-computed scores exactly.
    """
    return tuple(
        dataclasses.replace(
            scenario,
            name=scenario.name.replace("baseline-comparison", "baseline-scoring"),
            measure="graph_comparison",
        )
        for scenario in baseline_comparison_scenarios(config)
    )


def figure_scenarios(config) -> tuple[ScenarioSpec, ...]:
    """The figures' computation half, declared as scenarios.

    One scenario per (figure dataset × estimator): fit, sample one
    synthetic realization, and compute the five figure statistics (the
    ``graph_statistics`` measurement).  Running the preset produces the
    figures' underlying *data* — per-series metric tables in a tracked
    run directory (``repro run-scenario --preset figures --track``) —
    while the ASCII rendering (``repro figure N`` via
    :func:`repro.evaluation.reporting.render_figure`) stays a thin
    consumer of the same computation.

    Spawn seed policies rooted at (config seed, figure number, method
    index) keep the preset reproducible and bit-identical at any worker
    count; it deliberately does not pin the historical ``run_figure``
    streams, which interleave fits and statistics in one generator.
    """
    # Imported lazily: repro.evaluation imports this package back.
    from repro.evaluation.experiments import FIGURE_DATASETS

    scenarios: list[ScenarioSpec] = []
    for figure_number, dataset in sorted(FIGURE_DATASETS.items()):
        for method_index, method in enumerate(TABLE1_METHODS):
            scenarios.append(
                ScenarioSpec(
                    name=f"figures:f{figure_number}:{dataset}:{method}",
                    workload=dataset,
                    estimator=estimator_axis(method, config),
                    epsilon=config.epsilon,
                    delta=config.delta,
                    ensemble_size=1,
                    seed_policy=spawn_seeds(
                        config.seed, figure_number, method_index
                    ),
                    measure="graph_statistics",
                    measure_params=as_params(
                        label=method,
                        hop_sources=config.hop_sources or None,
                        svd_rank=config.svd_rank,
                    ),
                )
            )
    return tuple(scenarios)


def expected_ensemble_scenario(
    *,
    name: str,
    label: str,
    initiator: tuple[float, float, float],
    k: int,
    realizations: int,
    entropy: Sequence[int],
    hop_sources: int | None,
    svd_rank: int,
) -> ScenarioSpec:
    """An "Expected" ensemble: statistics of SKG draws from a fitted Θ.

    A pure-sampling scenario (``Fixed`` estimator, no workload): each
    trial samples Θ^{⊗k} with its spawned stream and computes the five
    figure statistics, exactly like the figures' historical
    per-realization trials.
    """
    a, b, c = initiator
    return ScenarioSpec(
        name=name,
        workload=None,
        estimator=EstimatorSpec.create("Fixed", a=a, b=b, c=c, k=k),
        ensemble_size=realizations,
        seed_policy=spawn_seeds(*entropy),
        measure="graph_statistics",
        measure_params=as_params(
            label=label, hop_sources=hop_sources, svd_rank=svd_rank
        ),
    )


def scenario_grid(
    config,
    *,
    workloads: Sequence[str],
    methods: Sequence[str],
    epsilons: Sequence[float] | None = None,
    ensemble_size: int | None = None,
    n_starts: int | None = None,
    measure: str = "synthetic_statistics",
) -> tuple[ScenarioSpec, ...]:
    """An ad-hoc (workload × estimator × ε) grid (the CLI's entry point).

    Every cell runs ``ensemble_size`` trials — fit with the trial's
    stream, sample one realization, measure — with spawn seed policies
    rooted at (config seed, workload, method, ε indices), so grids are
    reproducible and bit-identical at any ``n_jobs``.
    """
    epsilons = tuple(epsilons) if epsilons else (config.epsilon,)
    size = config.realizations if ensemble_size is None else ensemble_size
    scenarios: list[ScenarioSpec] = []
    for workload_index, workload in enumerate(workloads):
        for method_index, method in enumerate(methods):
            for epsilon_index, epsilon in enumerate(epsilons):
                name = f"{workload}:{method}"
                if len(epsilons) > 1:
                    name += f":eps{epsilon}"
                scenarios.append(
                    ScenarioSpec(
                        name=name,
                        workload=workload,
                        estimator=estimator_axis(method, config, n_starts=n_starts),
                        epsilon=epsilon,
                        delta=config.delta,
                        ensemble_size=size,
                        seed_policy=spawn_seeds(
                            config.seed, workload_index, method_index, epsilon_index
                        ),
                        measure=measure,
                    )
                )
    return tuple(scenarios)


LARGE_K_DATASETS = ("skg-k16", "skg-k18", "skg-k20")
LARGE_K_METHODS = ("KronMom", "KronFit")


def large_k_scenarios(
    config,
    datasets: Sequence[str] = LARGE_K_DATASETS,
    methods: Sequence[str] = LARGE_K_METHODS,
) -> tuple[ScenarioSpec, ...]:
    """The beyond-paper scale axis: KronMom vs KronFit at k ∈ {16, 18, 20}.

    One single-fit cell per (dataset, method) on the large synthetic SKG
    workloads, all sampled from the paper's initiator [[0.99, 0.45],
    [0.45, 0.25]].  Both estimators recover the known ground truth at
    each scale, so the grid is a cross-check of the whole scale path —
    the grass-hopping sampler that builds the million-edge workloads,
    the moment pipeline, and the delta-scan Metropolis chain — against
    itself and against the truth.  Spawn seed policies keep every cell
    bit-identical at any worker count.
    """
    scenarios: list[ScenarioSpec] = []
    for dataset_index, dataset in enumerate(datasets):
        for method_index, method in enumerate(methods):
            scenarios.append(
                ScenarioSpec(
                    name=f"large-k:{dataset}:{method}",
                    workload=dataset,
                    estimator=estimator_axis(method, config),
                    epsilon=config.epsilon,
                    delta=config.delta,
                    ensemble_size=1,
                    seed_policy=spawn_seeds(
                        config.seed, 800, dataset_index, method_index
                    ),
                    measure="initiator",
                )
            )
    return tuple(scenarios)


register_scenarios("table1", table1_scenarios)
register_scenarios("baseline-comparison", baseline_comparison_scenarios)
register_scenarios("baseline-scoring", baseline_scoring_scenarios)
register_scenarios("figures", figure_scenarios)
register_scenarios("large-k", large_k_scenarios)
