"""Compile scenarios into trials and execute them on the runtime engine.

The one generic trial function (:func:`_scenario_trial`) realizes a
scenario cell end to end: load the workload (if any), build the
estimator with the scenario's budget and the trial's RNG stream injected
(:func:`repro.core.protocols.build_estimator`), fit, and apply the
registered measurement.  Because it is module-level and parameterised by
plain picklable values, every scenario inherits the runtime guarantees
for free: trials fan across the persistent worker pool, are memoized by
the trial cache, and are **bit-identical for any worker count and pool
mode** (per-trial streams depend only on the seed policy and the trial
index).

Compilation materializes every trial's seed eagerly — spawn policies are
expanded into the exact child streams the engine would derive — so
scenario trials can be *batched*: :func:`run_scenarios` concatenates all
compiled trials into one :func:`repro.runtime.run_trials` call (single-fit
scenarios like Table 1's cells still fan across workers together), and
results are bit-identical whether scenarios run batched, one by one, or
at any ``n_jobs``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import numpy as np

from repro.core.protocols import build_estimator, estimator_method
from repro.graphs.datasets import dataset_info, load_dataset
from repro.runtime import TrialRunReport, TrialSpec, code_fingerprint, run_trials
from repro.scenarios.measures import resolve_measure
from repro.scenarios.spec import ScenarioSpec
from repro.utils.logging import get_logger

__all__ = [
    "ScenarioReport",
    "compile_scenario",
    "run_scenario",
    "run_scenarios",
]

_logger = get_logger(__name__)


@dataclass(frozen=True)
class ScenarioReport:
    """One executed scenario: the spec, its results, and run telemetry.

    ``seeds`` carries the compiled per-trial seeds the engine actually
    executed (ints or spawned :class:`numpy.random.SeedSequence`
    children, in trial order) — the materialized randomness the tracked
    run record (:mod:`repro.tracking`) persists verbatim.
    """

    scenario: ScenarioSpec
    results: list = field(repr=False)
    report: TrialRunReport = field(repr=False)
    seeds: tuple = field(default=(), repr=False)


def compile_scenario(scenario: ScenarioSpec) -> list[TrialSpec]:
    """The scenario's trials, ready for :func:`repro.runtime.run_trials`.

    Validates the workload, estimator method, and measure eagerly so a
    misdeclared scenario fails at compile time, not inside a worker
    process after other trials have already burned their wall clock.
    Every trial carries an explicit seed: fixed policies pin theirs,
    spawn policies are expanded into the same child streams
    ``run_trials(seed=root)`` would derive — which is what makes
    compiled scenarios freely batchable.
    """
    if scenario.workload is not None:
        dataset_info(scenario.workload)  # raises DatasetError for unknown names
    method = estimator_method(scenario.estimator.method)
    measure_fn = resolve_measure(scenario.measure)
    policy = scenario.seed_policy
    if policy.kind == "fixed":
        seeds: Sequence[Any] = [
            policy.trial_seed(index) for index in range(scenario.ensemble_size)
        ]
    else:
        root = policy.root_seed() or np.random.SeedSequence()
        seeds = root.spawn(scenario.ensemble_size)
    params = {
        "workload": scenario.workload,
        "method": scenario.estimator.method,
        "estimator_params": scenario.estimator.params,
        "epsilon": scenario.epsilon,
        "delta": scenario.delta,
        "measure": scenario.measure,
        "measure_params": scenario.measure_params,
        # The trial cache fingerprints only the generic trial function
        # below; the code the trial dispatches to by *name* must salt
        # the key too, or editing a measure (or estimator front door)
        # would silently serve stale cached results.  The salt covers
        # the measure function and the method's front-door class — like
        # every trial function, code *they* call still requires clearing
        # the cache when edited.
        "code_fingerprints": (
            code_fingerprint(measure_fn),
            code_fingerprint(method.resolve_code_target()),
        ),
    }
    return [
        TrialSpec(fn=_scenario_trial, params=params, index=index, seed=seeds[index])
        for index in range(scenario.ensemble_size)
    ]


def run_scenario(
    scenario: ScenarioSpec,
    *,
    n_jobs: int | None = None,
    cache=None,
    pool: str | None = None,
    on_error: str | None = None,
) -> ScenarioReport:
    """Execute one scenario through the runtime engine.

    ``on_error`` is the engine's failure policy: the default ``raise``
    aborts on the first permanently failed trial, ``collect`` records
    failures as :class:`~repro.runtime.TrialFailure` results and keeps
    the rest of the ensemble.
    """
    specs = compile_scenario(scenario)
    report = run_trials(
        specs,
        n_jobs=n_jobs,
        cache=cache,
        label=f"scenario:{scenario.name}",
        pool=pool,
        on_error=on_error,
    )
    return ScenarioReport(
        scenario=scenario,
        results=report.results,
        report=report,
        seeds=tuple(spec.seed for spec in specs),
    )


def run_scenarios(
    scenarios: Iterable[ScenarioSpec],
    *,
    n_jobs: int | None = None,
    cache=None,
    pool: str | None = None,
    label: str = "scenarios",
    on_error: str | None = None,
) -> list[ScenarioReport]:
    """Execute a scenario list as **one** batched engine call.

    All compiled trials enter a single :func:`repro.runtime.run_trials`
    call, so trials from different scenarios fan across the worker pool
    together (Table 1's twelve single-fit cells parallelise exactly like
    the pre-scenario harness did).  Per-scenario reports attribute the
    executed/cached split — and, under ``on_error="collect"``, the
    failed/retried trials — back to each scenario's own positions;
    ``elapsed`` is the whole batch's wall clock and ``pool_restarts``
    (a batch-wide event) is carried on every sub-report.
    """
    scenarios = list(scenarios)
    specs: list[TrialSpec] = []
    extents: list[tuple[int, int]] = []
    for scenario in scenarios:
        compiled = compile_scenario(scenario)
        extents.append((len(specs), len(compiled)))
        specs.extend(compiled)
    batch = run_trials(
        specs,
        n_jobs=n_jobs,
        cache=cache,
        label=f"{label}[{len(scenarios)}]",
        pool=pool,
        on_error=on_error,
    )
    cached_positions = set(batch.cached_indices)
    failed_positions = set(batch.failed_indices)
    retried_positions = set(batch.retried_indices)
    reports: list[ScenarioReport] = []
    for scenario, (offset, size) in zip(scenarios, extents):
        results = batch.results[offset : offset + size]
        span = range(offset, offset + size)
        cached = tuple(p - offset for p in span if p in cached_positions)
        failed = tuple(p - offset for p in span if p in failed_positions)
        retried = tuple(p - offset for p in span if p in retried_positions)
        reports.append(
            ScenarioReport(
                scenario=scenario,
                results=results,
                report=TrialRunReport(
                    results=results,
                    executed=size - len(cached),
                    cached=len(cached),
                    n_jobs=batch.n_jobs,
                    elapsed=batch.elapsed,
                    cached_indices=cached,
                    failed=len(failed),
                    retried=len(retried),
                    pool_restarts=batch.pool_restarts,
                    failed_indices=failed,
                    retried_indices=retried,
                ),
                seeds=tuple(spec.seed for spec in specs[offset : offset + size]),
            )
        )
    return reports


def _scenario_trial(
    rng: np.random.Generator,
    *,
    workload: str | None,
    method: str,
    estimator_params: Sequence[tuple[str, Any]],
    epsilon: float | None,
    delta: float | None,
    measure: str,
    measure_params: Sequence[tuple[str, Any]],
    code_fingerprints: tuple[str, ...] = (),
):
    """One scenario trial: load → build → fit → measure.

    The trial's RNG stream is consumed in fit order first (the estimator
    receives it as ``seed`` where the method accepts one), then by the
    measurement — the same order as the hand-rolled trial functions the
    scenario layer replaced, which is what makes the refactor
    bit-identical.  ``code_fingerprints`` is unused at run time: it
    carries the dispatched-to code's fingerprints into the trial cache
    key (see :func:`compile_scenario`).
    """
    graph = load_dataset(workload) if workload is not None else None
    estimator = build_estimator(
        method, estimator_params, epsilon=epsilon, delta=delta, seed=rng
    )
    model = estimator.fit(graph)
    return resolve_measure(measure)(rng, model, graph, **dict(measure_params))
