"""The named scenario registry.

Consumers declare *builders* — callables producing scenario lists from an
:class:`~repro.evaluation.experiments.ExperimentConfig` — under stable
names, so workloads can be launched by name from the CLI
(``repro run-scenario --preset table1``), from CI smoke grids, or from
notebooks, without importing the consumer that defined them.  The
default presets (:mod:`repro.scenarios.presets`) register themselves on
package import.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import ValidationError
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "register_scenarios",
    "scenario_builder",
    "build_scenarios",
    "available_scenarios",
]

ScenarioBuilder = Callable[..., Sequence[ScenarioSpec]]

_BUILDERS: dict[str, ScenarioBuilder] = {}


def register_scenarios(
    name: str, builder: ScenarioBuilder, *, replace: bool = False
) -> None:
    """Register ``builder`` under ``name`` (``builder(config) -> scenarios``)."""
    if not replace and name in _BUILDERS:
        raise ValidationError(f"scenario preset {name!r} is already registered")
    _BUILDERS[name] = builder


def scenario_builder(name: str) -> ScenarioBuilder:
    try:
        return _BUILDERS[name]
    except KeyError:
        raise ValidationError(
            f"unknown scenario preset {name!r}; registered presets: "
            f"{', '.join(available_scenarios()) or '(none)'}"
        ) from None


def build_scenarios(name: str, config=None) -> tuple[ScenarioSpec, ...]:
    """Build a registered preset's scenario list for ``config``."""
    if config is None:
        from repro.evaluation.experiments import default_config

        config = default_config()
    return tuple(scenario_builder(name)(config))


def available_scenarios() -> tuple[str, ...]:
    """Names of the registered presets, in registration order."""
    return tuple(_BUILDERS)
