"""Plain-text rendering of executed scenarios.

The scenario engine is measurement-agnostic, so the renderer formats
each ensemble by the *type* of its results: initiators as parameter
triples, matching statistics as ensemble means, graphs by size, scalars
by mean — enough for the CLI report and the CI smoke artifact without
every consumer writing its own table code.  Under the ``collect``
failure policy, :class:`~repro.runtime.TrialFailure` entries are
filtered out of the statistics and surfaced as an explicit failure
count, so a partially failed ensemble still renders its surviving
trials honestly.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.graphs.graph import Graph
from repro.kronecker.initiator import Initiator
from repro.runtime import TrialFailure
from repro.scenarios.engine import ScenarioReport
from repro.stats.counts import MatchingStatistics
from repro.utils.tables import TextTable

__all__ = ["summarize_results", "render_scenario_reports"]


def summarize_results(results: Sequence) -> str:
    """One-line, type-appropriate summary of a scenario's ensemble.

    Failed trials (:class:`~repro.runtime.TrialFailure`) are excluded
    from the statistics and reported as a ``N failed`` suffix.
    """
    failures = [r for r in results if isinstance(r, TrialFailure)]
    results = [r for r in results if not isinstance(r, TrialFailure)]
    suffix = f" [{len(failures)} failed]" if failures else ""
    if not results:
        if failures:
            return f"(all {len(failures)} trial(s) failed)"
        return "(no trials)"
    return _summarize_values(results) + suffix


def _summarize_values(results: Sequence) -> str:
    first = results[0]
    if isinstance(first, Initiator):
        a = float(np.mean([r.a for r in results]))
        b = float(np.mean([r.b for r in results]))
        c = float(np.mean([r.c for r in results]))
        prefix = "mean " if len(results) > 1 else ""
        return f"{prefix}a={a:.4f}, b={b:.4f}, c={c:.4f}"
    if isinstance(first, MatchingStatistics):
        rows = np.array([tuple(r) for r in results], dtype=np.float64)
        means = rows.mean(axis=0)
        return (
            f"mean E={means[0]:.1f}, H={means[1]:.1f}, "
            f"T={means[2]:.1f}, D={means[3]:.1f}"
        )
    if isinstance(first, Graph):
        nodes = float(np.mean([g.n_nodes for g in results]))
        edges = float(np.mean([g.n_edges for g in results]))
        return f"mean n={nodes:.0f}, |E|={edges:.0f}"
    if isinstance(first, (int, float, np.floating)):
        values = np.asarray(results, dtype=np.float64)
        if values.size == 1:
            return f"value={values[0]:.6g}"
        return f"mean={values.mean():.6g}, median={np.median(values):.6g}"
    return f"{len(results)} x {type(first).__name__}"


def render_scenario_reports(
    reports: Iterable[ScenarioReport], *, title: str = "Scenario report"
) -> str:
    """A table with one row per executed scenario."""
    table = TextTable(
        ["scenario", "workload", "estimator", "epsilon", "trials", "result"],
        title=title,
    )
    for executed in reports:
        scenario = executed.scenario
        run = executed.report
        trials = f"{len(run.results)} ({run.executed} run, {run.cached} cached)"
        if run.failed:
            trials += f" [{run.failed} failed]"
        table.add_row(
            [
                scenario.name,
                scenario.workload or "-",
                scenario.estimator.method,
                "-" if scenario.epsilon is None else scenario.epsilon,
                trials,
                summarize_results(executed.results),
            ]
        )
    return table.render()
