"""repro.scenarios — the declarative evidence grid.

The paper's experiments are a grid of *scenarios*: datasets × estimators
(KronFit / KronMom / Private / the DP-degree baseline / fixed
initiators) × privacy budgets × ensemble sizes × seed policies ×
measurements.  This subsystem makes the grid first-class:

* :class:`ScenarioSpec` / :class:`EstimatorSpec` / :class:`SeedPolicy` —
  declarative cell descriptions (:mod:`repro.scenarios.spec`);
* :func:`compile_scenario` / :func:`run_scenario` /
  :func:`run_scenarios` — compilation into
  :class:`~repro.runtime.TrialSpec` lists and execution on the runtime
  engine, inheriting the persistent pool, the trial cache, and
  bit-identical results at any worker count
  (:mod:`repro.scenarios.engine`);
* :data:`~repro.scenarios.measures.MEASURES` — the per-trial
  measurements a scenario can apply (:mod:`repro.scenarios.measures`);
* the named preset registry (:mod:`repro.scenarios.registry`) and the
  paper's grids (:mod:`repro.scenarios.presets`, registered on import);
* a type-driven text renderer (:mod:`repro.scenarios.report`) behind the
  ``repro run-scenario`` CLI subcommand and the CI smoke artifact.

Estimators enter the grid through the
:class:`repro.core.protocols.Estimator` protocol — anything that fits a
graph into a model exposing ``sample_graph`` and ``epsilon`` is a valid
axis value, including multi-start KronFit (``n_starts``).
"""

from repro.scenarios.engine import (
    ScenarioReport,
    compile_scenario,
    run_scenario,
    run_scenarios,
)
from repro.scenarios.measures import (
    MEASURES,
    available_measures,
    register_measure,
    resolve_measure,
)
from repro.scenarios.registry import (
    available_scenarios,
    build_scenarios,
    register_scenarios,
    scenario_builder,
)
from repro.scenarios.report import render_scenario_reports, summarize_results
from repro.scenarios.spec import (
    EstimatorSpec,
    ScenarioSpec,
    SeedPolicy,
    as_params,
    fixed_seeds,
    params_dict,
    spawn_seeds,
)
from repro.scenarios import presets as _presets  # registers the default presets
from repro.scenarios.presets import (
    available_estimator_axis_values,
    baseline_comparison_scenarios,
    baseline_scoring_scenarios,
    epsilon_ablation_scenarios,
    estimator_axis,
    expected_ensemble_scenario,
    figure_scenarios,
    scenario_grid,
    table1_scenarios,
)

del _presets

__all__ = [
    "ScenarioSpec",
    "EstimatorSpec",
    "SeedPolicy",
    "as_params",
    "params_dict",
    "spawn_seeds",
    "fixed_seeds",
    "ScenarioReport",
    "compile_scenario",
    "run_scenario",
    "run_scenarios",
    "MEASURES",
    "register_measure",
    "resolve_measure",
    "available_measures",
    "register_scenarios",
    "scenario_builder",
    "build_scenarios",
    "available_scenarios",
    "render_scenario_reports",
    "summarize_results",
    "available_estimator_axis_values",
    "estimator_axis",
    "table1_scenarios",
    "epsilon_ablation_scenarios",
    "baseline_comparison_scenarios",
    "baseline_scoring_scenarios",
    "figure_scenarios",
    "expected_ensemble_scenario",
    "scenario_grid",
]
