"""Per-trial measurements a scenario can apply to a fitted model.

Each measurement is a module-level callable

    ``measure(rng, model, graph, **params) -> picklable value``

where ``rng`` is the trial's RNG stream *already advanced past the fit*
(measurements that sample continue consuming the same stream, exactly
like the hand-rolled trial functions they replace), ``model`` is the
:class:`~repro.core.protocols.FittedModel` the estimator produced, and
``graph`` is the workload graph (``None`` for pure-sampling scenarios).

Measurements registered here are the values of the scenario ``measure``
axis; :func:`register_measure` adds project-specific ones.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.errors import ValidationError
from repro.kronecker.initiator import Initiator
from repro.stats.counts import MatchingStatistics, matching_statistics

__all__ = [
    "MEASURES",
    "register_measure",
    "resolve_measure",
    "available_measures",
]


def measure_fitted_model(rng: np.random.Generator, model, graph):
    """The fitted model itself (must be picklable for parallel runs)."""
    return model


def measure_initiator(rng: np.random.Generator, model, graph) -> Initiator:
    """The fitted initiator (Table 1's cell value)."""
    return model.initiator


def measure_initiator_distance(
    rng: np.random.Generator, model, graph, *, reference: tuple
) -> float:
    """Max-abs parameter distance to a reference initiator (ablations)."""
    return float(model.initiator.distance(Initiator(*reference)))


def measure_sample_graph(
    rng: np.random.Generator, model, graph, *, sample_seed=None
):
    """One synthetic graph from the model.

    ``sample_seed`` pins the draw (historical fixed-seed comparisons);
    by default the trial stream continues into the sampler.
    """
    return model.sample_graph(seed=rng if sample_seed is None else sample_seed)


def measure_synthetic_statistics(
    rng: np.random.Generator, model, graph
) -> MatchingStatistics:
    """Matching statistics {E, H, T, Δ} of one synthetic realization."""
    return matching_statistics(model.sample_graph(seed=rng))


def measure_graph_comparison(
    rng: np.random.Generator, model, graph, *, sample_seed=None
) -> dict[str, float]:
    """Score one synthetic realization against the original workload graph.

    The scenario-level form of the baseline bench's scoring tables: one
    synthetic graph is sampled exactly like :func:`measure_sample_graph`
    (``sample_seed`` pins historical draws), then compared against the
    workload on the statistics the paper plots — degree-distribution KS
    distance, relative errors of the four matching statistics, and the
    structure the synthesizers are never told (average clustering,
    degree assortativity).  Returns a flat metric row, so tracked runs
    (:mod:`repro.tracking`) persist the comparison verbatim.
    """
    from repro.stats.assortativity import degree_assortativity
    from repro.stats.clustering import average_clustering
    from repro.stats.comparison import ks_distance, statistics_relative_errors

    if graph is None:
        raise ValidationError(
            "the graph_comparison measure needs a workload graph to compare "
            "against; pure-sampling scenarios have nothing to score"
        )
    synthetic = model.sample_graph(seed=rng if sample_seed is None else sample_seed)
    errors = statistics_relative_errors(
        matching_statistics(synthetic), matching_statistics(graph)
    )
    return {
        "degree_ks": ks_distance(
            graph.degrees[graph.degrees > 0],
            synthetic.degrees[synthetic.degrees > 0],
        ),
        "edges_rel_err": errors["edges"],
        "hairpins_rel_err": errors["hairpins"],
        "tripins_rel_err": errors["tripins"],
        "triangles_rel_err": errors["triangles"],
        "avg_clustering": float(average_clustering(synthetic)),
        "degree_assortativity": float(degree_assortativity(synthetic)),
        "n_nodes": float(synthetic.n_nodes),
        "n_edges": float(synthetic.n_edges),
    }


def measure_graph_statistics(
    rng: np.random.Generator,
    model,
    graph,
    *,
    label: str,
    hop_sources: int | None = None,
    svd_rank: int = 50,
):
    """The five figure statistics of one synthetic realization.

    Consumes the trial stream exactly like the figures' historical
    ``_expected_statistics_trial``: first the SKG draw, then the sampled
    hop plot, so "Expected" ensembles routed through scenarios are
    bit-identical to the pre-scenario outputs.
    """
    from repro.evaluation.figures import compute_graph_statistics

    synthetic = model.sample_graph(seed=rng)
    return compute_graph_statistics(
        synthetic, label, hop_sources=hop_sources, svd_rank=svd_rank, seed=rng
    )


MEASURES: dict[str, Callable[..., Any]] = {
    "fitted_model": measure_fitted_model,
    "initiator": measure_initiator,
    "initiator_distance": measure_initiator_distance,
    "sample_graph": measure_sample_graph,
    "synthetic_statistics": measure_synthetic_statistics,
    "graph_statistics": measure_graph_statistics,
    "graph_comparison": measure_graph_comparison,
}


def register_measure(name: str, fn: Callable[..., Any], *, replace: bool = False) -> None:
    """Register a measurement under ``name`` (module-level = picklable)."""
    if not replace and name in MEASURES:
        raise ValidationError(f"measure {name!r} is already registered")
    MEASURES[name] = fn


def resolve_measure(name: str) -> Callable[..., Any]:
    try:
        return MEASURES[name]
    except KeyError:
        raise ValidationError(
            f"unknown measure {name!r}; registered measures: "
            f"{', '.join(available_measures())}"
        ) from None


def available_measures() -> tuple[str, ...]:
    return tuple(MEASURES)
