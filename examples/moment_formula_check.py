#!/usr/bin/env python
"""Verify the paper's Eq. (1) numerically, three independent ways.

An educational example exercising the Kronecker substrate: for a given
initiator the expected counts of edges / hairpins / tripins / triangles
are computed (a) from the closed forms the estimator uses, (b) by exact
expectation over the dense probability matrix, and (c) by Monte-Carlo
over exact samples.  All three must agree — (a) vs (b) to machine
precision, (c) within sampling error.

This is also the computation that uncovered the OCR corruption in the
paper's printed tripin formula (see docs/kronecker.md).

Run:  python examples/moment_formula_check.py [a b c k]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core.synthesis import ensemble_matching_statistics, sample_ensemble
from repro.kronecker.initiator import Initiator
from repro.kronecker.kronpower import (
    brute_force_expected_counts,
    edge_probability_matrix,
)
from repro.kronecker.moments import expected_statistics
from repro.utils.tables import TextTable


def main(a: float = 0.9, b: float = 0.5, c: float = 0.2, k: int = 6) -> None:
    theta = Initiator(a, b, c)
    print(f"initiator {theta}, order k={k} ({2 ** k} nodes)\n")

    closed = expected_statistics(theta, k)
    brute = brute_force_expected_counts(edge_probability_matrix(theta, k))
    ensemble = sample_ensemble(theta, k, 2000, seed=0)
    monte_carlo = ensemble_matching_statistics(ensemble)

    table = TextTable(
        ["feature", "closed form (Eq. 1)", "dense expectation", "monte carlo (2000)"],
        title="Three routes to the expected matching statistics",
    )
    for name in ("edges", "hairpins", "tripins", "triangles"):
        table.add_row(
            [
                name,
                getattr(closed, name),
                getattr(brute, name),
                getattr(monte_carlo, name),
            ]
        )
    print(table.render())

    worst = max(
        abs(getattr(closed, name) - getattr(brute, name))
        for name in ("edges", "hairpins", "tripins", "triangles")
    )
    print(f"\nmax |closed - dense| = {worst:.2e}  (agreement to machine precision)")
    relative = np.array(
        [
            abs(getattr(monte_carlo, name) - getattr(closed, name))
            / max(getattr(closed, name), 1e-12)
            for name in ("edges", "hairpins", "tripins", "triangles")
        ]
    )
    print(f"monte-carlo relative deviations: {np.round(relative, 4)}")


if __name__ == "__main__":
    if len(sys.argv) == 5:
        main(float(sys.argv[1]), float(sys.argv[2]), float(sys.argv[3]),
             int(sys.argv[4]))
    else:
        main()
