#!/usr/bin/env python
"""Knowledge-discovery scenario: epidemic analysis on private synthetic data.

The paper's introduction motivates private synthetic graphs with exactly
this use case: "access to a social network may help researchers track the
spread of an epidemic ... in a community."  This example plays both
roles:

* the *curator* fits the private SKG estimator to the sensitive contact
  graph and publishes only synthetic graphs;
* the *researcher* runs an SIR (susceptible-infected-recovered) epidemic
  simulation on the synthetic graphs and estimates outbreak properties —
  final attack rate, peak infections, time to peak.

The script then breaks the privacy barrier (which only the curator could
do) to show how close the synthetic-data answers are to the ground truth.

Run:  python examples/synthetic_epidemic_study.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.graphs.graph import Graph
from repro.utils.rng import as_generator
from repro.utils.tables import TextTable


def simulate_sir(
    graph: Graph,
    *,
    transmission: float = 0.12,
    recovery: float = 0.25,
    n_seeds: int = 5,
    max_steps: int = 200,
    seed=None,
) -> dict[str, float]:
    """Discrete-time SIR on a graph; returns outbreak summary statistics.

    Each step, every infected node transmits to each susceptible neighbour
    independently with probability ``transmission`` and recovers with
    probability ``recovery``.
    """
    rng = as_generator(seed)
    n = graph.n_nodes
    adjacency = graph.adjacency
    susceptible = np.ones(n, dtype=bool)
    infected = np.zeros(n, dtype=bool)
    recovered = np.zeros(n, dtype=bool)
    # Seed in the giant component's high-degree region for comparability.
    order = np.argsort(-graph.degrees)
    patient_zero = order[:n_seeds]
    infected[patient_zero] = True
    susceptible[patient_zero] = False

    peak_infected = int(infected.sum())
    peak_time = 0
    for step in range(1, max_steps + 1):
        if not infected.any():
            break
        # Expected number of infected neighbours per susceptible node.
        pressure = adjacency @ infected.astype(np.float64)
        infect_probability = 1.0 - (1.0 - transmission) ** pressure
        newly_infected = susceptible & (rng.random(n) < infect_probability)
        newly_recovered = infected & (rng.random(n) < recovery)
        infected |= newly_infected
        infected &= ~newly_recovered
        recovered |= newly_recovered
        susceptible &= ~newly_infected
        current = int(infected.sum())
        if current > peak_infected:
            peak_infected = current
            peak_time = step
    # Rates over the connected population: Kronecker estimators pad graphs
    # to 2^k nodes with isolated nodes, which can never be infected and
    # would otherwise deflate the synthetic rates.
    population = max(int((graph.degrees > 0).sum()), 1)
    attack_rate = float((recovered | infected).sum()) / population
    return {
        "attack_rate": attack_rate,
        "peak_infected_fraction": peak_infected / population,
        "time_to_peak": float(peak_time),
    }


def average_over_runs(graphs, label: str, n_runs: int = 5) -> dict[str, float]:
    """Mean outbreak statistics over graphs x runs."""
    rows = []
    for index, graph in enumerate(graphs):
        for run in range(n_runs):
            rows.append(simulate_sir(graph, seed=1000 * index + run))
    return {key: float(np.mean([row[key] for row in rows])) for key in rows[0]}


def main() -> None:
    # --- curator side -----------------------------------------------------
    sensitive = repro.load_dataset("ca-grqc")
    print(f"sensitive contact network: {sensitive}")
    estimate = repro.PrivateKroneckerEstimator(
        epsilon=0.2, delta=0.01, seed=11
    ).fit(sensitive)
    print(estimate.describe())
    released = estimate.sample_graphs(4, seed=99)
    print(f"\ncurator releases {len(released)} synthetic graphs "
          f"({released[0].n_nodes} nodes each) and nothing else.\n")

    # --- researcher side (sees only the synthetic graphs) ------------------
    synthetic_answers = average_over_runs(released, "synthetic")

    # --- evaluation (ground truth, for this demo only) ----------------------
    true_answers = average_over_runs([sensitive], "original")

    table = TextTable(
        ["quantity", "true graph", "private synthetic", "rel. error"],
        title="SIR outbreak analysis: sensitive graph vs private release",
    )
    for key in true_answers:
        truth = true_answers[key]
        synthetic = synthetic_answers[key]
        table.add_row(
            [key, truth, synthetic, abs(synthetic - truth) / max(abs(truth), 1e-9)]
        )
    print(table.render())
    print(
        "\nThe researcher never touched the sensitive graph, yet the "
        "epidemic picture (how far it spreads, how sharp the peak is) is "
        "preserved to within the model's fidelity."
    )


if __name__ == "__main__":
    main()
