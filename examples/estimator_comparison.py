#!/usr/bin/env python
"""Side-by-side comparison of KronFit, KronMom, and the private estimator.

Reproduces the paper's experimental protocol on one dataset: fit all
three estimators, generate a synthetic graph from each, and compare the
statistics the paper plots (edges, wedges, triangles, max degree,
clustering, effective diameter) against the original graph.

Run:  python examples/estimator_comparison.py [dataset]
      (dataset: ca-grqc | ca-hepth | as20 | synthetic-kronecker)
"""

from __future__ import annotations

import sys

import repro
from repro.stats import summarize
from repro.stats.hopplot import effective_diameter
from repro.utils.tables import TextTable


def main(dataset: str = "as20") -> None:
    graph = repro.load_dataset(dataset)
    print(f"dataset {dataset}: {graph}\n")

    fits = {
        "KronFit": repro.fit_kronfit(graph, n_iterations=20, seed=0),
        "KronMom": repro.fit_kronmom(graph),
        "Private": repro.fit_private(graph, epsilon=0.2, delta=0.01, seed=0),
    }

    parameters = TextTable(["method", "a", "b", "c"], title="Fitted initiators")
    for method, fit in fits.items():
        theta = fit.initiator
        parameters.add_row([method, theta.a, theta.b, theta.c])
    print(parameters.render())

    comparison = TextTable(
        [
            "graph",
            "edges",
            "wedges",
            "triangles",
            "max deg",
            "avg clust",
            "eff diam",
        ],
        title="Original vs one synthetic realization per estimator",
    )

    def add_graph_row(label, g):
        summary = summarize(g)
        comparison.add_row(
            [
                label,
                summary.n_edges,
                summary.hairpins,
                summary.triangles,
                summary.max_degree,
                summary.average_clustering,
                effective_diameter(g, n_sources=256, seed=0),
            ]
        )

    add_graph_row("Original", graph)
    for method, fit in fits.items():
        add_graph_row(method, fit.sample_graph(seed=1))
    print("\n" + comparison.render())


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "as20")
