#!/usr/bin/env python
"""Choosing ε: quantify the privacy/utility trade-off before releasing.

The paper argues its estimator is accurate "for meaningful values of the
privacy parameter ε".  A curator deciding on a budget can reproduce that
argument on their own graph: sweep ε, fit the private estimator several
times per value, and look at (a) how far the parameter lands from the
non-private fit and (b) how well synthetic graphs match headline
statistics.

Run:  python examples/epsilon_utility_tradeoff.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.stats.comparison import relative_error
from repro.utils.tables import TextTable

EPSILONS = (0.05, 0.1, 0.2, 0.5, 1.0)
SEEDS = range(5)
DELTA = 0.01


def main() -> None:
    graph = repro.load_dataset("ca-grqc")
    reference = repro.fit_kronmom(graph)
    print(f"non-private KronMom reference: {reference.initiator}\n")

    exact = repro.matching_statistics(graph)
    table = TextTable(
        [
            "epsilon",
            "median param distance",
            "median edge rel.err",
            "median wedge rel.err",
        ],
        title=f"Privacy/utility trade-off on ca-grqc (delta={DELTA}, "
        f"{len(list(SEEDS))} runs per epsilon)",
    )
    for epsilon in EPSILONS:
        param_distances, edge_errors, wedge_errors = [], [], []
        for seed in SEEDS:
            estimate = repro.PrivateKroneckerEstimator(
                epsilon, DELTA, seed=seed
            ).fit(graph)
            param_distances.append(
                estimate.initiator.distance(reference.initiator)
            )
            expected = estimate.expected_statistics()
            edge_errors.append(relative_error(expected.edges, exact.edges))
            wedge_errors.append(relative_error(expected.hairpins, exact.hairpins))
        table.add_row(
            [
                epsilon,
                float(np.median(param_distances)),
                float(np.median(edge_errors)),
                float(np.median(wedge_errors)),
            ]
        )
    print(table.render())
    print(
        "\nReading: at the paper's epsilon = 0.2 the private parameter is "
        "already close to the non-private fit; below epsilon ~ 0.1 the "
        "degree-sequence noise starts to dominate the moment statistics."
    )


if __name__ == "__main__":
    main()
