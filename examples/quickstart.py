#!/usr/bin/env python
"""Quickstart: privately estimate a graph model and publish synthetic data.

This is the paper's Algorithm 1 in five lines of user code: load a
sensitive graph, fit the (ε, δ)-differentially private stochastic
Kronecker estimator, inspect the privacy ledger, and sample a synthetic
graph that can be shared with researchers.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro.stats import summarize


def main() -> None:
    # 1. The sensitive input graph.  (A stand-in for SNAP's CA-GrQC
    #    co-authorship network; see DESIGN.md for the substitution note.)
    graph = repro.load_dataset("ca-grqc")
    print("original graph")
    print(summarize(graph).render())

    # 2. Fit the private estimator at the paper's budget (ε=0.2, δ=0.01).
    estimator = repro.PrivateKroneckerEstimator(epsilon=0.2, delta=0.01, seed=0)
    estimate = estimator.fit(graph)
    print("\n" + estimate.describe())

    # 3. Everything derived from the estimate is post-processing: sampling
    #    synthetic graphs consumes no additional privacy budget.
    synthetic = estimate.sample_graph(seed=1)
    print("\nsynthetic graph (shareable)")
    print(summarize(synthetic).render())

    # 4. Compare the matching statistics side by side.
    original_stats = repro.matching_statistics(graph)
    synthetic_stats = repro.matching_statistics(synthetic)
    print("\nstatistic      original      synthetic")
    for name in ("edges", "hairpins", "tripins", "triangles"):
        print(
            f"{name:<12s} {getattr(original_stats, name):>12.0f} "
            f"{getattr(synthetic_stats, name):>12.0f}"
        )


if __name__ == "__main__":
    main()
