#!/usr/bin/env python
"""Data-curator workflow: produce a complete private release package.

Scenario: a curator holds a sensitive social graph and wants to publish
(a) the private model parameter, (b) a synthetic edge list researchers can
load with standard tools, and (c) an audit trail of the privacy budget.
The script writes all three artifacts to ``release_out/``.

Run:  python examples/private_release_workflow.py
"""

from __future__ import annotations

import json
from pathlib import Path

import repro
from repro.graphs import write_edge_list

OUTPUT_DIR = Path(__file__).resolve().parent / "release_out"


def main() -> None:
    OUTPUT_DIR.mkdir(exist_ok=True)

    # The sensitive graph never leaves this process; only DP artifacts do.
    sensitive = repro.load_dataset("as20")
    print(f"sensitive input: {sensitive}")

    estimator = repro.PrivateKroneckerEstimator(
        epsilon=0.2,
        delta=0.01,
        degree_share=0.5,  # Algorithm 1's even split
        seed=2024,
    )
    estimate = estimator.fit(sensitive)
    print(estimate.describe())

    # Artifact 1: the model parameter (the paper's published object).
    theta = estimate.initiator
    parameter_path = OUTPUT_DIR / "private_initiator.json"
    parameter_path.write_text(
        json.dumps(
            {
                "model": "stochastic-kronecker-2x2-symmetric",
                "a": theta.a,
                "b": theta.b,
                "c": theta.c,
                "k": estimate.k,
                "epsilon": estimate.epsilon,
                "delta": estimate.delta,
            },
            indent=2,
        )
    )
    print(f"\nwrote {parameter_path}")

    # Artifact 2: a synthetic graph in SNAP edge-list format.
    synthetic = estimate.sample_graph(seed=7)
    graph_path = OUTPUT_DIR / "synthetic_graph.txt"
    write_edge_list(
        synthetic,
        graph_path,
        header=(
            "Synthetic graph sampled from a differentially private SKG "
            f"estimate (epsilon={estimate.epsilon}, delta={estimate.delta})\n"
            f"Nodes: {synthetic.n_nodes} Edges: {synthetic.n_edges}"
        ),
    )
    print(f"wrote {graph_path}")

    # Artifact 3: the privacy ledger, for the release's documentation.
    ledger_path = OUTPUT_DIR / "privacy_ledger.txt"
    ledger_path.write_text(estimate.release.accountant.describe() + "\n")
    print(f"wrote {ledger_path}")

    # Downstream researchers can re-load and study the synthetic graph:
    reloaded, _ = repro.read_edge_list(graph_path)
    print(f"\nround-trip check: reloaded {reloaded}")


if __name__ == "__main__":
    main()
