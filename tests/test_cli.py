"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.graphs import Graph, write_edge_list


@pytest.fixture
def edge_list_file(tmp_path):
    path = tmp_path / "toy.txt"
    graph = Graph(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5)])
    write_edge_list(graph, path)
    return path


class TestDatasets:
    def test_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        for name in ("ca-grqc", "ca-hepth", "as20", "synthetic-kronecker"):
            assert name in output


class TestSummarize:
    def test_from_file(self, edge_list_file, capsys):
        assert main(["summarize", str(edge_list_file)]) == 0
        output = capsys.readouterr().out
        assert "triangles           1" in output

    def test_unknown_input(self, capsys):
        assert main(["summarize", "no-such-thing"]) == 1
        assert "error:" in capsys.readouterr().err


class TestFit:
    def test_private_fit_prints_ledger(self, edge_list_file, capsys):
        code = main(
            [
                "fit",
                str(edge_list_file),
                "--method",
                "private",
                "--epsilon",
                "1.0",
                "--seed",
                "0",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "private SKG estimate" in output
        assert "privacy budget" in output

    def test_kronmom_fit(self, edge_list_file, capsys):
        assert main(["fit", str(edge_list_file), "--method", "kronmom"]) == 0
        output = capsys.readouterr().out
        assert "KronMom estimate" in output

    def test_kronfit_fit(self, edge_list_file, capsys):
        code = main(
            [
                "fit",
                str(edge_list_file),
                "--method",
                "kronfit",
                "--kronfit-iterations",
                "2",
                "--seed",
                "0",
            ]
        )
        assert code == 0
        assert "KronFit estimate" in capsys.readouterr().out


class TestRelease:
    def test_package_contents(self, edge_list_file, tmp_path, capsys):
        out_dir = tmp_path / "pkg"
        code = main(
            [
                "release",
                str(edge_list_file),
                "--out",
                str(out_dir),
                "--epsilon",
                "1.0",
                "--samples",
                "2",
                "--seed",
                "3",
            ]
        )
        assert code == 0
        parameter = json.loads((out_dir / "private_initiator.json").read_text())
        assert set(parameter) == {"model", "a", "b", "c", "k", "epsilon", "delta"}
        assert (out_dir / "privacy_ledger.txt").exists()
        assert (out_dir / "synthetic_0.txt").exists()
        assert (out_dir / "synthetic_1.txt").exists()


class TestTable1Command:
    def test_reduced_methods_to_file(self, tmp_path, capsys, monkeypatch):
        # KronMom-only keeps this CLI path fast while covering the writer.
        monkeypatch.setenv("REPRO_KRONFIT_ITERATIONS", "1")
        target = tmp_path / "t1.txt"
        code = main(["table1", "--methods", "KronMom", "--out", str(target)])
        assert code == 0
        content = target.read_text()
        assert "Table 1" in content
        assert "KronMom (a, b, c)" in content
        assert "KronFit" not in content


class TestSample:
    def test_to_stdout(self, capsys):
        code = main(
            ["sample", "--a", "0.9", "--b", "0.5", "--c", "0.2", "-k", "5",
             "--seed", "0"]
        )
        assert code == 0
        assert "nodes               32" in capsys.readouterr().out

    def test_to_file(self, tmp_path, capsys):
        target = tmp_path / "sampled.txt"
        code = main(
            ["sample", "--a", "0.9", "--b", "0.5", "--c", "0.2", "-k", "4",
             "--seed", "1", "--out", str(target)]
        )
        assert code == 0
        assert target.exists()

    def test_invalid_parameter_rejected(self, capsys):
        code = main(
            ["sample", "--a", "1.5", "--b", "0.5", "--c", "0.2", "-k", "4"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestRunEnsemble:
    ARGS = ["run-ensemble", "--a", "0.9", "--b", "0.5", "--c", "0.2",
            "-k", "6", "--count", "3", "--seed", "1"]

    def test_summary_to_stdout(self, capsys):
        assert main(self.ARGS) == 0
        output = capsys.readouterr().out
        assert "Ensemble of 3 SKG realizations" in output
        for statistic in ("edges", "hairpins", "tripins", "triangles"):
            assert statistic in output
        assert "3 trial(s) executed, 0 from cache" in output

    def test_parallel_matches_serial(self, capsys):
        assert main(self.ARGS + ["--n-jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(self.ARGS + ["--n-jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        # Identical statistics tables; only the execution footer differs.
        assert serial.splitlines()[:8] == parallel.splitlines()[:8]

    def test_cache_resumes(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(self.ARGS + ["--cache-dir", cache]) == 0
        first = capsys.readouterr().out
        assert "3 trial(s) executed, 0 from cache" in first
        assert main(self.ARGS + ["--cache-dir", cache]) == 0
        second = capsys.readouterr().out
        assert "0 trial(s) executed, 3 from cache" in second
        assert first.splitlines()[:8] == second.splitlines()[:8]

    def test_json_output(self, tmp_path, capsys):
        target = tmp_path / "ensemble.json"
        assert main(self.ARGS + ["--out", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["count"] == 3
        assert payload["initiator"] == {"a": 0.9, "b": 0.5, "c": 0.2}
        assert len(payload["statistics"]) == 3
        assert set(payload["statistics"][0]) == {
            "edges", "hairpins", "tripins", "triangles"
        }

    def test_invalid_initiator_rejected(self, capsys):
        code = main(
            ["run-ensemble", "--a", "1.5", "--b", "0.5", "--c", "0.2", "-k", "4"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestBlockSizeOption:
    def test_statistics_identical_for_any_block_size(
        self, edge_list_file, capsys, monkeypatch
    ):
        # setenv (not delenv) so teardown restores the pre-test state even
        # after main() publishes the flag through os.environ; "0" is the
        # auto default, so the first run behaves as if the knob were unset.
        monkeypatch.setenv("REPRO_BLOCK_SIZE", "0")
        assert main(["summarize", str(edge_list_file)]) == 0
        default_output = capsys.readouterr().out
        assert main(["--block-size", "2", "summarize", str(edge_list_file)]) == 0
        blocked_output = capsys.readouterr().out
        assert blocked_output == default_output

    def test_option_publishes_environment_knob(self, edge_list_file, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_BLOCK_SIZE", "0")
        assert main(["--block-size", "64", "summarize", str(edge_list_file)]) == 0
        assert os.environ["REPRO_BLOCK_SIZE"] == "64"

    def test_invalid_block_size_rejected(self, edge_list_file, capsys):
        code = main(["--block-size", "-3", "summarize", str(edge_list_file)])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestKernelBackendOption:
    def test_statistics_identical_for_any_backend(
        self, edge_list_file, capsys, monkeypatch
    ):
        from repro.stats.kernels import available_kernel_backends

        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "auto")  # see TestBlockSizeOption
        assert main(["summarize", str(edge_list_file)]) == 0
        default_output = capsys.readouterr().out
        for backend in available_kernel_backends():
            code = main(
                ["--kernel-backend", backend, "summarize", str(edge_list_file)]
            )
            assert code == 0
            assert capsys.readouterr().out == default_output

    def test_option_publishes_environment_knob(self, edge_list_file, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "auto")
        code = main(["--kernel-backend", "scipy", "summarize", str(edge_list_file)])
        assert code == 0
        assert os.environ["REPRO_KERNEL_BACKEND"] == "scipy"

    def test_unknown_backend_rejected_by_argparse(self, edge_list_file, capsys):
        with pytest.raises(SystemExit):
            main(["--kernel-backend", "fortran", "summarize", str(edge_list_file)])

    def test_unavailable_backend_fails_loudly(
        self, edge_list_file, capsys, monkeypatch
    ):
        """Requesting a fused backend the host lacks is a clear exit-1 error."""
        from repro.native.counting import COUNTING_KERNEL

        monkeypatch.setitem(
            COUNTING_KERNEL.states, "numba", (None, "numba is not installed")
        )
        code = main(["--kernel-backend", "numba", "summarize", str(edge_list_file)])
        assert code == 1
        error = capsys.readouterr().err
        assert "error:" in error
        assert "numba is not installed" in error


class TestRunScenario:
    def test_list_presets(self, capsys):
        assert main(["run-scenario", "--list"]) == 0
        output = capsys.readouterr().out
        assert "table1" in output
        assert "baseline-comparison" in output
        assert "kronfit" in output

    def test_grid_runs_and_writes_report(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_KRONFIT_ITERATIONS", "2")
        out = tmp_path / "report.txt"
        code = main(
            [
                "run-scenario",
                "--datasets",
                "synthetic-kronecker",
                "--estimators",
                "kronmom,dpdegree",
                "--count",
                "2",
                "--n-jobs",
                "2",
                "--seed",
                "0",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "synthetic-kronecker:KronMom" in output
        assert "synthetic-kronecker:DPDegree" in output
        assert "4 trial(s) executed" in output
        assert out.read_text().strip() == output.rsplit(
            "scenario report written", 1
        )[0].strip()

    def test_grid_is_deterministic_given_seed(self, capsys, monkeypatch):
        arguments = [
            "run-scenario",
            "--datasets",
            "synthetic-kronecker",
            "--estimators",
            "dpdegree",
            "--count",
            "2",
            "--seed",
            "7",
        ]
        assert main(arguments) == 0
        first = capsys.readouterr().out
        assert main(arguments) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_cache_resume_executes_nothing(self, tmp_path, capsys):
        arguments = [
            "run-scenario",
            "--datasets",
            "synthetic-kronecker",
            "--estimators",
            "dpdegree",
            "--count",
            "2",
            "--seed",
            "3",
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
        assert main(arguments) == 0
        assert "2 trial(s) executed, 0 from cache" in capsys.readouterr().out
        assert main(arguments) == 0
        assert "0 trial(s) executed, 2 from cache" in capsys.readouterr().out

    def test_unknown_estimator_rejected(self, capsys):
        code = main(
            [
                "run-scenario",
                "--datasets",
                "synthetic-kronecker",
                "--estimators",
                "oracle",
            ]
        )
        assert code == 1
        assert "unknown estimator" in capsys.readouterr().err

    def test_preset_and_grid_flags_are_exclusive(self, capsys):
        code = main(
            [
                "run-scenario",
                "--preset",
                "table1",
                "--datasets",
                "synthetic-kronecker",
            ]
        )
        assert code == 1
        assert "mutually exclusive" in capsys.readouterr().err

    def test_missing_axes_rejected(self, capsys):
        assert main(["run-scenario"]) == 1
        assert "--datasets" in capsys.readouterr().err

    def test_n_starts_flows_into_kronfit_scenarios(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_KRONFIT_ITERATIONS", "2")
        code = main(
            [
                "run-scenario",
                "--datasets",
                "synthetic-kronecker",
                "--estimators",
                "kronfit",
                "--count",
                "1",
                "--n-starts",
                "2",
                "--seed",
                "0",
            ]
        )
        assert code == 0
        assert "KronFit" in capsys.readouterr().out

    def test_count_rejected_with_preset(self, capsys):
        code = main(
            ["run-scenario", "--preset", "table1", "--count", "5"]
        )
        assert code == 1
        assert "mutually exclusive" in capsys.readouterr().err


class TestTable1ErrorPath:
    def test_unknown_method_prints_error_not_traceback(self, capsys):
        code = main(["table1", "--methods", "Bogus"])
        assert code == 1
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err


class TestRunScenarioCacheEnv:
    def test_honours_repro_cache_dir(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        arguments = [
            "run-scenario",
            "--datasets",
            "synthetic-kronecker",
            "--estimators",
            "dpdegree",
            "--count",
            "2",
            "--seed",
            "9",
        ]
        assert main(arguments) == 0
        assert "2 trial(s) executed, 0 from cache" in capsys.readouterr().out
        assert main(arguments) == 0
        assert "0 trial(s) executed, 2 from cache" in capsys.readouterr().out
