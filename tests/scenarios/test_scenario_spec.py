"""Tests for the declarative scenario descriptions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.scenarios.spec import (
    EstimatorSpec,
    ScenarioSpec,
    SeedPolicy,
    as_params,
    fixed_seeds,
    params_dict,
    spawn_seeds,
)


class TestParams:
    def test_as_params_sorts_by_name(self):
        assert as_params({"b": 2, "a": 1}) == (("a", 1), ("b", 2))

    def test_as_params_merges_extra(self):
        assert as_params({"a": 1}, b=2) == (("a", 1), ("b", 2))

    def test_round_trip(self):
        payload = {"x": 1, "y": (2, 3)}
        assert params_dict(as_params(payload)) == payload

    def test_order_independent_equality(self):
        assert as_params({"a": 1, "b": 2}) == as_params({"b": 2, "a": 1})


class TestEstimatorSpec:
    def test_create_normalizes(self):
        spec = EstimatorSpec.create("KronFit", n_iterations=5, backend="auto")
        assert spec.method == "KronFit"
        assert params_dict(spec.params) == {"n_iterations": 5, "backend": "auto"}

    def test_with_params_overrides(self):
        spec = EstimatorSpec.create("KronFit", n_iterations=5)
        updated = spec.with_params(n_iterations=9, n_starts=4)
        assert params_dict(updated.params) == {"n_iterations": 9, "n_starts": 4}
        assert params_dict(spec.params) == {"n_iterations": 5}

    def test_hashable(self):
        assert hash(EstimatorSpec.create("KronMom")) is not None


class TestSeedPolicy:
    def test_default_spawns_without_root(self):
        policy = SeedPolicy()
        assert policy.root_seed() is None
        assert policy.trial_seed(0) is None

    def test_spawn_with_entropy_has_deterministic_root(self):
        a = spawn_seeds(1, 2, 3).root_seed()
        b = spawn_seeds(1, 2, 3).root_seed()
        assert isinstance(a, np.random.SeedSequence)
        assert a.entropy == b.entropy

    def test_fixed_pins_trial_seeds(self):
        policy = fixed_seeds(7, 8, 9)
        assert policy.root_seed() is None
        assert [policy.trial_seed(i) for i in range(3)] == [7, 8, 9]

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValidationError, match="seed policy"):
            SeedPolicy(kind="lottery")


class TestScenarioSpec:
    def make(self, **overrides):
        base = dict(
            name="test",
            workload="ca-grqc",
            estimator=EstimatorSpec.create("KronMom"),
            ensemble_size=2,
            seed_policy=fixed_seeds(0, 1),
        )
        base.update(overrides)
        return ScenarioSpec(**base)

    def test_valid_spec(self):
        assert self.make().ensemble_size == 2

    def test_fixed_seed_count_must_match_ensemble(self):
        with pytest.raises(ValidationError, match="fixed seed policy"):
            self.make(ensemble_size=3)

    def test_ensemble_size_must_be_positive(self):
        with pytest.raises(ValidationError):
            self.make(ensemble_size=0, seed_policy=fixed_seeds())

    def test_hashable_and_frozen(self):
        spec = self.make()
        assert hash(spec) is not None
        with pytest.raises(AttributeError):
            spec.name = "other"
