"""Tests for scenario compilation, execution, batching, and the registry."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.protocols import (
    FittedModel,
    FixedInitiatorEstimator,
    available_estimator_methods,
    build_estimator,
    estimator_method,
)
from repro.errors import ValidationError
from repro.kronecker.initiator import Initiator
from repro.scenarios import (
    EstimatorSpec,
    ScenarioSpec,
    as_params,
    available_measures,
    available_scenarios,
    build_scenarios,
    compile_scenario,
    fixed_seeds,
    register_scenarios,
    render_scenario_reports,
    run_scenario,
    run_scenarios,
    scenario_builder,
    spawn_seeds,
)
from repro.scenarios.engine import _scenario_trial
from repro.stats.counts import MatchingStatistics


def sampling_scenario(name="fixed-skg", size=3, entropy=(11, 7)) -> ScenarioSpec:
    """A fast pure-sampling scenario (no dataset, k=5 SKG draws)."""
    return ScenarioSpec(
        name=name,
        workload=None,
        estimator=EstimatorSpec.create("Fixed", a=0.9, b=0.5, c=0.2, k=5),
        ensemble_size=size,
        seed_policy=spawn_seeds(*entropy),
        measure="synthetic_statistics",
    )


class TestProtocols:
    def test_registered_methods(self):
        assert set(available_estimator_methods()) == {
            "KronFit",
            "KronMom",
            "Private",
            "DPDegree",
            "Fixed",
        }

    def test_unknown_method_fails_loudly(self):
        with pytest.raises(ValidationError, match="registered methods"):
            estimator_method("Oracle")

    def test_budget_injection_respects_pinned_params(self):
        estimator = build_estimator(
            "DPDegree", as_params(epsilon=5.0), epsilon=0.1, seed=0
        )
        assert estimator.epsilon == 5.0

    def test_budget_injection_fills_missing(self):
        estimator = build_estimator("DPDegree", (), epsilon=0.7, seed=0)
        assert estimator.epsilon == 0.7

    def test_non_seeded_methods_ignore_seed(self):
        # KronMom takes no seed kwarg; injection must not pass one.
        estimator = build_estimator("KronMom", (), seed=np.random.default_rng(0))
        graph = Initiator(0.9, 0.5, 0.2).sample(6, seed=0)
        assert estimator.fit(graph).initiator is not None

    def test_fixed_estimator_is_a_fitted_model_factory(self):
        model = FixedInitiatorEstimator(a=0.9, b=0.5, c=0.2, k=4).fit(None)
        assert isinstance(model, FittedModel)
        assert math.isinf(model.epsilon)
        assert model.sample_graph(seed=0).n_nodes == 16

    def test_estimator_result_epsilon(self):
        graph = Initiator(0.9, 0.5, 0.2).sample(6, seed=0)
        nonprivate = build_estimator("KronMom", ()).fit(graph)
        assert math.isinf(nonprivate.epsilon)
        private = build_estimator(
            "Private", (), epsilon=1.0, delta=0.01, seed=0
        ).fit(graph)
        assert private.epsilon == 1.0


class TestCompile:
    def test_trial_count_and_materialized_seeds(self):
        scenario = sampling_scenario(size=4)
        specs = compile_scenario(scenario)
        assert len(specs) == 4
        assert all(spec.seed is not None for spec in specs)
        expected = np.random.SeedSequence([11, 7]).spawn(4)
        assert [s.seed.entropy for s in specs] == [c.entropy for c in expected]

    def test_fixed_seeds_pinned(self):
        scenario = ScenarioSpec(
            name="pinned",
            workload=None,
            estimator=EstimatorSpec.create("Fixed", a=0.9, b=0.5, c=0.2, k=4),
            ensemble_size=2,
            seed_policy=fixed_seeds(41, 42),
            measure="synthetic_statistics",
        )
        assert [s.seed for s in compile_scenario(scenario)] == [41, 42]

    def test_unknown_method_fails_at_compile_time(self):
        scenario = ScenarioSpec(
            name="bad", workload=None, estimator=EstimatorSpec.create("Oracle")
        )
        with pytest.raises(ValidationError, match="estimator method"):
            compile_scenario(scenario)

    def test_unknown_measure_fails_at_compile_time(self):
        scenario = sampling_scenario()
        scenario = ScenarioSpec(
            name=scenario.name,
            workload=None,
            estimator=scenario.estimator,
            ensemble_size=1,
            measure="telepathy",
        )
        with pytest.raises(ValidationError, match="measure"):
            compile_scenario(scenario)


class TestRun:
    def test_results_are_matching_statistics(self):
        report = run_scenario(sampling_scenario())
        assert len(report.results) == 3
        assert all(isinstance(r, MatchingStatistics) for r in report.results)

    def test_bit_identical_across_n_jobs(self):
        serial = run_scenario(sampling_scenario(), n_jobs=1)
        parallel = run_scenario(sampling_scenario(), n_jobs=4)
        assert serial.results == parallel.results

    def test_batched_equals_sequential(self):
        scenarios = [
            sampling_scenario("one", size=2, entropy=(1,)),
            sampling_scenario("two", size=3, entropy=(2,)),
        ]
        batched = run_scenarios(scenarios, n_jobs=2)
        sequential = [run_scenario(s) for s in scenarios]
        assert [r.results for r in batched] == [r.results for r in sequential]

    def test_batched_reports_attribute_trials_per_scenario(self):
        scenarios = [
            sampling_scenario("one", size=2, entropy=(1,)),
            sampling_scenario("two", size=3, entropy=(2,)),
        ]
        reports = run_scenarios(scenarios)
        assert [len(r.results) for r in reports] == [2, 3]
        assert [r.report.executed for r in reports] == [2, 3]

    def test_cache_split_attributed_per_scenario(self, tmp_path):
        scenarios = [
            sampling_scenario("one", size=2, entropy=(1,)),
            sampling_scenario("two", size=3, entropy=(2,)),
        ]
        cache = str(tmp_path / "cache")
        run_scenarios(scenarios[:1], cache=cache)
        reports = run_scenarios(scenarios, cache=cache)
        assert reports[0].report.cached == 2
        assert reports[0].report.executed == 0
        assert reports[1].report.cached == 0
        assert reports[1].report.executed == 3

    def test_failed_trials_attributed_per_scenario(self, monkeypatch):
        """In a batched run, a failure at a global batch position lands
        in the owning scenario's sub-report at its *local* position."""
        from repro.runtime import TrialFailure

        scenarios = [
            sampling_scenario("one", size=2, entropy=(1,)),
            sampling_scenario("two", size=3, entropy=(2,)),
        ]
        # Batch positions: scenario "one" is 0-1, "two" is 2-4; global
        # position 3 is "two"'s local trial 1.
        monkeypatch.setenv("REPRO_FAULT_INJECT", "trial_error:index=3:attempts=9")
        reports = run_scenarios(scenarios, on_error="collect")
        assert reports[0].report.failed == 0
        assert reports[1].report.failed == 1
        assert reports[1].report.failed_indices == (1,)
        assert isinstance(reports[1].results[1], TrialFailure)
        # Surviving trials are untouched by the neighbour's failure.
        clean = [run_scenario(s) for s in scenarios]
        monkeypatch.delenv("REPRO_FAULT_INJECT")
        assert reports[0].results == clean[0].results
        assert reports[1].results[0] == clean[1].results[0]
        assert reports[1].results[2] == clean[1].results[2]

    def test_on_error_raise_is_still_the_default(self, monkeypatch):
        from repro.runtime import InjectedFault

        monkeypatch.setenv("REPRO_FAULT_INJECT", "trial_error:index=0:attempts=9")
        with pytest.raises(InjectedFault):
            run_scenario(sampling_scenario())

    def test_trial_rng_flows_fit_then_measure(self):
        # Directly drive the generic trial: the Fixed model samples with
        # the trial stream, so equal seeds give equal statistics.
        kwargs = dict(
            workload=None,
            method="Fixed",
            estimator_params=as_params(a=0.9, b=0.5, c=0.2, k=5),
            epsilon=None,
            delta=None,
            measure="synthetic_statistics",
            measure_params=(),
        )
        one = _scenario_trial(np.random.default_rng(3), **kwargs)
        two = _scenario_trial(np.random.default_rng(3), **kwargs)
        assert one == two


class TestRegistry:
    def test_default_presets_registered(self):
        names = available_scenarios()
        assert "table1" in names
        assert "baseline-comparison" in names

    def test_build_table1_preset_shape(self):
        from repro.evaluation.experiments import ExperimentConfig

        scenarios = build_scenarios("table1", ExperimentConfig())
        assert len(scenarios) == 12
        assert {s.measure for s in scenarios} == {"initiator"}

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValidationError, match="already registered"):
            register_scenarios("table1", lambda config: ())

    def test_replace_allows_override(self):
        original = scenario_builder("table1")
        try:
            register_scenarios("table1", lambda config: (), replace=True)
            assert build_scenarios("table1") == ()
        finally:
            register_scenarios("table1", original, replace=True)

    def test_unknown_preset_fails_loudly(self):
        with pytest.raises(ValidationError, match="scenario preset"):
            scenario_builder("does-not-exist")


class TestRender:
    def test_report_renders_every_scenario(self):
        reports = run_scenarios([sampling_scenario("render-me", size=2)])
        text = render_scenario_reports(reports, title="Smoke")
        assert "Smoke" in text
        assert "render-me" in text
        assert "mean E=" in text

    def test_measures_registry_names(self):
        assert "synthetic_statistics" in available_measures()
        assert "graph_statistics" in available_measures()


class TestCacheInvalidation:
    def test_editing_a_measure_invalidates_cached_trials(self, tmp_path, monkeypatch):
        """The cache key must track the code the trial dispatches to by
        name, not just the generic trial function's own source."""
        from repro.scenarios import measures

        cache = str(tmp_path / "cache")
        scenario = sampling_scenario("cache-salt", size=2, entropy=(5,))
        first = run_scenarios([scenario], cache=cache)[0]
        assert first.report.executed == 2

        def patched(rng, model, graph):
            return measures.measure_synthetic_statistics(rng, model, graph)

        monkeypatch.setitem(measures.MEASURES, "synthetic_statistics", patched)
        second = run_scenarios([scenario], cache=cache)[0]
        assert second.report.cached == 0, (
            "stale cache served after the measure implementation changed"
        )
        assert second.report.executed == 2

    def test_unchanged_code_still_resumes_from_cache(self, tmp_path):
        cache = str(tmp_path / "cache")
        scenario = sampling_scenario("cache-hit", size=2, entropy=(6,))
        run_scenarios([scenario], cache=cache)
        resumed = run_scenarios([scenario], cache=cache)[0]
        assert resumed.report.cached == 2
        assert resumed.report.executed == 0


class TestCodeTargets:
    def test_every_method_resolves_a_code_target(self):
        for name in available_estimator_methods():
            target = estimator_method(name).resolve_code_target()
            assert callable(target)

    def test_kronfit_target_is_the_estimator_class(self):
        from repro.kronecker.kronfit import KronFitEstimator

        assert (
            estimator_method("KronFit").resolve_code_target() is KronFitEstimator
        )


class TestBaselinePresetBudget:
    def test_preset_honours_config_epsilon(self):
        import dataclasses

        from repro.evaluation.experiments import ExperimentConfig
        from repro.scenarios import baseline_comparison_scenarios

        scenarios = baseline_comparison_scenarios(
            dataclasses.replace(ExperimentConfig(), epsilon=1.5, delta=0.02)
        )
        assert {s.epsilon for s in scenarios} == {1.5}
        private = next(s for s in scenarios if s.estimator.method == "Private")
        assert private.delta == 0.02

    def test_preset_defaults_to_paper_operating_point(self):
        from repro.scenarios import baseline_comparison_scenarios

        scenarios = baseline_comparison_scenarios()
        assert {s.epsilon for s in scenarios} == {0.2}


class TestWorkloadValidation:
    def test_unknown_workload_fails_at_compile_time(self):
        from repro.errors import DatasetError

        scenario = ScenarioSpec(
            name="bad-workload",
            workload="no-such-dataset",
            estimator=EstimatorSpec.create("KronMom"),
        )
        with pytest.raises(DatasetError):
            compile_scenario(scenario)
