"""The scenario refactor must reproduce the pre-scenario outputs exactly.

These tests pin the acceptance criterion of the scenario engine: routing
Table 1 and the figures' "Expected" ensembles through
:mod:`repro.scenarios` is a pure re-plumbing — the *oracles* below are
verbatim copies of the trial bodies and seed schemes the harness used
before the refactor (evaluation/table1.py's ``_table1_trial`` and
evaluation/figures.py's ``_expected_statistics_trial`` as of PR 4), and
every value must match bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.nonprivate import fit_kronfit, fit_kronmom, fit_private
from repro.evaluation.experiments import ExperimentConfig
from repro.evaluation.figures import compute_graph_statistics
from repro.evaluation.table1 import run_table1
from repro.graphs.datasets import load_dataset
from repro.kronecker.initiator import Initiator
from repro.kronecker.sampling import sample_skg
from repro.scenarios import expected_ensemble_scenario, run_scenario

DATASET = "synthetic-kronecker"  # the smallest registered dataset
CONFIG = ExperimentConfig(kronfit_iterations=2)


def legacy_table1_trial(rng, *, dataset, method, epsilon, delta, kronfit_iterations):
    """Verbatim pre-scenario Table 1 trial (kernel_backend left at auto)."""
    graph = load_dataset(dataset)
    if method == "KronFit":
        result = fit_kronfit(
            graph, n_iterations=kronfit_iterations, seed=rng, backend="auto"
        )
    elif method == "KronMom":
        result = fit_kronmom(graph)
    else:
        result = fit_private(graph, epsilon=epsilon, delta=delta, seed=rng)
    return result.initiator


def legacy_table1(config, datasets, methods):
    """The pre-scenario harness: spawned per-(dataset, method) seeds."""
    rows = {}
    for dataset_index, dataset in enumerate(datasets):
        seeds = np.random.SeedSequence(config.seed + 100 + dataset_index).spawn(
            len(methods)
        )
        for method, seed in zip(methods, seeds):
            rows[(dataset, method)] = legacy_table1_trial(
                np.random.default_rng(seed),
                dataset=dataset,
                method=method,
                epsilon=config.epsilon,
                delta=config.delta,
                kronfit_iterations=config.kronfit_iterations,
            )
    return rows


class TestTable1Equivalence:
    @pytest.fixture(scope="class")
    def methods(self):
        return ("KronFit", "KronMom", "Private")

    def test_scenario_table_matches_legacy_bit_for_bit(self, methods):
        scenario_rows = run_table1(
            config=CONFIG, datasets=(DATASET,), methods=methods
        )
        oracle = legacy_table1(CONFIG, (DATASET,), methods)
        assert len(scenario_rows) == len(oracle)
        for row in scenario_rows:
            expected = oracle[(row.dataset, row.method)]
            assert row.initiator == expected, (
                f"{row.method} on {row.dataset} diverged from the "
                f"pre-scenario harness"
            )

    def test_equivalence_holds_in_parallel(self, methods):
        import dataclasses

        parallel_config = dataclasses.replace(CONFIG, n_jobs=2)
        serial = run_table1(config=CONFIG, datasets=(DATASET,), methods=methods)
        parallel = run_table1(
            config=parallel_config, datasets=(DATASET,), methods=methods
        )
        assert [r.initiator for r in serial] == [r.initiator for r in parallel]


def legacy_expected_trial(rng, *, a, b, c, k, label, hop_sources, svd_rank):
    """Verbatim pre-scenario "Expected" realization trial."""
    graph = sample_skg(Initiator(a, b, c), k, seed=rng)
    return compute_graph_statistics(
        graph, label, hop_sources=hop_sources, svd_rank=svd_rank, seed=rng
    )


class TestExpectedEnsembleEquivalence:
    THETA = (0.9, 0.5, 0.2)
    K = 6
    REALIZATIONS = 3
    ENTROPY = (20120330, 1, 0)  # (config seed, figure number, method index)

    def scenario_results(self, n_jobs=1):
        scenario = expected_ensemble_scenario(
            name="equivalence:Expected",
            label="Expected",
            initiator=self.THETA,
            k=self.K,
            realizations=self.REALIZATIONS,
            entropy=self.ENTROPY,
            hop_sources=None,
            svd_rank=4,
        )
        return run_scenario(scenario, n_jobs=n_jobs).results

    def legacy_results(self):
        root = np.random.SeedSequence(list(self.ENTROPY))
        children = root.spawn(self.REALIZATIONS)
        a, b, c = self.THETA
        return [
            legacy_expected_trial(
                np.random.default_rng(child),
                a=a,
                b=b,
                c=c,
                k=self.K,
                label="Expected",
                hop_sources=None,
                svd_rank=4,
            )
            for child in children
        ]

    def test_every_series_matches_bit_for_bit(self):
        scenario = self.scenario_results()
        legacy = self.legacy_results()
        assert len(scenario) == len(legacy)
        for ours, theirs in zip(scenario, legacy):
            for name in theirs.series:
                assert np.array_equal(ours[name].xs, theirs[name].xs)
                assert np.array_equal(ours[name].ys, theirs[name].ys)

    def test_parallel_run_matches_too(self):
        serial = self.scenario_results(n_jobs=1)
        parallel = self.scenario_results(n_jobs=3)
        for ours, theirs in zip(serial, parallel):
            for name in theirs.series:
                assert np.array_equal(ours[name].ys, theirs[name].ys)
