"""The PR 6 measurement family and presets: graph_comparison scoring,
the baseline-scoring preset, and the figures computation preset."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.evaluation.experiments import ExperimentConfig
from repro.graphs.datasets import load_dataset
from repro.scenarios import (
    EstimatorSpec,
    ScenarioSpec,
    available_measures,
    available_scenarios,
    baseline_comparison_scenarios,
    baseline_scoring_scenarios,
    build_scenarios,
    compile_scenario,
    figure_scenarios,
    fixed_seeds,
    run_scenarios,
)
from repro.scenarios.measures import measure_graph_comparison
from repro.stats.assortativity import degree_assortativity
from repro.stats.clustering import average_clustering
from repro.stats.comparison import ks_distance, statistics_relative_errors
from repro.stats.counts import matching_statistics

DATASET = "synthetic-kronecker"  # the smallest registered dataset

METRIC_KEYS = {
    "degree_ks",
    "edges_rel_err",
    "hairpins_rel_err",
    "tripins_rel_err",
    "triangles_rel_err",
    "avg_clustering",
    "degree_assortativity",
    "n_nodes",
    "n_edges",
}


class TestGraphComparisonMeasure:
    def test_registered(self):
        assert "graph_comparison" in available_measures()

    def test_requires_a_workload_graph(self):
        scenario = ScenarioSpec(
            name="no-workload",
            workload=None,
            estimator=EstimatorSpec.create("Fixed", a=0.9, b=0.5, c=0.2, k=4),
            ensemble_size=1,
            seed_policy=fixed_seeds(0),
            measure="graph_comparison",
        )
        with pytest.raises(ValidationError, match="workload graph"):
            run_scenarios([scenario])

    def test_metrics_match_hand_computation(self):
        scenario = ScenarioSpec(
            name="score",
            workload=DATASET,
            estimator=EstimatorSpec.create("KronMom"),
            ensemble_size=1,
            seed_policy=fixed_seeds(0),
            measure="graph_comparison",
            measure_params=(("sample_seed", 1),),
        )
        (report,) = run_scenarios([scenario])
        row = report.results[0]
        assert set(row) == METRIC_KEYS

        graph = load_dataset(DATASET)
        from repro.core.protocols import build_estimator

        model = build_estimator(
            "KronMom", (), seed=np.random.default_rng(0)
        ).fit(graph)
        synthetic = model.sample_graph(seed=1)
        errors = statistics_relative_errors(
            matching_statistics(synthetic), matching_statistics(graph)
        )
        assert row["degree_ks"] == ks_distance(
            graph.degrees[graph.degrees > 0],
            synthetic.degrees[synthetic.degrees > 0],
        )
        assert row["edges_rel_err"] == errors["edges"]
        assert row["triangles_rel_err"] == errors["triangles"]
        assert row["avg_clustering"] == float(average_clustering(synthetic))
        assert row["degree_assortativity"] == float(
            degree_assortativity(synthetic)
        )
        assert row["n_edges"] == float(synthetic.n_edges)

    def test_measure_consumes_the_stream_like_sample_graph(self):
        """Without a pinned sample_seed the synthetic draw must come from
        the trial stream, exactly like measure_sample_graph."""
        from repro.core.protocols import FixedInitiatorEstimator

        graph = load_dataset(DATASET)
        model = FixedInitiatorEstimator(a=0.9, b=0.5, c=0.2, k=8).fit(None)
        scored = measure_graph_comparison(
            np.random.default_rng(42), model, graph
        )
        expected = model.sample_graph(seed=np.random.default_rng(42))
        assert scored["n_edges"] == float(expected.n_edges)


class TestBaselineScoringPreset:
    def test_registered(self):
        assert "baseline-scoring" in available_scenarios()

    def test_cells_mirror_baseline_comparison(self):
        scoring = baseline_scoring_scenarios()
        comparison = baseline_comparison_scenarios()
        assert [s.name for s in scoring] == [
            "baseline-scoring:skg-private",
            "baseline-scoring:dp-degree",
        ]
        for scored, sampled in zip(scoring, comparison):
            assert scored.measure == "graph_comparison"
            # Identical synthesis: same estimator, budget, seeds, and the
            # pinned sample_seed — only the measurement differs.
            assert scored.estimator == sampled.estimator
            assert scored.epsilon == sampled.epsilon
            assert scored.delta == sampled.delta
            assert scored.seed_policy == sampled.seed_policy
            assert scored.measure_params == sampled.measure_params

    def test_scored_metrics_equal_hand_scores_of_sampled_graphs(self):
        """The preset's metric rows must equal scoring the
        baseline-comparison preset's (bit-identical) sampled graphs."""
        graph = load_dataset("ca-grqc")
        original = matching_statistics(graph)
        sampled_reports = run_scenarios(baseline_comparison_scenarios())
        scored_reports = run_scenarios(baseline_scoring_scenarios())
        for sampled, scored in zip(sampled_reports, scored_reports):
            synthetic = sampled.results[0]
            row = scored.results[0]
            errors = statistics_relative_errors(
                matching_statistics(synthetic), original
            )
            assert row["edges_rel_err"] == errors["edges"]
            assert row["triangles_rel_err"] == errors["triangles"]
            assert row["degree_ks"] == ks_distance(
                graph.degrees[graph.degrees > 0],
                synthetic.degrees[synthetic.degrees > 0],
            )
            assert row["n_edges"] == float(synthetic.n_edges)


class TestFiguresPreset:
    CONFIG = ExperimentConfig(kronfit_iterations=2)

    def test_registered_and_shaped(self):
        assert "figures" in available_scenarios()
        scenarios = build_scenarios("figures", self.CONFIG)
        # 4 figure datasets x 3 estimator methods, one realization each.
        assert len(scenarios) == 12
        assert all(s.measure == "graph_statistics" for s in scenarios)
        assert all(s.ensemble_size == 1 for s in scenarios)
        names = [s.name for s in scenarios]
        assert "figures:f1:ca-grqc:KronFit" in names
        assert "figures:f4:synthetic-kronecker:Private" in names

    def test_scenarios_compile(self):
        for scenario in figure_scenarios(self.CONFIG):
            specs = compile_scenario(scenario)
            assert len(specs) == 1
            assert specs[0].seed is not None

    def test_seed_policies_are_reproducible(self):
        first = figure_scenarios(self.CONFIG)
        second = figure_scenarios(dataclasses.replace(self.CONFIG))
        assert [s.seed_policy for s in first] == [s.seed_policy for s in second]
