"""Package-integrity checks: every module imports, every export resolves.

Broken ``__init__`` re-exports and circular imports surface here rather
than in whichever downstream test happens to import the module first.
"""

from __future__ import annotations

import importlib
import pkgutil

import pytest

import repro


def _walk_modules() -> list[str]:
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return sorted(names)


ALL_MODULES = _walk_modules()


class TestImports:
    @pytest.mark.parametrize("name", ALL_MODULES)
    def test_module_imports(self, name):
        module = importlib.import_module(name)
        assert module is not None

    @pytest.mark.parametrize("name", ALL_MODULES)
    def test_declared_exports_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol!r}"

    def test_expected_subpackages_present(self):
        subpackages = {name.split(".")[1] for name in ALL_MODULES if "." in name}
        assert {"graphs", "stats", "kronecker", "privacy", "core",
                "evaluation", "utils", "runtime", "native",
                "scenarios"} <= subpackages


class TestDocumentation:
    @pytest.mark.parametrize("name", ALL_MODULES)
    def test_every_module_has_docstring(self, name):
        module = importlib.import_module(name)
        assert module.__doc__ and module.__doc__.strip(), f"{name} lacks a docstring"

    def test_public_callables_documented(self):
        # Spot-check the top-level API surface: everything a user reaches
        # through `repro.<name>` must carry a docstring.
        for symbol in repro.__all__:
            obj = getattr(repro, symbol)
            if callable(obj):
                assert obj.__doc__, f"repro.{symbol} lacks a docstring"
