"""Tests for argument validation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.utils.validation import (
    check_in_unit_interval,
    check_integer,
    check_nonnegative,
    check_positive,
    check_probability_matrix,
)


class TestUnitInterval:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_boundary_and_interior(self, value):
        assert check_in_unit_interval(value, "p") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, float("nan"), float("inf")])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ValidationError):
            check_in_unit_interval(value, "p")

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_in_unit_interval(True, "p")

    def test_rejects_non_numeric(self):
        with pytest.raises(ValidationError):
            check_in_unit_interval("half", "p")

    def test_error_message_names_argument(self):
        with pytest.raises(ValidationError, match="my_parameter"):
            check_in_unit_interval(2.0, "my_parameter")


class TestPositive:
    def test_accepts_positive(self):
        assert check_positive(0.1, "x") == 0.1

    @pytest.mark.parametrize("value", [0.0, -1.0, float("nan")])
    def test_rejects(self, value):
        with pytest.raises(ValidationError):
            check_positive(value, "x")


class TestNonnegative:
    def test_accepts_zero(self):
        assert check_nonnegative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_nonnegative(-1e-9, "x")


class TestInteger:
    def test_accepts_python_int(self):
        assert check_integer(5, "n") == 5

    def test_accepts_numpy_int(self):
        assert check_integer(np.int64(5), "n") == 5

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_integer(True, "n")

    def test_rejects_float(self):
        with pytest.raises(ValidationError):
            check_integer(5.0, "n")

    def test_minimum_enforced(self):
        with pytest.raises(ValidationError):
            check_integer(0, "n", minimum=1)


class TestProbabilityMatrix:
    def test_accepts_valid(self):
        matrix = check_probability_matrix([[0.5, 1.0], [0.0, 0.25]], "m")
        assert matrix.dtype == np.float64

    def test_rejects_non_square(self):
        with pytest.raises(ValidationError):
            check_probability_matrix(np.zeros((2, 3)), "m")

    def test_rejects_out_of_range_entries(self):
        with pytest.raises(ValidationError):
            check_probability_matrix([[0.5, 1.5], [0.0, 0.2]], "m")

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_probability_matrix([[float("nan"), 0.0], [0.0, 0.0]], "m")
