"""Tests for text table rendering."""

from __future__ import annotations

import pytest

from repro.utils.tables import TextTable, format_float, format_series


class TestFormatFloat:
    def test_integral_float_trims_zeros(self):
        assert format_float(1.0) == "1"

    def test_small_value_scientific(self):
        assert "e" in format_float(1e-7)

    def test_large_value_scientific(self):
        assert "e" in format_float(1e9)

    def test_midrange_fixed_point(self):
        assert format_float(0.4674) == "0.4674"

    def test_nan(self):
        assert format_float(float("nan")) == "nan"

    def test_zero(self):
        assert format_float(0.0) == "0"


class TestTextTable:
    def test_render_alignment(self):
        table = TextTable(["name", "value"])
        table.add_row(["alpha", 1.0])
        table.add_row(["b", 22.5])
        rendered = table.render()
        lines = rendered.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[0].startswith("name")
        assert "alpha" in lines[2]

    def test_title_rendered(self):
        table = TextTable(["x"], title="My Title")
        table.add_row([1.0])
        assert table.render().startswith("My Title")

    def test_wrong_cell_count_rejected(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_non_float_cells_stringified(self):
        table = TextTable(["a"])
        table.add_row([(1, 2)])
        assert "(1, 2)" in table.render()


class TestFormatSeries:
    def test_pairs_rendered(self):
        text = format_series([1, 10], [5.0, 0.5], name="curve")
        assert text.startswith("curve:")
        assert "(1, 5)" in text
        assert "(10, 0.5)" in text
