"""Tests for the ASCII scatter renderer."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.utils.asciiplot import MARKERS, ascii_scatter


class TestAsciiScatter:
    def test_basic_rendering(self):
        plot = ascii_scatter(
            {"curve": ([1, 10, 100], [100, 10, 1])}, title="My plot"
        )
        assert plot.startswith("My plot")
        assert "o curve" in plot
        assert "o" in plot.splitlines()[1]

    def test_two_series_distinct_markers(self):
        plot = ascii_scatter(
            {
                "first": ([1, 10], [1, 10]),
                "second": ([1, 10], [10, 1]),
            }
        )
        assert "o first" in plot
        assert "+ second" in plot

    def test_overlap_marked_with_dot(self):
        plot = ascii_scatter(
            {
                "a": ([1.0], [1.0]),
                "b": ([1.0], [1.0]),
            }
        )
        body = "\n".join(plot.splitlines()[:-3])
        assert "." in body

    def test_nonpositive_dropped_on_log_axes(self):
        plot = ascii_scatter({"x": ([0, 1, 10], [5, -1, 10])})
        assert "(no positive data to plot)" not in plot

    def test_all_nonpositive_degrades_gracefully(self):
        plot = ascii_scatter({"x": ([0, -1], [0, -2])})
        assert "(no positive data to plot)" in plot

    def test_linear_x_axis(self):
        # Hop plots: x = 0, 1, 2 ... must survive log_y-only mode.
        plot = ascii_scatter(
            {"hops": ([0, 1, 2, 3], [10, 100, 1000, 10000])}, log_x=False
        )
        assert "hops" in plot

    def test_constant_series(self):
        plot = ascii_scatter({"flat": ([1, 10, 100], [5, 5, 5])})
        assert "flat" in plot

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            ascii_scatter({"bad": ([1, 2], [1])})

    def test_tiny_plot_area_rejected(self):
        with pytest.raises(ValidationError):
            ascii_scatter({"x": ([1], [1])}, width=4, height=3)

    def test_dimensions_respected(self):
        plot = ascii_scatter({"x": ([1, 100], [1, 100])}, width=30, height=8)
        body_lines = [line for line in plot.splitlines() if "|" in line]
        assert len(body_lines) == 8
        assert all(len(line.split("|", 1)[1]) <= 30 for line in body_lines)

    def test_marker_cycle_wraps(self):
        series = {f"series-{i}": ([1, 10], [1, 10]) for i in range(10)}
        plot = ascii_scatter(series)
        assert f"{MARKERS[0]} series-0" in plot
        assert f"{MARKERS[1]} series-9" in plot  # 9 % 8 == 1

    def test_monotone_series_renders_monotone(self):
        # The marker for the largest x must sit in the rightmost column.
        plot = ascii_scatter({"up": ([1, 10, 100], [1, 10, 100])}, width=20, height=6)
        top_row = plot.splitlines()[0]
        assert top_row.rstrip().endswith("o")
