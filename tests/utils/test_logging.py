"""Tests for the library logging convention."""

from __future__ import annotations

import logging

from repro.utils.logging import get_logger


class TestGetLogger:
    def test_namespaces_under_repro(self):
        logger = get_logger("mymodule")
        assert logger.name == "repro.mymodule"

    def test_repro_prefixed_names_unchanged(self):
        logger = get_logger("repro.kronecker.kronfit")
        assert logger.name == "repro.kronecker.kronfit"

    def test_returns_standard_logger(self):
        assert isinstance(get_logger("x"), logging.Logger)

    def test_no_handlers_attached(self):
        # The library must not configure logging; that's the app's job.
        logger = get_logger("handlerless-test")
        assert logger.handlers == []

    def test_kronfit_logs_debug_messages(self, caplog):
        from repro.kronecker.kronfit import KronFitEstimator
        from repro.kronecker.initiator import Initiator
        from repro.kronecker.sampling import sample_skg

        graph = sample_skg(Initiator(0.9, 0.5, 0.2), 5, seed=0)
        with caplog.at_level(logging.DEBUG, logger="repro.kronecker.kronfit"):
            KronFitEstimator(
                n_iterations=1, warmup_swaps=5, n_permutation_samples=1,
                sample_spacing=5, seed=0,
            ).fit(graph)
        assert any("kronfit iter" in record.message for record in caplog.records)
