"""Tests for the RNG normalisation policy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).integers(0, 1_000_000, size=8)
        b = as_generator(42).integers(0, 1_000_000, size=8)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).integers(0, 1_000_000, size=8)
        b = as_generator(2).integers(0, 1_000_000, size=8)
        assert not np.array_equal(a, b)

    def test_generator_passthrough_is_identity(self):
        generator = np.random.default_rng(0)
        assert as_generator(generator) is generator

    def test_seed_sequence_accepted(self):
        sequence = np.random.SeedSequence(99)
        generator = as_generator(sequence)
        assert isinstance(generator, np.random.Generator)


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_children_are_independent_streams(self):
        children = spawn_generators(7, 3)
        draws = [g.integers(0, 2**60) for g in children]
        assert len(set(draws)) == 3

    def test_reproducible_from_same_seed(self):
        first = [g.integers(0, 2**60) for g in spawn_generators(11, 4)]
        second = [g.integers(0, 2**60) for g in spawn_generators(11, 4)]
        assert first == second

    def test_spawning_from_generator_advances_parent(self):
        parent = np.random.default_rng(3)
        spawn_generators(parent, 2)
        # The parent stream was consumed, so further spawns differ.
        other = spawn_generators(parent, 2)
        first_draws = [g.integers(0, 2**60) for g in other]
        assert len(set(first_draws)) == 2
