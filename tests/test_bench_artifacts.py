"""Committed bench artifacts must stay in sync with their bench scripts.

``benchmarks/out/BENCH_*.json`` files are committed performance records
(the authoritative before/after numbers the README and ROADMAP cite).
Each emitting script declares a ``SCHEMA_VERSION`` it writes into its
report; when a script changes its JSON layout it must bump the constant
and the artifact must be regenerated.  These tests fail when the two
drift — or when a new ``BENCH_*.json`` lands without a registered
emitting script.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"
OUT_DIR = BENCH_DIR / "out"

# artifact -> the script that emits it (and owns its SCHEMA_VERSION).
ARTIFACT_SCRIPTS = {
    "BENCH_stats.json": "bench_stats.py",
    "BENCH_kronfit.json": "bench_kronfit.py",
    "BENCH_trajectory.json": "bench_trajectory.py",
    "BENCH_serve.json": "bench_serve.py",
}


def load_bench_module(script_name: str):
    """Import a benchmarks/ script by path (the dir is not a package)."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        script_name.removesuffix(".py"), BENCH_DIR / script_name
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def trajectory_row(commit, recorded, speedup, fit_speedup=None):
    return {
        "commit": commit,
        "label": "",
        "recorded": recorded,
        "quick": True,
        "stats": {"combined_speedup": speedup},
        "kronfit": {"fit_speedup": fit_speedup if fit_speedup is not None else speedup},
    }


def script_schema_version(script_name: str) -> int:
    text = (BENCH_DIR / script_name).read_text(encoding="utf-8")
    match = re.search(r"^SCHEMA_VERSION\s*=\s*(\d+)\s*$", text, re.MULTILINE)
    assert match, f"{script_name} must declare a module-level SCHEMA_VERSION"
    return int(match.group(1))


class TestBenchArtifactSchema:
    def test_every_committed_artifact_has_an_emitting_script(self):
        committed = {
            path.name
            for path in OUT_DIR.glob("BENCH_*.json")
            # quick/smoke runs drop gitignored *_quick.json side files;
            # they are transient, not committed artifacts.
            if not path.stem.endswith("_quick")
        }
        unregistered = committed - set(ARTIFACT_SCRIPTS)
        assert not unregistered, (
            f"BENCH artifacts without a registered emitting script: "
            f"{sorted(unregistered)}; add them to ARTIFACT_SCRIPTS"
        )

    @pytest.mark.parametrize("artifact", sorted(ARTIFACT_SCRIPTS))
    def test_registered_artifacts_are_committed(self, artifact):
        assert (OUT_DIR / artifact).exists(), f"{artifact} is not committed"

    @pytest.mark.parametrize("artifact", sorted(ARTIFACT_SCRIPTS))
    def test_schema_version_in_sync(self, artifact):
        script = ARTIFACT_SCRIPTS[artifact]
        report = json.loads((OUT_DIR / artifact).read_text(encoding="utf-8"))
        assert report.get("schema_version") == script_schema_version(script), (
            f"{artifact} was written by an older schema of {script}; "
            f"regenerate it with `python benchmarks/{script}`"
        )

    @pytest.mark.parametrize("artifact", sorted(ARTIFACT_SCRIPTS))
    def test_committed_artifacts_are_full_runs(self, artifact):
        """Quick/smoke runs write *_quick.json; the committed artifact
        must be the full matrix."""
        report = json.loads((OUT_DIR / artifact).read_text(encoding="utf-8"))
        assert report.get("quick") is False

    def test_trajectory_rows_are_well_formed(self):
        """The perf trajectory must carry at least one row, with the
        headline keys, one row per commit, and recorded timestamps
        ascending (CI appends chronologically)."""
        trajectory = json.loads(
            (OUT_DIR / "BENCH_trajectory.json").read_text(encoding="utf-8")
        )
        rows = trajectory["rows"]
        assert rows, "the committed trajectory must not be empty"
        for row in rows:
            assert set(row) >= {
                "commit",
                "label",
                "recorded",
                "quick",
                "stats",
                "kronfit",
            }
            assert row["stats"]["combined_speedup"] is not None
            assert row["kronfit"]["fit_speedup"] is not None
        commits = [row["commit"] for row in rows]
        assert len(commits) == len(set(commits)), "one row per commit"
        recorded = [row["recorded"] for row in rows]
        assert recorded == sorted(recorded), "rows sorted by recorded time"

    def test_trajectory_append_replaces_same_commit(self):
        """Re-benching a commit must update its row, not duplicate it."""
        module = load_bench_module("bench_trajectory.py")
        row = trajectory_row

        trajectory = module.fresh_trajectory()
        trajectory = module.append_row(trajectory, row("aaa", "2026-01-01T00:00:00Z", 1.0))
        trajectory = module.append_row(trajectory, row("bbb", "2026-01-02T00:00:00Z", 2.0))
        trajectory = module.append_row(trajectory, row("aaa", "2026-01-03T00:00:00Z", 3.0))
        assert [entry["commit"] for entry in trajectory["rows"]] == ["bbb", "aaa"]
        assert trajectory["rows"][-1]["stats"]["combined_speedup"] == 3.0
        with pytest.raises(ValueError, match="missing keys"):
            module.append_row(trajectory, {"commit": "ccc"})

    def test_trajectory_gate_flags_regressions(self):
        """A headline speedup dropping below the tolerance floor must be
        reported; drops within tolerance must pass."""
        module = load_bench_module("bench_trajectory.py")
        previous = trajectory_row("aaa", "2026-01-01T00:00:00Z", 10.0, 4.0)

        # Within tolerance (50% default): half the previous speedup holds.
        fine = trajectory_row("bbb", "2026-01-02T00:00:00Z", 5.0, 2.0)
        assert module.check_regression(previous, fine, 0.5) == []

        # Below the floor on one headline: exactly one violation, naming
        # the metric and the baseline commit.
        bad = trajectory_row("bbb", "2026-01-02T00:00:00Z", 4.0, 4.0)
        problems = module.check_regression(previous, bad, 0.5)
        assert len(problems) == 1
        assert "stats.combined_speedup" in problems[0]
        assert "aaa" in problems[0]

        # Both headlines regressed: both reported.
        awful = trajectory_row("bbb", "2026-01-02T00:00:00Z", 1.0, 0.5)
        assert len(module.check_regression(previous, awful, 0.5)) == 2

        # Tolerance 0 is the strictest gate: any drop fails.
        assert module.check_regression(previous, fine, 0.0)
        assert module.check_regression(previous, previous, 0.0) == []

    def test_trajectory_gate_skips_missing_headlines(self):
        """A headline absent on either side (backend unavailable on that
        runner) is an environment property, not a regression."""
        module = load_bench_module("bench_trajectory.py")
        previous = trajectory_row("aaa", "2026-01-01T00:00:00Z", 10.0)
        previous["kronfit"]["fit_speedup"] = None
        row = trajectory_row("bbb", "2026-01-02T00:00:00Z", 9.0)
        row["stats"]["combined_speedup"] = None
        assert module.check_regression(previous, row, 0.5) == []
        with pytest.raises(ValueError, match="tolerance"):
            module.check_regression(previous, row, 1.5)

    def test_trajectory_gate_baseline_is_previous_distinct_commit(self):
        """Re-benching HEAD gates against the last *other* commit, and
        the very first row has no baseline at all."""
        module = load_bench_module("bench_trajectory.py")
        trajectory = module.fresh_trajectory()
        assert module.previous_row(trajectory, "aaa") is None
        trajectory = module.append_row(
            trajectory, trajectory_row("aaa", "2026-01-01T00:00:00Z", 1.0)
        )
        assert module.previous_row(trajectory, "aaa") is None
        trajectory = module.append_row(
            trajectory, trajectory_row("bbb", "2026-01-02T00:00:00Z", 2.0)
        )
        baseline = module.previous_row(trajectory, "bbb")
        assert baseline["commit"] == "aaa"

    def test_trajectory_gate_end_to_end(self, tmp_path):
        """main(--gate) exits 1 on a regression but still records the
        row; a recovery run on the same trajectory passes again."""
        module = load_bench_module("bench_trajectory.py")

        def reports(speedup, directory):
            """Minimal quick-mode stats/kronfit reports for build_row."""
            stats = {
                "quick": True,
                "kernel_backend": "numpy",
                "speedup_floor": {"workload": "w", "measured": speedup},
                "fused_speedup_floor": {"backend": "numba", "measured": speedup},
            }
            kronfit = {
                "quick": True,
                "fused_fit_floor": {
                    "workload": "w", "backend": "numba", "measured": speedup
                },
            }
            stats_path = directory / "stats.json"
            kronfit_path = directory / "kronfit.json"
            stats_path.write_text(json.dumps(stats))
            kronfit_path.write_text(json.dumps(kronfit))
            return stats_path, kronfit_path

        out = tmp_path / "trajectory.json"

        def run(commit, recorded, speedup):
            stats_path, kronfit_path = reports(speedup, tmp_path)
            return module.main([
                "--stats", str(stats_path), "--kronfit", str(kronfit_path),
                "--commit", commit, "--recorded", recorded,
                "--out", str(out), "--gate",
            ])

        assert run("aaa", "2026-01-01T00:00:00Z", 10.0) == 0  # no baseline
        assert run("bbb", "2026-01-02T00:00:00Z", 9.0) == 0   # within tolerance
        assert run("ccc", "2026-01-03T00:00:00Z", 1.0) == 1   # regressed
        rows = json.loads(out.read_text())["rows"]
        assert [row["commit"] for row in rows] == ["aaa", "bbb", "ccc"]
        # The regressed row was still recorded; gating vs it now fails
        # the *next* run only if the next run is slower still.
        assert run("ddd", "2026-01-04T00:00:00Z", 0.9) == 0

    def test_serve_artifact_records_floors(self):
        """The committed serve bench must carry the latency distribution
        and both floors, measured above their requirements (the full run
        asserts them at bench time; this guards the committed record)."""
        report = json.loads(
            (OUT_DIR / "BENCH_serve.json").read_text(encoding="utf-8")
        )
        warm = report["cold_vs_warm"]["warm"]
        assert {"p50_ms", "p95_ms", "p99_ms"} <= set(warm)
        assert report["cold_vs_warm"]["bit_identical"] is True
        for floor in (report["cache_speedup_floor"], report["throughput_floor"]):
            assert floor["measured"] >= floor["required"]
        assert report["sustained"]["clients"] >= 8
        assert report["sustained"]["throughput_rps"] > 0

    def test_stats_artifact_records_large_k_rows(self):
        """Schema 3 added the large-k scale rows: sampler engine
        trajectory (bit-identity enforced by the bench) plus the KronMom
        fit at k in {16, 18, 20}, and the fused-sampler floor record."""
        report = json.loads(
            (OUT_DIR / "BENCH_stats.json").read_text(encoding="utf-8")
        )
        rows = report["large_k"]
        assert [row["k"] for row in rows] == [16, 18, 20]
        for row in rows:
            assert row["n_nodes"] == 2 ** row["k"]
            assert row["sampler"]["numpy"]["available"]
            assert row["kronmom_seconds"] > 0
            assert len(row["kronmom_initiator"]) == 3
            for backend, entry in row["sampler"].items():
                if backend != "numpy" and entry.get("available"):
                    assert entry["bit_identical"] is True
        floor = report["sampler_speedup_floor"]
        assert floor["k"] == 18 and floor["required"] == 2.0
        if floor["backend"] is not None:
            assert floor["measured"] >= floor["required"]

    def test_kronfit_artifact_records_large_k_rows(self):
        """Schema 3's large-k fit rows: per-engine Table-1-budget fits on
        the skg-k16/k18/k20 datasets, with the k=18 fused floor."""
        report = json.loads(
            (OUT_DIR / "BENCH_kronfit.json").read_text(encoding="utf-8")
        )
        rows = report["large_k"]
        assert [row["k"] for row in rows] == [16, 18, 20]
        for row in rows:
            assert row["n_nodes"] == 2 ** row["k"]
            assert row["fit"]["numpy"]["available"]
        floor = report["large_k_fit_floor"]
        assert floor["k"] == 18 and floor["required"] == 2.0
        if floor["backend"] is not None:
            assert floor["measured"] >= floor["required"]

    def test_kronfit_artifact_records_multistart_column(self):
        """Schema 2 added the multi-start column: the committed artifact
        must carry the S=8 serial/parallel trajectory and the floor
        record (measured even when the reference container cannot assert
        the parallel floor — e.g. a single usable core)."""
        report = json.loads(
            (OUT_DIR / "BENCH_kronfit.json").read_text(encoding="utf-8")
        )
        floor = report["multistart_floor"]
        assert floor["n_starts"] == 8
        assert floor["measured"] is not None
        assert floor["asserted"] or floor["skip_reason"]
        record = next(
            workload
            for workload in report["workloads"]
            if workload["workload"] == floor["workload"]
        )
        by_jobs = record["multistart"]["by_n_jobs"]
        assert set(by_jobs) == {"1", "4"}
        winners = {entry["winning_start"] for entry in by_jobs.values()}
        assert len(winners) == 1, "winner must be identical across n_jobs"

    def test_kronfit_artifact_records_multichain_column(self):
        """Schema 4 added the batched multichain column: S ∈ {8, 64}
        rows with the pool fan-out baseline and batched timings at
        kernel_threads ∈ {1, 2} (bit-identity recorded by the bench's
        enforcement), plus the single-core floor record — the complement
        of the multi-start pool floor, so exactly one of the two is
        asserted on any host."""
        report = json.loads(
            (OUT_DIR / "BENCH_kronfit.json").read_text(encoding="utf-8")
        )
        floor = report["multichain_floor"]
        assert floor["n_starts"] == 8
        assert floor["kernel_threads"] == 1
        assert floor["required"] == 2.0
        assert floor["measured"] is not None
        assert floor["asserted"] or floor["skip_reason"]
        if floor["asserted"]:
            assert floor["measured"] >= floor["required"]
        record = next(
            workload
            for workload in report["workloads"]
            if workload["workload"] == floor["workload"]
        )
        by_starts = record["multichain"]["by_starts"]
        assert set(by_starts) == {"8", "64"}
        for row in by_starts.values():
            assert row["fanout"]["seconds"] > 0
            assert set(row["batched"]) == {"1", "2"}
            for entry in row["batched"].values():
                assert entry["bit_identical"] is True
                assert entry["seconds"] > 0
        # The two multi-start floors partition hosts by core count:
        # exactly one must be asserted in a committed (full) artifact.
        assert report["multistart_floor"]["asserted"] != floor["asserted"]

    def test_trajectory_gate_covers_multichain_headline(self):
        """The batched multichain headline participates in the gate;
        rows predating it (no ``multichain_speedup`` key) are skipped,
        not failed."""
        module = load_bench_module("bench_trajectory.py")
        assert ("kronfit", "multichain_speedup") in module.GATE_KEYS
        previous = trajectory_row("aaa", "2026-01-01T00:00:00Z", 10.0)
        previous["kronfit"]["multichain_speedup"] = 4.0
        row = trajectory_row("bbb", "2026-01-02T00:00:00Z", 10.0)
        row["kronfit"]["multichain_speedup"] = 1.0
        problems = module.check_regression(previous, row, 0.5)
        assert len(problems) == 1
        assert "multichain_speedup" in problems[0]
        del previous["kronfit"]["multichain_speedup"]
        assert module.check_regression(previous, row, 0.5) == []
