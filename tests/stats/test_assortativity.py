"""Tests for degree-correlation statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import Graph
from repro.graphs.generators import (
    barabasi_albert_graph,
    complete_graph,
    erdos_renyi_graph,
    star_graph,
)
from repro.stats.assortativity import (
    average_neighbor_degree_by_degree,
    degree_assortativity,
    joint_degree_counts,
)


class TestDegreeAssortativity:
    def test_matches_networkx(self):
        networkx = pytest.importorskip("networkx")
        graph = erdos_renyi_graph(150, 0.05, seed=3)
        ours = degree_assortativity(graph)
        theirs = networkx.degree_assortativity_coefficient(graph.to_networkx())
        assert ours == pytest.approx(theirs, abs=1e-9)

    def test_star_is_maximally_disassortative(self):
        assert degree_assortativity(star_graph(10)) == pytest.approx(-1.0)

    def test_regular_graph_undefined(self):
        assert np.isnan(degree_assortativity(complete_graph(5)))

    def test_tiny_graph_undefined(self):
        assert np.isnan(degree_assortativity(Graph(3, [(0, 1)])))

    def test_range(self):
        graph = barabasi_albert_graph(300, 3, seed=1)
        value = degree_assortativity(graph)
        assert -1.0 <= value <= 1.0


class TestAverageNeighborDegree:
    def test_matches_networkx(self):
        networkx = pytest.importorskip("networkx")
        graph = erdos_renyi_graph(100, 0.06, seed=5)
        values, knn = average_neighbor_degree_by_degree(graph)
        their_per_node = networkx.average_neighbor_degree(graph.to_networkx())
        for value, mean in zip(values, knn):
            nodes = [n for n in range(graph.n_nodes) if graph.degrees[n] == value]
            expected = np.mean([their_per_node[n] for n in nodes])
            assert mean == pytest.approx(expected, abs=1e-9)

    def test_star(self):
        values, knn = average_neighbor_degree_by_degree(star_graph(6))
        # Leaves (degree 1) see the centre (degree 5); the centre sees 1s.
        np.testing.assert_array_equal(values, [1, 5])
        np.testing.assert_allclose(knn, [5.0, 1.0])

    def test_empty_graph(self):
        values, knn = average_neighbor_degree_by_degree(Graph(4))
        assert values.size == 0
        assert knn.size == 0


class TestJointDegreeCounts:
    def test_path(self):
        counts = joint_degree_counts(Graph(3, [(0, 1), (1, 2)]))
        assert counts == {(1, 2): 2}

    def test_triangle(self, triangle):
        assert joint_degree_counts(triangle) == {(2, 2): 3}

    def test_total_is_edge_count(self, er_graph):
        counts = joint_degree_counts(er_graph)
        assert sum(counts.values()) == er_graph.n_edges

    def test_keys_sorted(self, er_graph):
        for low, high in joint_degree_counts(er_graph):
            assert low <= high
