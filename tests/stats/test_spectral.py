"""Tests for spectral statistics (scree plot and network values)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.graphs import Graph
from repro.graphs.generators import complete_graph, erdos_renyi_graph, star_graph
from repro.stats.spectral import network_values, singular_values


class TestSingularValues:
    def test_star_top_value(self):
        # The star K_{1,n-1} has largest singular value sqrt(n-1).
        values = singular_values(star_graph(10), k=3)
        assert values[0] == pytest.approx(3.0, rel=1e-6)

    def test_complete_graph_spectrum(self):
        # K_n adjacency has eigenvalues n-1 and -1; singular values follow.
        values = singular_values(complete_graph(6), k=6)
        assert values[0] == pytest.approx(5.0, rel=1e-6)
        assert values[1] == pytest.approx(1.0, rel=1e-6)

    def test_descending_order(self, er_graph):
        values = singular_values(er_graph, k=10)
        assert np.all(np.diff(values) <= 1e-9)

    def test_sparse_matches_dense(self):
        graph = erdos_renyi_graph(120, 0.08, seed=2)
        sparse = singular_values(graph, k=6)
        dense = np.linalg.svd(graph.to_dense().astype(float), compute_uv=False)[:6]
        np.testing.assert_allclose(sparse, dense, rtol=1e-6, atol=1e-8)

    def test_k_larger_than_graph(self):
        values = singular_values(complete_graph(4), k=50)
        assert values.size == 4

    def test_empty_graph_rejected(self):
        with pytest.raises(ValidationError):
            singular_values(Graph(0))

    def test_edgeless_graph_zero_spectrum(self):
        values = singular_values(Graph(5), k=3)
        np.testing.assert_array_equal(values, np.zeros(3))

    def test_invalid_k(self, er_graph):
        with pytest.raises(ValidationError):
            singular_values(er_graph, k=0)


class TestNetworkValues:
    def test_length_is_node_count(self, er_graph):
        assert network_values(er_graph, k=5).size == er_graph.n_nodes

    def test_sorted_descending_absolute(self, er_graph):
        values = network_values(er_graph, k=5)
        assert np.all(np.diff(values) <= 1e-12)
        assert np.all(values >= 0)

    def test_complete_graph_uniform_principal_vector(self):
        # K6's top eigenvalue (5) is simple with a uniform eigenvector, so
        # every network-value component is 1/sqrt(6).  (A star would be a
        # bad test subject: bipartite graphs have degenerate +/- singular
        # pairs, leaving the singular basis ambiguous.)
        values = network_values(complete_graph(6), k=3)
        np.testing.assert_allclose(values, np.full(6, 1 / np.sqrt(6)), rtol=1e-6)

    def test_unit_norm(self, er_graph):
        values = network_values(er_graph, k=5)
        assert np.linalg.norm(values) == pytest.approx(1.0, rel=1e-6)


class TestMemoizedTriplets:
    """The per-graph SVD cache (see also tests/stats/test_backend_equivalence.py)."""

    def test_returned_arrays_stay_writable(self):
        # Callers historically received fresh arrays; the cache must not
        # leak read-only views into that contract.
        graph = erdos_renyi_graph(100, 0.08, seed=9)
        assert singular_values(graph, k=5).flags.writeable
        assert network_values(graph, k=5).flags.writeable

    def test_repeated_calls_bit_identical(self):
        graph = erdos_renyi_graph(100, 0.08, seed=9)
        np.testing.assert_array_equal(
            singular_values(graph, k=5), singular_values(graph, k=5)
        )
        np.testing.assert_array_equal(
            network_values(graph, k=5), network_values(graph, k=5)
        )

    def test_fresh_graph_instances_do_not_share_cache(self):
        first = erdos_renyi_graph(100, 0.08, seed=9)
        second = erdos_renyi_graph(100, 0.08, seed=9)
        np.testing.assert_array_equal(
            singular_values(first, k=5), singular_values(second, k=5)
        )
