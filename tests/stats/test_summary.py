"""Tests for the one-call graph summary."""

from __future__ import annotations

import pytest

from repro.graphs import Graph
from repro.stats.summary import summarize


class TestSummarize:
    def test_triangle(self, triangle):
        summary = summarize(triangle)
        assert summary.n_nodes == 3
        assert summary.n_edges == 3
        assert summary.triangles == 1
        assert summary.hairpins == 3
        assert summary.tripins == 0
        assert summary.max_degree == 2
        assert summary.mean_degree == pytest.approx(2.0)
        assert summary.average_clustering == pytest.approx(1.0)

    def test_empty_graph(self):
        summary = summarize(Graph(0))
        assert summary.max_degree == 0
        assert summary.mean_degree == 0.0

    def test_render_contains_all_fields(self, square_with_diagonal):
        text = summarize(square_with_diagonal).render()
        for token in ("nodes", "edges", "hairpins", "tripins", "triangles",
                      "max degree", "mean degree", "avg clustering"):
            assert token in text

    def test_frozen(self, triangle):
        summary = summarize(triangle)
        with pytest.raises(AttributeError):
            summary.n_nodes = 5  # type: ignore[misc]
