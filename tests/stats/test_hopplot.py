"""Tests for hop-plot computation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.graphs import Graph
from repro.graphs.generators import complete_graph, path_graph
from repro.stats.hopplot import effective_diameter, hop_plot


class TestExactHopPlot:
    def test_path_graph(self):
        hops, pairs = hop_plot(path_graph(4))
        # ordered pairs at distance <= h, plus the 4 self pairs
        np.testing.assert_array_equal(hops, [0, 1, 2, 3])
        np.testing.assert_array_equal(pairs, [4, 4 + 6, 4 + 10, 4 + 12])

    def test_complete_graph_saturates_at_one_hop(self):
        hops, pairs = hop_plot(complete_graph(5))
        np.testing.assert_array_equal(hops, [0, 1])
        assert pairs[-1] == 25  # all ordered pairs incl. self

    def test_disconnected_graph_never_reaches_all_pairs(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        _hops, pairs = hop_plot(graph)
        assert pairs[-1] == 4 + 4  # self pairs + 2 ordered pairs per edge

    def test_monotone_nondecreasing(self, er_graph):
        _hops, pairs = hop_plot(er_graph)
        assert np.all(np.diff(pairs) >= 0)

    def test_h0_equals_n(self, er_graph):
        _hops, pairs = hop_plot(er_graph)
        assert pairs[0] == er_graph.n_nodes

    def test_max_hops_truncates(self):
        hops, _pairs = hop_plot(path_graph(10), max_hops=2)
        assert hops[-1] == 2

    def test_empty_graph(self):
        hops, pairs = hop_plot(Graph(0))
        assert pairs[0] == 0


class TestSampledHopPlot:
    def test_unbiased_on_vertex_transitive_graph(self):
        # On a complete graph every source is identical, so any sample size
        # reproduces the exact counts after scaling.
        graph = complete_graph(40)
        _h_exact, exact = hop_plot(graph)
        _h_sampled, sampled = hop_plot(graph, n_sources=10, seed=0)
        np.testing.assert_allclose(sampled, exact)

    def test_close_to_exact_on_er(self, er_graph):
        _h, exact = hop_plot(er_graph)
        _h2, sampled = hop_plot(er_graph, n_sources=120, seed=1)
        length = min(exact.size, sampled.size)
        ratio = sampled[:length][-1] / exact[:length][-1]
        assert 0.8 < ratio < 1.2

    def test_source_count_validation(self, er_graph):
        with pytest.raises(ValidationError):
            hop_plot(er_graph, n_sources=0)


class TestEffectiveDiameter:
    def test_path_graph_value(self):
        diameter = effective_diameter(path_graph(2))
        assert diameter <= 1.0

    def test_longer_path_has_larger_diameter(self):
        short = effective_diameter(path_graph(5))
        long = effective_diameter(path_graph(50))
        assert long > short

    def test_invalid_quantile(self, er_graph):
        with pytest.raises(ValidationError):
            effective_diameter(er_graph, quantile=1.5)

    def test_empty_graph(self):
        assert effective_diameter(Graph(3)) == 0.0
