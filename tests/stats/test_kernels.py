"""Tests for the blocked counting kernels and the per-graph stats cache.

Two contracts matter:

* **equivalence** — the blocked kernels bit-match the pre-blocking full
  ``A @ A`` implementations (kept as reference oracles in
  :mod:`repro.stats.kernels`) for every block size, including degenerate
  ones, across random graphs and structured edge cases;
* **memoization** — within one process the A² pass runs exactly once per
  graph no matter how many consumers (matching statistics, the
  smooth-sensitivity triangle release, clustering) ask for its reductions.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.graphs import Graph
from repro.graphs.generators import (
    complete_graph,
    erdos_renyi_graph,
    star_graph,
)
from repro.kronecker.initiator import Initiator
from repro.kronecker.sampling import sample_skg
from repro.privacy.sensitivity import local_sensitivity_triangles
from repro.privacy.triangles import release_triangle_count
from repro.stats import kernels
from repro.stats.clustering import average_clustering, clustering_by_degree
from repro.stats.counts import (
    matching_statistics,
    max_common_neighbors,
    triangles_per_node,
)
from repro.stats.kernels import (
    StatsContext,
    TrianglePassResult,
    kernel_pass_count,
    reference_count_triangles,
    reference_max_common_neighbors,
    reference_triangles_per_node,
    resolve_block_size,
    row_blocks,
    stats_context,
    triangle_pass,
)

BLOCK_SIZES = (1, 7, 0)  # 0 = auto; n and > n are added per-graph below


def assert_pass_matches_reference(graph: Graph, block_size: int) -> TrianglePassResult:
    result = triangle_pass(graph, block_size)
    assert result.triangles == reference_count_triangles(graph)
    assert result.max_common_neighbors == reference_max_common_neighbors(graph)
    np.testing.assert_array_equal(
        np.asarray(result.per_node), reference_triangles_per_node(graph)
    )
    assert result.per_node.dtype == np.int64
    degrees = graph.degrees
    assert result.wedges == int((degrees * (degrees - 1) // 2).sum())
    assert result.tripins == int((degrees * (degrees - 1) * (degrees - 2) // 6).sum())
    return result


def all_block_sizes(graph: Graph) -> tuple[int, ...]:
    return BLOCK_SIZES + (max(graph.n_nodes, 1), graph.n_nodes + 13)


class TestBlockedEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_skg_draws(self, seed):
        graph = sample_skg(Initiator(0.9, 0.5, 0.3), 8, seed=seed)
        for block_size in all_block_sizes(graph):
            assert_pass_matches_reference(graph, block_size)

    @pytest.mark.parametrize("block_size", [1, 7, 0, 200, 213])
    def test_erdos_renyi(self, block_size):
        graph = erdos_renyi_graph(200, 0.05, seed=7)
        assert_pass_matches_reference(graph, block_size)

    def test_empty_graph(self):
        for graph in (Graph(0), Graph(5)):
            for block_size in all_block_sizes(graph):
                result = assert_pass_matches_reference(graph, block_size)
                assert result.triangles == 0
                assert result.max_common_neighbors == 0

    def test_star(self):
        graph = star_graph(9)
        for block_size in all_block_sizes(graph):
            result = assert_pass_matches_reference(graph, block_size)
            assert result.triangles == 0
            assert result.max_common_neighbors == 1

    def test_clique(self):
        graph = complete_graph(8)
        for block_size in all_block_sizes(graph):
            result = assert_pass_matches_reference(graph, block_size)
            assert result.triangles == 56  # C(8, 3)
            assert result.max_common_neighbors == 6  # n - 2

    def test_isolated_nodes(self):
        # A triangle plus an edge, floating in a sea of isolated nodes.
        graph = Graph(20, [(3, 7), (7, 11), (3, 11), (15, 16)])
        for block_size in all_block_sizes(graph):
            result = assert_pass_matches_reference(graph, block_size)
            assert result.triangles == 1

    def test_tiny_auto_budget_forces_many_blocks(self, monkeypatch):
        monkeypatch.setattr(kernels, "AUTO_ENTRY_BUDGET", 8)
        graph = erdos_renyi_graph(120, 0.08, seed=3)
        assert len(row_blocks(graph, 0)) > 1
        assert_pass_matches_reference(graph, 0)

    @given(
        n=st.integers(min_value=1, max_value=40),
        p=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=10**6),
        block_size=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_equivalence(self, n, p, seed, block_size):
        graph = erdos_renyi_graph(n, p, seed=seed)
        assert_pass_matches_reference(graph, block_size)


class TestRowBlocks:
    def test_fixed_blocks_cover_rows_exactly(self):
        graph = erdos_renyi_graph(25, 0.2, seed=0)
        blocks = row_blocks(graph, 7)
        assert blocks[0][0] == 0 and blocks[-1][1] == 25
        for (_, end), (start, _) in zip(blocks, blocks[1:]):
            assert end == start
        assert all(end - start <= 7 for start, end in blocks)

    def test_auto_small_graph_is_single_block(self):
        graph = erdos_renyi_graph(50, 0.1, seed=1)
        assert row_blocks(graph, 0) == [(0, 50)]

    def test_auto_adaptive_blocks_cover_rows(self, monkeypatch):
        monkeypatch.setattr(kernels, "AUTO_ENTRY_BUDGET", 20)
        graph = erdos_renyi_graph(60, 0.15, seed=2)
        blocks = row_blocks(graph, 0)
        assert blocks[0][0] == 0 and blocks[-1][1] == 60
        for (_, end), (start, _) in zip(blocks, blocks[1:]):
            assert end == start

    def test_empty_graph_has_no_blocks(self):
        assert row_blocks(Graph(0), 0) == []


class TestResolveBlockSize:
    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_BLOCK_SIZE", raising=False)
        assert resolve_block_size() == 0

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_BLOCK_SIZE", "64")
        assert resolve_block_size(16) == 16

    def test_environment_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_BLOCK_SIZE", "128")
        assert resolve_block_size() == 128

    def test_invalid_environment_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BLOCK_SIZE", "many")
        with pytest.raises(ValidationError):
            resolve_block_size()

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            resolve_block_size(-1)

    def test_non_integer_rejected(self):
        with pytest.raises(ValidationError):
            resolve_block_size(2.5)


class TestStatsContext:
    def test_context_is_cached_on_graph(self, er_graph):
        assert stats_context(er_graph) is stats_context(er_graph)

    def test_cached_arrays_are_read_only(self, er_graph):
        assert not triangles_per_node(er_graph).flags.writeable
        assert not stats_context(er_graph).local_clustering.flags.writeable

    def test_adjacency_float64_cached(self, er_graph):
        context = stats_context(er_graph)
        converted = context.adjacency_float64
        assert converted.dtype == np.float64
        assert context.adjacency_float64 is converted

    def test_degree_moment_pieces(self, k5):
        context = stats_context(k5)
        assert context.edge_count == 10
        assert context.wedge_count == 5 * 6
        assert context.tripin_count == 5 * 4

    def test_explicit_block_size_context(self, er_graph):
        blocked = StatsContext(er_graph, block_size=3)
        assert blocked.triangle_count == stats_context(er_graph).triangle_count


class TestSinglePassPerGraph:
    def test_per_trial_consumers_share_one_pass(self):
        """The acceptance contract: matching statistics, the DP triangle
        release, and clustering on one graph cost exactly one A² pass."""
        graph = sample_skg(Initiator(0.9, 0.5, 0.3), 7, seed=42)
        before = kernel_pass_count()
        matching_statistics(graph)
        release_triangle_count(graph, epsilon=0.5, delta=0.01, seed=0)
        local_sensitivity_triangles(graph)
        average_clustering(graph)
        clustering_by_degree(graph)
        max_common_neighbors(graph)
        assert kernel_pass_count() - before == 1

    def test_distinct_graphs_get_distinct_passes(self):
        first = erdos_renyi_graph(30, 0.2, seed=0)
        second = erdos_renyi_graph(30, 0.2, seed=1)
        before = kernel_pass_count()
        matching_statistics(first)
        matching_statistics(second)
        assert kernel_pass_count() - before == 2

    def test_edgeless_graph_runs_no_pass(self):
        before = kernel_pass_count()
        matching_statistics(Graph(10))
        assert kernel_pass_count() - before == 0


class TestConsumerConsistency:
    def test_counts_api_matches_references(self):
        graph = erdos_renyi_graph(150, 0.06, seed=11)
        assert matching_statistics(graph).triangles == reference_count_triangles(graph)
        assert max_common_neighbors(graph) == reference_max_common_neighbors(graph)
        np.testing.assert_array_equal(
            np.asarray(triangles_per_node(graph)),
            reference_triangles_per_node(graph),
        )

    def test_block_size_does_not_change_statistics(self, monkeypatch):
        draws = [erdos_renyi_graph(80, 0.1, seed=s) for s in range(2)]
        expected = [matching_statistics(graph) for graph in draws]
        monkeypatch.setenv("REPRO_BLOCK_SIZE", "5")
        rebuilt = [
            Graph._from_canonical(graph.n_nodes, *graph.edge_arrays)
            for graph in draws
        ]
        assert [matching_statistics(graph) for graph in rebuilt] == expected
