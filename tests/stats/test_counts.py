"""Tests for the exact matching-statistic counts (E, H, T, Δ)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Graph
from repro.graphs.generators import erdos_renyi_graph, star_graph
from repro.stats.counts import (
    count_edges,
    count_triangles,
    count_tripins,
    count_wedges,
    degree_moment_statistics,
    matching_statistics,
    max_common_neighbors,
    triangles_per_node,
)


class TestKnownGraphs:
    def test_triangle(self, triangle):
        assert count_edges(triangle) == 3
        assert count_wedges(triangle) == 3
        assert count_tripins(triangle) == 0
        assert count_triangles(triangle) == 1

    def test_square_with_diagonal(self, square_with_diagonal):
        assert count_triangles(square_with_diagonal) == 2
        assert count_wedges(square_with_diagonal) == 8  # C(3,2)*2 + C(2,2)*2
        assert count_tripins(square_with_diagonal) == 2  # two degree-3 nodes

    def test_star(self):
        star = star_graph(6)  # centre degree 5
        assert count_wedges(star) == 10  # C(5, 2)
        assert count_tripins(star) == 10  # C(5, 3)
        assert count_triangles(star) == 0

    def test_complete_k5(self, k5):
        assert count_edges(k5) == 10
        assert count_wedges(k5) == 5 * 6  # 5 * C(4,2)
        assert count_tripins(k5) == 5 * 4  # 5 * C(4,3)
        assert count_triangles(k5) == 10  # C(5,3)

    def test_path(self, path4):
        assert count_wedges(path4) == 2
        assert count_triangles(path4) == 0

    def test_empty(self):
        graph = Graph(5)
        assert matching_statistics(graph) == (0.0, 0.0, 0.0, 0.0)


class TestTrianglesPerNode:
    def test_triangle_graph(self, triangle):
        np.testing.assert_array_equal(triangles_per_node(triangle), [1, 1, 1])

    def test_square_with_diagonal(self, square_with_diagonal):
        np.testing.assert_array_equal(
            triangles_per_node(square_with_diagonal), [2, 1, 2, 1]
        )

    def test_sum_is_three_triangles(self, er_graph):
        assert triangles_per_node(er_graph).sum() == 3 * count_triangles(er_graph)


class TestMaxCommonNeighbors:
    def test_complete_graph(self, k5):
        assert max_common_neighbors(k5) == 3  # n - 2

    def test_star(self):
        # Any two leaves share exactly the centre.
        assert max_common_neighbors(star_graph(6)) == 1

    def test_path(self, path4):
        assert max_common_neighbors(path4) == 1

    def test_empty_graph(self):
        assert max_common_neighbors(Graph(4)) == 0

    def test_single_edge(self):
        assert max_common_neighbors(Graph(2, [(0, 1)])) == 0

    def test_counts_non_adjacent_pairs(self):
        # 4-cycle: opposite (non-adjacent) corners share two neighbours.
        cycle = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert max_common_neighbors(cycle) == 2


class TestAgainstNetworkxOracle:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_triangles_match(self, seed):
        networkx = pytest.importorskip("networkx")
        graph = erdos_renyi_graph(80, 0.1, seed=seed)
        expected = sum(networkx.triangles(graph.to_networkx()).values()) // 3
        assert count_triangles(graph) == expected

    def test_wedges_match_path_count(self):
        networkx = pytest.importorskip("networkx")
        graph = erdos_renyi_graph(60, 0.12, seed=5)
        nx_graph = graph.to_networkx()
        wedges = sum(
            d * (d - 1) // 2 for _, d in nx_graph.degree()
        )
        assert count_wedges(graph) == wedges


class TestDegreeMoments:
    def test_matches_exact_counts_on_integer_degrees(self, er_graph):
        edges, hairpins, tripins = degree_moment_statistics(er_graph.degrees)
        assert edges == count_edges(er_graph)
        assert hairpins == count_wedges(er_graph)
        assert tripins == count_tripins(er_graph)

    def test_real_valued_input_allowed(self):
        edges, hairpins, tripins = degree_moment_statistics(np.array([2.5, 1.5]))
        assert edges == pytest.approx(2.0)
        assert hairpins == pytest.approx(0.5 * (2.5 * 1.5 + 1.5 * 0.5))

    def test_empty(self):
        assert degree_moment_statistics(np.array([])) == (0.0, 0.0, 0.0)


@given(
    n=st.integers(min_value=2, max_value=30),
    p=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=30, deadline=None)
def test_count_invariants(n, p, seed):
    """Degree-derived counts always agree with their combinatorial forms."""
    graph = erdos_renyi_graph(n, p, seed=seed)
    degrees = graph.degrees
    assert count_edges(graph) == degrees.sum() // 2
    assert count_wedges(graph) == int((degrees * (degrees - 1) // 2).sum())
    assert 3 * count_triangles(graph) <= count_wedges(graph)
    assert max_common_neighbors(graph) <= max(n - 2, 0)
