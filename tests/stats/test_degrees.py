"""Tests for degree statistics."""

from __future__ import annotations

import numpy as np

from repro.graphs import Graph
from repro.stats.degrees import (
    degree_ccdf,
    degree_distribution,
    degree_sequence,
    sorted_degree_sequence,
)


class TestSequences:
    def test_degree_sequence_is_copy(self, triangle):
        sequence = degree_sequence(triangle)
        sequence[0] = 99
        assert triangle.degrees[0] == 2

    def test_sorted_sequence_ascending(self, square_with_diagonal):
        np.testing.assert_array_equal(
            sorted_degree_sequence(square_with_diagonal), [2, 2, 3, 3]
        )


class TestDistribution:
    def test_counts(self, square_with_diagonal):
        values, counts = degree_distribution(square_with_diagonal)
        np.testing.assert_array_equal(values, [2, 3])
        np.testing.assert_array_equal(counts, [2, 2])

    def test_zero_degree_excluded_by_default(self):
        graph = Graph(3, [(0, 1)])
        values, _counts = degree_distribution(graph)
        assert 0 not in values

    def test_zero_degree_included_on_request(self):
        graph = Graph(3, [(0, 1)])
        values, counts = degree_distribution(graph, include_zero=True)
        assert values[0] == 0
        assert counts[0] == 1

    def test_accepts_raw_vector(self):
        values, counts = degree_distribution(np.array([1, 1, 2]))
        np.testing.assert_array_equal(values, [1, 2])
        np.testing.assert_array_equal(counts, [2, 1])

    def test_counts_sum_to_nonzero_nodes(self, er_graph):
        _values, counts = degree_distribution(er_graph)
        assert counts.sum() == int((er_graph.degrees > 0).sum())


class TestCcdf:
    def test_starts_at_one_when_min_degree_reached(self, triangle):
        values, tail = degree_ccdf(triangle)
        assert tail[0] == 1.0

    def test_monotone_decreasing(self, er_graph):
        _values, tail = degree_ccdf(er_graph)
        assert np.all(np.diff(tail) <= 0)

    def test_empty_graph(self):
        values, tail = degree_ccdf(Graph(0))
        assert values.size == 0
        assert tail.size == 0
