"""Tests for comparison metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.kronecker.initiator import Initiator
from repro.stats.comparison import (
    ks_distance,
    log_series_distance,
    median_relative_error,
    parameter_error,
    relative_error,
)


class TestRelativeError:
    def test_exact_match(self):
        assert relative_error(5.0, 5.0) == 0.0

    def test_zero_truth_bounded(self):
        assert relative_error(3.0, 0.0) == 3.0

    def test_symmetric_magnitude(self):
        assert relative_error(8.0, 10.0) == pytest.approx(0.2)


class TestMedianRelativeError:
    def test_basic(self):
        errors = median_relative_error(np.array([1.0, 2.0]), np.array([2.0, 2.0]))
        assert errors == pytest.approx(0.25)

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            median_relative_error(np.zeros(2), np.zeros(3))

    def test_empty(self):
        assert median_relative_error(np.array([]), np.array([])) == 0.0


class TestParameterError:
    def test_identical(self):
        theta = Initiator(0.9, 0.5, 0.1)
        assert parameter_error(theta, theta) == 0.0

    def test_max_abs(self):
        assert parameter_error((1.0, 0.5, 0.0), (0.8, 0.5, 0.1)) == pytest.approx(0.2)

    def test_accepts_initiators_and_tuples(self):
        assert parameter_error(Initiator(0.9, 0.5, 0.1), (0.9, 0.5, 0.1)) == 0.0

    def test_rejects_wrong_arity(self):
        with pytest.raises(ValidationError):
            parameter_error((1.0, 2.0), (1.0, 2.0))


class TestKsDistance:
    def test_identical_samples(self):
        samples = np.array([1, 2, 2, 3])
        assert ks_distance(samples, samples) == 0.0

    def test_disjoint_supports(self):
        assert ks_distance(np.zeros(5), np.ones(5)) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            ks_distance(np.array([]), np.array([1.0]))

    def test_matches_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        rng = np.random.default_rng(0)
        a = rng.normal(size=200)
        b = rng.normal(0.5, size=150)
        ours = ks_distance(a, b)
        theirs = scipy_stats.ks_2samp(a, b).statistic
        assert ours == pytest.approx(theirs, abs=1e-12)

    @given(
        a=st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=50),
        b=st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=50),
    )
    @settings(max_examples=40)
    def test_bounds_and_symmetry(self, a, b):
        distance = ks_distance(np.array(a), np.array(b))
        assert 0.0 <= distance <= 1.0
        assert distance == pytest.approx(ks_distance(np.array(b), np.array(a)))


class TestLogSeriesDistance:
    def test_identical_series(self):
        xs = np.array([1.0, 10.0, 100.0])
        ys = np.array([5.0, 2.0, 0.5])
        assert log_series_distance(xs, ys, xs, ys) == pytest.approx(0.0, abs=1e-12)

    def test_constant_factor_is_log_gap(self):
        xs = np.array([1.0, 10.0, 100.0])
        ys = np.array([5.0, 2.0, 0.5])
        distance = log_series_distance(xs, ys, xs, 10 * ys)
        assert distance == pytest.approx(1.0, rel=1e-9)

    def test_disjoint_supports_nan(self):
        d = log_series_distance(
            np.array([1.0, 2.0]), np.array([1.0, 1.0]),
            np.array([100.0, 200.0]), np.array([1.0, 1.0]),
        )
        assert np.isnan(d)

    def test_nonpositive_points_dropped(self):
        xs = np.array([0.0, 1.0, 10.0])
        ys = np.array([5.0, 2.0, 0.5])
        distance = log_series_distance(xs, ys, xs[1:], ys[1:])
        assert distance == pytest.approx(0.0, abs=1e-12)
